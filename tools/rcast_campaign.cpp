// rcast_campaign — declarative sweep campaigns over the simulator.
//
// A campaign is a manifest (parameter grid) plus an output directory
// holding a crash-safe journal and a JSONL result store. Interrupt it any
// way you like — Ctrl-C, kill -9, power loss — and `resume` continues
// exactly where it stopped, skipping journaled jobs; the exported aggregate
// CSV is byte-identical to an uninterrupted run.
//
//   rcast_campaign run    manifest.txt --out=DIR [--threads=N]
//                         [--timeout-s=S] [--max-jobs=N] [--quiet]
//                         [--trace=FILE [--trace-job=ID]]
//   rcast_campaign resume manifest.txt --out=DIR [same knobs]
//   rcast_campaign status manifest.txt --out=DIR
//   rcast_campaign export manifest.txt --out=DIR [--csv=FILE]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "campaign/journal.hpp"
#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "campaign/runner.hpp"
#include "scenario/params.hpp"
#include "util/flags.hpp"

namespace {

using namespace rcast;
namespace fs = std::filesystem;

void print_usage() {
  std::puts(
      "rcast_campaign — checkpointed sweep campaigns (Rcast reproduction)\n"
      "\n"
      "  rcast_campaign run    MANIFEST --out=DIR   start a fresh campaign\n"
      "  rcast_campaign resume MANIFEST --out=DIR   continue after an interruption\n"
      "  rcast_campaign status MANIFEST --out=DIR   progress / failures so far\n"
      "  rcast_campaign export MANIFEST --out=DIR   aggregate CSV (stdout or --csv=FILE)\n"
      "\n"
      "  --out=DIR        campaign directory (journal.log + results.jsonl)\n"
      "  --threads=N      worker threads       (default: hardware)\n"
      "  --timeout-s=S    per-job wall budget  (default: none)\n"
      "  --max-jobs=N     stop after N new jobs (interruption testing)\n"
      "  --csv=FILE       export target        (default: stdout)\n"
      "  --trace=FILE     attach a routing+MAC event trace to one job\n"
      "  --trace-job=ID   job id to trace      (default: first pending)\n"
      "  --set KEY=VALUE  override any registered scenario parameter in the\n"
      "                   base config (repeatable; affects job digests, so\n"
      "                   pass the same --set flags to run/resume/status)\n"
      "  --help-params    list every registered parameter\n"
      "  --quiet          suppress progress lines\n"
      "\n"
      "Manifest keys: name, schemes, routings, rates_pps, pauses_s (numbers\n"
      "or 'static'), nodes, seeds, seed_base, duration_s, flows,\n"
      "payload_bytes, speed_mps, battery_j, world_m (WxH) — plus any\n"
      "registered scenario parameter (e.g. mac.atim_window_ms): a single\n"
      "value overrides every job, a comma-separated list adds a sweep axis.\n"
      "Lists are comma-separated; '#' starts a comment.");
}

int cmd_run(const campaign::Manifest& manifest,
            const scenario::ScenarioConfig& base, const std::string& out_dir,
            const Flags& flags, bool resume) {
  const std::string journal_path = out_dir + "/journal.log";
  if (!resume && fs::exists(journal_path)) {
    std::fprintf(stderr,
                 "%s already has a journal — use `resume` to continue it\n",
                 out_dir.c_str());
    return 2;
  }
  fs::create_directories(out_dir);

  campaign::RunnerOptions opt;
  opt.journal_path = journal_path;
  opt.results_path = out_dir + "/results.jsonl";
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  opt.job_timeout_s = flags.get_double("timeout-s", 0.0);
  opt.max_jobs = static_cast<std::size_t>(flags.get_int("max-jobs", 0));
  opt.progress = !flags.get_bool("quiet", false);
  opt.trace_path = flags.get_string("trace", "");
  opt.trace_job = flags.get_string("trace-job", "");
  if (opt.trace_path.empty() && !opt.trace_job.empty()) {
    std::fprintf(stderr, "--trace-job requires --trace=FILE\n");
    return 2;
  }

  const campaign::CampaignResult r =
      campaign::run_campaign(manifest, opt, base);
  std::fprintf(stderr,
               "campaign '%s': %zu jobs — %zu ok, %zu failed, %zu resumed "
               "from journal, %zu not run\n",
               manifest.name.c_str(), r.jobs.size(), r.completed, r.failed,
               r.skipped, r.remaining);
  if (r.remaining > 0) {
    std::fprintf(stderr, "interrupted before completion — `resume` to finish\n");
  }
  return r.failed > 0 ? 1 : 0;
}

int cmd_status(const campaign::Manifest& manifest,
               const scenario::ScenarioConfig& base,
               const std::string& out_dir) {
  const auto jobs = campaign::expand(manifest, base);
  const std::string journal_path = out_dir + "/journal.log";
  if (!fs::exists(journal_path)) {
    std::printf("campaign '%s': 0/%zu jobs done (no journal at %s)\n",
                manifest.name.c_str(), jobs.size(), journal_path.c_str());
    return 0;
  }
  const auto journal = campaign::Journal::open(
      journal_path, campaign::campaign_digest(manifest.name, jobs),
      jobs.size());
  std::size_t ok = 0, failed = 0;
  for (const auto& [_, e] : journal.entries()) {
    (e.ok ? ok : failed) += 1;
  }
  std::printf("campaign '%s': %zu/%zu jobs done (%zu ok, %zu failed)\n",
              manifest.name.c_str(), journal.entries().size(), jobs.size(),
              ok, failed);
  for (const auto& [idx, e] : journal.entries()) {
    if (!e.ok) {
      std::printf("  FAILED %s: %s\n", jobs[idx].id.c_str(), e.error.c_str());
    }
  }
  return 0;
}

int cmd_export(const campaign::Manifest& manifest, const std::string& out_dir,
               const Flags& flags) {
  (void)manifest;
  const std::string results_path = out_dir + "/results.jsonl";
  // Stream the store instead of materializing every record: one JobRecord
  // is alive at a time however large the campaign grew.
  campaign::AggregateAccumulator acc;
  campaign::for_each_result({results_path},
                            [&](campaign::JobRecord&& rec) { acc.add(rec); });
  const std::string csv = campaign::aggregate_csv(acc.rows());

  const std::string csv_path = flags.get_string("csv", "");
  if (csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream out(csv_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    out << csv;
    std::fprintf(stderr, "exported %zu records -> %s\n", acc.records(),
                 csv_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help-params")) {
    std::fputs(scenario::params_help().c_str(), stdout);
    return 0;
  }
  if (flags.has("help") || flags.positional().size() < 2) {
    print_usage();
    return flags.has("help") ? 0 : 2;
  }

  const std::string cmd = flags.positional()[0];
  const std::string manifest_path = flags.positional()[1];
  const std::string out_dir = flags.get_string("out", "");
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out=DIR is required\n");
    return 2;
  }

  // Base config the manifest grid expands over; --set overrides land here.
  // Grid-owned parameters must come from the manifest, not --set.
  scenario::ScenarioConfig base;
  for (const std::string& kv : flags.get_all("set")) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--set expects KEY=VALUE, got '%s'\n", kv.c_str());
      return 2;
    }
    const std::string key = kv.substr(0, eq);
    for (const char* owned :
         {"scheme", "routing", "power.scheme", "routing.protocol", "rate_pps",
          "pause_s", "nodes", "seed"}) {
      if (key == owned) {
        std::fprintf(stderr,
                     "--set %s: grid axes come from the manifest, not --set\n",
                     key.c_str());
        return 2;
      }
    }
    try {
      scenario::set_param(base, key, kv.substr(eq + 1));
    } catch (const scenario::ParamError& e) {
      std::fprintf(stderr, "--set %s: %s\n", kv.c_str(), e.what());
      return 2;
    }
  }

  try {
    const campaign::Manifest manifest =
        campaign::parse_manifest_file(manifest_path);
    if (cmd == "run") return cmd_run(manifest, base, out_dir, flags, false);
    if (cmd == "resume") return cmd_run(manifest, base, out_dir, flags, true);
    if (cmd == "status") return cmd_status(manifest, base, out_dir);
    if (cmd == "export") return cmd_export(manifest, out_dir, flags);
    std::fprintf(stderr, "unknown subcommand '%s' (see --help)\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcast_campaign: %s\n", e.what());
    return 1;
  }
}
