// rcast_sim — command-line front end to the simulator.
//
// Runs one scenario (or one per scheme) with every knob exposed as a flag
// and prints either a human-readable report or a CSV row per run. Optional
// per-packet event tracing to a file.
//
// Examples:
//   rcast_sim --scheme=rcast --nodes=100 --rate=1.0 --seconds=300
//   rcast_sim --scheme=all --csv --seeds=5 > sweep.csv
//   rcast_sim --scheme=odpm --routing=aodv --trace=events.csv
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/params.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scheme.hpp"
#include "stats/trace.hpp"
#include "util/flags.hpp"

namespace {

using namespace rcast;

void print_usage() {
  std::puts(
      "rcast_sim — MANET energy-efficiency simulator (Rcast reproduction)\n"
      "\n"
      "  --scheme=NAME      80211 | psm-none | psm-all | odpm | rcast |\n"
      "                     rcast-bc | leach | all    (default rcast;\n"
      "                     'all' = the paper's six, without leach)\n"
      "  --routing=PROTO    dsr | aodv                (default dsr)\n"
      "  --nodes=N          node count                (default 100)\n"
      "  --flows=N          CBR flow count            (default nodes/5)\n"
      "  --rate=PPS         packets/s per flow        (default 1.0)\n"
      "  --payload=BYTES    CBR payload               (default 64)\n"
      "  --seconds=S        simulated time            (default 150)\n"
      "  --width/--height=M world size                (default 1500x300)\n"
      "  --pause=S          waypoint pause; >=seconds => static (default s/2)\n"
      "  --speed=MPS        max node speed            (default 20)\n"
      "  --battery=J        per-node battery, 0=inf   (default 0)\n"
      "  --seed=N --seeds=K first seed / repetitions  (default 1 / 1)\n"
      "  --estimator=NAME   neighbors | sender-id | mobility | battery |\n"
      "                     combined                  (default neighbors)\n"
      "  --set KEY=VALUE    set any registered scenario parameter by its\n"
      "                     dotted name (e.g. --set mac.atim_window_ms=25\n"
      "                     --set odpm.rrep_timeout_s=10); repeatable,\n"
      "                     applied after the flags above\n"
      "  --csv              one CSV row per run (with header)\n"
      "  --trace=FILE       per-event trace, routing + MAC (single-run only)\n"
      "  --help-params      list every registered parameter\n"
      "  --help             this text");
}

void print_csv_header() {
  std::printf(
      "scheme,routing,mobility,traffic,seed,nodes,flows,rate_pps,seconds,"
      "pause_s,pdr_pct,energy_j,energy_var,epb_j_per_bit,delay_s,delay_p50_s,"
      "delay_p90_s,norm_overhead,ctrl_tx,hello_tx,dead_nodes,"
      "first_node_death_s,partition_time_s\n");
}

void print_csv_row(const scenario::ScenarioConfig& cfg,
                   const scenario::RunResult& r) {
  std::printf(
      "%s,%s,%s,%s,%llu,%zu,%zu,%.3f,%.1f,%.1f,%.2f,%.1f,%.1f,%.6g,%.4f,"
      "%.4f,%.4f,%.3f,%llu,%llu,%zu,%.1f,%.1f\n",
      std::string(to_string(cfg.scheme)).c_str(),
      std::string(to_string(cfg.routing)).c_str(),
      cfg.mobility_model.c_str(), cfg.traffic_pattern.c_str(),
      static_cast<unsigned long long>(cfg.seed), cfg.num_nodes,
      cfg.num_flows, cfg.rate_pps, sim::to_seconds(cfg.duration),
      sim::to_seconds(cfg.pause), r.pdr_percent, r.total_energy_j,
      r.energy_variance, r.energy_per_bit_j, r.avg_delay_s, r.delay_p50_s,
      r.delay_p90_s, r.normalized_overhead,
      static_cast<unsigned long long>(r.control_tx),
      static_cast<unsigned long long>(r.hello_tx), r.dead_nodes,
      r.first_death_s, r.partition_time_s);
}

void print_report(const scenario::ScenarioConfig& cfg,
                  const scenario::RunResult& r) {
  std::printf("--- %s / %s (seed %llu) ---\n",
              std::string(to_string(cfg.scheme)).c_str(),
              std::string(to_string(cfg.routing)).c_str(),
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  delivery : %llu/%llu packets (PDR %.1f%%)\n",
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.originated), r.pdr_percent);
  std::printf("  energy   : %.1f J total, %.1f J/node mean, variance %.1f\n",
              r.total_energy_j, r.energy_mean_j, r.energy_variance);
  std::printf("  delay    : mean %.3f s (p50 %.3f, p90 %.3f; route-wait "
              "%.3f + transit %.3f)\n",
              r.avg_delay_s, r.delay_p50_s, r.delay_p90_s,
              r.avg_route_wait_s, r.avg_transit_s);
  std::printf("  overhead : %llu control tx (%.3f per delivered)",
              static_cast<unsigned long long>(r.control_tx),
              r.normalized_overhead);
  if (r.hello_tx > 0) {
    std::printf(", %llu hellos", static_cast<unsigned long long>(r.hello_tx));
  }
  std::printf("\n  psm      : %llu ATIMs, %llu overhear commits / %llu "
              "declines, %llu sleeps\n",
              static_cast<unsigned long long>(r.atim_tx),
              static_cast<unsigned long long>(r.overhear_commits),
              static_cast<unsigned long long>(r.overhear_declines),
              static_cast<unsigned long long>(r.mac_sleeps));
  if (r.dead_nodes > 0) {
    std::printf("  battery  : %zu nodes dead, first death at %.1f s\n",
                r.dead_nodes, r.first_death_s);
  }
  if (r.partition_time_s > 0.0) {
    std::printf("  lifetime : network partitioned at %.1f s\n",
                r.partition_time_s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    print_usage();
    return 0;
  }
  if (flags.has("help-params")) {
    std::fputs(scenario::params_help().c_str(), stdout);
    return 0;
  }

  scenario::ScenarioConfig cfg;
  cfg.num_nodes = static_cast<std::size_t>(flags.get_int("nodes", 100));
  cfg.num_flows = static_cast<std::size_t>(
      flags.get_int("flows", static_cast<std::int64_t>(cfg.num_nodes / 5)));
  cfg.rate_pps = flags.get_double("rate", 1.0);
  cfg.payload_bits = flags.get_int("payload", 64) * 8;
  cfg.duration = sim::from_seconds(flags.get_double("seconds", 150.0));
  cfg.world = {flags.get_double("width", 1500.0),
               flags.get_double("height", 300.0)};
  cfg.pause = sim::from_seconds(flags.get_double(
      "pause", sim::to_seconds(cfg.duration) / 2.0));
  cfg.max_speed_mps = flags.get_double("speed", 20.0);
  cfg.battery_joules = flags.get_double("battery", 0.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 1));

  const std::string routing = flags.get_string("routing", "dsr");
  if (auto p = scenario::routing_from_string(routing)) {
    cfg.routing = *p;
  } else {
    std::fprintf(stderr, "unknown --routing=%s\n", routing.c_str());
    return 2;
  }

  const std::string est = flags.get_string("estimator", "neighbors");
  if (est == "sender-id") {
    cfg.rcast.estimator = core::PrEstimator::kSenderRecency;
  } else if (est == "mobility") {
    cfg.rcast.estimator = core::PrEstimator::kMobility;
  } else if (est == "battery") {
    cfg.rcast.estimator = core::PrEstimator::kBattery;
  } else if (est == "combined") {
    cfg.rcast.estimator = core::PrEstimator::kCombined;
  } else if (est != "neighbors") {
    std::fprintf(stderr, "unknown --estimator=%s\n", est.c_str());
    return 2;
  }

  const std::string scheme_arg = flags.get_string("scheme", "rcast");
  std::vector<scenario::Scheme> schemes;
  if (scheme_arg == "all") {
    schemes.assign(scenario::kAllSchemes.begin(), scenario::kAllSchemes.end());
  } else if (auto s = scenario::scheme_from_string(scheme_arg)) {
    schemes = {*s};
  } else {
    std::fprintf(stderr, "unknown --scheme=%s\n", scheme_arg.c_str());
    return 2;
  }

  // Generic overrides, applied on top of the legacy flags above. The seed
  // stays flag-owned because the run loops below iterate it; the scheme may
  // come from either --scheme or --set power.scheme, but not both.
  bool scheme_from_set = false;
  for (const std::string& kv : flags.get_all("set")) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--set expects KEY=VALUE, got '%s'\n", kv.c_str());
      return 2;
    }
    const std::string key = kv.substr(0, eq);
    if (key == "seed") {
      std::fprintf(stderr, "--set seed: use --seed instead\n");
      return 2;
    }
    if (key == "scheme" || key == "power.scheme") {
      if (flags.has("scheme")) {
        std::fprintf(stderr,
                     "--set %s conflicts with --scheme; pass one of them\n",
                     key.c_str());
        return 2;
      }
      scheme_from_set = true;
    }
    try {
      scenario::set_param(cfg, key, kv.substr(eq + 1));
    } catch (const scenario::ParamError& e) {
      std::fprintf(stderr, "--set %s: %s\n", kv.c_str(), e.what());
      return 2;
    }
  }
  if (scheme_from_set) schemes = {cfg.scheme};

  const bool csv = flags.get_bool("csv", false);
  const std::string trace_path = flags.get_string("trace", "");

  for (const auto& unknown : flags.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s (see --help)\n",
                 unknown.c_str());
    return 2;
  }
  if (!trace_path.empty() && (schemes.size() > 1 || seeds > 1)) {
    std::fprintf(stderr, "--trace requires a single scheme and seed\n");
    return 2;
  }

  if (csv) print_csv_header();

  for (auto scheme : schemes) {
    cfg.scheme = scheme;
    for (std::size_t k = 0; k < seeds; ++k) {
      scenario::ScenarioConfig run_cfg = cfg;
      run_cfg.seed = cfg.seed + k;

      scenario::RunResult r;
      if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
          return 1;
        }
        stats::EventTracer tracer(out);
        scenario::Network net(run_cfg);
        net.telemetry().subscribe_routing(&tracer);
        net.telemetry().subscribe_mac(&tracer);
        r = net.run();
        std::fprintf(stderr, "trace: %llu events -> %s\n",
                     static_cast<unsigned long long>(tracer.lines_written()),
                     trace_path.c_str());
      } else {
        r = scenario::run_scenario(run_cfg);
      }

      if (csv) {
        print_csv_row(run_cfg, r);
      } else {
        print_report(run_cfg, r);
      }
    }
  }
  return 0;
}
