#!/usr/bin/env bash
# Tier-1 gate in one shot: configure, build, run the test suite, then a
# bench_micro pass that writes throughput + allocation-discipline numbers
# to BENCH_hotpath JSON (compare against the committed baseline at the repo
# root; DESIGN.md §8 explains the fields).
#
# Usage: tools/run_tier1.sh [build-dir] [sanitizers] [ctest-filter]
#   build-dir    defaults to "build"
#   sanitizers   optional RCAST_SANITIZE value (e.g. "address,undefined");
#                sanitized runs skip the benchmark pass.
#   ctest-filter optional ctest -R regex; CI's TSan leg uses it to run just
#                the multi-threaded suites (campaign runner, repetitions).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SANITIZE="${2:-}"
FILTER="${3:-}"

CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release)
if [[ -n "$SANITIZE" ]]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=RelWithDebInfo "-DRCAST_SANITIZE=$SANITIZE")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Parameter-registry gates: the registry must be internally consistent (it
# runs under whatever sanitizer this leg built with), and the generated
# parameter reference in EXPERIMENTS.md must match it.
"./$BUILD_DIR/tools/rcast_params" --self-check
"./$BUILD_DIR/tools/rcast_params" --check=EXPERIMENTS.md

CTEST_ARGS=(--test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure)
if [[ -n "$FILTER" ]]; then
  CTEST_ARGS+=(-R "$FILTER")
fi
ctest "${CTEST_ARGS[@]}"

if [[ -z "$SANITIZE" ]]; then
  RCAST_BENCH_JSON="${RCAST_BENCH_JSON:-$BUILD_DIR/BENCH_hotpath.json}" \
    "./$BUILD_DIR/bench/bench_micro" --benchmark_min_time=0.5
  echo "tier-1 OK; benchmark record: ${RCAST_BENCH_JSON:-$BUILD_DIR/BENCH_hotpath.json}"
else
  echo "tier-1 OK under RCAST_SANITIZE=$SANITIZE (benchmarks skipped)"
fi
