#!/usr/bin/env python3
"""Gate a fresh benchmark run against a committed BENCH record.

The committed records at the repo root (BENCH_hotpath.json, BENCH_scale.json)
carry named columns ("baseline", "after") of per-benchmark numbers measured
on one reference machine. A fresh run — the flat {"benchmarks": [...]} file
teed by bench_micro/bench_scale — is compared per benchmark name on
items_per_second:

    ratio = fresh / committed_column_value

CI machines are slower and noisier than the reference box, so the default
gate is deliberately loose (--min-ratio 0.25): it exists to catch
catastrophic regressions (an accidentally quadratic scan, a reintroduced
per-event allocation) and renamed-but-not-rerecorded benchmarks, not 5%
drift. Tighten --min-ratio when running on the reference machine itself.

Two further gates read the *committed* record and the *fresh* counters:

  --gate-speedup NAME:RATIO   require committed after/baseline >= RATIO on
                              items_per_second for benchmark NAME. This pins
                              a recorded optimization (e.g. the ladder-queue
                              2x on BM_TransmitStorm/1000) so a later PR
                              cannot silently re-record it away.
  --fail-on-nonzero COUNTER   fail when any fresh benchmark reports COUNTER
                              with a value > 0 (e.g. heap_fallbacks, whose
                              budget is exactly zero).

Usage:
    tools/check_bench.py FRESH.json COMMITTED.json [--column after]
                         [--min-ratio 0.25] [--require-all]
                         [--gate-speedup NAME:RATIO]...
                         [--fail-on-nonzero COUNTER]...

Exit codes: 0 ok, 1 regression or missing benchmark, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fresh_by_name(doc):
    runs = doc.get("benchmarks")
    if not isinstance(runs, list):
        print("check_bench: fresh file has no 'benchmarks' array",
              file=sys.stderr)
        sys.exit(2)
    return {r["name"]: r for r in runs if "name" in r}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="flat JSON teed by a bench binary")
    ap.add_argument("committed", help="committed BENCH record (repo root)")
    ap.add_argument("--column", default="after",
                    help="record column to compare against (default: after)")
    ap.add_argument("--min-ratio", type=float, default=0.25,
                    help="fail when fresh/committed < this (default: 0.25)")
    ap.add_argument("--require-all", action="store_true",
                    help="also fail when the fresh run lacks a benchmark "
                         "that the committed column records (default: warn)")
    ap.add_argument("--gate-speedup", action="append", default=[],
                    metavar="NAME:RATIO",
                    help="require committed after/baseline items_per_second "
                         ">= RATIO for benchmark NAME (repeatable)")
    ap.add_argument("--fail-on-nonzero", action="append", default=[],
                    metavar="COUNTER",
                    help="fail when any fresh benchmark reports this counter "
                         "with a value > 0 (repeatable)")
    args = ap.parse_args()

    gates = []
    for spec in args.gate_speedup:
        name, sep, ratio = spec.rpartition(":")
        try:
            gates.append((name, float(ratio)))
        except ValueError:
            sep = ""
        if not sep or not name:
            print(f"check_bench: bad --gate-speedup '{spec}' "
                  f"(expected NAME:RATIO)", file=sys.stderr)
            sys.exit(2)

    fresh = fresh_by_name(load(args.fresh))
    record = load(args.committed)
    column = record.get(args.column)
    if not isinstance(column, dict):
        print(f"check_bench: {args.committed} has no '{args.column}' column",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    width = max((len(n) for n in column), default=10)
    for name, want in sorted(column.items()):
        ips = want.get("items_per_second") if isinstance(want, dict) else None
        if ips is None:
            continue  # time-only entries are informational
        got = fresh.get(name)
        if got is None or "items_per_second" not in got:
            msg = f"{name:<{width}}  missing from fresh run"
            if args.require_all:
                failures.append(msg)
                print(f"FAIL  {msg}")
            else:
                print(f"warn  {msg}")
            continue
        ratio = got["items_per_second"] / ips
        status = "ok  " if ratio >= args.min_ratio else "FAIL"
        print(f"{status}  {name:<{width}}  {got['items_per_second']:>12.3e} "
              f"vs {ips:>10.3e}  ratio {ratio:5.2f}")
        if ratio < args.min_ratio:
            failures.append(f"{name}: ratio {ratio:.2f} < {args.min_ratio}")

    for name, want_ratio in gates:
        base_col = record.get("baseline")
        after_col = record.get("after")
        if not isinstance(base_col, dict) or not isinstance(after_col, dict):
            print(f"check_bench: {args.committed} lacks baseline/after "
                  f"columns needed by --gate-speedup", file=sys.stderr)
            sys.exit(2)
        base = (base_col.get(name) or {}).get("items_per_second")
        after = (after_col.get(name) or {}).get("items_per_second")
        if not base or after is None:
            failures.append(f"{name}: speedup gate has no recorded "
                            f"baseline/after items_per_second")
            print(f"FAIL  {name}: speedup unrecorded")
            continue
        speedup = after / base
        status = "ok  " if speedup >= want_ratio else "FAIL"
        print(f"{status}  {name}  recorded speedup {speedup:.2f}x "
              f"(gate {want_ratio:.2f}x)")
        if speedup < want_ratio:
            failures.append(f"{name}: recorded speedup {speedup:.2f}x "
                            f"< gate {want_ratio:.2f}x")

    for counter in args.fail_on_nonzero:
        for name, run in sorted(fresh.items()):
            value = run.get(counter)
            if isinstance(value, (int, float)) and value > 0:
                failures.append(f"{name}: {counter} = {value:g} (must be 0)")
                print(f"FAIL  {name}  {counter} = {value:g}")

    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s) against "
              f"{args.committed}:{args.column}", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: all benchmarks within tolerance of "
          f"{args.committed}:{args.column} (min ratio {args.min_ratio})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
