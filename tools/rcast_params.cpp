// rcast_params — the parameter-registry tool.
//
// The registry (src/scenario/params.hpp) is the single source of truth for
// every behavior-affecting scenario parameter; this tool exposes it to
// humans and to CI:
//
//   rcast_params                      plain-text listing (same as
//                                     rcast_sim --help-params)
//   rcast_params --markdown           the generated markdown table
//   rcast_params --update=FILE        regenerate the marked block in FILE
//                                     (EXPERIMENTS.md parameter reference)
//   rcast_params --check=FILE        exit 1 if FILE's block is stale — the
//                                     tier-1 stale-docs gate
//   rcast_params --self-check         registry completeness/consistency
//                                     check; exit 1 and list problems
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/params.hpp"
#include "util/flags.hpp"

namespace {

using namespace rcast;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rcast_params: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Replaces the marker-delimited block in `doc` with the freshly generated
/// table (markers included); appends a new section when no markers exist.
std::string with_generated_block(const std::string& doc) {
  const std::string generated = scenario::params_markdown();
  const auto begin = doc.find(scenario::kParamsDocBegin);
  if (begin == std::string::npos) {
    std::string out = doc;
    if (!out.empty() && out.back() != '\n') out += '\n';
    out += "\n## Scenario parameter reference\n\n"
           "Generated from the registry in `src/scenario/params.hpp` by\n"
           "`rcast_params --update=EXPERIMENTS.md`; the tier-1 gate fails if\n"
           "this table is stale. Any of these names is a `--set` key, a\n"
           "campaign manifest override, or a manifest sweep axis.\n\n";
    out += generated + "\n";
    return out;
  }
  const auto end = doc.find(scenario::kParamsDocEnd, begin);
  if (end == std::string::npos) {
    std::fprintf(stderr,
                 "rcast_params: begin marker without end marker in file\n");
    std::exit(1);
  }
  return doc.substr(0, begin) + generated +
         doc.substr(end + scenario::kParamsDocEnd.size());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  if (flags.has("self-check")) {
    const auto problems = scenario::registry_self_check();
    for (const auto& p : problems) {
      std::fprintf(stderr, "registry problem: %s\n", p.c_str());
    }
    if (problems.empty()) {
      std::printf("parameter registry OK (%zu parameters)\n",
                  scenario::param_registry().size());
    }
    return problems.empty() ? 0 : 1;
  }

  if (flags.has("markdown")) {
    std::printf("%s\n", scenario::params_markdown().c_str());
    return 0;
  }

  const std::string update = flags.get_string("update", "");
  if (!update.empty()) {
    const std::string doc = read_file(update);
    const std::string fresh = with_generated_block(doc);
    if (fresh == doc) {
      std::fprintf(stderr, "%s: parameter reference already current\n",
                   update.c_str());
      return 0;
    }
    std::ofstream out(update, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "rcast_params: cannot write %s\n", update.c_str());
      return 1;
    }
    out << fresh;
    std::fprintf(stderr, "%s: parameter reference updated\n", update.c_str());
    return 0;
  }

  const std::string check = flags.get_string("check", "");
  if (!check.empty()) {
    const std::string doc = read_file(check);
    if (with_generated_block(doc) != doc) {
      std::fprintf(stderr,
                   "%s: parameter reference is stale — run\n"
                   "  ./build/tools/rcast_params --update=%s\n",
                   check.c_str(), check.c_str());
      return 1;
    }
    std::printf("%s: parameter reference is current\n", check.c_str());
    return 0;
  }

  for (const auto& unknown : flags.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }
  std::fputs(scenario::params_help().c_str(), stdout);
  return 0;
}
