// rcast_campaignd — campaign-as-a-service daemon.
//
// Where rcast_campaign runs one process over one journal, rcast_campaignd
// supervises a fleet of worker *processes* (one per shard of the manifest
// grid), serves the growing result store over HTTP while the fleet runs,
// and keeps every byte-identity guarantee of the single-process tool: the
// merged export of a sharded run — including one that was kill -9'd and
// resumed — matches `rcast_campaign run && rcast_campaign export` exactly.
//
//   rcast_campaignd run     MANIFEST --out=DIR [--shards=N] [--port=P]
//   rcast_campaignd resume  MANIFEST --out=DIR [same knobs]
//   rcast_campaignd serve   MANIFEST --out=DIR --port=P
//   rcast_campaignd export  MANIFEST --out=DIR [--csv=FILE]
//   rcast_campaignd status  MANIFEST --out=DIR
//   rcast_campaignd reindex MANIFEST --out=DIR
//   rcast_campaignd worker  MANIFEST --out=DIR --shards=N --shard=K  (internal)
//
// Layout under DIR: journal.shard<k>.log, results.shard<k>.jsonl (+ .idx
// sidecar), metrics.shard<k>.json. Workers are resumable idempotent units:
// the supervisor re-execs any worker that dies to a signal and the journal
// resume path absorbs the loss. Endpoints: /status (fleet + journal +
// cache view), /results?digest=<16hex> (point lookup via the index),
// /aggregate?cell=<16hex> (memoized seed-average), /aggregate (full CSV,
// optionally filtered by the grid coordinates the index records carry:
// ?scheme=rcast&routing=dsr&mobility.model=rpgm&traffic.pattern=sensing
// &nodes=60&flows=8&rate_pps=4&pause_s=30&duration_s=900&seed=3),
// /metrics (chunked live counter stream merged across shards).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/json.hpp"
#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "campaign/runner.hpp"
#include "scenario/params.hpp"
#include "scenario/policy_registry.hpp"
#include "scenario/scheme.hpp"
#include "serving/http_server.hpp"
#include "serving/metrics_io.hpp"
#include "serving/result_index.hpp"
#include "serving/result_service.hpp"
#include "serving/shard_supervisor.hpp"
#include "sim/time.hpp"
#include "stats/live_counters.hpp"
#include "util/flags.hpp"

namespace {

using namespace rcast;
namespace fs = std::filesystem;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void print_usage() {
  std::puts(
      "rcast_campaignd — campaign-as-a-service daemon (Rcast reproduction)\n"
      "\n"
      "  rcast_campaignd run     MANIFEST --out=DIR   shard + supervise a "
      "campaign\n"
      "  rcast_campaignd resume  MANIFEST --out=DIR   continue after any "
      "interruption\n"
      "  rcast_campaignd serve   MANIFEST --out=DIR   HTTP serving of an "
      "existing store\n"
      "  rcast_campaignd export  MANIFEST --out=DIR   merged aggregate CSV "
      "(all shards)\n"
      "  rcast_campaignd status  MANIFEST --out=DIR   per-shard journal "
      "progress\n"
      "  rcast_campaignd reindex MANIFEST --out=DIR   rebuild index sidecars "
      "from JSONL\n"
      "\n"
      "  --out=DIR        campaign directory (journal/results/metrics per "
      "shard)\n"
      "  --shards=N       worker processes        (default: 1)\n"
      "  --port=P         serve HTTP on 127.0.0.1:P (0 = ephemeral; run/serve)\n"
      "  --port-file=F    write the bound port to F (useful with --port=0)\n"
      "  --serve-after    keep serving after the fleet finishes (run mode)\n"
      "  --threads=N      sim threads per worker  (default: hardware)\n"
      "  --http-threads=N HTTP connection workers (default: 4)\n"
      "  --timeout-s=S    per-job wall budget     (default: none)\n"
      "  --max-jobs=N     per-worker new-job cutoff (interruption testing)\n"
      "  --max-respawns=N signal deaths tolerated per worker (default: 5)\n"
      "  --csv=FILE       export target           (default: stdout)\n"
      "  --set KEY=VALUE  override any registered scenario parameter "
      "(repeatable)\n"
      "  --quiet          suppress worker progress lines\n"
      "\n"
      "HTTP endpoints: /status, /results?digest=<16hex>,\n"
      "/aggregate?cell=<16hex>, /aggregate (CSV), /metrics[?watch=N].\n"
      "Workers are idempotent resumable units: kill -9 any of them (or the\n"
      "whole daemon) and `resume` — the merged export stays byte-identical.");
}

// ---------------------------------------------------------------- layout --

std::string journal_path(const std::string& out_dir, std::size_t k) {
  return out_dir + "/journal.shard" + std::to_string(k) + ".log";
}
std::string results_path(const std::string& out_dir, std::size_t k) {
  return out_dir + "/results.shard" + std::to_string(k) + ".jsonl";
}
std::string metrics_path(const std::string& out_dir, std::size_t k) {
  return out_dir + "/metrics.shard" + std::to_string(k) + ".json";
}

/// Result files of a campaign directory, in precedence order (later wins):
/// a single-process results.jsonl first if present, then shard files
/// ascending. With `shards` > 0 the shard set is forced to exactly 0..N-1
/// (missing files are created empty so the service can open them).
std::vector<std::string> discover_results(const std::string& out_dir,
                                          std::size_t shards) {
  std::vector<std::string> paths;
  const std::string single = out_dir + "/results.jsonl";
  if (fs::exists(single)) paths.push_back(single);
  if (shards > 0) {
    for (std::size_t k = 0; k < shards; ++k) {
      const std::string p = results_path(out_dir, k);
      if (!fs::exists(p)) std::ofstream(p, std::ios::app);
      paths.push_back(p);
    }
  } else {
    for (std::size_t k = 0;; ++k) {
      const std::string p = results_path(out_dir, k);
      if (!fs::exists(p)) break;
      paths.push_back(p);
    }
  }
  return paths;
}

/// Shard journals present in a campaign directory (shard index, path),
/// including a single-process journal.log as shard 0 when no shard
/// journals exist.
std::vector<std::pair<std::size_t, std::string>> discover_journals(
    const std::string& out_dir) {
  std::vector<std::pair<std::size_t, std::string>> out;
  for (std::size_t k = 0;; ++k) {
    const std::string p = journal_path(out_dir, k);
    if (!fs::exists(p)) break;
    out.emplace_back(k, p);
  }
  if (out.empty() && fs::exists(out_dir + "/journal.log")) {
    out.emplace_back(0, out_dir + "/journal.log");
  }
  return out;
}

// ------------------------------------------------------------ HTTP layer --

struct ServeContext {
  serving::ResultService* svc = nullptr;
  serving::ShardSupervisor* sup = nullptr;  // null in pure serve mode
  std::string out_dir;
  std::string campaign_name;
  std::size_t job_count = 0;
  std::size_t shards = 1;

  std::mutex refresh_mu;
  std::chrono::steady_clock::time_point last_refresh{};

  /// Refresh at most every 200 ms: point queries against a static store
  /// stay cheap, yet a store growing under the daemon is visible promptly.
  void maybe_refresh() {
    std::lock_guard<std::mutex> lock(refresh_mu);
    const auto now = std::chrono::steady_clock::now();
    if (now - last_refresh < std::chrono::milliseconds(200)) return;
    last_refresh = now;
    svc->refresh();
  }

  /// Unthrottled refresh for lookup misses: a record committed microseconds
  /// ago should be queryable on the retry.
  void force_refresh() {
    std::lock_guard<std::mutex> lock(refresh_mu);
    last_refresh = std::chrono::steady_clock::now();
    svc->refresh();
  }

  stats::LiveSnapshot merged_metrics() const {
    stats::LiveSnapshot total;
    for (std::size_t k = 0; k < shards; ++k) {
      if (auto s = serving::read_snapshot_file(metrics_path(out_dir, k))) {
        total += *s;
      }
    }
    return total;
  }
};

serving::HttpResponse error_response(int status, const std::string& message) {
  campaign::json::Writer w;
  w.begin_object().key("error").value(message).end_object();
  serving::HttpResponse resp;
  resp.status = status;
  resp.body = w.take();
  return resp;
}

std::string status_json(ServeContext& ctx) {
  campaign::json::Writer w;
  w.begin_object();
  w.key("campaign").value(ctx.campaign_name);
  w.key("jobs").value(static_cast<std::uint64_t>(ctx.job_count));
  w.key("records").value(static_cast<std::uint64_t>(ctx.svc->record_count()));
  std::size_t done = 0, ok = 0, failed = 0;
  w.key("shards").begin_array();
  for (const auto& [k, path] : discover_journals(ctx.out_dir)) {
    std::size_t sok = 0, sfailed = 0;
    try {
      const campaign::JournalView v = campaign::Journal::load(path);
      for (const auto& [_, e] : v.entries) (e.ok ? sok : sfailed) += 1;
    } catch (const std::exception&) {
      // Worker hasn't written its header yet — report the shard as empty.
    }
    done += sok + sfailed;
    ok += sok;
    failed += sfailed;
    w.begin_object();
    w.key("shard").value(static_cast<std::uint64_t>(k));
    w.key("done").value(static_cast<std::uint64_t>(sok + sfailed));
    w.key("ok").value(static_cast<std::uint64_t>(sok));
    w.key("failed").value(static_cast<std::uint64_t>(sfailed));
    w.end_object();
  }
  w.end_array();
  w.key("done").value(static_cast<std::uint64_t>(done));
  w.key("ok").value(static_cast<std::uint64_t>(ok));
  w.key("failed").value(static_cast<std::uint64_t>(failed));
  if (ctx.sup != nullptr) {
    w.key("workers").begin_array();
    for (const serving::WorkerStatus& ws : ctx.sup->status()) {
      w.begin_object();
      w.key("pid").value(static_cast<std::int64_t>(ws.pid));
      w.key("running").value(ws.running);
      w.key("respawns").value(static_cast<std::int64_t>(ws.respawns));
      w.key("exit_code").value(static_cast<std::int64_t>(ws.exit_code));
      w.key("gave_up").value(ws.gave_up);
      w.end_object();
    }
    w.end_array();
  }
  const serving::CacheStats cs = ctx.svc->cache_stats();
  w.key("cache").begin_object();
  w.key("hits").value(cs.hits);
  w.key("misses").value(cs.misses);
  w.key("invalidations").value(cs.invalidations);
  w.end_object();
  w.end_object();
  return w.take();
}

/// Renders one aggregate row as JSON, mirroring the CSV columns.
std::string aggregate_row_json(const campaign::AggregateRow& row) {
  const auto& m = row.mean;
  campaign::json::Writer w;
  w.begin_object();
  w.key("cell").value(row.cell);
  w.key("scheme").value(scenario::scheme_name(row.scheme));
  w.key("routing").value(scenario::to_string(row.routing));
  w.key("mobility").value(row.mobility);
  w.key("traffic").value(row.traffic);
  w.key("nodes").value(static_cast<std::uint64_t>(row.nodes));
  w.key("flows").value(static_cast<std::uint64_t>(row.flows));
  w.key("rate_pps").value(row.rate_pps);
  w.key("pause_s").value(row.pause_s);
  w.key("duration_s").value(row.duration_s);
  w.key("seeds").value(static_cast<std::uint64_t>(row.seeds));
  w.key("pdr_pct").value(m.pdr_percent);
  w.key("energy_j").value(m.total_energy_j);
  w.key("energy_var").value(m.energy_variance);
  w.key("energy_mean_j").value(m.energy_mean_j);
  w.key("epb_j_per_bit").value(m.energy_per_bit_j);
  w.key("delay_s").value(m.avg_delay_s);
  w.key("norm_overhead").value(m.normalized_overhead);
  w.key("ctrl_tx").value(m.control_tx);
  w.key("hello_tx").value(m.hello_tx);
  w.key("dead_nodes").value(static_cast<std::uint64_t>(m.dead_nodes));
  w.key("first_node_death_s").value(m.first_death_s);
  w.key("partition_time_s").value(m.partition_time_s);
  w.end_object();
  return w.take();
}

/// Parses a ?digest=/-?cell= query value; nullopt on malformed input.
std::optional<std::uint64_t> parse_digest_param(const std::string& hex) {
  try {
    return serving::digest_to_u64(hex);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Builds the /aggregate grid filter from query parameters. Returns the
/// filter, or an error message naming the offending parameter.
std::variant<serving::AggregateFilter, std::string> parse_aggregate_filter(
    const std::map<std::string, std::string>& query) {
  serving::AggregateFilter f;
  for (const auto& [key, value] : query) {
    if (key == "scheme") {
      const auto s = scenario::scheme_from_string(value);
      if (!s) return "unknown scheme: " + value;
      f.scheme = static_cast<std::uint8_t>(*s);
    } else if (key == "routing") {
      const auto r = scenario::routing_from_string(value);
      if (!r) return "unknown routing: " + value;
      f.routing = static_cast<std::uint8_t>(*r);
    } else if (key == "mobility.model") {
      try {
        f.mobility = static_cast<std::uint8_t>(
            scenario::mobility_models().index_of(value));
      } catch (const scenario::RegistryError& e) {
        return std::string(e.what());
      }
    } else if (key == "traffic.pattern") {
      try {
        f.traffic = static_cast<std::uint8_t>(
            scenario::traffic_patterns().index_of(value));
      } catch (const scenario::RegistryError& e) {
        return std::string(e.what());
      }
    } else if (key == "nodes" || key == "flows" || key == "seed") {
      const auto v = Flags::parse_u64(value);
      if (!v) return "malformed " + key + ": " + value;
      if (key == "nodes") f.nodes = static_cast<std::uint32_t>(*v);
      else if (key == "flows") f.flows = static_cast<std::uint32_t>(*v);
      else f.seed = *v;
    } else if (key == "rate_pps" || key == "pause_s" || key == "duration_s") {
      const auto v = Flags::parse_double(value);
      if (!v) return "malformed " + key + ": " + value;
      if (key == "rate_pps") f.rate_pps = *v;
      else if (key == "pause_s") f.pause_s = *v;
      else f.duration_s = *v;
    } else {
      return "unknown aggregate parameter: " + key;
    }
  }
  return f;
}

serving::HttpServer::Handler make_handler(std::shared_ptr<ServeContext> ctx) {
  return [ctx](const serving::HttpRequest& req) -> serving::HttpResponse {
    if (req.path == "/status") {
      ctx->maybe_refresh();
      serving::HttpResponse resp;
      resp.body = status_json(*ctx);
      return resp;
    }

    if (req.path == "/results") {
      const auto it = req.query.find("digest");
      if (it == req.query.end()) {
        return error_response(400, "missing ?digest=<16 hex digits>");
      }
      const auto digest = parse_digest_param(it->second);
      if (!digest) return error_response(400, "malformed digest");
      ctx->maybe_refresh();
      auto line = ctx->svc->result_json(*digest);
      if (!line) {  // maybe committed since the last refresh — retry once
        ctx->force_refresh();
        line = ctx->svc->result_json(*digest);
      }
      if (!line) return error_response(404, "unknown digest");
      serving::HttpResponse resp;
      resp.body = std::move(*line);
      return resp;
    }

    if (req.path == "/aggregate") {
      const auto it = req.query.find("cell");
      ctx->maybe_refresh();
      if (it == req.query.end()) {
        const auto parsed = parse_aggregate_filter(req.query);
        if (const auto* err = std::get_if<std::string>(&parsed)) {
          return error_response(400, *err);
        }
        serving::HttpResponse resp;
        resp.content_type = "text/csv";
        resp.body =
            ctx->svc->aggregate_csv(std::get<serving::AggregateFilter>(parsed));
        return resp;
      }
      if (req.query.size() > 1) {
        return error_response(400, "cell= cannot combine with grid filters");
      }
      const auto cell = parse_digest_param(it->second);
      if (!cell) return error_response(400, "malformed cell digest");
      auto row = ctx->svc->aggregate_cell(*cell);
      if (!row) {
        ctx->force_refresh();
        row = ctx->svc->aggregate_cell(*cell);
      }
      if (!row) return error_response(404, "unknown cell");
      serving::HttpResponse resp;
      resp.body = aggregate_row_json(*row);
      return resp;
    }

    if (req.path == "/metrics") {
      std::uint64_t watch = 1;
      std::uint64_t interval_ms = 1000;
      if (const auto it = req.query.find("watch"); it != req.query.end()) {
        watch = Flags::parse_u64(it->second).value_or(1);
      }
      if (const auto it = req.query.find("interval-ms");
          it != req.query.end()) {
        interval_ms = Flags::parse_u64(it->second).value_or(1000);
      }
      serving::HttpResponse resp;
      resp.content_type = "application/x-ndjson";
      // state: (chunks remaining, is-first-chunk)
      auto state = std::make_shared<std::pair<std::uint64_t, bool>>(
          watch, /*first=*/true);
      resp.next_chunk = [ctx, state, interval_ms](std::string& chunk) {
        if (state->first == 0 || g_stop) return false;
        if (state->second) {
          state->second = false;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
          if (g_stop) return false;
        }
        --state->first;
        chunk = serving::snapshot_to_json(ctx->merged_metrics());
        chunk += '\n';
        return true;
      };
      return resp;
    }

    return error_response(404, "no such endpoint");
  };
}

// ------------------------------------------------------------ subcommands --

int cmd_worker(const campaign::Manifest& manifest,
               const scenario::ScenarioConfig& base,
               const std::string& out_dir, const Flags& flags) {
  const std::size_t shards =
      static_cast<std::size_t>(flags.get_int("shards", 1));
  const std::size_t shard = static_cast<std::size_t>(flags.get_int("shard", 0));

  campaign::RunnerOptions opt;
  opt.journal_path = journal_path(out_dir, shard);
  opt.results_path = results_path(out_dir, shard);
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  opt.job_timeout_s = flags.get_double("timeout-s", 0.0);
  opt.max_jobs = static_cast<std::size_t>(flags.get_int("max-jobs", 0));
  opt.progress = !flags.get_bool("quiet", false);
  opt.shards = shards;
  opt.shard = shard;

  stats::LiveCounters live;
  opt.live = &live;

  // Incremental index maintenance + metrics publication, both hanging off
  // the commit hook. The index opens lazily on the first commit (the runner
  // creates the results file); open() also covers records a previous
  // incarnation of this shard wrote before being killed.
  const std::string metrics = metrics_path(out_dir, shard);
  std::optional<serving::ResultIndex> index;
  opt.on_commit = [&](const campaign::Job& job,
                      const campaign::JobOutcome& outcome,
                      const campaign::AppendExtent* extent) {
    if (extent != nullptr &&
        outcome.status == campaign::JobStatus::kOk) {
      try {
        if (!index) index = serving::ResultIndex::open(opt.results_path);
        if (extent->offset >= index->indexed_bytes()) {
          serving::IndexEntry e;
          e.job = job.index;
          e.offset = extent->offset;
          e.length = extent->length;
          e.cfg_digest = serving::digest_to_u64(job.digest);
          e.cell_digest =
              serving::digest_to_u64(campaign::config_cell_digest(job.cfg));
          e.scheme = static_cast<std::uint8_t>(job.cfg.scheme);
          e.routing = static_cast<std::uint8_t>(job.cfg.routing);
          e.mobility = static_cast<std::uint8_t>(
              scenario::mobility_models().index_of(job.cfg.mobility_model));
          e.traffic = static_cast<std::uint8_t>(
              scenario::traffic_patterns().index_of(job.cfg.traffic_pattern));
          e.nodes = static_cast<std::uint32_t>(job.cfg.num_nodes);
          e.flows = static_cast<std::uint32_t>(job.cfg.num_flows);
          e.rate_pps = job.cfg.rate_pps;
          e.pause_s = sim::to_seconds(job.cfg.pause);
          e.duration_s = sim::to_seconds(job.cfg.duration);
          e.seed = job.cfg.seed;
          index->append(e);
        }
      } catch (const std::exception& ex) {
        // The sidecar is a cache: serving rebuilds it on demand, so index
        // trouble must never fail a committed job.
        std::fprintf(stderr, "shard %zu: index append failed: %s\n", shard,
                     ex.what());
        index.reset();
      }
    }
    serving::write_snapshot_file(metrics, live.snapshot());
  };

  const campaign::CampaignResult r =
      campaign::run_campaign(manifest, opt, base);
  std::fprintf(stderr,
               "shard %zu/%zu: %zu ok, %zu failed, %zu resumed, %zu not run\n",
               shard, shards, r.completed, r.failed, r.skipped, r.remaining);
  return r.failed > 0 ? 1 : 0;
}

/// Serve loop shared by `serve` and `run --serve-after`: blocks until
/// SIGINT/SIGTERM.
void serve_until_signalled() {
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void write_port_file(const Flags& flags, std::uint16_t port) {
  const std::string path = flags.get_string("port-file", "");
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  out << port << '\n';
}

int cmd_run(const campaign::Manifest& manifest,
            const scenario::ScenarioConfig& base,
            const std::string& manifest_path, const std::string& out_dir,
            const Flags& flags, bool resume) {
  const std::size_t shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("shards", 1)));
  const auto jobs = campaign::expand(manifest, base);  // validate early

  if (!resume) {
    for (std::size_t k = 0; k < shards; ++k) {
      if (fs::exists(journal_path(out_dir, k))) {
        std::fprintf(stderr,
                     "%s already has shard journals — use `resume`\n",
                     out_dir.c_str());
        return 2;
      }
    }
  }
  fs::create_directories(out_dir);

  // Worker argvs: this binary re-execs itself as `worker` per shard.
  std::vector<std::vector<std::string>> argvs;
  for (std::size_t k = 0; k < shards; ++k) {
    std::vector<std::string> argv = {
        "/proc/self/exe",
        "worker",
        manifest_path,
        "--out=" + out_dir,
        "--shards=" + std::to_string(shards),
        "--shard=" + std::to_string(k),
    };
    if (flags.has("threads")) {
      argv.push_back("--threads=" +
                     std::to_string(flags.get_int("threads", 0)));
    }
    if (flags.has("timeout-s")) {
      argv.push_back("--timeout-s=" +
                     std::to_string(flags.get_double("timeout-s", 0.0)));
    }
    if (flags.has("max-jobs")) {
      argv.push_back("--max-jobs=" +
                     std::to_string(flags.get_int("max-jobs", 0)));
    }
    if (flags.get_bool("quiet", false)) argv.push_back("--quiet");
    for (const std::string& kv : flags.get_all("set")) {
      argv.push_back("--set=" + kv);
    }
    argvs.push_back(std::move(argv));
  }

  serving::ShardSupervisor sup(
      static_cast<int>(flags.get_int("max-respawns", 5)));
  sup.start(argvs);

  // Optional serving layer over the store the fleet is writing.
  std::unique_ptr<serving::ResultService> svc;
  std::unique_ptr<serving::HttpServer> server;
  std::shared_ptr<ServeContext> ctx;
  if (flags.has("port")) {
    svc = std::make_unique<serving::ResultService>(
        discover_results(out_dir, shards));
    ctx = std::make_shared<ServeContext>();
    ctx->svc = svc.get();
    ctx->sup = &sup;
    ctx->out_dir = out_dir;
    ctx->campaign_name = manifest.name;
    ctx->job_count = jobs.size();
    ctx->shards = shards;
    server = std::make_unique<serving::HttpServer>(
        static_cast<std::uint16_t>(flags.get_int("port", 0)),
        make_handler(ctx),
        static_cast<std::size_t>(flags.get_int("http-threads", 4)));
    std::fprintf(stderr, "serving on 127.0.0.1:%u\n", server->port());
    write_port_file(flags, server->port());
  }

  const bool all_ok = sup.wait_all();

  std::size_t done = 0, ok = 0, failed = 0;
  for (const auto& [k, path] : discover_journals(out_dir)) {
    (void)k;
    try {
      const campaign::JournalView v = campaign::Journal::load(path);
      for (const auto& [_, e] : v.entries) (e.ok ? ok : failed) += 1;
    } catch (const std::exception&) {
    }
  }
  done = ok + failed;
  std::fprintf(stderr,
               "campaign '%s': %zu/%zu jobs done (%zu ok, %zu failed) across "
               "%zu shard%s\n",
               manifest.name.c_str(), done, jobs.size(), ok, failed, shards,
               shards == 1 ? "" : "s");

  if (server && flags.get_bool("serve-after", false)) {
    std::fprintf(stderr, "fleet done — still serving (Ctrl-C to stop)\n");
    serve_until_signalled();
  }
  if (server) server->stop();
  return all_ok && failed == 0 ? 0 : 1;
}

int cmd_serve(const campaign::Manifest& manifest,
              const scenario::ScenarioConfig& base, const std::string& out_dir,
              const Flags& flags) {
  const auto jobs = campaign::expand(manifest, base);
  const std::size_t shards =
      static_cast<std::size_t>(flags.get_int("shards", 0));
  const auto paths = discover_results(out_dir, shards);
  if (paths.empty()) {
    std::fprintf(stderr, "no result files under %s\n", out_dir.c_str());
    return 2;
  }

  serving::ResultService svc(paths);
  auto ctx = std::make_shared<ServeContext>();
  ctx->svc = &svc;
  ctx->out_dir = out_dir;
  ctx->campaign_name = manifest.name;
  ctx->job_count = jobs.size();
  ctx->shards = shards > 0 ? shards : paths.size();

  serving::HttpServer server(
      static_cast<std::uint16_t>(flags.get_int("port", 0)), make_handler(ctx),
      static_cast<std::size_t>(flags.get_int("http-threads", 4)));
  std::fprintf(stderr, "serving %zu records on 127.0.0.1:%u\n",
               svc.record_count(), server.port());
  write_port_file(flags, server.port());
  serve_until_signalled();
  server.stop();
  return 0;
}

int cmd_export(const std::string& out_dir, const Flags& flags) {
  const auto paths = discover_results(
      out_dir, static_cast<std::size_t>(flags.get_int("shards", 0)));
  if (paths.empty()) {
    std::fprintf(stderr, "no result files under %s\n", out_dir.c_str());
    return 2;
  }
  const std::string csv = campaign::export_aggregate_csv(paths);

  const std::string csv_path = flags.get_string("csv", "");
  if (csv_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream out(csv_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    out << csv;
    std::fprintf(stderr, "exported %zu file(s) -> %s\n", paths.size(),
                 csv_path.c_str());
  }
  return 0;
}

int cmd_status(const campaign::Manifest& manifest,
               const scenario::ScenarioConfig& base,
               const std::string& out_dir) {
  const auto jobs = campaign::expand(manifest, base);
  const auto journals = discover_journals(out_dir);
  std::size_t ok = 0, failed = 0;
  std::printf("campaign '%s': %zu jobs, %zu shard journal(s)\n",
              manifest.name.c_str(), jobs.size(), journals.size());
  for (const auto& [k, path] : journals) {
    std::size_t sok = 0, sfailed = 0;
    try {
      const campaign::JournalView v = campaign::Journal::load(path);
      for (const auto& [idx, e] : v.entries) {
        (e.ok ? sok : sfailed) += 1;
        if (!e.ok && idx < jobs.size()) {
          std::printf("  FAILED %s: %s\n", jobs[idx].id.c_str(),
                      e.error.c_str());
        }
      }
    } catch (const std::exception& e) {
      std::printf("  shard %zu: %s\n", k, e.what());
      continue;
    }
    ok += sok;
    failed += sfailed;
    std::printf("  shard %zu: %zu done (%zu ok, %zu failed)\n", k,
                sok + sfailed, sok, sfailed);
  }
  std::printf("total: %zu/%zu done (%zu ok, %zu failed)\n", ok + failed,
              jobs.size(), ok, failed);
  return 0;
}

int cmd_reindex(const std::string& out_dir, const Flags& flags) {
  const auto paths = discover_results(
      out_dir, static_cast<std::size_t>(flags.get_int("shards", 0)));
  if (paths.empty()) {
    std::fprintf(stderr, "no result files under %s\n", out_dir.c_str());
    return 2;
  }
  for (const std::string& p : paths) {
    const serving::ResultIndex idx = serving::ResultIndex::rebuild(p);
    std::printf("%s: %zu records indexed\n",
                serving::ResultIndex::sidecar_path(p).c_str(),
                idx.entries().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help-params")) {
    std::fputs(scenario::params_help().c_str(), stdout);
    return 0;
  }
  if (flags.has("help") || flags.positional().size() < 2) {
    print_usage();
    return flags.has("help") ? 0 : 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const std::string cmd = flags.positional()[0];
  const std::string manifest_path = flags.positional()[1];
  const std::string out_dir = flags.get_string("out", "");
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out=DIR is required\n");
    return 2;
  }

  scenario::ScenarioConfig base;
  for (const std::string& kv : flags.get_all("set")) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--set expects KEY=VALUE, got '%s'\n", kv.c_str());
      return 2;
    }
    const std::string key = kv.substr(0, eq);
    for (const char* owned :
         {"scheme", "routing", "power.scheme", "routing.protocol", "rate_pps",
          "pause_s", "nodes", "seed"}) {
      if (key == owned) {
        std::fprintf(stderr,
                     "--set %s: grid axes come from the manifest, not --set\n",
                     key.c_str());
        return 2;
      }
    }
    try {
      scenario::set_param(base, key, kv.substr(eq + 1));
    } catch (const scenario::ParamError& e) {
      std::fprintf(stderr, "--set %s: %s\n", kv.c_str(), e.what());
      return 2;
    }
  }

  try {
    const campaign::Manifest manifest =
        campaign::parse_manifest_file(manifest_path);
    if (cmd == "run") {
      return cmd_run(manifest, base, manifest_path, out_dir, flags, false);
    }
    if (cmd == "resume") {
      return cmd_run(manifest, base, manifest_path, out_dir, flags, true);
    }
    if (cmd == "worker") return cmd_worker(manifest, base, out_dir, flags);
    if (cmd == "serve") return cmd_serve(manifest, base, out_dir, flags);
    if (cmd == "export") return cmd_export(out_dir, flags);
    if (cmd == "status") return cmd_status(manifest, base, out_dir);
    if (cmd == "reindex") return cmd_reindex(out_dir, flags);
    std::fprintf(stderr, "unknown subcommand '%s' (see --help)\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcast_campaignd: %s\n", e.what());
    return 1;
  }
}
