// Per-packet-class overhearing levels (paper §3.3).
//
// The sender chooses the ATIM subtype per packet class. Rcast's mapping:
// RREP → randomized (DSR emits many RREPs; unconditional would be wasteful),
// DATA → randomized (temporal locality lets a neighbor catch a later packet),
// RERR → unconditional (stale routes must be purged from all caches fast),
// RREQ (broadcast) → standard announce (everyone receives), with an optional
// randomized-receiving extension (paper §5 future work).
#pragma once

#include "mac/mac_types.hpp"

namespace rcast::core {

struct OverhearingMap {
  mac::OverhearingMode rrep = mac::OverhearingMode::kRandomized;
  mac::OverhearingMode data = mac::OverhearingMode::kRandomized;
  mac::OverhearingMode rerr = mac::OverhearingMode::kUnconditional;
  mac::OverhearingMode rreq_bcast = mac::OverhearingMode::kNone;

  /// Rcast as evaluated in the paper.
  static constexpr OverhearingMap rcast() { return OverhearingMap{}; }

  /// Unmodified PSM, no overhearing at all: the "naive solution" of §1.
  static constexpr OverhearingMap psm_none() {
    return {mac::OverhearingMode::kNone, mac::OverhearingMode::kNone,
            mac::OverhearingMode::kNone, mac::OverhearingMode::kNone};
  }

  /// PSM with unconditional overhearing: DSR semantics preserved, energy
  /// savings forfeited (the "original IEEE PSM" comparison in the abstract).
  static constexpr OverhearingMap psm_all() {
    return {mac::OverhearingMode::kUnconditional,
            mac::OverhearingMode::kUnconditional,
            mac::OverhearingMode::kUnconditional,
            mac::OverhearingMode::kNone};
  }

  /// Rcast including the broadcast extension (randomized RREQ receiving).
  static constexpr OverhearingMap rcast_with_broadcast() {
    OverhearingMap m{};
    m.rreq_bcast = mac::OverhearingMode::kRandomized;
    return m;
  }
};

}  // namespace rcast::core
