#include "core/rcast.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcast::core {

RcastPolicy::RcastPolicy(const RcastConfig& config, Rng rng,
                         energy::EnergyMeter* meter)
    : cfg_(config), rng_(rng), meter_(meter), table_(config.neighbor_ttl) {
  RCAST_REQUIRE(cfg_.min_pr >= 0.0 && cfg_.min_pr <= 1.0);
  RCAST_REQUIRE(cfg_.max_pr >= cfg_.min_pr && cfg_.max_pr <= 1.0);
}

void RcastPolicy::on_frame_decoded(const mac::MacFrame& frame,
                                   sim::Time now) {
  table_.heard(frame.src, now);
  now_hint_ = now;
  // Note: the per-sender skip counter resets only when we actually commit to
  // overhearing (in should_overhear) — decoding the sender's ATIM does not
  // count as having overheard its data.
  // Rebase the churn window every 10 s so the mobility estimate tracks the
  // recent past instead of the lifetime average.
  if (now - churn_window_start_ > 10 * sim::kSecond) {
    churn_window_start_ = now;
    churn_window_base_ = table_.appearances();
  }
}

std::size_t RcastPolicy::neighbor_count(sim::Time now) const {
  if (cfg_.neighbor_count_fn) return cfg_.neighbor_count_fn();
  return table_.count(now);
}

double RcastPolicy::base_pr(sim::Time now) const {
  const std::size_t n = neighbor_count(now);
  return n == 0 ? 1.0 : 1.0 / static_cast<double>(n);
}

double RcastPolicy::current_pr(mac::NodeId sender, sim::Time now) {
  double p = base_pr(now);
  switch (cfg_.estimator) {
    case PrEstimator::kNeighborCount:
      break;

    case PrEstimator::kSenderRecency: {
      // Overhear for sure when the sender is new traffic (not heard for a
      // while) or when we have skipped too many of its packets; otherwise
      // 1/N keeps the budget bounded. (Paper §3.2, "Sender ID".)
      const sim::Time last = table_.last_heard(sender);
      const bool unheard = last == 0 || now - last > cfg_.sender_recency_window;
      const auto it = skips_.find(sender);
      const bool skipped_long = it != skips_.end() && it->second >= cfg_.max_skips;
      if (unheard || skipped_long) p = 1.0;
      break;
    }

    case PrEstimator::kMobility: {
      // High link churn ⇒ overheard routes stale quickly ⇒ overhear less
      // (paper §3.2, "Mobility": "overhear more conservatively").
      const double window_s =
          std::max(1.0, sim::to_seconds(now - churn_window_start_));
      const double churn_per_s =
          static_cast<double>(table_.appearances() - churn_window_base_) /
          window_s;
      p = p / (1.0 + cfg_.churn_factor * churn_per_s);
      break;
    }

    case PrEstimator::kBattery: {
      // Less overhearing as the battery drains (paper §3.2, "Remaining
      // battery energy").
      const double frac =
          meter_ != nullptr ? meter_->battery_fraction(now) : 1.0;
      p = p * frac;
      break;
    }

    case PrEstimator::kCombined: {
      const sim::Time last = table_.last_heard(sender);
      const bool unheard = last == 0 || now - last > cfg_.sender_recency_window;
      const auto it = skips_.find(sender);
      const bool skipped_long = it != skips_.end() && it->second >= cfg_.max_skips;
      if (unheard || skipped_long) {
        p = 1.0;
        break;
      }
      const double window_s =
          std::max(1.0, sim::to_seconds(now - churn_window_start_));
      const double churn_per_s =
          static_cast<double>(table_.appearances() - churn_window_base_) /
          window_s;
      const double frac =
          meter_ != nullptr ? meter_->battery_fraction(now) : 1.0;
      p = p * frac / (1.0 + cfg_.churn_factor * churn_per_s);
      break;
    }
  }
  return std::clamp(p, cfg_.min_pr, cfg_.max_pr);
}

bool RcastPolicy::should_overhear(mac::NodeId sender, mac::OverhearingMode m,
                                  sim::Time now) {
  if (m == mac::OverhearingMode::kNone) return false;
  if (m == mac::OverhearingMode::kUnconditional) return true;
  ++stats_.decisions;
  const double p = current_pr(sender, now);
  const bool commit = rng_.bernoulli(p);
  if (commit) {
    ++stats_.commits;
    skips_[sender] = 0;
  } else {
    ++skips_[sender];
  }
  return commit;
}

bool RcastPolicy::should_receive_broadcast(mac::NodeId, sim::Time now) {
  ++stats_.bcast_decisions;
  const std::size_t n = neighbor_count(now);
  const double p =
      n == 0 ? 1.0
             : std::clamp(cfg_.bcast_scale / static_cast<double>(n),
                          cfg_.bcast_floor, 1.0);
  const bool commit = rng_.bernoulli(p);
  if (commit) ++stats_.bcast_commits;
  return commit;
}

}  // namespace rcast::core
