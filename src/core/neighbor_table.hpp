// Passive neighbor table.
//
// Every cleanly decoded frame refreshes the transmitter's entry; entries
// older than the TTL no longer count. This gives each node a local,
// zero-overhead estimate of its neighbor count (the denominator of the
// paper's P_R = 1 / number-of-neighbors) plus a link-churn signal used by
// the mobility-based overhearing estimator.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "phy/frame.hpp"
#include "sim/time.hpp"

namespace rcast::core {

class NeighborTable {
 public:
  explicit NeighborTable(sim::Time ttl = 5 * sim::kSecond) : ttl_(ttl) {}

  /// Records that a frame from `neighbor` was decoded at `now`.
  void heard(phy::NodeId neighbor, sim::Time now) {
    auto [it, inserted] = entries_.try_emplace(neighbor, now);
    if (inserted) {
      ++appearances_;
    } else {
      if (now - it->second > ttl_) ++appearances_;  // expired, re-appeared
      it->second = now;
    }
  }

  /// Number of neighbors heard within the TTL.
  std::size_t count(sim::Time now) const {
    std::size_t n = 0;
    for (const auto& [id, t] : entries_) {
      if (now - t <= ttl_) ++n;
    }
    return n;
  }

  bool knows(phy::NodeId neighbor, sim::Time now) const {
    const auto it = entries_.find(neighbor);
    return it != entries_.end() && now - it->second <= ttl_;
  }

  /// Time a specific neighbor was last heard; 0 if never.
  sim::Time last_heard(phy::NodeId neighbor) const {
    const auto it = entries_.find(neighbor);
    return it == entries_.end() ? 0 : it->second;
  }

  /// Connectivity-change events observed (new or re-appearing neighbors);
  /// the rate of change is the node's self-estimate of mobility (paper
  /// §3.2, "Mobility").
  std::uint64_t appearances() const { return appearances_; }

  /// Drops entries older than the TTL (bounds memory on long runs).
  void expire(sim::Time now) {
    std::erase_if(entries_,
                  [&](const auto& kv) { return now - kv.second > ttl_; });
  }

  std::size_t raw_size() const { return entries_.size(); }

 private:
  sim::Time ttl_;
  std::unordered_map<phy::NodeId, sim::Time> entries_;
  std::uint64_t appearances_ = 0;
};

}  // namespace rcast::core
