// RandomCast (Rcast) power-management policy — the paper's contribution.
//
// Nodes consistently operate in PS mode. When a unicast ATIM advertising
// randomized overhearing is heard, the node stays awake for the data phase
// with probability P_R. The paper evaluates P_R = 1 / number-of-neighbors
// and lists three further decision factors as future work (sender ID,
// mobility, remaining battery energy); all four are implemented here and
// compared in bench_ablation_pr.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/neighbor_table.hpp"
#include "energy/energy_model.hpp"
#include "mac/mac_types.hpp"
#include "util/rng.hpp"

namespace rcast::core {

/// Which estimator drives the overhearing probability (paper §3.2 factors).
enum class PrEstimator {
  kNeighborCount,  // P_R = 1/N                      (the paper's evaluation)
  kSenderRecency,  // overhear senders not heard recently / skipped too long
  kMobility,       // scale 1/N down as link churn rises
  kBattery,        // scale 1/N by remaining battery fraction
  kCombined,       // all of the above multiplied
};

constexpr const char* to_string(PrEstimator e) {
  switch (e) {
    case PrEstimator::kNeighborCount:
      return "neighbors";
    case PrEstimator::kSenderRecency:
      return "sender-id";
    case PrEstimator::kMobility:
      return "mobility";
    case PrEstimator::kBattery:
      return "battery";
    case PrEstimator::kCombined:
      return "combined";
  }
  return "?";
}

struct RcastConfig {
  PrEstimator estimator = PrEstimator::kNeighborCount;
  /// Clamp on P_R so a node never fully deafens itself.
  double min_pr = 0.0;
  double max_pr = 1.0;
  /// Neighbor-count source: when set, overrides the passive table (used to
  /// match the paper's P_R = 1/N with the true topology denominator).
  std::function<std::size_t()> neighbor_count_fn;
  sim::Time neighbor_ttl = 5 * sim::kSecond;

  // kSenderRecency knobs: always overhear a sender not heard for `window`
  // or skipped `max_skips` consecutive times; otherwise fall back to 1/N.
  sim::Time sender_recency_window = 2 * sim::kSecond;
  int max_skips = 8;

  // kMobility knob: P_R = (1/N) / (1 + churn_factor * appearances_per_sec).
  double churn_factor = 2.0;

  // Broadcast-Rcast extension: receive probability max(bcast_floor, c/N),
  // conservative so floods still propagate (paper §3.3).
  double bcast_floor = 0.5;
  double bcast_scale = 3.0;
};

struct RcastPolicyStats {
  std::uint64_t decisions = 0;
  std::uint64_t commits = 0;
  std::uint64_t bcast_decisions = 0;
  std::uint64_t bcast_commits = 0;
};

class RcastPolicy final : public mac::PowerPolicy {
 public:
  /// `meter` is optional and only used by the battery estimator.
  RcastPolicy(const RcastConfig& config, Rng rng,
              energy::EnergyMeter* meter = nullptr);

  bool always_awake() const override { return false; }
  bool ps_mode_now(sim::Time) override { return true; }

  bool should_overhear(mac::NodeId sender, mac::OverhearingMode m,
                       sim::Time now) override;
  bool should_receive_broadcast(mac::NodeId sender, sim::Time now) override;
  void on_frame_decoded(const mac::MacFrame& frame, sim::Time now) override;

  /// The probability the next randomized decision would use (for tests and
  /// the ablation bench).
  double current_pr(mac::NodeId sender, sim::Time now);

  const NeighborTable& neighbors() const { return table_; }
  const RcastPolicyStats& stats() const { return stats_; }

 private:
  std::size_t neighbor_count(sim::Time now) const;
  double base_pr(sim::Time now) const;

  RcastConfig cfg_;
  Rng rng_;
  energy::EnergyMeter* meter_;
  NeighborTable table_;
  RcastPolicyStats stats_;
  /// Consecutive skipped decisions per sender (kSenderRecency).
  std::unordered_map<mac::NodeId, int> skips_;
  sim::Time now_hint_ = 0;  // latest time seen via on_frame_decoded
  sim::Time churn_window_start_ = 0;
  std::uint64_t churn_window_base_ = 0;
};

}  // namespace rcast::core
