#include "sim/sharded_executor.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>

#include "sim/simulator.hpp"
#include "util/alloc_tracker.hpp"

namespace rcast::sim {

ShardedExecutor::ShardedExecutor(Simulator& sim, std::size_t shards,
                                 Time horizon)
    : sim_(sim), horizon_(horizon) {
  RCAST_REQUIRE(shards >= 2);
  RCAST_REQUIRE(shards <= kMaxShards);
  RCAST_REQUIRE(horizon > 0);
  shards_.resize(shards);
  for (Shard& s : shards_) s.outbox.resize(shards);
}

std::uint64_t ShardedExecutor::executed_events() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.executed;
  return n;
}

std::size_t ShardedExecutor::pending_events() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.queue.size();
  return n;
}

bool ShardedExecutor::queues_empty() const {
  for (const Shard& s : shards_) {
    if (!s.queue.empty()) return false;
  }
  return true;
}

Time ShardedExecutor::next_event_time() const {
  Time t = std::numeric_limits<Time>::max();
  for (const Shard& s : shards_) {
    if (!s.queue.empty()) t = std::min(t, s.queue.next_time());
  }
  return t;
}

std::uint64_t ShardedExecutor::worker_alloc_bytes() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.alloc_bytes;
  return n;
}

void ShardedExecutor::fill_perf(PerfCounters& p) const {
  for (const Shard& s : shards_) {
    p.events_scheduled += s.queue.scheduled_count();
    p.handler_heap_fallbacks += s.queue.handler_heap_fallbacks();
    p.queue_depth_high_water =
        std::max(p.queue_depth_high_water, s.queue.depth_high_water());
    p.queue_rung_spawns += s.queue.rung_spawns();
    p.dispatch_batches += s.queue.dispatch_batches();
    p.handler_moves += s.queue.handler_moves();
    p.inplace_fires += s.queue.inplace_fires();
    const auto hist = s.queue.batch_size_hist();
    for (std::size_t i = 0; i < hist.size(); ++i) p.batch_size_hist[i] += hist[i];
  }
}

void ShardedExecutor::check_wall_deadline() {
  if (!deadline_armed_ ||
      std::chrono::steady_clock::now() < wall_deadline_) {
    return;
  }
  std::ostringstream os;
  os << "wall-clock deadline exceeded after " << executed_events()
     << " events (sim time " << to_seconds(window_end_) << " s, sharded)";
  throw WallDeadlineExceeded(os.str());
}

void ShardedExecutor::on_barrier() {
  ++windows_;
  try {
    // Deliver cross-shard mail in fixed (dst, src, append) order so the
    // destination queues assign identical sequence numbers every run. Times
    // are clamped to the window that just closed: a shard may already have
    // executed up to (but not including) window_end_.
    const Time clamp = window_end_;
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      EventQueue& q = shards_[dst].queue;
      for (std::size_t src = 0; src < shards_.size(); ++src) {
        auto& box = shards_[src].outbox[dst];
        for (Outgoing& o : box) {
          q.push(std::max(o.t, clamp), std::move(o.h));
        }
        box.clear();
      }
    }
    if (error_ != nullptr) {
      stop_ = true;
      return;
    }
    check_wall_deadline();

    const Time t_min = next_event_time();
    if (t_min == std::numeric_limits<Time>::max() || t_min > end_) {
      stop_ = true;
      return;
    }
    // W = min(T + horizon, end + 1, hook bounds), but always > T. end + 1
    // (not end) so events scheduled exactly at `end` run, matching
    // Simulator::run_until.
    Time w = t_min + horizon_;
    if (w <= t_min) w = end_ + 1;  // horizon overflow: one open window
    w = std::min(w, end_ + 1);
    for (const WindowHook& hook : hooks_) {
      w = std::min(w, hook(t_min, w));
    }
    w = std::max(w, t_min + 1);
    for (Shard& s : shards_) s.now = std::max(s.now, t_min);
    window_end_ = w;
  } catch (...) {
    if (error_ == nullptr) error_ = std::current_exception();
    stop_ = true;
  }
}

void ShardedExecutor::barrier_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = generation_;
  if (++arrived_ == shards_.size()) {
    arrived_ = 0;
    ++generation_;
    on_barrier();
    cv_.notify_all();
  } else {
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

void ShardedExecutor::worker(std::size_t k) {
  sim_.set_shard_context(k);
  util::AllocTracker::reset();
  util::AllocTracker::enable();
  Shard& s = shards_[k];
  while (!stop_) {
    try {
      EventQueue& q = s.queue;
      while (!q.empty()) {
        const Time t = q.next_time();
        if (t >= window_end_) break;
        s.now = t;  // before dispatch: batch handlers read now()
        q.pop_batch([&](Handler& h) {
          ++s.executed;
          if (deadline_armed_ &&
              (s.executed % Simulator::kDeadlineCheckInterval) == 0 &&
              std::chrono::steady_clock::now() >= wall_deadline_) {
            // Shard-local message: summing the other shards' live counters
            // here would race them.
            std::ostringstream os;
            os << "wall-clock deadline exceeded in shard " << k << " after "
               << s.executed << " shard events (sim time "
               << to_seconds(s.now) << " s)";
            throw WallDeadlineExceeded(os.str());
          }
          h();
        });
      }
    } catch (...) {
      // Record and keep going to the barrier: every worker must arrive or
      // the fleet deadlocks. The barrier sees error_ and stops everyone.
      std::lock_guard<std::mutex> lk(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    barrier_wait();
  }
  util::AllocTracker::disable();
  s.alloc_bytes += util::AllocTracker::bytes();
  sim_.clear_shard_context();
}

void ShardedExecutor::run_until(
    Time end, bool deadline_armed,
    std::chrono::steady_clock::time_point wall_deadline) {
  end_ = end;
  deadline_armed_ = deadline_armed;
  wall_deadline_ = wall_deadline;
  error_ = nullptr;
  stop_ = false;
  window_end_ = 0;
  // Compute the first window serially (no workers are running yet); the
  // outboxes are empty, so this only picks T and W.
  on_barrier();
  if (!stop_) {
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      threads.emplace_back([this, k] { worker(k); });
    }
    for (std::thread& t : threads) t.join();
  }
  // Match run_until semantics: the clock lands on `end` even if the queues
  // drained early (pending events past `end` stay queued).
  for (Shard& s : shards_) s.now = std::max(s.now, end);
  if (error_ != nullptr) std::rethrow_exception(error_);
}

}  // namespace rcast::sim
