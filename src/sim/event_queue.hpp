// Cancellable priority queue of timestamped events.
//
// Ties at the same timestamp fire in scheduling order (FIFO), which keeps
// protocol traces deterministic and intuitive. Cancellation is O(1) via
// tombstoning: the heap entry stays, the handler is dropped, and the entry is
// skipped at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rcast::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Default-constructed handles are null.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }
  bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `h` at absolute time `t` (must not be in the past relative to
  /// the last popped event).
  EventId push(Time t, Handler h) {
    RCAST_REQUIRE_MSG(t >= last_popped_, "scheduling into the past");
    const std::uint64_t seq = ++next_seq_;
    heap_.push(Entry{t, seq});
    handlers_.emplace(seq, std::move(h));
    return EventId(seq);
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// Returns true if an event was actually cancelled.
  bool cancel(EventId id) { return handlers_.erase(id.seq_) > 0; }

  bool empty() const { return handlers_.empty(); }
  std::size_t size() const { return handlers_.size(); }

  /// Earliest pending event time. Requires !empty().
  Time next_time() {
    skip_tombstones();
    RCAST_REQUIRE(!heap_.empty());
    return heap_.top().time;
  }

  /// Pops and returns the earliest event. Requires !empty().
  std::pair<Time, Handler> pop() {
    skip_tombstones();
    RCAST_REQUIRE(!heap_.empty());
    const Entry e = heap_.top();
    heap_.pop();
    auto it = handlers_.find(e.seq);
    RCAST_DCHECK(it != handlers_.end());
    Handler h = std::move(it->second);
    handlers_.erase(it);
    last_popped_ = e.time;
    return {e.time, std::move(h)};
  }

  /// Total events ever scheduled (monotone; for bench instrumentation).
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Min-heap by (time, seq): std::priority_queue is a max-heap so invert.
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void skip_tombstones() {
    while (!heap_.empty() && !handlers_.count(heap_.top().seq)) heap_.pop();
  }

  std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  std::uint64_t next_seq_ = 0;
  Time last_popped_ = 0;
};

}  // namespace rcast::sim
