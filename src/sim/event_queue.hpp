// Cancellable priority queue of timestamped events.
//
// Ties at the same timestamp fire in scheduling order (FIFO), which keeps
// protocol traces deterministic and intuitive.
//
// Layout: a ladder queue (Tang/Goh/Thng) over the ns integer clock instead
// of a binary heap — push and pop are O(1) amortized, independent of queue
// depth, because events are spread across time buckets and only the bucket
// about to fire is ever sorted. Three tiers, nearest first:
//
//   bottom  a sorted vector of (time, seq, slot) entries — the contents of
//           the one bucket currently being drained. Pops advance a cursor;
//           pushes landing inside its window insert in order (rare: only
//           handlers scheduling into the immediate present do this).
//   rungs   a stack of bucket arrays, coarsest first. Each rung covers a
//           contiguous half-open time window with power-of-two bucket
//           widths (bucket index = (t - base) >> shift, no division). When
//           the bottom drains, the next non-empty bucket of the finest rung
//           refills it; an overfull bucket is subdivided into a finer rung
//           (width / kRungBuckets) instead of being sorted, so sort cost
//           stays bounded by kSpawnThreshold regardless of burst size.
//   top     an unsorted overflow vector for the far future (route-cache
//           expiry, lifetime timers). Pushes beyond the ladder horizon are
//           a plain append. When the ladder drains, the top is swept into a
//           fresh coarsest rung sized to its [min, max] span.
//
// The tiers partition time: [last_popped, bottom_limit) is the bottom,
// contiguous rung windows cover [bottom_limit, top_start), and the top owns
// [top_start, inf). Every entry routes by two or three comparisons.
//
// Determinism: entries are sorted by (time, seq) — a total order, since seq
// is unique — whenever a bucket becomes the bottom, so the pop sequence is
// identical to the old binary heap's regardless of which tier an event
// passed through. tests/test_event_queue_differential.cpp pins this against
// the retained reference heap over millions of randomized operations.
//
// Handlers are small-buffer-optimized callables (`kEventInlineCapacity`
// bytes inline, heap fallback only for oversized captures — counted, so
// the hot paths can prove they never take it) held in a generation-checked
// slot map; tier entries reference slots by index, so the slim entries
// move through buckets without touching handler storage until fire time.
// Cancellation is O(1): the slot is released and its generation bumped; the
// tier entry stays behind and is skipped (bottom) or dropped (bucket
// transfer, top sweep) once its generation no longer matches. A global
// compaction sweeps all tiers when dead entries outnumber live ones 4:1.
//
// In-place dispatch: a handler is constructed directly in its slot (push
// sites pass the raw lambda; Handler&& pushes pay one move, counted as
// handler_moves) and invoked directly from slot storage at fire time —
// never moved out first. That is safe against reentrancy because slots
// live in fixed-size chunks that never relocate: a mid-fire push may add
// a chunk but cannot move the storage the executing closure lives in. The
// firing slot's generation is bumped *before* the call (stale EventIds to
// it are inert, exactly as with the old move-out path) but its free-list
// insertion and handler destruction are deferred to after the call, so a
// mid-fire push can never recycle the buffer it is executing from.
//
// Zero steady-state allocation: buckets are intrusive singly-linked lists
// through one recycled node pool (a bucket is {head, tail, count}), so
// bucket transfer, rung subdivision and compaction are pure index relinks.
// The only vectors that grow are the node pool, the slot map, the bottom
// and the top — each a single monotone-capacity vector that reaches its
// high-water mark and stays there. Slots and nodes recycle through free
// lists and retired rungs through a rung pool; once warm, push/cancel/pop
// never touch the heap (ChannelAlloc.SteadyStateTransmitIsHeapFree pins
// this through the whole PHY stack).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/inline_function.hpp"

namespace rcast::sim {

/// Inline storage of an event handler; captures beyond this spill to the
/// heap. Sized for the largest hot-path capture (the channel's arrival
/// lambdas: a shared_ptr plus four scalars).
inline constexpr std::size_t kEventInlineCapacity = 64;

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Default-constructed handles are null. Handles are
/// generation-checked: a handle to a fired/cancelled event whose slot was
/// recycled stays safely inert.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return raw_ != 0; }
  bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  EventId(std::uint32_t slot, std::uint32_t gen)
      : raw_((static_cast<std::uint64_t>(gen) << 32) |
             (static_cast<std::uint64_t>(slot) + 1)) {}
  std::uint32_t slot() const {
    return static_cast<std::uint32_t>(raw_ & 0xFFFFFFFFu) - 1;
  }
  std::uint32_t gen() const { return static_cast<std::uint32_t>(raw_ >> 32); }
  std::uint64_t raw_ = 0;
};

class EventQueue {
 public:
  using Handler = util::InlineFunction<kEventInlineCapacity>;

  /// Memoized routing decision for a burst of pushes into nearby times (the
  /// channel fan-out scheduling one arrival pair per sensed receiver, a
  /// MAC's every-interval beacon). While the cached tier window still
  /// covers the pushed time and the tier layout has not changed, the push
  /// skips routing entirely. Purely an accelerator: hinted and unhinted
  /// pushes are indistinguishable in ordering and effect.
  struct ScheduleHint {
    ScheduleHint() = default;

   private:
    friend class EventQueue;
    static constexpr std::uint32_t kTop = 0xFFFFFFFFu;
    Time lo = 0;
    Time hi = 0;  // half-open validity window; empty by default
    std::uint64_t epoch = ~std::uint64_t{0};
    std::uint32_t rung = kTop;
  };

  /// Schedules `h` at absolute time `t` (must not be in the past relative to
  /// the last popped event). Takes the handler by rvalue reference so the
  /// caller's object (e.g. a sharded outbox entry) is moved into the slot
  /// directly, with no intermediate parameter move. Each such move is
  /// counted in handler_moves(); hot sites should prefer the emplace
  /// overloads below, which construct the callable in the slot and never
  /// move it at all.
  EventId push(Time t, Handler&& h) { return push_impl(t, h, nullptr); }

  /// Hinted variant for hot call sites pushing runs of nearby timestamps;
  /// the hint is filled on the first push and consulted on the rest.
  EventId push(Time t, Handler&& h, ScheduleHint& hint) {
    return push_impl(t, h, &hint);
  }

  /// Emplace push: constructs the callable directly in its slot. The only
  /// handler cost on this path is the one unavoidable construction; the
  /// handler is then invoked in place at fire time and destroyed in place.
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, Handler>>>
  EventId push(Time t, F&& f) {
    return emplace_impl(t, std::forward<F>(f), nullptr);
  }

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, Handler>>>
  EventId push(Time t, F&& f, ScheduleHint& hint) {
    return emplace_impl(t, std::forward<F>(f), &hint);
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// Returns true if an event was actually cancelled.
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    const std::uint32_t slot = id.slot();
    if (slot >= slot_limit_) return false;
    Slot& s = slot_ref(slot);
    if (!s.live || s.gen != id.gen()) return false;
    release_slot(slot);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Earliest pending event time. Requires !empty(). Logically const: the
  /// lazy skip over cancelled entries normalizes the representation without
  /// changing the pending set, so peeking is a const operation (and the
  /// Simulator exposes it on a const inspection surface).
  Time next_time() const {
    const_cast<EventQueue*>(this)->prepare_front();
    RCAST_REQUIRE(bottom_pos_ < bottom_.size());
    return bottom_[bottom_pos_].time;
  }

  /// Pops the earliest event, calling `fire(handler)` with the handler still
  /// in its slot (the single fire routine shared with pop_batch). Requires
  /// !empty(). Returns the event's time.
  template <typename Fire>
  Time pop(Fire&& fire) {
    prepare_front();
    RCAST_REQUIRE(bottom_pos_ < bottom_.size());
    const Entry e = bottom_[bottom_pos_++];
    --stored_;
    last_popped_ = e.time;
    fire_slot(e, fire);
    return e.time;
  }

  /// Convenience overload: pops the earliest event and invokes its handler.
  Time pop() {
    return pop([](Handler& h) { h(); });
  }

  /// Drains every event at the earliest pending timestamp in scheduling
  /// (seq) order, calling `fire(handler)` for each — one bucket lookup per
  /// burst instead of one structure fixup per event. Requires !empty().
  /// Handlers may push events at the batch timestamp (they join the tail of
  /// the same batch, exactly as repeated pop() would order them) and may
  /// cancel not-yet-fired members (skipped via the generation check). If
  /// `fire` throws, unfired members stay pending. Returns the timestamp.
  template <typename Fire>
  Time pop_batch(Fire&& fire) {
    prepare_front();
    RCAST_REQUIRE(bottom_pos_ < bottom_.size());
    const Time t = bottom_[bottom_pos_].time;
    last_popped_ = t;
    std::uint64_t fired = 0;
    // Re-read indices every iteration: a handler's push can grow the
    // same-time tail of the bottom or trigger a compaction that rewrites it.
    while (bottom_pos_ < bottom_.size() && bottom_[bottom_pos_].time == t) {
      const Entry e = bottom_[bottom_pos_++];
      --stored_;
      if (dead(e)) continue;  // cancelled, possibly mid-batch
      fire_slot(e, fire);
      ++fired;
    }
    ++batches_;
    batch_hist_[std::min<std::size_t>(
        static_cast<std::size_t>(std::bit_width(fired)) - 1,
        batch_hist_.size() - 1)] += 1;
    return t;
  }

  /// Total events ever scheduled (monotone; for bench instrumentation).
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Handlers whose captures were too big for inline storage (should stay 0
  /// in steady state; see PerfCounters).
  std::uint64_t handler_heap_fallbacks() const { return heap_fallbacks_; }

  /// Peak number of simultaneously pending events.
  std::size_t depth_high_water() const { return depth_high_water_; }

  /// Rungs created: top-tier reseeds plus overfull-bucket subdivisions.
  std::uint64_t rung_spawns() const { return rung_spawns_; }

  /// pop_batch dispatches, and a log2 histogram of their sizes: bucket i
  /// counts batches of 2^i..2^(i+1)-1 events (last bucket open-ended).
  std::uint64_t dispatch_batches() const { return batches_; }
  const std::array<std::uint64_t, 8>& batch_size_hist() const {
    return batch_hist_;
  }

  /// Handlers invoked directly from slot storage (every fire since the
  /// in-place dispatch rework; the move-out path no longer exists).
  std::uint64_t inplace_fires() const { return inplace_fires_; }

  /// Handler moves performed by the queue: one per Handler&& push (the
  /// emplace pushes construct in the slot and never move). Zero here means
  /// the schedule->fire path ran move-free end to end.
  std::uint64_t handler_moves() const { return handler_moves_; }

  /// Entries physically held across all tiers, live plus not-yet-reclaimed
  /// cancelled ones. Tests use it to pin the compaction bound; it is the
  /// queue's memory footprint in entries.
  std::size_t stored_entries() const { return stored_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break within equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct Slot {
    Handler handler;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  /// A bucket entry in the node pool: an Entry plus the intrusive link.
  struct Node {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    std::uint32_t next;
  };

  /// An intrusive list of nodes; the only per-bucket state, so a rung's
  /// bucket array is a flat POD vector recycled whole through the pool.
  struct Bucket {
    std::uint32_t head = kNilNode;
    std::uint32_t tail = kNilNode;
    std::uint32_t count = 0;  // includes not-yet-reclaimed cancelled entries

    bool empty() const { return head == kNilNode; }
  };

  struct Rung {
    Time base = 0;  // time at the start of bucket 0
    Time end = 0;   // exclusive end of this rung's window
    int shift = 0;  // bucket width = 1 << shift nanoseconds
    std::uint32_t cur = 0;  // next bucket to drain
    std::uint32_t nbuckets = 0;
    std::vector<Bucket> buckets;  // capacity recycled via pool

    Time cur_start() const {
      return base + (static_cast<Time>(cur) << shift);
    }
    Time width() const { return Time{1} << shift; }
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNilNode = 0xFFFFFFFFu;
  /// Buckets per rung (1 << kRungBucketsLog2): wide enough that one
  /// subdivision step shrinks the width by 128x, so even a 30 s horizon
  /// reaches ns-resolution buckets in five spawns.
  static constexpr int kRungBucketsLog2 = 7;
  static constexpr std::uint32_t kRungBuckets = 1u << kRungBucketsLog2;
  /// A bucket bigger than this is subdivided instead of sorted, bounding
  /// the per-refill sort. Same-time floods are exempt (width 1 cannot
  /// subdivide) and simply sort once.
  static constexpr std::size_t kSpawnThreshold = 128;
  /// Pending bottom entries beyond this re-ladder into a fresh rung: after
  /// a retire or reseed overshoots, the bottom can own a wide window, and
  /// without this bound a busy period inside it degenerates into one big
  /// insertion-sorted vector (O(n) pushes and unbounded growth).
  static constexpr std::size_t kBottomSpawnThreshold = 2 * kSpawnThreshold;
  /// Spawn-depth backstop; 30 s at ns resolution needs 5 rungs, so the cap
  /// is never the binding constraint in practice.
  static constexpr std::size_t kMaxRungs = 16;

  /// Slots live in fixed-size chunks that never relocate, so a handler can
  /// execute out of its slot while mid-fire pushes grow the map. The chunk
  /// is kept small (64 slots) because every freshly-allocated chunk
  /// value-initializes all of its slots up front: tiny queues (a fresh
  /// Simulator per scenario repetition) must not pay for hundreds of slots
  /// they never use, and the chunk directory stays L1-resident at any
  /// realistic depth regardless.
  static constexpr int kSlotChunkLog2 = 6;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkLog2;

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  Slot& slot_ref(std::uint32_t i) {
    return slot_chunks_[i >> kSlotChunkLog2][i & (kSlotChunkSize - 1)];
  }
  const Slot& slot_ref(std::uint32_t i) const {
    return slot_chunks_[i >> kSlotChunkLog2][i & (kSlotChunkSize - 1)];
  }

  bool dead(const Entry& e) const {
    const Slot& s = slot_ref(e.slot);
    return !s.live || s.gen != e.gen;
  }

  bool dead_node(const Node& n) const {
    const Slot& s = slot_ref(n.slot);
    return !s.live || s.gen != n.gen;
  }

  /// Invokes a live entry's handler in place. The slot is invalidated
  /// (generation bump) before the call so a stale EventId for the firing
  /// event is inert mid-fire, but it joins the free list only afterwards —
  /// a mid-fire push must never reuse the buffer the closure is executing
  /// from. The guard destroys the handler and frees the slot even if the
  /// fire callback throws.
  template <typename Fire>
  void fire_slot(const Entry& e, Fire& fire) {
    Slot& s = slot_ref(e.slot);
    RCAST_DCHECK(s.live && s.gen == e.gen);
    s.live = false;
    ++s.gen;
    --live_;
    ++inplace_fires_;
    struct Guard {
      EventQueue* q;
      Slot* s;  // chunked storage: stable across mid-fire pushes
      std::uint32_t slot;
      ~Guard() {
        s->handler = Handler();
        s->next_free = q->free_head_;
        q->free_head_ = slot;
      }
    } guard{this, &s, e.slot};
    fire(s.handler);
  }

  std::uint32_t acquire_node(const Entry& e) {
    std::uint32_t n;
    if (node_free_ != kNilNode) {
      n = node_free_;
      node_free_ = nodes_[n].next;
    } else {
      nodes_.emplace_back();
      n = static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    nodes_[n] = Node{e.time, e.seq, e.slot, e.gen, kNilNode};
    return n;
  }

  void free_node(std::uint32_t n) {
    nodes_[n].next = node_free_;
    node_free_ = n;
  }

  void bucket_append(Bucket& b, std::uint32_t n) {
    nodes_[n].next = kNilNode;
    if (b.tail == kNilNode) {
      b.head = n;
    } else {
      nodes_[b.tail].next = n;
    }
    b.tail = n;
    ++b.count;
  }

  void bucket_push(Bucket& b, const Entry& e) {
    bucket_append(b, acquire_node(e));
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_ref(slot).next_free;
      return slot;
    }
    if ((slot_limit_ & (kSlotChunkSize - 1)) == 0) {
      slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    }
    return slot_limit_++;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slot_ref(slot);
    s.handler = Handler();
    s.live = false;
    ++s.gen;  // invalidates outstanding EventIds and tier entries
    s.next_free = free_head_;
    free_head_ = slot;
  }

  EventId push_impl(Time t, Handler& h, ScheduleHint* hint) {
    RCAST_REQUIRE_MSG(t >= last_popped_, "scheduling into the past");
    if (h.heap_allocated()) ++heap_fallbacks_;
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    s.handler = std::move(h);
    ++handler_moves_;
    s.live = true;
    route(Entry{t, ++next_seq_, slot, s.gen}, hint);
    ++stored_;
    ++live_;
    if (live_ > depth_high_water_) depth_high_water_ = live_;
    maybe_compact();
    return EventId(slot, s.gen);
  }

  template <class F>
  EventId emplace_impl(Time t, F&& f, ScheduleHint* hint) {
    RCAST_REQUIRE_MSG(t >= last_popped_, "scheduling into the past");
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    s.handler.emplace(std::forward<F>(f));
    if (s.handler.heap_allocated()) ++heap_fallbacks_;
    s.live = true;
    route(Entry{t, ++next_seq_, slot, s.gen}, hint);
    ++stored_;
    ++live_;
    if (live_ > depth_high_water_) depth_high_water_ = live_;
    maybe_compact();
    return EventId(slot, s.gen);
  }

  void route(const Entry& e, ScheduleHint* hint) {
    const Time t = e.time;
    if (hint != nullptr && hint->epoch == layout_epoch_ && t >= hint->lo &&
        t < hint->hi) {
      if (hint->rung == ScheduleHint::kTop) {
        push_top(e);
      } else {
        Rung& r = rungs_[hint->rung];
        bucket_push(r.buckets[static_cast<std::size_t>((t - r.base) >> r.shift)],
                    e);
      }
      return;
    }
    if (t >= top_start_) {
      push_top(e);
      if (hint != nullptr) {
        *hint = ScheduleHint{};
        hint->lo = top_start_;
        hint->hi = std::numeric_limits<Time>::max();
        hint->epoch = layout_epoch_;
        hint->rung = ScheduleHint::kTop;
      }
      return;
    }
    if (t < bottom_limit_) {
      // Reuse the popped prefix before the vector reallocates: when at
      // least half the storage is spent cursor prefix, slide instead of
      // doubling. Capacity high-water then tracks live pending, not the
      // pass-through volume since the last full drain. Amortized O(1):
      // each slide moves <= capacity/2 entries and frees >= capacity/2
      // slots, so the next slide-or-grow is that many pushes away.
      if (bottom_.size() == bottom_.capacity() &&
          bottom_pos_ >= bottom_.capacity() / 2 && bottom_pos_ > 0) {
        bottom_.erase(bottom_.begin(),
                      bottom_.begin() +
                          static_cast<std::ptrdiff_t>(bottom_pos_));
        bottom_pos_ = 0;
      }
      // Into the window being drained: keep the bottom sorted. New entries
      // carry the largest seq, so upper_bound lands them after every
      // already-pending same-time entry — FIFO preserved.
      bottom_.insert(std::upper_bound(bottom_.begin() + bottom_pos_,
                                      bottom_.end(), e, before),
                     e);
      if (hint != nullptr) hint->epoch = ~std::uint64_t{0};  // not hintable
      if (bottom_.size() - bottom_pos_ > kBottomSpawnThreshold) {
        spawn_from_bottom();
      }
      return;
    }
    // Rung windows are contiguous from bottom_limit_ (finest, at the back)
    // up to top_start_ (coarsest rung 0), so the scan cannot fall off the
    // front; t >= each rung's cur_start follows from the same contiguity.
    // (No rungs implies top_start_ == bottom_limit_, already handled above.)
    RCAST_DCHECK(!rungs_.empty());
    std::size_t i = rungs_.size() - 1;
    while (i > 0 && t >= rungs_[i].end) --i;
    Rung& r = rungs_[i];
    const auto idx = static_cast<std::size_t>((t - r.base) >> r.shift);
    RCAST_DCHECK(idx >= r.cur && idx < r.nbuckets);
    bucket_push(r.buckets[idx], e);
    if (hint != nullptr) {
      hint->lo = r.cur_start();
      hint->hi = r.end;
      hint->epoch = layout_epoch_;
      hint->rung = static_cast<std::uint32_t>(i);
    }
  }

  void push_top(const Entry& e) {
    top_.push_back(e);
    top_min_ = std::min(top_min_, e.time);
    top_max_ = std::max(top_max_, e.time);
  }

  /// Establishes "bottom front exists and is live" or proves the queue
  /// drained; all tier advancement funnels through here.
  void prepare_front() {
    // Reclaim the popped prefix once it dwarfs the pending tail: during a
    // busy period inside one bottom window the vector otherwise grows by
    // every event that passes through (pops advance the cursor but only a
    // full drain clears the storage). Amortized O(1): each erase moves at
    // most a quarter of what was popped since the last one.
    if (bottom_pos_ > 512 && bottom_pos_ >= 4 * (bottom_.size() - bottom_pos_)) {
      bottom_.erase(bottom_.begin(),
                    bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_));
      bottom_pos_ = 0;
    }
    for (;;) {
      while (bottom_pos_ < bottom_.size()) {
        if (!dead(bottom_[bottom_pos_])) return;
        ++bottom_pos_;  // cancelled entry: reclaim lazily
        --stored_;
      }
      bottom_.clear();
      bottom_pos_ = 0;
      if (!refill_bottom()) return;  // nothing pending anywhere
    }
  }

  /// Moves the next non-empty bucket (subdividing overfull ones) into the
  /// bottom and sorts it. Returns false when every tier is empty. The
  /// refilled bottom may still be all-dead; prepare_front loops.
  bool refill_bottom() {
    for (;;) {
      if (rungs_.empty()) {
        if (top_.empty()) return false;
        reseed_from_top();
        continue;
      }
      Rung& r = rungs_.back();
      while (r.cur < r.nbuckets && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur == r.nbuckets) {
        retire_back_rung();
        continue;
      }
      Bucket& bucket = r.buckets[r.cur];
      const Time s = r.cur_start();
      if (bucket.count > kSpawnThreshold && r.shift > 0 &&
          rungs_.size() < kMaxRungs) {
        spawn_child_rung();
        continue;
      }
      for (std::uint32_t n = bucket.head; n != kNilNode;) {
        const Node& nd = nodes_[n];
        const std::uint32_t next = nd.next;
        if (dead_node(nd)) {
          --stored_;
        } else {
          bottom_.push_back(Entry{nd.time, nd.seq, nd.slot, nd.gen});
        }
        free_node(n);
        n = next;
      }
      bucket = Bucket{};
      bottom_limit_ = s + r.width();
      ++r.cur;
      std::sort(bottom_.begin(), bottom_.end(), before);
      ++layout_epoch_;
      return true;
    }
  }

  /// Subdivides the finest rung's current bucket into a new, finer rung
  /// covering exactly that bucket's window.
  void spawn_child_rung() {
    Rung child = acquire_rung();
    {
      // Scope the parent reference: rungs_.push_back below may reallocate.
      Rung& parent = rungs_.back();
      child.base = parent.cur_start();
      child.end = child.base + parent.width();
      child.shift = std::max(0, parent.shift - kRungBucketsLog2);
      child.cur = 0;
      child.nbuckets =
          static_cast<std::uint32_t>(parent.width() >> child.shift);
      ensure_buckets(child);
      Bucket& bucket = parent.buckets[parent.cur];
      // Pure relink: nodes move from the parent bucket's list into the
      // child's finer buckets, append order preserving (time, seq) FIFO.
      for (std::uint32_t n = bucket.head; n != kNilNode;) {
        Node& nd = nodes_[n];
        const std::uint32_t next = nd.next;
        if (dead_node(nd)) {
          --stored_;
          free_node(n);
        } else {
          bucket_append(
              child.buckets[static_cast<std::size_t>((nd.time - child.base) >>
                                                     child.shift)],
              n);
        }
        n = next;
      }
      bucket = Bucket{};
      ++parent.cur;
    }
    rungs_.push_back(std::move(child));
    ++rung_spawns_;
    ++layout_epoch_;
  }

  /// Moves the bottom's tail into a fresh finest rung tiled exactly against
  /// bottom_limit_ (aligned from the end, so rung windows stay contiguous
  /// whether or not other rungs exist). The front instant stays in the
  /// bottom; a same-time flood (span 0) is left alone — it cannot
  /// subdivide and batch pops drain it in one sweep.
  void spawn_from_bottom() {
    if (rungs_.size() >= kMaxRungs) return;
    const Time t_front = bottom_[bottom_pos_].time;
    const Time span = bottom_limit_ - (t_front + 1);
    if (span <= 0) return;
    const int shift =
        std::max(0, static_cast<int>(std::bit_width(
                        static_cast<std::uint64_t>(span))) -
                        kRungBucketsLog2);
    const auto nbuckets = static_cast<std::uint32_t>(span >> shift);
    if (nbuckets == 0) return;
    Rung r = acquire_rung();
    r.shift = shift;
    r.nbuckets = nbuckets;
    r.end = bottom_limit_;
    r.base = bottom_limit_ - (static_cast<Time>(nbuckets) << shift);
    r.cur = 0;
    ensure_buckets(r);
    RCAST_DCHECK(r.base > t_front);
    const auto split = std::lower_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
        bottom_.end(), r.base,
        [](const Entry& e, Time t) { return e.time < t; });
    for (auto it = split; it != bottom_.end(); ++it) {
      if (dead(*it)) {
        --stored_;
        continue;
      }
      // Sorted (time, seq) order in, FIFO append per bucket: refill's sort
      // sees the same total order either way.
      bucket_push(r.buckets[static_cast<std::size_t>((it->time - r.base) >>
                                                     shift)],
                  *it);
    }
    bottom_.erase(split, bottom_.end());
    bottom_limit_ = r.base;
    rungs_.push_back(std::move(r));
    ++rung_spawns_;
    ++layout_epoch_;
  }

  void retire_back_rung() {
    // The retired window is fully drained; extend the bottom's window over
    // it so late pushes into any trailing (empty) buckets route to the
    // bottom instead of a bucket the cursor already passed.
    bottom_limit_ = std::max(bottom_limit_, rungs_.back().end);
    recycle_rung(std::move(rungs_.back()));
    rungs_.pop_back();
    if (rungs_.empty()) top_start_ = bottom_limit_;
    ++layout_epoch_;
  }

  /// Sweeps the far-future tier into a fresh coarsest rung spanning
  /// [bottom_limit_, top_max_]; the top then owns times past that rung.
  void reseed_from_top() {
    Rung r = acquire_rung();
    // Base at the present, not at a stale bottom_limit_: pops may have
    // advanced far past the last ladder window, and spanning that dead time
    // would waste most of the rung's buckets. Raising bottom_limit_ to
    // match is safe — the bottom is empty here, and top entries are never
    // below last_popped_ (a pending earlier event would have popped first).
    r.base = std::max(bottom_limit_, last_popped_);
    bottom_limit_ = r.base;
    const Time span = top_max_ - r.base;  // >= 0: top times >= base
    r.shift =
        span <= 0
            ? 0
            : std::max(0, static_cast<int>(std::bit_width(
                              static_cast<std::uint64_t>(span))) -
                              kRungBucketsLog2);
    r.nbuckets = static_cast<std::uint32_t>((span >> r.shift) + 1);
    r.end = r.base + (static_cast<Time>(r.nbuckets) << r.shift);
    r.cur = 0;
    ensure_buckets(r);
    for (const Entry& e : top_) {
      if (dead(e)) {
        --stored_;
        continue;
      }
      bucket_push(r.buckets[static_cast<std::size_t>((e.time - r.base) >>
                                                     r.shift)],
                  e);
    }
    top_.clear();
    top_start_ = r.end;
    top_min_ = std::numeric_limits<Time>::max();
    top_max_ = std::numeric_limits<Time>::min();
    rungs_.push_back(std::move(r));
    ++rung_spawns_;
    ++layout_epoch_;
  }

  Rung acquire_rung() {
    if (rung_pool_.empty()) return Rung{};
    Rung r = std::move(rung_pool_.back());
    rung_pool_.pop_back();
    return r;
  }

  void recycle_rung(Rung&& r) {
    // Buckets are clear (retire implies fully drained); their capacity and
    // the bucket array itself are what the pool preserves.
    rung_pool_.push_back(std::move(r));
  }

  static void ensure_buckets(Rung& r) {
    // Recycled rungs come back with every bucket drained to its default
    // state, so a grow-only resize leaves them ready for reuse.
    if (r.buckets.size() < r.nbuckets) r.buckets.resize(r.nbuckets);
  }

  /// Cancelled entries linger in their tier until reached; rebuild all
  /// tiers when they outnumber live events 4:1 so cancel-heavy workloads
  /// stay compact.
  void maybe_compact() {
    if (stored_ < 256 || stored_ < 4 * live_) return;
    bottom_.erase(bottom_.begin(),
                  bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_));
    bottom_pos_ = 0;
    auto is_dead = [this](const Entry& e) { return dead(e); };
    std::erase_if(bottom_, is_dead);
    for (Rung& r : rungs_) {
      for (std::uint32_t b = r.cur; b < r.nbuckets; ++b) {
        // Rebuild the list keeping live nodes in order, freeing the dead.
        Bucket rebuilt;
        for (std::uint32_t n = r.buckets[b].head; n != kNilNode;) {
          const std::uint32_t next = nodes_[n].next;
          if (dead_node(nodes_[n])) {
            free_node(n);
          } else {
            bucket_append(rebuilt, n);
          }
          n = next;
        }
        r.buckets[b] = rebuilt;
      }
    }
    std::erase_if(top_, is_dead);
    stored_ = live_;
    ++layout_epoch_;
  }

  // --- tiers ---
  std::vector<Entry> bottom_;   // sorted from bottom_pos_ by (time, seq)
  std::size_t bottom_pos_ = 0;  // pop cursor into bottom_
  Time bottom_limit_ = 0;       // bottom owns times < this
  std::vector<Rung> rungs_;     // coarsest first; back refills the bottom
  std::vector<Entry> top_;      // unsorted far future: times >= top_start_
  Time top_start_ = 0;
  Time top_min_ = std::numeric_limits<Time>::max();
  Time top_max_ = std::numeric_limits<Time>::min();
  std::vector<Rung> rung_pool_;  // retired rungs, bucket capacity intact

  // --- node pool (bucket list storage) ---
  std::vector<Node> nodes_;
  std::uint32_t node_free_ = kNilNode;

  // --- slot map ---
  // Chunked storage: slots never relocate, so a handler can execute from its
  // slot while a mid-fire push grows the map (new chunk, old ones untouched).
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::uint32_t slot_limit_ = 0;  // slots ever allocated (chunk high-water)
  std::uint32_t free_head_ = kNilSlot;

  // --- bookkeeping ---
  std::size_t live_ = 0;    // pending (uncancelled) events
  std::size_t stored_ = 0;  // entries physically held, incl. cancelled
  std::uint64_t next_seq_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  std::uint64_t layout_epoch_ = 0;  // bumped whenever tier windows change
  Time last_popped_ = 0;

  // --- instrumentation ---
  std::size_t depth_high_water_ = 0;
  std::uint64_t rung_spawns_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t inplace_fires_ = 0;
  std::uint64_t handler_moves_ = 0;
  std::array<std::uint64_t, 8> batch_hist_{};
};

}  // namespace rcast::sim
