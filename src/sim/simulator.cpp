#include "sim/simulator.hpp"

namespace rcast::sim {

void Simulator::run_until(Time end) {
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto [t, h] = queue_.pop();
    now_ = t;
    ++executed_;
    h();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    auto [t, h] = queue_.pop();
    now_ = t;
    ++executed_;
    h();
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, h] = queue_.pop();
  now_ = t;
  ++executed_;
  h();
  return true;
}

}  // namespace rcast::sim
