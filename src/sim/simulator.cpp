#include "sim/simulator.hpp"

#include <sstream>

#include "sim/sharded_executor.hpp"

namespace rcast::sim {

namespace {
/// Fallback window width when a sharded Simulator is built with horizon 0:
/// the propagation delay across the default carrier-sense range (550 m at
/// c), i.e. the tightest physically-motivated lookahead. Scenario code
/// normally passes an explicit horizon derived from its own cs_range.
constexpr Time kDefaultHorizon = 1835;  // ns
}  // namespace

Simulator::Simulator(std::size_t shards, Time horizon) {
  RCAST_REQUIRE(shards >= 1);
  if (shards > 1) {
    exec_ = std::make_unique<ShardedExecutor>(
        *this, shards, horizon > 0 ? horizon : kDefaultHorizon);
  }
}

Simulator::~Simulator() = default;

std::size_t Simulator::shard_count() const {
  return exec_ != nullptr ? exec_->shard_count() : 1;
}

Time Simulator::shard_now(std::size_t shard) const {
  return exec_->shard_now(shard);
}

EventId Simulator::shard_push(std::size_t shard, Time t, Handler h) {
  return exec_->push(shard, t, std::move(h));
}

EventId Simulator::shard_push(std::size_t shard, Time t, Handler h,
                              ScheduleHint& hint) {
  return exec_->push(shard, t, std::move(h), hint);
}

bool Simulator::shard_cancel(std::size_t shard, EventId id) {
  return exec_->cancel(shard, id);
}

void Simulator::post(std::size_t dst_shard, Time t, Handler h) {
  RCAST_REQUIRE(exec_ != nullptr && g_shard_context.owner == this);
  exec_->post(g_shard_context.shard, dst_shard, t, std::move(h));
}

std::uint64_t Simulator::executed_events() const {
  return exec_ != nullptr ? exec_->executed_events() : executed_;
}

std::size_t Simulator::pending_events() const {
  return exec_ != nullptr ? exec_->pending_events() : queue_.size();
}

Time Simulator::next_event_time() const {
  return exec_ != nullptr ? exec_->next_event_time() : queue_.next_time();
}

PerfCounters Simulator::perf_counters() const {
  PerfCounters p;
  p.events_executed = executed_events();
  if (exec_ != nullptr) {
    exec_->fill_perf(p);
  } else {
    p.events_scheduled = queue_.scheduled_count();
    p.handler_heap_fallbacks = queue_.handler_heap_fallbacks();
    p.queue_depth_high_water = queue_.depth_high_water();
    p.queue_rung_spawns = queue_.rung_spawns();
    p.dispatch_batches = queue_.dispatch_batches();
    p.batch_size_hist = queue_.batch_size_hist();
    p.handler_moves = queue_.handler_moves();
    p.inplace_fires = queue_.inplace_fires();
  }
  const util::PoolStats pools = pools_.total_stats();
  p.pool_hits = pools.hits;
  p.pool_misses = pools.misses;
  return p;
}

void Simulator::check_wall_deadline() const {
  if (std::chrono::steady_clock::now() < wall_deadline_) return;
  std::ostringstream os;
  os << "wall-clock deadline exceeded after " << executed_
     << " events (sim time " << to_seconds(now_) << " s)";
  throw WallDeadlineExceeded(os.str());
}

void Simulator::run_until(Time end) {
  // Check once up front so even a run too short to reach the periodic
  // check interval honors an already-expired deadline.
  if (deadline_armed_) check_wall_deadline();
  if (exec_ != nullptr) {
    exec_->run_until(end, deadline_armed_, wall_deadline_);
    if (now_ < end) now_ = end;
    return;
  }
  // Batched dispatch: one queue-front lookup per distinct timestamp, with
  // every same-time event (including ones its handlers push) drained in
  // scheduling order. The wall-deadline check still runs between events,
  // never mid-handler; a throw leaves unfired batch members pending.
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > end) break;
    now_ = t;  // before dispatch: batch handlers read now()
    queue_.pop_batch([this](Handler& h) {
      ++executed_;
      if (deadline_armed_ && (executed_ % kDeadlineCheckInterval) == 0) {
        check_wall_deadline();
      }
      h();
    });
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_all() {
  RCAST_REQUIRE_MSG(exec_ == nullptr, "run_all requires single-queue mode");
  if (deadline_armed_) check_wall_deadline();
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_batch([this](Handler& h) {
      ++executed_;
      if (deadline_armed_ && (executed_ % kDeadlineCheckInterval) == 0) {
        check_wall_deadline();
      }
      h();
    });
  }
}

bool Simulator::step() {
  RCAST_REQUIRE_MSG(exec_ == nullptr, "step requires single-queue mode");
  if (queue_.empty()) return false;
  // now_ must be current before the handler runs; peek the front timestamp
  // first, then fire in place (same dispatch routine as the batched loop).
  now_ = queue_.next_time();
  ++executed_;
  if (deadline_armed_) check_wall_deadline();
  queue_.pop([](Handler& h) { h(); });
  return true;
}

}  // namespace rcast::sim
