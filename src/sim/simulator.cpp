#include "sim/simulator.hpp"

#include <sstream>

namespace rcast::sim {

void Simulator::check_wall_deadline() const {
  if (std::chrono::steady_clock::now() < wall_deadline_) return;
  std::ostringstream os;
  os << "wall-clock deadline exceeded after " << executed_
     << " events (sim time " << to_seconds(now_) << " s)";
  throw WallDeadlineExceeded(os.str());
}

void Simulator::run_until(Time end) {
  // Check once up front so even a run too short to reach the periodic
  // check interval honors an already-expired deadline.
  if (deadline_armed_) check_wall_deadline();
  // Batched dispatch: one queue-front lookup per distinct timestamp, with
  // every same-time event (including ones its handlers push) drained in
  // scheduling order. The wall-deadline check still runs between events,
  // never mid-handler; a throw leaves unfired batch members pending.
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > end) break;
    now_ = t;  // before dispatch: batch handlers read now()
    queue_.pop_batch([this](Handler& h) {
      ++executed_;
      if (deadline_armed_ && (executed_ % kDeadlineCheckInterval) == 0) {
        check_wall_deadline();
      }
      h();
    });
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_all() {
  if (deadline_armed_) check_wall_deadline();
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_batch([this](Handler& h) {
      ++executed_;
      if (deadline_armed_ && (executed_ % kDeadlineCheckInterval) == 0) {
        check_wall_deadline();
      }
      h();
    });
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, h] = queue_.pop();
  now_ = t;
  ++executed_;
  if (deadline_armed_) check_wall_deadline();
  h();
  return true;
}

}  // namespace rcast::sim
