// Conservative-window parallel run loop (DESIGN.md §15).
//
// The world is partitioned into K spatial shards (the scenario layer pins
// every node to a home shard from its initial position). Each shard owns a
// full ladder EventQueue plus its own clock and counters; K worker threads
// drain their shards concurrently inside half-open time windows [T, W), and
// a serial barrier between windows exchanges cross-shard events, refreshes
// shared mobility state, and computes the next window.
//
// Window rule: T is the earliest pending event across all shards (windows
// fast-forward over idle gaps), and W = min(T + horizon, end + 1, earliest
// motion-segment expiry). Within a window a shard never needs another
// shard's state at a finer granularity than the window itself: every
// inter-node interaction flows through Channel::transmit, which schedules
// remote-shard arrivals as mailbox posts that the barrier delivers clamped
// to max(t, W). With horizon <= propagation delay across the carrier-sense
// range, deferring a cross-boundary arrival to W is equivalent to the
// receiver sitting at the far edge of the sense disc — error bounded by the
// physical propagation spread. Larger horizons trade bounded timing error
// for fewer barriers; `sim.horizon_ns` sweeps that knob.
//
// Determinism (the hard requirement): for a fixed K, runs are
// bit-reproducible. Worker interleaving is irrelevant because shards share
// no mutable state during a window; the barrier drains mailboxes in fixed
// (destination shard, source shard, append order) order, so sequence
// numbers — and therefore same-timestamp FIFO order — are identical run to
// run. Per-shard arrival-id streams and the deterministic merge of
// per-shard stats (scenario layer) close the loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/perf_counters.hpp"
#include "sim/time.hpp"

namespace rcast::sim {

class Simulator;

class ShardedExecutor {
 public:
  using Handler = EventQueue::Handler;

  /// Barrier hook, run serially between windows: given the next window's
  /// start, prepare any shared state (e.g. refresh expired motion segments)
  /// and return the hook's upper bound on the window end (>= start + 1;
  /// return `horizon_end` to impose no extra bound).
  using WindowHook = std::function<Time(Time window_start, Time horizon_end)>;

  /// `shards` >= 2 (a single shard uses the plain Simulator loop) and
  /// <= kMaxShards; `horizon` > 0 is the default window width in ns.
  ShardedExecutor(Simulator& sim, std::size_t shards, Time horizon);

  static constexpr std::size_t kMaxShards = 64;

  std::size_t shard_count() const { return shards_.size(); }
  Time horizon() const { return horizon_; }

  /// Registers a barrier hook (build phase only; order is dispatch order).
  void add_window_hook(WindowHook hook) {
    hooks_.push_back(std::move(hook));
  }

  // --- shard-scoped operations (TLS-routed from Simulator) -----------------

  Time shard_now(std::size_t k) const { return shards_[k].now; }

  EventId push(std::size_t k, Time t, Handler h) {
    Shard& s = shards_[k];
    RCAST_REQUIRE(t >= s.now);
    return s.queue.push(t, std::move(h));
  }

  EventId push(std::size_t k, Time t, Handler h,
               EventQueue::ScheduleHint& hint) {
    Shard& s = shards_[k];
    RCAST_REQUIRE(t >= s.now);
    return s.queue.push(t, std::move(h), hint);
  }

  bool cancel(std::size_t k, EventId id) { return shards_[k].queue.cancel(id); }

  /// Cross-shard event: appended to the (src, dst) mailbox and delivered by
  /// the next barrier, clamped to no earlier than the current window's end.
  void post(std::size_t src, std::size_t dst, Time t, Handler h) {
    shards_[src].outbox[dst].push_back(Outgoing{t, std::move(h)});
  }

  // --- run loop ------------------------------------------------------------

  /// Parallel equivalent of Simulator::run_until: drains all shards up to
  /// and including `end`. Rethrows the first worker/barrier exception (e.g.
  /// WallDeadlineExceeded) after the fleet has stopped.
  void run_until(Time end, bool deadline_armed,
                 std::chrono::steady_clock::time_point wall_deadline);

  // --- inspection (serial contexts only: between runs / after build) -------

  std::uint64_t executed_events() const;
  std::size_t pending_events() const;
  bool queues_empty() const;
  /// Earliest pending event across shards; requires pending_events() > 0.
  Time next_event_time() const;
  /// Bytes allocated by worker threads during run_until (their
  /// AllocTracker totals, summed; the caller's own thread is separate).
  std::uint64_t worker_alloc_bytes() const;
  /// Sums the per-shard queue counters into `p` (depth high water is the
  /// max across shards, everything else a sum).
  void fill_perf(PerfCounters& p) const;

  /// Windows executed across all run_until calls (one barrier each).
  std::uint64_t windows_executed() const { return windows_; }

 private:
  struct Outgoing {
    Time t;
    Handler h;
  };
  struct Shard {
    EventQueue queue;
    Time now = 0;
    std::uint64_t executed = 0;
    std::vector<std::vector<Outgoing>> outbox;  // indexed by dst shard
    std::uint64_t alloc_bytes = 0;
  };

  void worker(std::size_t k);
  void barrier_wait();
  /// Serial inter-window step; called with mu_ held (all workers parked).
  void on_barrier();
  void check_wall_deadline();

  Simulator& sim_;
  Time horizon_;
  std::vector<Shard> shards_;
  std::vector<WindowHook> hooks_;

  // Window state: written only in on_barrier()/run_until() while workers
  // are parked, read by workers between barriers — no concurrent access.
  Time end_ = 0;
  Time window_end_ = 0;
  bool stop_ = true;
  bool deadline_armed_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};
  std::exception_ptr error_;
  std::uint64_t windows_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace rcast::sim
