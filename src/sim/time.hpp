// Simulation time: signed 64-bit nanoseconds since simulation start.
//
// Integer time makes event ordering exact and replayable (no floating-point
// accumulation drift across 10^9 events). 2^63 ns ≈ 292 years, far beyond any
// scenario. Helpers convert from the human units used by the paper.
#pragma once

#include <cstdint>

namespace rcast::sim {

using Time = std::int64_t;  // nanoseconds

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
constexpr Time from_millis(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time from_micros(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Serialization time of `bits` at `bits_per_second`, rounded up to a whole
/// nanosecond so a frame never "finishes early".
constexpr Time tx_duration(std::int64_t bits, std::int64_t bits_per_second) {
  // ceil(bits * 1e9 / rate) without overflow for realistic frame sizes.
  const std::int64_t num = bits * kSecond;
  return (num + bits_per_second - 1) / bits_per_second;
}

}  // namespace rcast::sim
