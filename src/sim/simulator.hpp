// The simulation run loop: a clock plus the event queue.
//
// All protocol modules hold a Simulator& and schedule callbacks; nothing in
// the codebase reads wall-clock time. One Simulator per scenario run; runs
// are independent, so experiment sweeps parallelize across threads with one
// Simulator each.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/perf_counters.hpp"
#include "sim/time.hpp"
#include "util/pool.hpp"

namespace rcast::sim {

/// Thrown by the run loop when a wall-clock deadline (see
/// Simulator::set_wall_deadline) expires mid-run. Campaign jobs catch this
/// and record the job as timed out instead of hanging a whole sweep.
class WallDeadlineExceeded : public std::runtime_error {
 public:
  explicit WallDeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Simulator {
 public:
  using Handler = EventQueue::Handler;
  using ScheduleHint = EventQueue::ScheduleHint;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules at an absolute simulation time (>= now).
  EventId at(Time t, Handler h) {
    RCAST_REQUIRE(t >= now_);
    return queue_.push(t, std::move(h));
  }

  /// Hinted variant for hot sites scheduling runs of nearby timestamps
  /// (e.g. the channel fan-out, a MAC's per-interval beacon): the hint
  /// memoizes the queue-tier routing across calls. Semantically identical
  /// to the unhinted overload.
  EventId at(Time t, Handler h, ScheduleHint& hint) {
    RCAST_REQUIRE(t >= now_);
    return queue_.push(t, std::move(h), hint);
  }

  /// Schedules `delay` nanoseconds from now (delay >= 0).
  EventId after(Time delay, Handler h) {
    RCAST_REQUIRE(delay >= 0);
    return queue_.push(now_ + delay, std::move(h));
  }

  /// Hinted variant of after(); see at().
  EventId after(Time delay, Handler h, ScheduleHint& hint) {
    RCAST_REQUIRE(delay >= 0);
    return queue_.push(now_ + delay, std::move(h), hint);
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `end`.
  /// Events scheduled exactly at `end` are executed.
  void run_until(Time end);

  /// Runs until the queue is empty.
  void run_all();

  /// Executes at most one pending event; returns false if none remain.
  bool step();

  std::uint64_t executed_events() const { return executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Timestamp of the earliest pending event; requires pending_events() > 0.
  /// Part of the const inspection surface: peeking never mutates the
  /// observable queue state.
  Time next_event_time() const { return queue_.next_time(); }

  /// Arms a wall-clock budget for the run loop: once `steady_clock::now()`
  /// passes `deadline`, run_until/run_all/step throw WallDeadlineExceeded
  /// *between* events (never mid-handler, so module state stays consistent).
  /// The check is amortized — one clock read every kDeadlineCheckInterval
  /// events — so an unarmed or healthy run pays only a predictable branch.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
    deadline_armed_ = true;
  }
  void clear_wall_deadline() { deadline_armed_ = false; }

  static constexpr std::uint64_t kDeadlineCheckInterval = 8192;

  /// Per-run object pools (frames, packets). Everything drawn from them must
  /// be released before the Simulator dies; protocol modules hold Simulator&
  /// and are torn down first, so this falls out of the ownership order.
  util::PoolArena& pools() { return pools_; }

  /// Snapshot of the run's simulator-level counters (wall-clock fields are
  /// filled by whoever times the run, e.g. scenario::Network::run).
  PerfCounters perf_counters() const {
    PerfCounters p;
    p.events_executed = executed_;
    p.events_scheduled = queue_.scheduled_count();
    p.handler_heap_fallbacks = queue_.handler_heap_fallbacks();
    p.queue_depth_high_water = queue_.depth_high_water();
    p.queue_rung_spawns = queue_.rung_spawns();
    p.dispatch_batches = queue_.dispatch_batches();
    p.batch_size_hist = queue_.batch_size_hist();
    const util::PoolStats pools = pools_.total_stats();
    p.pool_hits = pools.hits;
    p.pool_misses = pools.misses;
    return p;
  }

 private:
  void check_wall_deadline() const;

  // pools_ is declared before queue_ so pending handlers (which may hold the
  // last reference to pooled frames) are destroyed before the pools are.
  util::PoolArena pools_;
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool deadline_armed_ = false;
};

/// Repeating timer bound to a Simulator. Owns its pending event; destroying
/// or stopping the timer cancels it (safe against firing after teardown).
class PeriodicTimer {
 public:
  /// `callback` runs every `period` starting at `start` (absolute time).
  PeriodicTimer(Simulator& simulator, std::function<void()> callback)
      : sim_(simulator), callback_(std::move(callback)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(Time first_fire, Time period) {
    RCAST_REQUIRE(period > 0);
    stop();
    period_ = period;
    running_ = true;
    pending_ = sim_.at(first_fire, [this] { fire(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(pending_);
      running_ = false;
    }
  }

  bool running() const { return running_; }

 private:
  void fire() {
    // Re-arm before the callback so the callback may stop() the timer.
    pending_ = sim_.after(period_, [this] { fire(); });
    callback_();
  }

  Simulator& sim_;
  std::function<void()> callback_;
  Time period_ = 0;
  EventId pending_;
  bool running_ = false;
};

/// One-shot timer whose deadline can be re-armed or cancelled; used for MAC
/// timeouts, DSR send-buffer expiry, ODPM mode timeouts, etc.
class OneShotTimer {
 public:
  OneShotTimer(Simulator& simulator, std::function<void()> callback)
      : sim_(simulator), callback_(std::move(callback)) {}

  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer to fire `delay` from now.
  void arm(Time delay) {
    cancel();
    armed_ = true;
    pending_ = sim_.after(delay, [this] {
      armed_ = false;
      callback_();
    });
  }

  void cancel() {
    if (armed_) {
      sim_.cancel(pending_);
      armed_ = false;
    }
  }

  bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  std::function<void()> callback_;
  EventId pending_;
  bool armed_ = false;
};

}  // namespace rcast::sim
