// The simulation run loop: a clock plus the event queue.
//
// All protocol modules hold a Simulator& and schedule callbacks; nothing in
// the codebase reads wall-clock time. One Simulator per scenario run; runs
// are independent, so experiment sweeps parallelize across threads with one
// Simulator each.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/perf_counters.hpp"
#include "sim/time.hpp"
#include "util/pool.hpp"

namespace rcast::sim {

class ShardedExecutor;

/// Thread-local shard binding for sharded runs (DESIGN.md §15): while set,
/// the owning Simulator routes at/after/cancel/now through that shard's
/// queue and clock. The owner pointer scopes the binding to one Simulator,
/// so campaign workers running independent (unsharded) Simulators on the
/// same thread are unaffected.
struct ShardContext {
  const void* owner = nullptr;
  std::size_t shard = 0;
};
inline thread_local ShardContext g_shard_context;

/// Thrown by the run loop when a wall-clock deadline (see
/// Simulator::set_wall_deadline) expires mid-run. Campaign jobs catch this
/// and record the job as timed out instead of hanging a whole sweep.
class WallDeadlineExceeded : public std::runtime_error {
 public:
  explicit WallDeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Simulator {
 public:
  using Handler = EventQueue::Handler;
  using ScheduleHint = EventQueue::ScheduleHint;

  /// `shards` > 1 runs the simulation on a ShardedExecutor (one spatial
  /// shard per worker thread) under conservative windows of `horizon` ns;
  /// the default is the exact single-queue loop, byte-identical to every
  /// prior release. See DESIGN.md §15.
  explicit Simulator(std::size_t shards = 1, Time horizon = 0);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const {
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_now(g_shard_context.shard);
    }
    return now_;
  }

  /// Schedules at an absolute simulation time (>= now). Raw callables are
  /// forwarded to the queue's emplace path (constructed directly in the
  /// slot, zero handler moves); a pre-built Handler is moved in once. The
  /// sharded branch always builds a Handler — cross-shard events travel
  /// through an outbox, so a move is inherent there.
  template <class H, class = std::enable_if_t<
                         std::is_invocable_r_v<void, std::decay_t<H>&>>>
  EventId at(Time t, H&& h) {
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_push(g_shard_context.shard, t, Handler(std::forward<H>(h)));
    }
    RCAST_REQUIRE(t >= now_);
    return queue_.push(t, std::forward<H>(h));
  }

  /// Hinted variant for hot sites scheduling runs of nearby timestamps
  /// (e.g. the channel fan-out, a MAC's per-interval beacon): the hint
  /// memoizes the queue-tier routing across calls. Semantically identical
  /// to the unhinted overload.
  template <class H, class = std::enable_if_t<
                         std::is_invocable_r_v<void, std::decay_t<H>&>>>
  EventId at(Time t, H&& h, ScheduleHint& hint) {
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_push(g_shard_context.shard, t, Handler(std::forward<H>(h)),
                        hint);
    }
    RCAST_REQUIRE(t >= now_);
    return queue_.push(t, std::forward<H>(h), hint);
  }

  /// Schedules `delay` nanoseconds from now (delay >= 0).
  template <class H, class = std::enable_if_t<
                         std::is_invocable_r_v<void, std::decay_t<H>&>>>
  EventId after(Time delay, H&& h) {
    RCAST_REQUIRE(delay >= 0);
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_push(g_shard_context.shard,
                        shard_now(g_shard_context.shard) + delay,
                        Handler(std::forward<H>(h)));
    }
    return queue_.push(now_ + delay, std::forward<H>(h));
  }

  /// Hinted variant of after(); see at().
  template <class H, class = std::enable_if_t<
                         std::is_invocable_r_v<void, std::decay_t<H>&>>>
  EventId after(Time delay, H&& h, ScheduleHint& hint) {
    RCAST_REQUIRE(delay >= 0);
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_push(g_shard_context.shard,
                        shard_now(g_shard_context.shard) + delay,
                        Handler(std::forward<H>(h)), hint);
    }
    return queue_.push(now_ + delay, std::forward<H>(h), hint);
  }

  bool cancel(EventId id) {
    if (exec_ != nullptr && g_shard_context.owner == this) {
      return shard_cancel(g_shard_context.shard, id);
    }
    return queue_.cancel(id);
  }

  // --- sharded execution (DESIGN.md §15) -----------------------------------

  bool sharded() const { return exec_ != nullptr; }
  std::size_t shard_count() const;
  ShardedExecutor* executor() { return exec_.get(); }

  /// Shard this thread is currently bound to (0 when unbound or unsharded).
  std::size_t current_shard() const {
    return (exec_ != nullptr && g_shard_context.owner == this)
               ? g_shard_context.shard
               : 0;
  }

  /// Binds the calling thread to a shard: subsequent at/after/cancel/now
  /// calls on this Simulator route through that shard. The scenario layer
  /// brackets each node's construction with this so build-time events land
  /// in the node's home-shard queue; executor workers bind themselves.
  void set_shard_context(std::size_t shard) {
    g_shard_context = ShardContext{this, shard};
  }
  void clear_shard_context() { g_shard_context = ShardContext{}; }

  /// Cross-shard event (sharded runs only, from a bound thread): delivered
  /// to `dst_shard` at the next window barrier, no earlier than max(t, W).
  void post(std::size_t dst_shard, Time t, Handler h);

  /// Runs events until the queue drains or the clock passes `end`.
  /// Events scheduled exactly at `end` are executed.
  void run_until(Time end);

  /// Runs until the queue is empty.
  void run_all();

  /// Executes at most one pending event; returns false if none remain.
  bool step();

  std::uint64_t executed_events() const;
  std::size_t pending_events() const;

  /// Timestamp of the earliest pending event; requires pending_events() > 0.
  /// Part of the const inspection surface: peeking never mutates the
  /// observable queue state.
  Time next_event_time() const;

  /// Arms a wall-clock budget for the run loop: once `steady_clock::now()`
  /// passes `deadline`, run_until/run_all/step throw WallDeadlineExceeded
  /// *between* events (never mid-handler, so module state stays consistent).
  /// The check is amortized — one clock read every kDeadlineCheckInterval
  /// events — so an unarmed or healthy run pays only a predictable branch.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
    deadline_armed_ = true;
  }
  void clear_wall_deadline() { deadline_armed_ = false; }

  static constexpr std::uint64_t kDeadlineCheckInterval = 8192;

  /// Per-run object pools (frames, packets). Everything drawn from them must
  /// be released before the Simulator dies; protocol modules hold Simulator&
  /// and are torn down first, so this falls out of the ownership order.
  util::PoolArena& pools() { return pools_; }

  /// Snapshot of the run's simulator-level counters (wall-clock fields are
  /// filled by whoever times the run, e.g. scenario::Network::run).
  PerfCounters perf_counters() const;

 private:
  void check_wall_deadline() const;

  // Out-of-line shard plumbing (the executor's type is incomplete here).
  Time shard_now(std::size_t shard) const;
  EventId shard_push(std::size_t shard, Time t, Handler h);
  EventId shard_push(std::size_t shard, Time t, Handler h,
                     ScheduleHint& hint);
  bool shard_cancel(std::size_t shard, EventId id);

  // pools_ is declared before queue_ so pending handlers (which may hold the
  // last reference to pooled frames) are destroyed before the pools are.
  util::PoolArena pools_;
  EventQueue queue_;
  std::unique_ptr<ShardedExecutor> exec_;  // null = single-queue mode
  Time now_ = 0;
  std::uint64_t executed_ = 0;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool deadline_armed_ = false;
};

/// Repeating timer bound to a Simulator. Owns its pending event; destroying
/// or stopping the timer cancels it (safe against firing after teardown).
class PeriodicTimer {
 public:
  /// `callback` runs every `period` starting at `start` (absolute time).
  PeriodicTimer(Simulator& simulator, std::function<void()> callback)
      : sim_(simulator), callback_(std::move(callback)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(Time first_fire, Time period) {
    RCAST_REQUIRE(period > 0);
    stop();
    period_ = period;
    running_ = true;
    pending_ = sim_.at(first_fire, [this] { fire(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(pending_);
      running_ = false;
    }
  }

  bool running() const { return running_; }

 private:
  void fire() {
    // Re-arm before the callback so the callback may stop() the timer.
    pending_ = sim_.after(period_, [this] { fire(); });
    callback_();
  }

  Simulator& sim_;
  std::function<void()> callback_;
  Time period_ = 0;
  EventId pending_;
  bool running_ = false;
};

/// One-shot timer whose deadline can be re-armed or cancelled; used for MAC
/// timeouts, DSR send-buffer expiry, ODPM mode timeouts, etc.
class OneShotTimer {
 public:
  OneShotTimer(Simulator& simulator, std::function<void()> callback)
      : sim_(simulator), callback_(std::move(callback)) {}

  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer to fire `delay` from now.
  void arm(Time delay) {
    cancel();
    armed_ = true;
    pending_ = sim_.after(delay, [this] {
      armed_ = false;
      callback_();
    });
  }

  void cancel() {
    if (armed_) {
      sim_.cancel(pending_);
      armed_ = false;
    }
  }

  bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  std::function<void()> callback_;
  EventId pending_;
  bool armed_ = false;
};

}  // namespace rcast::sim
