// Lightweight throughput/allocation counters for a simulation run.
//
// These exist to *prove* the allocation discipline of the hot paths: in
// steady state pool_misses stops growing, handler_heap_fallbacks stays 0,
// and (with the opt-in allocation hook enabled) bytes_allocated flatlines
// while events_executed keeps climbing. bench_micro emits them as JSON
// (BENCH_hotpath.json) so the trajectory is tracked across PRs.
#pragma once

#include <array>
#include <cstdint>

namespace rcast::sim {

struct PerfCounters {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  /// Event handlers whose captures exceeded kEventInlineCapacity and were
  /// boxed on the heap. Zero means the event path never allocated.
  std::uint64_t handler_heap_fallbacks = 0;
  /// Peak number of simultaneously pending events (queue memory pressure;
  /// sizes the ladder tiers a sharded per-region queue would need).
  std::uint64_t queue_depth_high_water = 0;
  /// Ladder-queue rungs created: top-tier reseeds plus overfull-bucket
  /// subdivisions. Growth tracks how bimodal the workload's horizons are.
  std::uint64_t queue_rung_spawns = 0;
  /// Batched same-timestamp dispatches, and a log2 histogram of their
  /// sizes: bucket i counts batches of 2^i..2^(i+1)-1 events (last bucket
  /// open-ended). Attributes run time to scheduling vs protocol work.
  std::uint64_t dispatch_batches = 0;
  std::array<std::uint64_t, 8> batch_size_hist{};
  /// Handlers moved into a queue slot (the Handler&& push path: cross-shard
  /// outbox drains, pre-built handlers). The emplace path constructs the
  /// callable in its slot directly, so unsharded hot-path runs keep this 0.
  std::uint64_t handler_moves = 0;
  /// Events fired in place from slot storage (every pop/pop_batch dispatch;
  /// sanity mirror of events_executed at the queue layer).
  std::uint64_t inplace_fires = 0;
  /// Log2 histogram of PHY arrival-group sizes: bucket i counts groups of
  /// 2^i..2^(i+1)-1 receiver records (last bucket open-ended). Groups are
  /// capped at the SmallVec inline capacity, so buckets >= 3 prove a
  /// capacity-invariant violation (CI checks them as a zero budget).
  std::array<std::uint64_t, 8> arrival_group_size_hist{};
  /// Pool allocations served from the free list vs. carved fresh. Misses
  /// stop growing once the working set is warm.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Bytes passed through global operator new while the run's thread had
  /// util::AllocTracker enabled; 0 when the hook is compiled out or off.
  std::uint64_t bytes_allocated = 0;
  /// Spatial range queries answered by the mobility layer, and grid
  /// candidates scanned inside them (exact-filter work per query).
  std::uint64_t spatial_queries = 0;
  std::uint64_t spatial_candidates_scanned = 0;
  /// Motion-segment cache refreshes (leg/pause boundary crossings); between
  /// refreshes every position lookup is a branch-light inline interpolation.
  std::uint64_t segment_refreshes = 0;
  /// Carrier-sense cells visited by sensed_busy_until (cell-aggregated scan
  /// instead of the global in-flight list).
  std::uint64_t cs_cells_visited = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

}  // namespace rcast::sim
