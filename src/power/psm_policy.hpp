// Unmodified IEEE 802.11 PSM: nodes consistently operate in PS mode.
//
// The overhearing *level* of each packet is chosen by the sender (DSR's
// OverhearingMap): with the standard ATIM subtype (kNone) neighbors sleep;
// with kUnconditional they all stay awake. The receiver-side policy below
// only answers the randomized case, which a plain-PSM node declines — it has
// no Rcast logic.
#pragma once

#include "mac/mac_types.hpp"

namespace rcast::power {

class PsmPolicy final : public mac::PowerPolicy {
 public:
  bool always_awake() const override { return false; }
  bool ps_mode_now(sim::Time) override { return true; }
  bool should_overhear(mac::NodeId, mac::OverhearingMode,
                       sim::Time) override {
    return false;
  }
};

}  // namespace rcast::power
