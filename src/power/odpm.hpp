// On-Demand Power Management (Zheng & Kravets, INFOCOM 2003), the paper's
// main comparator.
//
// A node switches to AM for a timeout after communication events: 5 s after
// receiving a RREP, 2 s after sending/receiving/forwarding a data packet
// (the values used in the Rcast paper). Neighbor power-management modes are
// learned passively from the PwrMgt bit of decoded frames, so beliefs can be
// stale; a failed immediate transmission invalidates the belief and the MAC
// falls back to the ATIM path (reproducing the paper's criticism of ODPM).
#pragma once

#include <unordered_map>

#include "mac/mac_types.hpp"
#include "stats/telemetry.hpp"

namespace rcast::power {

struct OdpmConfig {
  sim::Time rrep_am_timeout = 5 * sim::kSecond;
  sim::Time data_am_timeout = 2 * sim::kSecond;
  /// How long a heard PwrMgt=AM bit is trusted.
  sim::Time belief_timeout = 2 * sim::kSecond;
  /// An AM node overhearing a data packet refreshes its data timeout: AM is
  /// "sticky" near traffic, the behaviour the Rcast paper's Figs. 5-6 show
  /// (busy-region ODPM nodes pinned at always-on energy).
  bool refresh_on_overhear = true;
};

class OdpmPolicy final : public mac::PowerPolicy {
 public:
  explicit OdpmPolicy(const OdpmConfig& config = {}) : cfg_(config) {}

  /// Attach the telemetry bus (may be null); `self` identifies this node in
  /// the emitted power events.
  void set_telemetry(stats::TelemetryBus* bus, mac::NodeId self) {
    telemetry_ = bus;
    self_ = self;
  }

  bool always_awake() const override { return false; }

  bool ps_mode_now(sim::Time now) override { return now >= am_until_; }

  bool should_overhear(mac::NodeId, mac::OverhearingMode,
                       sim::Time) override {
    // ODPM does not randomize: a PS-mode ODPM node sleeps through other
    // nodes' data. (AM-mode nodes overhear for free at the MAC tap.)
    return false;
  }

  bool believes_awake(mac::NodeId neighbor, sim::Time now) override {
    const auto it = beliefs_.find(neighbor);
    if (it == beliefs_.end()) return false;
    return it->second.am && now - it->second.heard <= cfg_.belief_timeout;
  }

  void on_immediate_send_failed(mac::NodeId neighbor) override {
    const auto it = beliefs_.find(neighbor);
    if (it != beliefs_.end()) it->second.am = false;
  }

  void on_frame_decoded(const mac::MacFrame& frame, sim::Time now) override {
    auto& b = beliefs_[frame.src];
    b.am = frame.pwr_mgt_am;
    b.heard = now;
  }

  void on_routing_event(mac::RoutingEvent ev, sim::Time now) override {
    sim::Time timeout = 0;
    switch (ev) {
      case mac::RoutingEvent::kRrepReceived:
        timeout = cfg_.rrep_am_timeout;
        break;
      case mac::RoutingEvent::kDataReceived:
      case mac::RoutingEvent::kDataForwarded:
      case mac::RoutingEvent::kDataSent:
        timeout = cfg_.data_am_timeout;
        break;
      case mac::RoutingEvent::kDataOverheard:
        // Only refreshes an already-running AM period; a PS node is asleep
        // during data transfers and cannot overhear in the first place.
        if (!cfg_.refresh_on_overhear || now >= am_until_) return;
        timeout = cfg_.data_am_timeout;
        break;
    }
    const bool was_ps = now >= am_until_;
    if (now + timeout > am_until_) am_until_ = now + timeout;
    if (was_ps && am_until_ > now && telemetry_ != nullptr) {
      telemetry_->on_am_window(self_, am_until_, now);
    }
  }

  sim::Time am_until() const { return am_until_; }

 private:
  struct Belief {
    bool am = false;
    sim::Time heard = 0;
  };

  OdpmConfig cfg_;
  stats::TelemetryBus* telemetry_ = nullptr;
  mac::NodeId self_ = 0;
  sim::Time am_until_ = 0;
  std::unordered_map<mac::NodeId, Belief> beliefs_;
};

}  // namespace rcast::power
