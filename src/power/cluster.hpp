// LEACH-style clustered duty-cycling (Heinzelman et al., adapted to the
// 802.11 PSM substrate): time is divided into rounds; at each round boundary
// every node independently elects itself cluster head with probability
// ch_fraction scaled by its residual battery fraction, subject to a cooldown
// of ~1/ch_fraction rounds so headship rotates. Heads stay in active mode
// for the round and announce themselves on the existing MAC broadcast path;
// members duty-cycle through PSM and only trust the announced head to be
// awake for immediate sends.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "energy/energy_model.hpp"
#include "mac/mac_types.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rcast::power {

struct ClusterConfig {
  /// Round length: heads rotate at this cadence.
  sim::Time round = 20 * sim::kSecond;
  /// Desired fraction of nodes acting as cluster head per round (LEACH's P).
  double ch_fraction = 0.05;
};

/// Cluster-head announcement, broadcast at round start. Policy-private: the
/// MAC shows it to every power policy via on_frame_decoded and then drops it
/// before the routing layer.
struct ClusterAnnounce final : mac::NetDatagram {
  mac::NodeId head = 0;
  std::int64_t size_bits() const override { return 16 * 8; }
  bool policy_private() const override { return true; }
};

class ClusterPowerPolicy final : public mac::PowerPolicy {
 public:
  using BroadcastFn = std::function<void(mac::NetDatagramPtr)>;

  /// One CH-election entry per round (golden-trace tests).
  struct Election {
    std::uint64_t round = 0;
    bool is_head = false;
  };

  ClusterPowerPolicy(const ClusterConfig& config, sim::Simulator& simulator,
                     mac::NodeId id, Rng rng,
                     energy::EnergyMeter* meter = nullptr)
      : cfg_(config),
        sim_(simulator),
        id_(id),
        rng_(rng),
        meter_(meter),
        cooldown_(static_cast<std::uint64_t>(std::max<long long>(
            1, std::llround(1.0 / std::max(config.ch_fraction, 1e-4)) - 1))),
        rounds_since_head_(cooldown_),  // everyone eligible in round 0
        timer_(simulator, [this] { on_round(); }) {
    RCAST_REQUIRE(cfg_.round > 0);
    RCAST_REQUIRE(cfg_.ch_fraction > 0.0 && cfg_.ch_fraction <= 1.0);
    timer_.start(sim_.now(), cfg_.round);
  }

  /// Wired by the scenario: hands an announcement to this node's MAC as a
  /// broadcast data frame. Elections before this is set skip the announce.
  void set_broadcast(BroadcastFn fn) { broadcast_ = std::move(fn); }

  bool always_awake() const override { return false; }

  /// Heads serve their cluster in active mode; members duty-cycle.
  bool ps_mode_now(sim::Time) override { return !is_head_; }

  /// Members never overhear: clustering minimizes member radio on-time.
  bool should_overhear(mac::NodeId, mac::OverhearingMode,
                       sim::Time) override {
    return false;
  }

  /// Announcements arrive as broadcasts; everyone listens for them.
  bool should_receive_broadcast(mac::NodeId, sim::Time) override {
    return true;
  }

  /// Only the announced head is trusted to be awake outside ATIM windows.
  bool believes_awake(mac::NodeId neighbor, sim::Time) override {
    return head_known_ && neighbor == head_;
  }

  void on_immediate_send_failed(mac::NodeId neighbor) override {
    if (head_known_ && neighbor == head_) head_known_ = false;
  }

  void on_frame_decoded(const mac::MacFrame& frame, sim::Time) override {
    if (frame.kind != mac::FrameKind::kData || frame.datagram == nullptr) {
      return;
    }
    const auto* a = dynamic_cast<const ClusterAnnounce*>(frame.datagram.get());
    if (a == nullptr || a->head == id_) return;
    head_ = a->head;
    head_known_ = true;
  }

  bool is_head() const { return is_head_; }
  const std::vector<Election>& election_log() const { return log_; }

 private:
  void on_round() {
    // The draw happens every round regardless of eligibility so the stream
    // stays aligned across nodes with different headship histories.
    const double draw = rng_.uniform01();
    double p = cfg_.ch_fraction;
    if (meter_ != nullptr) p *= meter_->battery_fraction(sim_.now());
    const bool eligible = rounds_since_head_ >= cooldown_;
    is_head_ = eligible && draw < p;
    head_known_ = false;  // members re-learn the head each round
    if (is_head_) {
      rounds_since_head_ = 0;
      if (broadcast_) {
        auto a = std::make_shared<ClusterAnnounce>();
        a->head = id_;
        broadcast_(std::move(a));
      }
    } else {
      ++rounds_since_head_;
    }
    log_.push_back(Election{round_index_, is_head_});
    ++round_index_;
  }

  ClusterConfig cfg_;
  sim::Simulator& sim_;
  mac::NodeId id_;
  Rng rng_;
  energy::EnergyMeter* meter_;
  BroadcastFn broadcast_;
  std::uint64_t cooldown_;
  std::uint64_t rounds_since_head_;
  std::uint64_t round_index_ = 0;
  bool is_head_ = false;
  bool head_known_ = false;
  mac::NodeId head_ = mac::kBroadcastId;
  std::vector<Election> log_;
  sim::PeriodicTimer timer_;  // last member: cancelled before state dies
};

}  // namespace rcast::power
