// Plain IEEE 802.11 without PSM: the paper's "802.11" baseline. The radio
// never sleeps, every packet is transmitted immediately, and overhearing is
// free (an always-awake radio decodes everything in range).
#pragma once

#include "mac/mac_types.hpp"

namespace rcast::power {

class AlwaysOnPolicy final : public mac::PowerPolicy {
 public:
  bool always_awake() const override { return true; }
  bool ps_mode_now(sim::Time) override { return false; }
  bool should_overhear(mac::NodeId, mac::OverhearingMode,
                       sim::Time) override {
    return true;  // never consulted: there are no ATIM windows
  }
  bool believes_awake(mac::NodeId, sim::Time) override {
    return true;  // every neighbor is always awake too
  }
};

}  // namespace rcast::power
