// Read path of the serving daemon: a thread-safe view over one or more
// (shard) JSONL result files, each fronted by a ResultIndex sidecar, plus a
// digest-keyed cache of seed-averaged aggregates.
//
// Lookup semantics mirror the campaign loader exactly: when the same job
// index appears in several files (or several times in one file — a torn
// write superseded by a re-run), the last-scanned record wins, and
// aggregates fold the winning records in job-index order through
// scenario::RunAverager — so the CSV this service exports is byte-identical
// to `rcast_campaign export` over the merged store.
//
// Cache invalidation: refresh() re-scans the files for appended records
// (the daemon calls it when it observes journal growth) and drops exactly
// the cache entries whose cell gained records; untouched cells stay warm.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/result_store.hpp"
#include "serving/result_index.hpp"

namespace rcast::serving {

/// Aggregate-cache observability for /status.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
};

/// Conjunctive filter over the grid coordinates the 80-byte index records
/// carry. Unset fields match everything; doubles compare exactly (the
/// values come from the manifest, not from arithmetic). A seed constraint
/// selects individual records *within* cells, so filtered aggregates with a
/// seed bypass the cell cache; all other fields are cell-constant and keep
/// cached rows usable.
struct AggregateFilter {
  std::optional<std::uint8_t> scheme;
  std::optional<std::uint8_t> routing;
  std::optional<std::uint8_t> mobility;  // mobility_models() ordinal
  std::optional<std::uint8_t> traffic;   // traffic_patterns() ordinal
  std::optional<std::uint32_t> nodes;
  std::optional<std::uint32_t> flows;
  std::optional<double> rate_pps;
  std::optional<double> pause_s;
  std::optional<double> duration_s;
  std::optional<std::uint64_t> seed;

  bool empty() const {
    return !scheme && !routing && !mobility && !traffic && !nodes && !flows &&
           !rate_pps && !pause_s && !duration_s && !seed;
  }

  bool matches(const IndexEntry& e) const {
    return (!scheme || *scheme == e.scheme) &&
           (!routing || *routing == e.routing) &&
           (!mobility || *mobility == e.mobility) &&
           (!traffic || *traffic == e.traffic) &&
           (!nodes || *nodes == e.nodes) && (!flows || *flows == e.flows) &&
           (!rate_pps || *rate_pps == e.rate_pps) &&
           (!pause_s || *pause_s == e.pause_s) &&
           (!duration_s || *duration_s == e.duration_s) &&
           (!seed || *seed == e.seed);
  }
};

class ResultService {
 public:
  /// Opens (building/extending sidecars as needed) every file in `paths`.
  /// Later files win job-index collisions, so pass shards in shard order.
  explicit ResultService(std::vector<std::string> paths);

  /// The winning record with this cfg/v2 digest, as its raw JSONL line
  /// (already valid JSON); nullopt if unknown.
  std::optional<std::string> result_json(std::uint64_t cfg_digest);

  /// Seed-averaged aggregate of one cell/v2 digest, memoized. nullopt if
  /// the cell has no records.
  std::optional<campaign::AggregateRow> aggregate_cell(
      std::uint64_t cell_digest);

  /// Aggregate CSV over every winning record that passes `filter` (default:
  /// all of them — byte-identical to `rcast_campaign export` on the merged
  /// store). Rows keep first-appearance cell order, so a filtered export is
  /// exactly the unfiltered one with non-matching rows removed — except
  /// under a seed constraint, which recomputes each row from the matching
  /// subset of records.
  std::string aggregate_csv(const AggregateFilter& filter = {});

  /// Re-scans every file for appended records and invalidates the cache
  /// entries of cells that grew. Returns the number of new records seen.
  std::size_t refresh();

  /// Winning records (distinct job indices) across all files — superseded
  /// duplicates are not counted.
  std::size_t record_count() const;

  CacheStats cache_stats() const;

 private:
  /// The last-scanned record for one job index: which file it lives in plus
  /// its full index entry (extent, digests, and the grid coordinates the
  /// aggregate filter matches against).
  struct Winner {
    std::size_t file = 0;
    IndexEntry entry;
  };

  // All private methods assume mu_ is held.
  void absorb_new_entries(std::size_t file,
                          const std::vector<IndexEntry>& entries,
                          std::size_t first_new);
  std::string read_line(std::size_t file, std::uint64_t offset,
                        std::uint32_t length);
  campaign::AggregateRow fold_cell(std::uint64_t cell_digest);
  campaign::AggregateRow fold_cell_subset(std::uint64_t cell_digest,
                                          const AggregateFilter& filter,
                                          bool& any);

  mutable std::mutex mu_;
  std::vector<std::string> paths_;
  std::vector<ResultIndex> indexes_;
  std::unordered_map<std::size_t, Winner> winner_by_job_;
  std::unordered_map<std::uint64_t, std::size_t> job_by_cfg_;  // digest -> job
  // Job indices per cell; kept sorted lazily at fold time.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> jobs_by_cell_;
  std::unordered_map<std::uint64_t, campaign::AggregateRow> cache_;
  CacheStats stats_;
};

}  // namespace rcast::serving
