// Binary index sidecar over a campaign JSONL results file.
//
// The campaign store answers every lookup by re-parsing the whole JSONL —
// fine for a bench run, linear-scan-slow for a serving daemon fielding
// thousands of queries against a 100k-record store. The sidecar
// (`<results>.jsonl.idx`) holds one fixed-width 80-byte record per JSONL
// line: the line's byte extent plus the two digests (cfg/v2, cell/v2) and
// the classic grid coordinates, so point and cell lookups become a hash
// probe plus one seek instead of a scan.
//
// Format (little-endian, offsets in bytes):
//   header, 16 B:  "rcastidx" | u32 version (1) | u32 record size (80)
//   record, 80 B:   0 u64 job        8 u64 offset    16 u64 cfg_digest
//                  24 u64 cell      32 u32 length    36 u8 scheme
//                  37 u8 routing    38 u8 mobility   39 u8 traffic
//                  40 u32 nodes     44 u32 flows     48 f64 rate_pps
//                  56 f64 pause_s   64 f64 duration  72 u64 seed
//
// Bytes 38/39 were zero padding before the policy-registry split; they now
// carry the mobility/traffic registry ordinals, whose value 0 is the
// pre-split default (rwp / cbr) — old sidecars stay valid unmodified.
//
// Deliberately no record count in the header: the count is derived from the
// file size, so an append crash leaves at worst a torn trailing record that
// the next open truncates — and a rebuild from the JSONL alone reproduces
// the sidecar byte-for-byte (the --reindex test pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/result_store.hpp"
#include "serving/mapped_file.hpp"

namespace rcast::serving {

class IndexError : public std::runtime_error {
 public:
  explicit IndexError(const std::string& what) : std::runtime_error(what) {}
};

/// One indexed JSONL record. Numeric digests are the FNV-1a values whose
/// `%016llx` renderings appear in the JSONL ("cfg_digest", cell).
struct IndexEntry {
  std::uint64_t job = 0;
  std::uint64_t offset = 0;      // line start in the JSONL
  std::uint64_t cfg_digest = 0;  // seed included (cfg/v2)
  std::uint64_t cell_digest = 0; // seed excluded (cell/v2)
  std::uint32_t length = 0;      // line length excluding '\n'
  std::uint8_t scheme = 0;       // scenario::Scheme
  std::uint8_t routing = 0;      // scenario::RoutingProtocol
  std::uint8_t mobility = 0;     // mobility_models() registry ordinal
  std::uint8_t traffic = 0;      // traffic_patterns() registry ordinal
  std::uint32_t nodes = 0;
  std::uint32_t flows = 0;
  double rate_pps = 0.0;
  double pause_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
};

/// Parses a 16-hex-digit digest rendering back to its integer value.
std::uint64_t digest_to_u64(std::string_view hex);

class ResultIndex {
 public:
  static std::string sidecar_path(const std::string& jsonl_path) {
    return jsonl_path + ".idx";
  }

  /// Opens the sidecar of `jsonl_path`, creating or repairing it as needed:
  /// a missing/corrupt/stale sidecar is rebuilt from the JSONL, a valid one
  /// is extended with entries for any JSONL bytes appended since it was
  /// written. The result always mirrors the JSONL's current complete lines.
  static ResultIndex open(const std::string& jsonl_path);

  /// Deletes and rebuilds the sidecar from the JSONL alone (--reindex).
  static ResultIndex rebuild(const std::string& jsonl_path);

  /// Entries in JSONL (append) order.
  const std::vector<IndexEntry>& entries() const { return entries_; }

  /// JSONL bytes covered by the index (end of the last indexed line).
  std::uint64_t indexed_bytes() const { return indexed_bytes_; }

  /// Last-appended entry with this cfg digest (point lookup), or nullptr.
  const IndexEntry* find_cfg(std::uint64_t cfg_digest) const;

  /// Every entry of one aggregation cell, in append order.
  std::vector<const IndexEntry*> find_cell(std::uint64_t cell_digest) const;

  /// Absorbs records appended since open()/the last refresh and indexes
  /// them. Returns how many entries were added. The daemon calls this when
  /// it notices journal growth.
  ///
  /// Two sources, tried in order:
  ///  1. The mmapped sidecar — when another process (a campaign writer with
  ///     its own ResultIndex) keeps the sidecar in lockstep with the JSONL,
  ///     new records are adopted straight from the mapping: one fstat, zero
  ///     reads, zero JSON parsing.
  ///  2. The JSONL itself — any complete lines the sidecar does not cover
  ///     yet are parsed and appended to the sidecar, exactly as before.
  std::size_t refresh();

  /// Indexes one record the caller just appended to the JSONL — the
  /// in-process fast path (ResultStore::append returns the extent). The
  /// entry must describe bytes at indexed_bytes().
  void append(const IndexEntry& e);

  const std::string& jsonl_path() const { return jsonl_path_; }

 private:
  ResultIndex() = default;

  void insert_maps(std::size_t entry_idx);
  void append_to_sidecar(const IndexEntry& e);
  std::size_t index_new_lines(bool write_sidecar);
  std::size_t absorb_from_sidecar();

  std::string jsonl_path_;
  std::string idx_path_;
  std::vector<IndexEntry> entries_;
  std::uint64_t indexed_bytes_ = 0;
  /// Lazily-opened read map of the sidecar, used by refresh() to adopt
  /// records an external writer appended without re-reading the file.
  MappedFile sidecar_map_;
  /// True once refresh() has adopted a record it did not write itself:
  /// another process owns the sidecar, so the JSONL fallback must stop
  /// appending records (they would duplicate the writer's).
  bool sidecar_external_ = false;
  std::unordered_map<std::uint64_t, std::size_t> by_cfg_;  // last wins
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_cell_;
};

/// Serializes one entry to its 80-byte on-disk form.
void encode_entry(const IndexEntry& e, unsigned char out[80]);
IndexEntry decode_entry(const unsigned char in[80]);

/// Builds an IndexEntry from a parsed JSONL record and its extent.
IndexEntry entry_from_record(const campaign::JobRecord& rec,
                             std::uint64_t offset, std::uint32_t length);

}  // namespace rcast::serving
