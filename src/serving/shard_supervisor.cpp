#include "serving/shard_supervisor.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/wait.h>
#include <unistd.h>

namespace rcast::serving {

pid_t ShardSupervisor::spawn(const std::vector<std::string>& argv) {
  // Build the char* vector before forking: nothing between fork() and
  // execv() may allocate (other threads may hold the heap lock).
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec failed; _exit (not exit) — no atexit handlers in the child.
    ::_exit(127);
  }
  return pid;
}

void ShardSupervisor::start(
    const std::vector<std::vector<std::string>>& argvs) {
  std::lock_guard<std::mutex> lock(mu_);
  argvs_ = argvs;
  workers_.assign(argvs_.size(), WorkerStatus{});
  for (std::size_t i = 0; i < argvs_.size(); ++i) {
    workers_[i].pid = spawn(argvs_[i]);
    workers_[i].running = true;
  }
}

bool ShardSupervisor::wait_all() {
  for (;;) {
    int wstatus = 0;
    const pid_t pid = ::waitpid(-1, &wstatus, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      if (errno == ECHILD) break;  // no children left
      throw std::runtime_error(std::string("waitpid failed: ") +
                               std::strerror(errno));
    }

    std::lock_guard<std::mutex> lock(mu_);
    std::size_t idx = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].running && workers_[i].pid == pid) {
        idx = i;
        break;
      }
    }
    if (idx == workers_.size()) continue;  // not ours (shouldn't happen)
    WorkerStatus& w = workers_[idx];

    if (WIFEXITED(wstatus)) {
      w.running = false;
      w.exit_code = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
      if (w.respawns < max_respawns_) {
        ++w.respawns;
        w.pid = spawn(argvs_[idx]);  // resume from the shard journal
      } else {
        w.running = false;
        w.gave_up = true;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& w : workers_) {
    if (w.running || w.gave_up || w.exit_code != 0) return false;
  }
  return true;
}

std::vector<WorkerStatus> ShardSupervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_;
}

}  // namespace rcast::serving
