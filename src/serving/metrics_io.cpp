#include "serving/metrics_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/json.hpp"

namespace rcast::serving {

namespace {

// Field table so to/from stay in lockstep; order is the wire order.
struct Field {
  const char* name;
  std::uint64_t stats::LiveSnapshot::* member;
};

constexpr Field kFields[] = {
    {"phy_tx", &stats::LiveSnapshot::phy_tx},
    {"phy_rx_ok", &stats::LiveSnapshot::phy_rx_ok},
    {"phy_rx_lost", &stats::LiveSnapshot::phy_rx_lost},
    {"atim_tx", &stats::LiveSnapshot::atim_tx},
    {"overhear_commits", &stats::LiveSnapshot::overhear_commits},
    {"overhear_declines", &stats::LiveSnapshot::overhear_declines},
    {"mac_sleeps", &stats::LiveSnapshot::mac_sleeps},
    {"data_tx_attempts", &stats::LiveSnapshot::data_tx_attempts},
    {"data_tx_failed", &stats::LiveSnapshot::data_tx_failed},
    {"queue_drops", &stats::LiveSnapshot::queue_drops},
    {"data_originated", &stats::LiveSnapshot::data_originated},
    {"data_delivered", &stats::LiveSnapshot::data_delivered},
    {"data_dropped", &stats::LiveSnapshot::data_dropped},
    {"control_tx", &stats::LiveSnapshot::control_tx},
    {"jobs_completed", &stats::LiveSnapshot::jobs_completed},
    {"jobs_failed", &stats::LiveSnapshot::jobs_failed},
};

}  // namespace

std::string snapshot_to_json(const stats::LiveSnapshot& s) {
  campaign::json::Writer w;
  w.begin_object();
  for (const Field& f : kFields) w.key(f.name).value(s.*f.member);
  w.end_object();
  return w.take();
}

std::optional<stats::LiveSnapshot> snapshot_from_json(
    const std::string& text) {
  try {
    const campaign::json::Value v = campaign::json::parse(text);
    stats::LiveSnapshot s;
    for (const Field& f : kFields) {
      if (const campaign::json::Value* m = v.find(f.name)) {
        s.*f.member = m->as_u64();
      }
    }
    return s;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void write_snapshot_file(const std::string& path,
                         const stats::LiveSnapshot& s) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // metrics are best-effort; never fail a commit
    out << snapshot_to_json(s) << '\n';
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

std::optional<stats::LiveSnapshot> read_snapshot_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return snapshot_from_json(buf.str());
}

}  // namespace rcast::serving
