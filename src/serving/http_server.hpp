// Minimal dependency-free HTTP/1.1 server for the serving daemon.
//
// Scope is exactly what rcast_campaignd needs: GET requests with query
// strings, keep-alive, fixed Content-Length responses, and chunked
// transfer-encoding for streaming endpoints (/metrics). One listener thread
// accepts connections onto an fd queue drained by a small worker pool; each
// worker owns its connection for the request/response loop, so a slow
// client never blocks the accept path. POSIX sockets only — this file is
// not built on Windows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rcast::serving {

class HttpError : public std::runtime_error {
 public:
  explicit HttpError(const std::string& what) : std::runtime_error(what) {}
};

struct HttpRequest {
  std::string method;
  std::string path;                          // decoded, without query string
  std::map<std::string, std::string> query;  // decoded key=value pairs
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Streaming mode: when set, `body` is ignored and the response is sent
  /// with chunked transfer-encoding. The callback is invoked repeatedly to
  /// produce the next chunk; returning false (or an empty chunk) ends the
  /// stream. The callback runs on the connection's worker thread.
  std::function<bool(std::string&)> next_chunk;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// listener + `threads` connection workers. Throws HttpError on bind
  /// failure. The handler may be called from several workers concurrently.
  HttpServer(std::uint16_t port, Handler handler, std::size_t threads = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the kernel's pick when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, drains workers, closes the listener. Idempotent.
  void stop();

  /// Requests served so far (for /status and tests).
  std::uint64_t requests_served() const;

 private:
  void listen_loop();
  void worker_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread listener_;
  std::vector<std::thread> workers_;
  // pimpl-free shared state lives in the .cpp via these opaque members.
  struct Queue;
  Queue* queue_ = nullptr;
};

/// Percent-decodes one URL component ('+' becomes a space).
std::string url_decode(std::string_view s);

}  // namespace rcast::serving
