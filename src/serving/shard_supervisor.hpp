// Worker-shard supervisor: forks one process per shard and babysits the
// fleet until every shard has exited normally.
//
// The recovery model leans entirely on the campaign journal: a worker is an
// idempotent, resumable unit of work, so when one dies to a signal (kill
// -9, OOM, segfault) the supervisor simply re-execs the same argv and the
// new process resumes from its shard journal — re-running at most the jobs
// whose commit lines were lost, whose re-produced records the store's
// last-wins dedupe absorbs. Exports stay byte-identical either way.
//
// fork() is followed immediately by execv() (no allocation or locking in
// the child), so the supervisor is safe to run alongside the daemon's HTTP
// worker threads.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace rcast::serving {

struct WorkerStatus {
  pid_t pid = -1;        // current (or last) pid; -1 before first spawn
  bool running = false;
  int respawns = 0;      // signal-death recoveries so far
  int exit_code = -1;    // valid once !running and exited normally
  bool gave_up = false;  // died to a signal more than max_respawns times
};

class ShardSupervisor {
 public:
  /// `max_respawns`: how many signal deaths each worker may survive before
  /// the supervisor gives up on it (normal nonzero exits are never
  /// respawned — a worker that *fails* is distinct from one that was
  /// *killed*).
  explicit ShardSupervisor(int max_respawns = 5)
      : max_respawns_(max_respawns) {}

  /// Spawns one process per argv (argv[0] is the program path). Throws
  /// std::runtime_error if any fork/exec fails outright.
  void start(const std::vector<std::vector<std::string>>& argvs);

  /// Blocks until every worker has exited normally or been given up on.
  /// Returns true iff all workers exited with status 0.
  bool wait_all();

  /// Point-in-time fleet view (safe from other threads, e.g. /status).
  std::vector<WorkerStatus> status() const;

 private:
  pid_t spawn(const std::vector<std::string>& argv);

  int max_respawns_ = 5;
  mutable std::mutex mu_;
  std::vector<std::vector<std::string>> argvs_;
  std::vector<WorkerStatus> workers_;
};

}  // namespace rcast::serving
