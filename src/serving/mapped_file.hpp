// Read-only memory map over a growing file.
//
// The serving daemon polls result sidecars for records appended by the
// campaign writer. A stream re-read pays a syscall per poll plus a copy of
// every byte; a map pays one fstat, and only remaps when the file actually
// grew. The mapping is MAP_SHARED, so bytes another process appended are
// visible without any read call at all.
//
// Growth handling is remap-on-grow: refresh() fstats the file and, when the
// size increased, replaces the old mapping with one covering the new size.
// Callers must treat data() as invalidated by refresh(). Shrinking or
// replaced files (inode swap) are reported via refresh() returning a smaller
// size; the caller decides whether that means "rebuild".
#pragma once

#include <cstddef>
#include <string>

namespace rcast::serving {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      close();
      swap(other);
    }
    return *this;
  }

  /// Opens `path` read-only and maps its current contents. Returns false if
  /// the file cannot be opened (it may not exist yet); an empty file opens
  /// successfully with size() == 0.
  bool open(const std::string& path);

  /// Re-checks the file size and remaps if it grew. Returns the number of
  /// bytes now visible through data(). Invalidates previous data() pointers.
  std::size_t refresh();

  bool valid() const { return fd_ >= 0; }
  const unsigned char* data() const {
    return static_cast<const unsigned char*>(map_);
  }
  std::size_t size() const { return file_size_; }

  void close();

 private:
  void swap(MappedFile& other) noexcept;

  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;   // length passed to mmap (0 = no mapping)
  std::size_t file_size_ = 0;  // file size at the last refresh
};

}  // namespace rcast::serving
