#include "serving/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace rcast::serving {

void MappedFile::swap(MappedFile& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(map_, other.map_);
  std::swap(map_size_, other.map_size_);
  std::swap(file_size_, other.file_size_);
}

bool MappedFile::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) return false;
  refresh();
  return true;
}

std::size_t MappedFile::refresh() {
  if (fd_ < 0) return 0;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return file_size_;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > map_size_) {
    // Grew past the mapping: replace it. (A fresh map is simpler and no
    // slower than mremap for the poll cadence involved, and keeps this
    // portable to platforms without MREMAP_MAYMOVE.)
    void* m = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) return file_size_;  // keep serving the old view
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = m;
    map_size_ = size;
  }
  // A shrink keeps the larger mapping (reads past EOF within the mapping
  // would fault, so file_size_ is the authoritative bound).
  file_size_ = size;
  return file_size_;
}

void MappedFile::close() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  map_ = nullptr;
  map_size_ = 0;
  file_size_ = 0;
}

}  // namespace rcast::serving
