#include "serving/result_service.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_set>

namespace rcast::serving {

ResultService::ResultService(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
  indexes_.reserve(paths_.size());
  for (std::size_t fi = 0; fi < paths_.size(); ++fi) {
    indexes_.push_back(ResultIndex::open(paths_[fi]));
    absorb_new_entries(fi, indexes_[fi].entries(), 0);
  }
}

void ResultService::absorb_new_entries(std::size_t file,
                                       const std::vector<IndexEntry>& entries,
                                       std::size_t first_new) {
  for (std::size_t i = first_new; i < entries.size(); ++i) {
    const IndexEntry& e = entries[i];
    winner_by_job_[static_cast<std::size_t>(e.job)] = Winner{file, e};
    job_by_cfg_[e.cfg_digest] = static_cast<std::size_t>(e.job);
    jobs_by_cell_[e.cell_digest].push_back(static_cast<std::size_t>(e.job));
    // Precise invalidation: only the cell that gained a record goes cold.
    if (cache_.erase(e.cell_digest) > 0) ++stats_.invalidations;
  }
}

std::string ResultService::read_line(std::size_t file, std::uint64_t offset,
                                     std::uint32_t length) {
  std::ifstream in(paths_[file], std::ios::binary);
  if (!in) {
    throw IndexError("cannot open results file: " + paths_[file]);
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string buf(length, '\0');
  if (!in.read(buf.data(), static_cast<std::streamsize>(length))) {
    throw IndexError(paths_[file] + ": short read at offset " +
                     std::to_string(offset));
  }
  return buf;
}

std::optional<std::string> ResultService::result_json(
    std::uint64_t cfg_digest) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto jit = job_by_cfg_.find(cfg_digest);
  if (jit == job_by_cfg_.end()) return std::nullopt;
  const auto wit = winner_by_job_.find(jit->second);
  if (wit == winner_by_job_.end()) return std::nullopt;
  const Winner& w = wit->second;
  return read_line(w.file, w.entry.offset, w.entry.length);
}

campaign::AggregateRow ResultService::fold_cell(std::uint64_t cell_digest) {
  std::vector<std::size_t>& jobs = jobs_by_cell_[cell_digest];
  std::sort(jobs.begin(), jobs.end());
  jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());

  campaign::AggregateAccumulator acc;
  for (const std::size_t job : jobs) {
    const Winner& w = winner_by_job_.at(job);
    // A superseded record can leave a stale membership if the job's winner
    // moved cells (only possible with hand-mixed stores); skip it.
    if (w.entry.cell_digest != cell_digest) continue;
    acc.add(campaign::parse_result_line(
        read_line(w.file, w.entry.offset, w.entry.length)));
  }
  if (acc.records() == 0) {
    throw IndexError("cell has no live records");
  }
  return acc.rows().front();
}

campaign::AggregateRow ResultService::fold_cell_subset(
    std::uint64_t cell_digest, const AggregateFilter& filter, bool& any) {
  std::vector<std::size_t>& jobs = jobs_by_cell_[cell_digest];
  std::sort(jobs.begin(), jobs.end());
  jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());

  campaign::AggregateAccumulator acc;
  for (const std::size_t job : jobs) {
    const Winner& w = winner_by_job_.at(job);
    if (w.entry.cell_digest != cell_digest || !filter.matches(w.entry)) {
      continue;
    }
    acc.add(campaign::parse_result_line(
        read_line(w.file, w.entry.offset, w.entry.length)));
  }
  any = acc.records() != 0;
  return any ? acc.rows().front() : campaign::AggregateRow{};
}

std::optional<campaign::AggregateRow> ResultService::aggregate_cell(
    std::uint64_t cell_digest) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto cit = cache_.find(cell_digest);
  if (cit != cache_.end()) {
    ++stats_.hits;
    return cit->second;
  }
  const auto jit = jobs_by_cell_.find(cell_digest);
  if (jit == jobs_by_cell_.end() || jit->second.empty()) return std::nullopt;
  ++stats_.misses;
  campaign::AggregateRow row = fold_cell(cell_digest);
  cache_.emplace(cell_digest, row);
  return row;
}

std::string ResultService::aggregate_csv(const AggregateFilter& filter) {
  std::lock_guard<std::mutex> lock(mu_);
  // Winning records in job-index order give cells in first-appearance
  // order, exactly like the campaign export; each cell folds through the
  // cache so repeated exports and warm /aggregate queries share work.
  //
  // Filtering happens per cell: every grid field except the seed is
  // cell-constant, so the winner that introduces a cell decides for the
  // whole cell and cached rows stay valid. Only a seed constraint cuts
  // *inside* cells — those rows fold from the matching subset, uncached.
  std::vector<std::size_t> jobs;
  jobs.reserve(winner_by_job_.size());
  for (const auto& [job, w] : winner_by_job_) jobs.push_back(job);
  std::sort(jobs.begin(), jobs.end());
  AggregateFilter cell_filter = filter;
  cell_filter.seed.reset();  // seeds vary within a cell; checked per record
  std::unordered_set<std::uint64_t> seen_cells;
  std::vector<campaign::AggregateRow> rows;
  for (const std::size_t job : jobs) {
    const Winner& w = winner_by_job_.at(job);
    const std::uint64_t cell = w.entry.cell_digest;
    if (!seen_cells.insert(cell).second) continue;
    if (!cell_filter.matches(w.entry)) continue;
    if (filter.seed) {
      bool any = false;
      campaign::AggregateRow row = fold_cell_subset(cell, filter, any);
      if (any) rows.push_back(std::move(row));
      continue;
    }
    const auto cit = cache_.find(cell);
    if (cit != cache_.end()) {
      ++stats_.hits;
      rows.push_back(cit->second);
    } else {
      ++stats_.misses;
      campaign::AggregateRow row = fold_cell(cell);
      cache_.emplace(cell, row);
      rows.push_back(std::move(row));
    }
  }
  return campaign::aggregate_csv(rows);
}

std::size_t ResultService::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t added = 0;
  for (std::size_t fi = 0; fi < indexes_.size(); ++fi) {
    const std::size_t before = indexes_[fi].entries().size();
    added += indexes_[fi].refresh();
    absorb_new_entries(fi, indexes_[fi].entries(), before);
  }
  return added;
}

std::size_t ResultService::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return winner_by_job_.size();
}

CacheStats ResultService::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rcast::serving
