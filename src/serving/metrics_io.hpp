// LiveSnapshot <-> JSON, plus the tmp+rename snapshot files worker shards
// publish so the daemon's /metrics endpoint can merge a fleet-wide view
// without sharing memory with the workers.
#pragma once

#include <optional>
#include <string>

#include "stats/live_counters.hpp"

namespace rcast::serving {

/// Renders a snapshot as a flat JSON object (fixed field order).
std::string snapshot_to_json(const stats::LiveSnapshot& s);

/// Parses snapshot_to_json output; nullopt on malformed/unreadable input
/// (a worker mid-rename or not yet started — callers treat it as zeros).
std::optional<stats::LiveSnapshot> snapshot_from_json(const std::string& text);

/// Atomically publishes a snapshot to `path` (write `path.tmp`, rename).
void write_snapshot_file(const std::string& path,
                         const stats::LiveSnapshot& s);

/// Reads a snapshot file; nullopt if absent or torn.
std::optional<stats::LiveSnapshot> read_snapshot_file(const std::string& path);

}  // namespace rcast::serving
