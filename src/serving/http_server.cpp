#include "serving/http_server.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rcast::serving {

namespace {

constexpr int kRecvTimeoutSec = 5;
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "";
  }
}

// send() with MSG_NOSIGNAL so a vanished client yields an error return
// instead of SIGPIPE killing the daemon.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::string& s) {
  return send_all(fd, s.data(), s.size());
}

}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct HttpServer::Queue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> fds;
  bool closed = false;
  std::atomic<std::uint64_t> served{0};
};

HttpServer::HttpServer(std::uint16_t port, Handler handler,
                       std::size_t threads)
    : handler_(std::move(handler)), queue_(new Queue) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    delete queue_;
    throw HttpError("socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    delete queue_;
    throw HttpError("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  if (threads == 0) threads = 1;
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  listener_ = std::thread([this] { listen_loop(); });
}

HttpServer::~HttpServer() {
  stop();
  delete queue_;
}

void HttpServer::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_->mu);
    if (queue_->closed) return;
    queue_->closed = true;
  }
  // shutdown() unblocks the accept() in the listener thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  queue_->cv.notify_all();
  if (listener_.joinable()) listener_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::lock_guard<std::mutex> lock(queue_->mu);
  for (const int fd : queue_->fds) ::close(fd);
  queue_->fds.clear();
}

std::uint64_t HttpServer::requests_served() const {
  return queue_->served.load(std::memory_order_relaxed);
}

void HttpServer::listen_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(queue_->mu);
      if (queue_->closed) return;
      continue;  // transient accept failure
    }
    timeval tv{};
    tv.tv_sec = kRecvTimeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(queue_->mu);
      if (queue_->closed) {
        ::close(fd);
        return;
      }
      queue_->fds.push_back(fd);
    }
    queue_->cv.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_->mu);
      queue_->cv.wait(lock,
                      [this] { return queue_->closed || !queue_->fds.empty(); });
      if (queue_->fds.empty()) return;  // closed and drained
      fd = queue_->fds.front();
      queue_->fds.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {  // keep-alive loop: one iteration per request
    // Read until the end of the header block.
    std::size_t header_end;
    while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
      if (buf.size() > kMaxHeaderBytes) return;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // closed, errored, or idle past the timeout
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string head = buf.substr(0, header_end);
    buf.erase(0, header_end + 4);

    // Request line: METHOD SP target SP version.
    HttpRequest req;
    bool close_after = false;
    {
      const auto line_end = head.find("\r\n");
      const std::string line = head.substr(0, line_end);
      const auto sp1 = line.find(' ');
      const auto sp2 = line.rfind(' ');
      if (sp1 == std::string::npos || sp2 <= sp1) {
        HttpResponse bad;
        bad.status = 400;
        bad.content_type = "text/plain";
        bad.body = "bad request\n";
        std::string out = "HTTP/1.1 400 Bad Request\r\nContent-Type: "
                          "text/plain\r\nContent-Length: 12\r\nConnection: "
                          "close\r\n\r\nbad request\n";
        send_all(fd, out);
        return;
      }
      req.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = line.substr(sp2 + 1);
      if (version == "HTTP/1.0") close_after = true;
      if (head.find("Connection: close") != std::string::npos ||
          head.find("connection: close") != std::string::npos) {
        close_after = true;
      }

      const auto qpos = target.find('?');
      req.path = url_decode(qpos == std::string::npos
                                ? std::string_view(target)
                                : std::string_view(target).substr(0, qpos));
      if (qpos != std::string::npos) {
        std::string_view qs = std::string_view(target).substr(qpos + 1);
        while (!qs.empty()) {
          const auto amp = qs.find('&');
          const std::string_view pair =
              amp == std::string_view::npos ? qs : qs.substr(0, amp);
          qs = amp == std::string_view::npos ? std::string_view{}
                                             : qs.substr(amp + 1);
          if (pair.empty()) continue;
          const auto eq = pair.find('=');
          if (eq == std::string_view::npos) {
            req.query[url_decode(pair)] = "";
          } else {
            req.query[url_decode(pair.substr(0, eq))] =
                url_decode(pair.substr(eq + 1));
          }
        }
      }
    }
    // Request bodies are ignored (every endpoint is a GET); a pipelined
    // body would land in `buf` and fail to parse as a request line, closing
    // the connection — acceptable for this daemon's audience.

    HttpResponse resp;
    if (req.method != "GET" && req.method != "HEAD") {
      resp.status = 405;
      resp.content_type = "text/plain";
      resp.body = "method not allowed\n";
    } else {
      try {
        resp = handler_(req);
      } catch (const std::exception& e) {
        resp = HttpResponse{};
        resp.status = 500;
        resp.content_type = "text/plain";
        resp.body = std::string("error: ") + e.what() + "\n";
        resp.next_chunk = nullptr;
      }
    }
    queue_->served.fetch_add(1, std::memory_order_relaxed);

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      status_text(resp.status) + "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    if (resp.next_chunk) {
      out += "Transfer-Encoding: chunked\r\n";
      out += close_after ? "Connection: close\r\n\r\n"
                         : "Connection: keep-alive\r\n\r\n";
      if (!send_all(fd, out)) return;
      if (req.method != "HEAD") {
        std::string piece;
        for (;;) {
          piece.clear();
          const bool more = resp.next_chunk(piece);
          if (!piece.empty()) {
            char size_line[32];
            std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                          piece.size());
            if (!send_all(fd, size_line, std::strlen(size_line)) ||
                !send_all(fd, piece) || !send_all(fd, "\r\n", 2)) {
              return;
            }
          }
          if (!more) break;
        }
        if (!send_all(fd, "0\r\n\r\n", 5)) return;
      }
    } else {
      out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
      out += close_after ? "Connection: close\r\n\r\n"
                         : "Connection: keep-alive\r\n\r\n";
      if (!send_all(fd, out)) return;
      if (req.method != "HEAD" && !send_all(fd, resp.body)) return;
    }
    if (close_after) return;
  }
}

}  // namespace rcast::serving
