#include "serving/result_index.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "scenario/policy_registry.hpp"

namespace rcast::serving {

namespace {

constexpr char kMagic[8] = {'r', 'c', 'a', 's', 't', 'i', 'd', 'x'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordSize = 80;
constexpr std::size_t kHeaderSize = 16;

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_f64(unsigned char* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(p, bits);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t digest_to_u64(std::string_view hex) {
  if (hex.size() != 16) throw IndexError("digest must be 16 hex digits");
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw IndexError("digest must be 16 hex digits");
  }
  return v;
}

void encode_entry(const IndexEntry& e, unsigned char out[80]) {
  std::memset(out, 0, kRecordSize);
  put_u64(out + 0, e.job);
  put_u64(out + 8, e.offset);
  put_u64(out + 16, e.cfg_digest);
  put_u64(out + 24, e.cell_digest);
  put_u32(out + 32, e.length);
  out[36] = e.scheme;
  out[37] = e.routing;
  out[38] = e.mobility;
  out[39] = e.traffic;
  put_u32(out + 40, e.nodes);
  put_u32(out + 44, e.flows);
  put_f64(out + 48, e.rate_pps);
  put_f64(out + 56, e.pause_s);
  put_f64(out + 64, e.duration_s);
  put_u64(out + 72, e.seed);
}

IndexEntry decode_entry(const unsigned char in[80]) {
  IndexEntry e;
  e.job = get_u64(in + 0);
  e.offset = get_u64(in + 8);
  e.cfg_digest = get_u64(in + 16);
  e.cell_digest = get_u64(in + 24);
  e.length = get_u32(in + 32);
  e.scheme = in[36];
  e.routing = in[37];
  e.mobility = in[38];
  e.traffic = in[39];
  e.nodes = get_u32(in + 40);
  e.flows = get_u32(in + 44);
  e.rate_pps = get_f64(in + 48);
  e.pause_s = get_f64(in + 56);
  e.duration_s = get_f64(in + 64);
  e.seed = get_u64(in + 72);
  return e;
}

IndexEntry entry_from_record(const campaign::JobRecord& rec,
                             std::uint64_t offset, std::uint32_t length) {
  IndexEntry e;
  e.job = rec.job;
  e.offset = offset;
  e.cfg_digest = digest_to_u64(rec.digest);
  e.cell_digest = digest_to_u64(rec.cell);
  e.length = length;
  e.scheme = static_cast<std::uint8_t>(rec.scheme);
  e.routing = static_cast<std::uint8_t>(rec.routing);
  e.mobility = static_cast<std::uint8_t>(
      scenario::mobility_models().index_of(rec.mobility));
  e.traffic = static_cast<std::uint8_t>(
      scenario::traffic_patterns().index_of(rec.traffic));
  e.nodes = static_cast<std::uint32_t>(rec.nodes);
  e.flows = static_cast<std::uint32_t>(rec.flows);
  e.rate_pps = rec.rate_pps;
  e.pause_s = rec.pause_s;
  e.duration_s = rec.duration_s;
  e.seed = rec.seed;
  return e;
}

ResultIndex ResultIndex::open(const std::string& jsonl_path) {
  ResultIndex idx;
  idx.jsonl_path_ = jsonl_path;
  idx.idx_path_ = sidecar_path(jsonl_path);

  // Try to adopt an existing sidecar. Any defect — bad magic, wrong
  // version/record size, or entries past the current JSONL size (the JSONL
  // was truncated or replaced) — falls back to a rebuild: the sidecar is
  // derived data, never authoritative.
  bool adopted = false;
  {
    std::ifstream in(idx.idx_path_, std::ios::binary);
    if (in) {
      unsigned char header[kHeaderSize];
      if (in.read(reinterpret_cast<char*>(header), kHeaderSize) &&
          std::memcmp(header, kMagic, sizeof(kMagic)) == 0 &&
          get_u32(header + 8) == kVersion &&
          get_u32(header + 12) == kRecordSize) {
        std::error_code ec;
        const auto jsonl_size =
            std::filesystem::file_size(jsonl_path, ec);
        const std::uint64_t limit = ec ? 0 : jsonl_size;
        adopted = true;
        unsigned char rec[kRecordSize];
        while (in.read(reinterpret_cast<char*>(rec), kRecordSize)) {
          const IndexEntry e = decode_entry(rec);
          // Offsets must be monotone and inside the JSONL (blank lines can
          // leave gaps); anything else is stale or corrupt — rebuild below.
          // Bounds-check without `offset + length` so a corrupt offset near
          // 2^64 cannot wrap past the limit.
          if (e.offset < idx.indexed_bytes_ || e.offset > limit ||
              std::uint64_t{e.length} + 1 > limit - e.offset) {
            adopted = false;
            break;
          }
          idx.entries_.push_back(e);
          idx.insert_maps(idx.entries_.size() - 1);
          idx.indexed_bytes_ = e.offset + e.length + 1;
        }
        // A torn trailing record (short read) is expected after a crash
        // and simply ignored; refresh() re-derives it from the JSONL.
      }
    }
  }

  if (!adopted) {
    idx.entries_.clear();
    idx.by_cfg_.clear();
    idx.by_cell_.clear();
    idx.indexed_bytes_ = 0;
    std::error_code ec;
    std::filesystem::remove(idx.idx_path_, ec);
    std::ofstream out(idx.idx_path_, std::ios::binary | std::ios::trunc);
    if (!out) throw IndexError("cannot create index " + idx.idx_path_);
    unsigned char header[kHeaderSize];
    std::memcpy(header, kMagic, sizeof(kMagic));
    put_u32(header + 8, kVersion);
    put_u32(header + 12, kRecordSize);
    out.write(reinterpret_cast<const char*>(header), kHeaderSize);
    if (!out) throw IndexError("cannot write index header " + idx.idx_path_);
  } else {
    // Drop any torn trailing record so appends start on a record boundary.
    std::error_code ec;
    const auto size = std::filesystem::file_size(idx.idx_path_, ec);
    if (!ec) {
      const std::uint64_t want =
          kHeaderSize + idx.entries_.size() * std::uint64_t{kRecordSize};
      if (size > want) std::filesystem::resize_file(idx.idx_path_, want, ec);
    }
  }

  idx.index_new_lines(/*write_sidecar=*/true);
  return idx;
}

ResultIndex ResultIndex::rebuild(const std::string& jsonl_path) {
  std::error_code ec;
  std::filesystem::remove(sidecar_path(jsonl_path), ec);
  return open(jsonl_path);
}

const IndexEntry* ResultIndex::find_cfg(std::uint64_t cfg_digest) const {
  const auto it = by_cfg_.find(cfg_digest);
  return it == by_cfg_.end() ? nullptr : &entries_[it->second];
}

std::vector<const IndexEntry*> ResultIndex::find_cell(
    std::uint64_t cell_digest) const {
  std::vector<const IndexEntry*> out;
  const auto it = by_cell_.find(cell_digest);
  if (it == by_cell_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t i : it->second) out.push_back(&entries_[i]);
  return out;
}

std::size_t ResultIndex::refresh() {
  // Fast path first: adopt records from the mmapped sidecar. Then scan the
  // JSONL for any complete lines the sidecar does not cover — but once an
  // external sidecar writer is known, stop appending our own records (each
  // would duplicate the one the writer is about to append).
  std::size_t added = absorb_from_sidecar();
  added += index_new_lines(/*write_sidecar=*/!sidecar_external_);
  return added;
}

std::size_t ResultIndex::absorb_from_sidecar() {
  if (!sidecar_map_.valid() && !sidecar_map_.open(idx_path_)) return 0;
  const std::size_t size = sidecar_map_.refresh();
  if (size < kHeaderSize + kRecordSize) return 0;
  const unsigned char* base = sidecar_map_.data();
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0 ||
      get_u32(base + 8) != kVersion || get_u32(base + 12) != kRecordSize) {
    // Replaced or foreign file behind our descriptor; the JSONL scan still
    // serves lookups, and the next open() repairs the sidecar.
    return 0;
  }
  // Sidecar records and our entries both mirror the JSONL's line sequence,
  // so record i corresponds to entries_[i]; anything past entries_.size()
  // was appended by an external writer. The torn trailing record (partial
  // write) falls out of the floor division and waits for the next refresh.
  const std::size_t records = (size - kHeaderSize) / kRecordSize;
  if (records <= entries_.size()) return 0;
  std::error_code ec;
  const auto jsonl_size = std::filesystem::file_size(jsonl_path_, ec);
  const std::uint64_t limit = ec ? 0 : jsonl_size;
  std::size_t added = 0;
  for (std::size_t i = entries_.size(); i < records; ++i) {
    const IndexEntry e = decode_entry(base + kHeaderSize + i * kRecordSize);
    // Same acceptance test as open(): monotone offsets, extent fully inside
    // the JSONL. A failing record either raced ahead of its JSONL flush or
    // is garbage — stop here; a later refresh (or a rebuild) resolves it.
    if (e.offset < indexed_bytes_ || e.offset > limit ||
        std::uint64_t{e.length} + 1 > limit - e.offset) {
      break;
    }
    entries_.push_back(e);
    insert_maps(entries_.size() - 1);
    indexed_bytes_ = e.offset + e.length + 1;
    ++added;
  }
  if (added > 0) sidecar_external_ = true;
  return added;
}

void ResultIndex::append(const IndexEntry& e) {
  if (e.offset < indexed_bytes_) {
    throw IndexError("index append out of order (offset " +
                     std::to_string(e.offset) + ", already indexed through " +
                     std::to_string(indexed_bytes_) + ")");
  }
  entries_.push_back(e);
  insert_maps(entries_.size() - 1);
  indexed_bytes_ = e.offset + e.length + 1;
  append_to_sidecar(e);
}

void ResultIndex::insert_maps(std::size_t entry_idx) {
  const IndexEntry& e = entries_[entry_idx];
  by_cfg_[e.cfg_digest] = entry_idx;  // later entries win, like the loader
  by_cell_[e.cell_digest].push_back(entry_idx);
}

void ResultIndex::append_to_sidecar(const IndexEntry& e) {
  std::ofstream out(idx_path_, std::ios::binary | std::ios::app);
  if (!out) throw IndexError("cannot append to index " + idx_path_);
  unsigned char rec[kRecordSize];
  encode_entry(e, rec);
  out.write(reinterpret_cast<const char*>(rec), kRecordSize);
  if (!out) throw IndexError("index write failed: " + idx_path_);
}

std::size_t ResultIndex::index_new_lines(bool write_sidecar) {
  std::ifstream in(jsonl_path_, std::ios::binary);
  if (!in) {
    // No JSONL yet (fresh campaign): an empty index is correct.
    return 0;
  }
  in.seekg(static_cast<std::streamoff>(indexed_bytes_));
  std::size_t added = 0;
  std::string line;
  std::string batch;  // sidecar records, written in one append at the end
  std::uint64_t offset = indexed_bytes_;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // torn trailing line: wait for the newline
    const std::uint64_t start = offset;
    offset += line.size() + 1;
    if (line.empty()) {
      // Keep indexed_bytes_ in lockstep even across blank lines so offset
      // bookkeeping matches the JSONL exactly.
      indexed_bytes_ = offset;
      continue;
    }
    const campaign::JobRecord rec = campaign::parse_result_line(line);
    IndexEntry e = entry_from_record(
        rec, start, static_cast<std::uint32_t>(line.size()));
    entries_.push_back(e);
    insert_maps(entries_.size() - 1);
    indexed_bytes_ = offset;
    unsigned char rec_bytes[kRecordSize];
    encode_entry(e, rec_bytes);
    batch.append(reinterpret_cast<const char*>(rec_bytes), kRecordSize);
    ++added;
  }
  if (!batch.empty() && write_sidecar) {
    std::ofstream out(idx_path_, std::ios::binary | std::ios::app);
    if (!out) throw IndexError("cannot append to index " + idx_path_);
    out.write(batch.data(), static_cast<std::streamsize>(batch.size()));
    if (!out) throw IndexError("index write failed: " + idx_path_);
  }
  return added;
}

}  // namespace rcast::serving
