#include "mobility/rpgm.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcast::mobility {

RpgmModel::RpgmModel(const RpgmConfig& config, Rng reference_rng,
                     Rng member_rng)
    : cfg_(config),
      ref_(RandomWaypointConfig{config.world, config.min_speed_mps,
                                config.max_speed_mps, config.pause},
           reference_rng),
      rng_(member_rng) {
  RCAST_REQUIRE(cfg_.span_m >= 0.0);
  RCAST_REQUIRE(cfg_.span_rate_mps >= 0.0);
  // Initial scatter around the reference point.
  off_from_ = off_to_ = {rng_.uniform(-cfg_.span_m, cfg_.span_m),
                         rng_.uniform(-cfg_.span_m, cfg_.span_m)};
  const MotionSegment rs = ref_.segment_at(0);
  cur_ = MotionSegment{clamp_world(rs.from + off_from_),
                       clamp_world(rs.to + off_to_), rs.begin, rs.end,
                       rs.expires};
}

geo::Vec2 RpgmModel::clamp_world(geo::Vec2 p) const {
  return {std::clamp(p.x, 0.0, cfg_.world.width),
          std::clamp(p.y, 0.0, cfg_.world.height)};
}

void RpgmModel::mirror(const MotionSegment& rs) {
  if (rs.end > rs.begin) {
    // Reference leg: drift the offset toward a fresh draw, capped so the
    // drift alone never exceeds span_rate_mps.
    off_from_ = off_to_;
    const geo::Vec2 raw = {rng_.uniform(-cfg_.span_m, cfg_.span_m),
                           rng_.uniform(-cfg_.span_m, cfg_.span_m)};
    const double leg_s = sim::to_seconds(rs.end - rs.begin);
    const double max_d = cfg_.span_rate_mps * leg_s;
    const geo::Vec2 delta = raw - off_from_;
    const double d = delta.norm();
    off_to_ = (d > max_d && d > 0.0) ? off_from_ + delta * (max_d / d) : raw;
  } else {
    // Reference pause (or zero-length leg): the member settles where its
    // offset left it. No draw, so the member stream advances only per leg.
    off_from_ = off_to_;
  }
  cur_ = MotionSegment{clamp_world(rs.from + off_from_),
                       clamp_world(rs.to + off_to_), rs.begin, rs.end,
                       rs.expires};
}

void RpgmModel::advance_past(sim::Time t) {
  RCAST_REQUIRE_MSG(t >= last_query_, "mobility queried backwards in time");
  last_query_ = t;
  // Walk the reference trajectory one segment at a time, always querying at
  // the previous segment's expiry: the query sequence — and with it every
  // RNG draw — is independent of the caller's query times.
  while (t >= cur_.expires) {
    mirror(ref_.segment_at(cur_.expires));
  }
}

geo::Vec2 RpgmModel::position_at(sim::Time t) {
  advance_past(t);
  return cur_.eval(t);
}

MotionSegment RpgmModel::segment_at(sim::Time t) {
  advance_past(t);
  return cur_;
}

}  // namespace rcast::mobility
