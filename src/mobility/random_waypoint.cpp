#include "mobility/random_waypoint.hpp"

#include <algorithm>

namespace rcast::mobility {

RandomWaypointModel::RandomWaypointModel(const RandomWaypointConfig& config,
                                         Rng rng)
    : cfg_(config), rng_(rng) {
  RCAST_REQUIRE(cfg_.world.width > 0.0 && cfg_.world.height > 0.0);
  RCAST_REQUIRE(cfg_.min_speed_mps > 0.0);
  RCAST_REQUIRE(cfg_.max_speed_mps >= cfg_.min_speed_mps);
  RCAST_REQUIRE(cfg_.pause >= 0);
  from_ = to_ = {rng_.uniform(0.0, cfg_.world.width),
                 rng_.uniform(0.0, cfg_.world.height)};
  moving_ = false;
  leg_start_ = leg_end_ = 0;
  pause_end_ = cfg_.pause;
}

void RandomWaypointModel::start_next_leg() {
  from_ = to_;
  to_ = {rng_.uniform(0.0, cfg_.world.width),
         rng_.uniform(0.0, cfg_.world.height)};
  const double speed =
      rng_.uniform(cfg_.min_speed_mps, cfg_.max_speed_mps);
  const double dist = geo::distance(from_, to_);
  leg_start_ = pause_end_;
  leg_end_ = leg_start_ + sim::from_seconds(dist / speed);
  pause_end_ = leg_end_ + cfg_.pause;
  moving_ = true;
}

void RandomWaypointModel::advance_past(sim::Time t) {
  RCAST_REQUIRE_MSG(t >= last_query_, "mobility queried backwards in time");
  last_query_ = t;
  while (t >= pause_end_) start_next_leg();
  if (moving_ && t >= leg_end_) {
    // Inside the pause that follows the current leg.
    from_ = to_;
    moving_ = false;
  }
}

geo::Vec2 RandomWaypointModel::position_at(sim::Time t) {
  advance_past(t);
  if (!moving_ || t <= leg_start_) return from_;
  if (leg_end_ <= leg_start_) return to_;  // zero-length leg (dest ~= origin)
  const double frac = static_cast<double>(t - leg_start_) /
                      static_cast<double>(leg_end_ - leg_start_);
  return from_ + (to_ - from_) * std::min(frac, 1.0);
}

MotionSegment RandomWaypointModel::segment_at(sim::Time t) {
  advance_past(t);
  MotionSegment s;
  if (moving_) {
    // The rest of the current leg. Expires at leg_end (not pause_end):
    // position_at returns the waypoint *exactly* once the leg is over, and
    // from + (to - from) * 1.0 is not guaranteed bit-equal to `to`.
    s.from = from_;
    s.to = to_;
    s.begin = leg_start_;
    s.end = leg_end_;
    s.expires = leg_end_;  // advance_past guarantees t < leg_end_ here
  } else {
    // Paused at a waypoint: constant until the pause ends.
    s.from = s.to = from_;
    s.begin = s.end = t;
    s.expires = pause_end_;  // advance_past guarantees t < pause_end_
  }
  return s;
}

bool RandomWaypointModel::paused_at(sim::Time t) {
  advance_past(t);
  return !moving_ || t <= leg_start_;
}

}  // namespace rcast::mobility
