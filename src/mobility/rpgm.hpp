// Reference Point Group Mobility (Hong et al.): nodes move in groups, each
// group following a logical reference point that itself performs random
// waypoint motion; every member holds a bounded random offset from the
// reference point that drifts slowly between waypoints.
//
// Implementation: each member owns a *private* RandomWaypointModel seeded
// identically for all members of its group, so the group's reference
// trajectory is reproduced in lockstep without shared mutable state (shard
// workers may query members of one group concurrently). The member walks the
// reference trajectory leg by leg at leg boundaries — never at caller query
// times — so its offset draws, and therefore its trajectory, are bit-exact
// regardless of the query pattern (the MotionSegment caching contract).
#pragma once

#include "geo/vec2.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rcast::mobility {

struct RpgmConfig {
  /// Reference-point kinematics (identical meaning to RandomWaypointConfig).
  geo::Rect world;
  double min_speed_mps = 0.1;
  double max_speed_mps = 20.0;
  sim::Time pause = 0;

  /// Maximum member offset from the reference point, per axis.
  double span_m = 100.0;
  /// Cap on how fast the offset may drift while the reference moves.
  double span_rate_mps = 2.0;
};

class RpgmModel final : public MobilityModel {
 public:
  /// `reference_rng` must be identical for every member of one group (it
  /// drives the shared reference trajectory); `member_rng` is per-node and
  /// drives this member's offsets.
  RpgmModel(const RpgmConfig& config, Rng reference_rng, Rng member_rng);

  geo::Vec2 position_at(sim::Time t) override;
  MotionSegment segment_at(sim::Time t) override;
  /// Reference speed plus the offset drift cap. World clamping only ever
  /// shrinks endpoint distances (projection onto a convex set), so this
  /// bound holds for the emitted segments too.
  double max_speed() const override {
    return cfg_.max_speed_mps + cfg_.span_rate_mps;
  }

 private:
  void advance_past(sim::Time t);
  /// Derives this member's segment from the reference segment starting at
  /// cur_.expires: settles the offset across pauses, drifts it (capped at
  /// span_rate_mps) across legs.
  void mirror(const MotionSegment& rs);
  geo::Vec2 clamp_world(geo::Vec2 p) const;

  RpgmConfig cfg_;
  RandomWaypointModel ref_;
  Rng rng_;
  geo::Vec2 off_from_;
  geo::Vec2 off_to_;
  MotionSegment cur_;
  sim::Time last_query_ = 0;
};

}  // namespace rcast::mobility
