// Tracks all nodes' positions and answers exact range queries.
//
// A uniform grid holds positions refreshed on a fixed period; between
// refreshes nodes can drift by at most max_speed * refresh_period, so range
// queries over-approximate with that slack against the grid and then filter
// with exact model positions. Queries are therefore exact while staying
// O(candidates) instead of O(n).
//
// Positions are computed from a per-node cache of the model's current
// piecewise-linear MotionSegment (refreshed lazily when a segment expires at
// a leg boundary), so the exact filter is a couple of fused multiply-adds
// per candidate instead of a virtual position_at call. Query results land in
// caller-provided scratch (or run through a callback), keeping the whole
// path allocation-free; the std::vector-returning overloads remain as
// conveniences for tests and tools off the hot path.
//
// Sharded runs (DESIGN.md §15): queries run concurrently from shard worker
// threads against read-only state. The two mutation paths move to the
// serial inter-window barrier — the periodic grid refresh becomes a
// barrier-time refresh, and segment expiry becomes a window bound: the
// registered window hook refreshes every segment expiring at or before the
// window start and caps the window at the earliest remaining expiry, so the
// lazy refresh branch in cached_position is unreachable while workers run.
// Perf counters land in per-shard slots (cache-line padded) merged on read.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "geo/grid_index.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/simulator.hpp"

namespace rcast::mobility {

using NodeId = geo::ItemId;

class MobilityManager {
 public:
  /// Counters for the spatial hot path (see sim::PerfCounters).
  struct GeoPerf {
    std::uint64_t spatial_queries = 0;
    std::uint64_t spatial_candidates_scanned = 0;
    std::uint64_t segment_refreshes = 0;
  };

  /// `refresh_period` bounds grid staleness (and thus query slack).
  MobilityManager(sim::Simulator& simulator, geo::Rect world,
                  double grid_cell_size,
                  sim::Time refresh_period = 100 * sim::kMillisecond);

  /// Registers a node with its mobility model; ids must be dense from 0.
  void add_node(NodeId id, std::unique_ptr<MobilityModel> model);

  std::size_t node_count() const { return segments_.size(); }
  const geo::Rect& world() const { return grid_.world(); }

  /// Exact position now.
  geo::Vec2 position(NodeId id) const {
    RCAST_REQUIRE(id < segments_.size());
    return cached_position(id, sim_.now(), perf_slot());
  }

  /// Invokes `fn(id, dist_sq)` for every node within `radius` of `center`
  /// now (excluding `exclude`; pass geo::GridIndex::npos to exclude
  /// nothing). dist_sq is the exact squared distance to `center`.
  /// Deterministic order, allocation-free.
  template <class Fn>
  void for_each_within(geo::Vec2 center, double radius, NodeId exclude,
                       Fn&& fn) const {
    // Anyone farther than radius + 2*slack from the last grid refresh cannot
    // be within radius now (both endpoints can have moved).
    const double slack =
        2.0 * max_speed_ * sim::to_seconds(sim_.now() - last_refresh_);
    const double r2 = radius * radius;
    const sim::Time now = sim_.now();
    GeoPerf& perf = perf_slot();
    ++perf.spatial_queries;
    grid_.for_each_within(center, radius + slack, exclude, [&](NodeId cand) {
      ++perf.spatial_candidates_scanned;
      const double d2 =
          geo::distance_sq(cached_position(cand, now, perf), center);
      if (d2 <= r2) fn(cand, d2);
    });
  }

  /// Appends the exact set of nodes within `radius` of a point to `out`
  /// (any push_back-able container; hot callers pass a reused SmallVec).
  template <class Out>
  void nodes_within(geo::Vec2 center, double radius, NodeId exclude,
                    Out& out) const {
    for_each_within(center, radius, exclude,
                    [&out](NodeId id, double) { out.push_back(id); });
  }

  /// Exact set of nodes within `radius` of a point (allocating convenience).
  std::vector<NodeId> nodes_within(geo::Vec2 center, double radius,
                                   NodeId exclude) const;

  /// Exact set of nodes within `radius` of node `id` (excluding id) now.
  std::vector<NodeId> neighbors_within(NodeId id, double radius) const;

  /// Exact count of nodes within `radius` of node `id` (excluding id) now;
  /// same semantics as neighbors_within().size() without materializing the
  /// set.
  std::size_t count_neighbors(NodeId id, double radius) const;

  /// True if the two nodes are within `radius` of each other now.
  bool in_range(NodeId a, NodeId b, double radius) const;

  /// Aggregated counters (per-shard query slots plus barrier-time work,
  /// summed in shard order).
  GeoPerf perf() const;

 private:
  struct alignas(64) PerfSlot {
    GeoPerf perf;
  };
  /// Lazy min-heap of (expires, id); an entry is stale when the segment has
  /// since been refreshed (expires no longer matches). Maintained only in
  /// sharded mode.
  using ExpiryHeap =
      std::priority_queue<std::pair<sim::Time, NodeId>,
                          std::vector<std::pair<sim::Time, NodeId>>,
                          std::greater<>>;

  void refresh_grid_at(sim::Time now);

  /// Barrier hook: refreshes segments expiring at or before `start`, runs
  /// the periodic grid refresh when due, and returns the window's upper
  /// bound (earliest remaining segment expiry, capped at `horizon_end`).
  sim::Time prepare_window(sim::Time start, sim::Time horizon_end);

  /// Position at `now` from the cached segment, refreshing it from the model
  /// when expired. `now` must be the current simulation time (models are
  /// queried monotonically). In sharded runs the refresh branch is
  /// unreachable from worker threads (prepare_window guarantees every
  /// segment outlives the window), so it only runs in serial contexts —
  /// where pushing the fresh expiry onto the heap is safe.
  geo::Vec2 cached_position(NodeId id, sim::Time now, GeoPerf& perf) const {
    MotionSegment& s = segments_[id];
    if (now >= s.expires) {
      s = models_[id]->segment_at(now);
      ++perf.segment_refreshes;
      if (sharded_ && s.expires != kSegmentNeverExpires) {
        expiry_heap_.emplace(s.expires, id);
      }
    }
    return s.eval(now);
  }

  GeoPerf& perf_slot() const { return perf_[sim_.current_shard()].perf; }

  sim::Simulator& sim_;
  geo::GridIndex grid_;
  std::vector<std::unique_ptr<MobilityModel>> models_;
  /// Per-node cached motion segment, evaluated inline on every position
  /// lookup; segments_[i] is refreshed from models_[i] when it expires.
  mutable std::vector<MotionSegment> segments_;
  double max_speed_ = 0.0;
  sim::Time refresh_period_;
  sim::Time last_refresh_ = 0;
  sim::PeriodicTimer refresh_timer_;
  bool sharded_ = false;
  mutable ExpiryHeap expiry_heap_;
  mutable std::vector<PerfSlot> perf_;
  /// Counters for barrier-time refreshes (which run on whichever worker
  /// thread arrives at the barrier last — attributing them to a shard slot
  /// would be nondeterministic).
  mutable GeoPerf barrier_perf_;
};

}  // namespace rcast::mobility
