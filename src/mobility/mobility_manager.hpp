// Tracks all nodes' positions and answers exact range queries.
//
// A uniform grid holds positions refreshed on a fixed period; between
// refreshes nodes can drift by at most max_speed * refresh_period, so range
// queries over-approximate with that slack against the grid and then filter
// with exact model positions. Queries are therefore exact while staying
// O(candidates) instead of O(n).
#pragma once

#include <memory>
#include <vector>

#include "geo/grid_index.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/simulator.hpp"

namespace rcast::mobility {

using NodeId = geo::ItemId;

class MobilityManager {
 public:
  /// `refresh_period` bounds grid staleness (and thus query slack).
  MobilityManager(sim::Simulator& simulator, geo::Rect world,
                  double grid_cell_size,
                  sim::Time refresh_period = 100 * sim::kMillisecond);

  /// Registers a node with its mobility model; ids must be dense from 0.
  void add_node(NodeId id, std::unique_ptr<MobilityModel> model);

  std::size_t node_count() const { return models_.size(); }

  /// Exact position now.
  geo::Vec2 position(NodeId id) const;

  /// Exact set of nodes within `radius` of node `id` (excluding id) now.
  std::vector<NodeId> neighbors_within(NodeId id, double radius) const;

  /// Exact set of nodes within `radius` of a point.
  std::vector<NodeId> nodes_within(geo::Vec2 center, double radius,
                                   NodeId exclude) const;

  /// True if the two nodes are within `radius` of each other now.
  bool in_range(NodeId a, NodeId b, double radius) const;

 private:
  void refresh_grid();

  sim::Simulator& sim_;
  geo::GridIndex grid_;
  std::vector<std::unique_ptr<MobilityModel>> models_;
  double max_speed_ = 0.0;
  sim::Time refresh_period_;
  sim::Time last_refresh_ = 0;
  sim::PeriodicTimer refresh_timer_;
  mutable std::vector<geo::ItemId> scratch_;
};

}  // namespace rcast::mobility
