// Per-node mobility models.
//
// Models are queried with monotonically non-decreasing simulation times (the
// simulator clock), which lets them generate their trajectory lazily and
// deterministically from a forked RNG stream.
#pragma once

#include "geo/vec2.hpp"
#include "sim/time.hpp"

namespace rcast::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Exact position at time t. t must be >= any previously queried time.
  virtual geo::Vec2 position_at(sim::Time t) = 0;

  /// Maximum speed this model can ever move at (m/s); used by spatial
  /// indexes to bound staleness slack. 0 for static models.
  virtual double max_speed() const = 0;
};

/// A node that never moves.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(geo::Vec2 pos) : pos_(pos) {}
  geo::Vec2 position_at(sim::Time) override { return pos_; }
  double max_speed() const override { return 0.0; }

 private:
  geo::Vec2 pos_;
};

}  // namespace rcast::mobility
