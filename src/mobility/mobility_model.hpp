// Per-node mobility models.
//
// Models are queried with monotonically non-decreasing simulation times (the
// simulator clock), which lets them generate their trajectory lazily and
// deterministically from a forked RNG stream.
//
// Besides the exact point query (position_at), a model can export its current
// piecewise-linear motion segment. Callers cache the segment and evaluate
// positions inline — no virtual dispatch — until it expires, which is what
// makes spatial queries over thousands of nodes cheap (see MobilityManager).
#pragma once

#include <limits>

#include "geo/vec2.hpp"
#include "sim/time.hpp"

namespace rcast::mobility {

/// One piece of a piecewise-linear trajectory: the node travels from `from`
/// (at time `begin`) to `to` (at time `end`), then rests at `to` until the
/// segment `expires`. Stationary stretches are encoded as from == to.
///
/// eval() reproduces MobilityModel::position_at bit-for-bit for any t in
/// [query time, expires): it is the same interpolation expression the models
/// use internally, so caching segments is purely representational and cannot
/// change simulation results.
struct MotionSegment {
  geo::Vec2 from;
  geo::Vec2 to;
  sim::Time begin = 0;
  sim::Time end = 0;      // motion ends; position == `to` afterwards
  sim::Time expires = 0;  // first time at which the segment must be refreshed

  geo::Vec2 eval(sim::Time t) const {
    if (t <= begin) return from;
    if (end <= begin) return to;  // zero-length leg (dest ~= origin)
    const double frac = static_cast<double>(t - begin) /
                        static_cast<double>(end - begin);
    return from + (to - from) * std::min(frac, 1.0);
  }
};

/// Expiry for segments that never change (static nodes).
inline constexpr sim::Time kSegmentNeverExpires =
    std::numeric_limits<sim::Time>::max();

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Exact position at time t. t must be >= any previously queried time.
  virtual geo::Vec2 position_at(sim::Time t) = 0;

  /// The motion segment covering time t (same monotonicity contract as
  /// position_at). segment_at(t).eval(u) must equal position_at(u) for all
  /// u in [t, expires). The default degenerates to a point segment that
  /// expires immediately, so models that only implement position_at stay
  /// correct (just uncached).
  virtual MotionSegment segment_at(sim::Time t) {
    const geo::Vec2 p = position_at(t);
    return MotionSegment{p, p, t, t, t};
  }

  /// Maximum speed this model can ever move at (m/s); used by spatial
  /// indexes to bound staleness slack. 0 for static models.
  virtual double max_speed() const = 0;
};

/// A node that never moves.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(geo::Vec2 pos) : pos_(pos) {}
  geo::Vec2 position_at(sim::Time) override { return pos_; }
  MotionSegment segment_at(sim::Time t) override {
    return MotionSegment{pos_, pos_, t, t, kSegmentNeverExpires};
  }
  double max_speed() const override { return 0.0; }

 private:
  geo::Vec2 pos_;
};

}  // namespace rcast::mobility
