// Random waypoint mobility (Johnson & Maltz), the model used in the paper:
// pick a uniform destination in the world, travel at a uniform random speed,
// pause for T_pause, repeat. T_pause equal to the simulation length yields
// the paper's "static scenario".
#pragma once

#include "geo/vec2.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rcast::mobility {

struct RandomWaypointConfig {
  geo::Rect world;
  double min_speed_mps = 0.1;   // >0 avoids the well-known stuck-node artifact
  double max_speed_mps = 20.0;  // paper's v_max
  sim::Time pause = 0;          // paper's T_pause
};

class RandomWaypointModel final : public MobilityModel {
 public:
  /// Starts at a uniform random position, initially paused for `pause`
  /// (ns-2 setdest semantics: nodes begin stationary, then move).
  RandomWaypointModel(const RandomWaypointConfig& config, Rng rng);

  geo::Vec2 position_at(sim::Time t) override;
  MotionSegment segment_at(sim::Time t) override;
  double max_speed() const override { return cfg_.max_speed_mps; }

  /// Current leg endpoints (for tests/visualization).
  geo::Vec2 leg_from() const { return from_; }
  geo::Vec2 leg_to() const { return to_; }
  bool paused_at(sim::Time t);

 private:
  void advance_past(sim::Time t);
  void start_next_leg();

  RandomWaypointConfig cfg_;
  Rng rng_;
  geo::Vec2 from_;
  geo::Vec2 to_;
  sim::Time leg_start_ = 0;
  sim::Time leg_end_ = 0;  // end of motion; pause follows until pause_end_
  sim::Time pause_end_ = 0;
  bool moving_ = false;
  sim::Time last_query_ = 0;
};

}  // namespace rcast::mobility
