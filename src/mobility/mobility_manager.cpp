#include "mobility/mobility_manager.hpp"

#include <algorithm>

namespace rcast::mobility {

MobilityManager::MobilityManager(sim::Simulator& simulator, geo::Rect world,
                                 double grid_cell_size,
                                 sim::Time refresh_period)
    : sim_(simulator),
      grid_(world, grid_cell_size),
      refresh_period_(refresh_period),
      refresh_timer_(simulator, [this] { refresh_grid(); }) {
  RCAST_REQUIRE(refresh_period > 0);
  refresh_timer_.start(simulator.now() + refresh_period, refresh_period);
}

void MobilityManager::add_node(NodeId id,
                               std::unique_ptr<MobilityModel> model) {
  RCAST_REQUIRE(model != nullptr);
  RCAST_REQUIRE_MSG(id == models_.size(), "node ids must be dense from 0");
  max_speed_ = std::max(max_speed_, model->max_speed());
  segments_.push_back(model->segment_at(sim_.now()));
  grid_.insert(id, segments_.back().eval(sim_.now()));
  models_.push_back(std::move(model));
  last_refresh_ = sim_.now();
}

void MobilityManager::refresh_grid() {
  const sim::Time now = sim_.now();
  for (NodeId id = 0; id < segments_.size(); ++id) {
    grid_.move(id, cached_position(id, now));
  }
  last_refresh_ = now;
}

std::vector<NodeId> MobilityManager::nodes_within(geo::Vec2 center,
                                                  double radius,
                                                  NodeId exclude) const {
  std::vector<NodeId> out;
  nodes_within(center, radius, exclude, out);
  return out;
}

std::vector<NodeId> MobilityManager::neighbors_within(NodeId id,
                                                      double radius) const {
  return nodes_within(position(id), radius, id);
}

std::size_t MobilityManager::count_neighbors(NodeId id, double radius) const {
  std::size_t n = 0;
  for_each_within(position(id), radius, id,
                  [&n](NodeId, double) { ++n; });
  return n;
}

bool MobilityManager::in_range(NodeId a, NodeId b, double radius) const {
  return geo::distance_sq(position(a), position(b)) <= radius * radius;
}

}  // namespace rcast::mobility
