#include "mobility/mobility_manager.hpp"

#include <algorithm>

#include "sim/sharded_executor.hpp"

namespace rcast::mobility {

MobilityManager::MobilityManager(sim::Simulator& simulator, geo::Rect world,
                                 double grid_cell_size,
                                 sim::Time refresh_period)
    : sim_(simulator),
      grid_(world, grid_cell_size),
      refresh_period_(refresh_period),
      refresh_timer_(simulator, [this] { refresh_grid_at(sim_.now()); }),
      sharded_(simulator.sharded()),
      perf_(simulator.shard_count()) {
  RCAST_REQUIRE(refresh_period > 0);
  if (sharded_) {
    // The periodic refresh event would be pinned to one shard's queue and
    // mutate state every other shard reads; run it at the serial barrier
    // instead, where it also bounds windows by segment expiry.
    sim_.executor()->add_window_hook(
        [this](sim::Time start, sim::Time horizon_end) {
          return prepare_window(start, horizon_end);
        });
  } else {
    refresh_timer_.start(simulator.now() + refresh_period, refresh_period);
  }
}

void MobilityManager::add_node(NodeId id,
                               std::unique_ptr<MobilityModel> model) {
  RCAST_REQUIRE(model != nullptr);
  RCAST_REQUIRE_MSG(id == models_.size(), "node ids must be dense from 0");
  max_speed_ = std::max(max_speed_, model->max_speed());
  segments_.push_back(model->segment_at(sim_.now()));
  grid_.insert(id, segments_.back().eval(sim_.now()));
  models_.push_back(std::move(model));
  if (sharded_ && segments_.back().expires != kSegmentNeverExpires) {
    expiry_heap_.emplace(segments_.back().expires, id);
  }
  last_refresh_ = sim_.now();
}

void MobilityManager::refresh_grid_at(sim::Time now) {
  for (NodeId id = 0; id < segments_.size(); ++id) {
    grid_.move(id, cached_position(id, now, barrier_perf_));
  }
  last_refresh_ = now;
}

sim::Time MobilityManager::prepare_window(sim::Time start,
                                          sim::Time horizon_end) {
  if (start - last_refresh_ >= refresh_period_) refresh_grid_at(start);
  // Refresh every segment expiring at or before the window start so no
  // worker-thread query can hit the lazy refresh branch mid-window; skip
  // stale heap entries (segment already refreshed, new expiry re-queued).
  while (!expiry_heap_.empty() && expiry_heap_.top().first <= start) {
    const auto [exp, id] = expiry_heap_.top();
    expiry_heap_.pop();
    if (segments_[id].expires != exp) continue;  // stale
    segments_[id] = models_[id]->segment_at(start);
    ++barrier_perf_.segment_refreshes;
    RCAST_REQUIRE_MSG(segments_[id].expires > start,
                      "sharded runs need forward-looking motion segments");
    if (segments_[id].expires != kSegmentNeverExpires) {
      expiry_heap_.emplace(segments_[id].expires, id);
    }
  }
  // Remaining earliest expiry bounds the window: within [start, bound) every
  // cached segment stays valid. Stale heads only under-tighten (the real
  // expiry is later), which costs a barrier, never correctness.
  if (!expiry_heap_.empty()) {
    return std::min(horizon_end, expiry_heap_.top().first);
  }
  return horizon_end;
}

std::vector<NodeId> MobilityManager::nodes_within(geo::Vec2 center,
                                                  double radius,
                                                  NodeId exclude) const {
  std::vector<NodeId> out;
  nodes_within(center, radius, exclude, out);
  return out;
}

std::vector<NodeId> MobilityManager::neighbors_within(NodeId id,
                                                      double radius) const {
  return nodes_within(position(id), radius, id);
}

std::size_t MobilityManager::count_neighbors(NodeId id, double radius) const {
  std::size_t n = 0;
  for_each_within(position(id), radius, id,
                  [&n](NodeId, double) { ++n; });
  return n;
}

bool MobilityManager::in_range(NodeId a, NodeId b, double radius) const {
  return geo::distance_sq(position(a), position(b)) <= radius * radius;
}

MobilityManager::GeoPerf MobilityManager::perf() const {
  GeoPerf total = barrier_perf_;
  for (const PerfSlot& slot : perf_) {
    total.spatial_queries += slot.perf.spatial_queries;
    total.spatial_candidates_scanned += slot.perf.spatial_candidates_scanned;
    total.segment_refreshes += slot.perf.segment_refreshes;
  }
  return total;
}

}  // namespace rcast::mobility
