#include "mobility/mobility_manager.hpp"

#include <algorithm>

namespace rcast::mobility {

MobilityManager::MobilityManager(sim::Simulator& simulator, geo::Rect world,
                                 double grid_cell_size,
                                 sim::Time refresh_period)
    : sim_(simulator),
      grid_(world, grid_cell_size),
      refresh_period_(refresh_period),
      refresh_timer_(simulator, [this] { refresh_grid(); }) {
  RCAST_REQUIRE(refresh_period > 0);
  refresh_timer_.start(simulator.now() + refresh_period, refresh_period);
}

void MobilityManager::add_node(NodeId id,
                               std::unique_ptr<MobilityModel> model) {
  RCAST_REQUIRE(model != nullptr);
  RCAST_REQUIRE_MSG(id == models_.size(), "node ids must be dense from 0");
  max_speed_ = std::max(max_speed_, model->max_speed());
  grid_.insert(id, model->position_at(sim_.now()));
  models_.push_back(std::move(model));
  last_refresh_ = sim_.now();
}

void MobilityManager::refresh_grid() {
  for (NodeId id = 0; id < models_.size(); ++id) {
    grid_.move(id, models_[id]->position_at(sim_.now()));
  }
  last_refresh_ = sim_.now();
}

geo::Vec2 MobilityManager::position(NodeId id) const {
  RCAST_REQUIRE(id < models_.size());
  return models_[id]->position_at(sim_.now());
}

std::vector<NodeId> MobilityManager::nodes_within(geo::Vec2 center,
                                                  double radius,
                                                  NodeId exclude) const {
  // Anyone farther than radius + 2*slack from the last grid refresh cannot
  // be within radius now (both endpoints can have moved).
  const double slack =
      2.0 * max_speed_ * sim::to_seconds(sim_.now() - last_refresh_);
  scratch_.clear();
  grid_.query(center, radius + slack, exclude, scratch_);
  std::vector<NodeId> out;
  out.reserve(scratch_.size());
  const double r2 = radius * radius;
  for (NodeId cand : scratch_) {
    if (geo::distance_sq(models_[cand]->position_at(sim_.now()), center) <=
        r2) {
      out.push_back(cand);
    }
  }
  return out;
}

std::vector<NodeId> MobilityManager::neighbors_within(NodeId id,
                                                      double radius) const {
  return nodes_within(position(id), radius, id);
}

bool MobilityManager::in_range(NodeId a, NodeId b, double radius) const {
  return geo::distance_sq(position(a), position(b)) <= radius * radius;
}

}  // namespace rcast::mobility
