#include "routing/aodv.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace rcast::routing {

namespace {

std::uint64_t rreq_key(NodeId origin, std::uint32_t id) {
  return (static_cast<std::uint64_t>(origin) << 32) | id;
}

const DsrPacket& as_pkt(const mac::NetDatagramPtr& pkt) {
  return *static_cast<const DsrPacket*>(pkt.get());
}

DsrPacketPtr as_pkt_ptr(const mac::NetDatagramPtr& pkt) {
  return std::static_pointer_cast<const DsrPacket>(pkt);
}

// Sequence-number comparison with wraparound (RFC 3561 §6.1).
bool seq_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

}  // namespace

Aodv::Aodv(sim::Simulator& simulator, mac::Mac& mac_layer,
           const AodvConfig& config, Rng rng, mac::PowerPolicy* policy)
    : sim_(simulator),
      mac_(mac_layer),
      cfg_(config),
      rng_(rng),
      policy_(policy),
      hello_timer_(simulator, [this] { on_hello_timer(); }),
      buffer_expiry_(simulator, [this] { expire_buffer(); }) {
  mac_.set_callbacks(this);
  // Desynchronize hello phases across nodes.
  const sim::Time phase = sim::from_millis(rng_.uniform(0.0, 1000.0));
  hello_timer_.start(simulator.now() + cfg_.hello_interval + phase,
                     cfg_.hello_interval);
  buffer_expiry_.start(simulator.now() + sim::kSecond, sim::kSecond);
}

// --------------------------------------------------------------------------
// Routing table
// --------------------------------------------------------------------------

bool Aodv::route_usable(NodeId dst) const {
  const auto it = table_.find(dst);
  return it != table_.end() && it->second.valid &&
         it->second.expires > sim_.now();
}

bool Aodv::has_route(NodeId dst) const { return route_usable(dst); }

NodeId Aodv::next_hop(NodeId dst) const {
  const auto it = table_.find(dst);
  RCAST_REQUIRE(it != table_.end());
  return it->second.next_hop;
}

bool Aodv::update_route(NodeId dst, NodeId via, std::uint32_t dest_seq,
                        std::uint32_t hops, sim::Time lifetime) {
  Route& r = table_[dst];
  const bool fresher = seq_newer(dest_seq, r.dest_seq);
  const bool same_seq_shorter = dest_seq == r.dest_seq && hops < r.hop_count;
  if (r.valid && !fresher && !same_seq_shorter && r.expires > sim_.now()) {
    // Existing route wins; still extend its lifetime if it is the same one.
    if (r.next_hop == via && r.hop_count == hops) {
      r.expires = std::max(r.expires, sim_.now() + lifetime);
    }
    return false;
  }
  r.next_hop = via;
  r.dest_seq = dest_seq;
  r.hop_count = hops;
  r.expires = sim_.now() + lifetime;
  r.valid = true;
  return true;
}

void Aodv::refresh_route(NodeId dst) {
  auto it = table_.find(dst);
  if (it == table_.end() || !it->second.valid) return;
  it->second.expires =
      std::max(it->second.expires, sim_.now() + cfg_.active_route_timeout);
}

// --------------------------------------------------------------------------
// Origination
// --------------------------------------------------------------------------

void Aodv::send_data(NodeId dst, std::int64_t payload_bits,
                     std::uint32_t flow_id, std::uint32_t app_seq) {
  RCAST_REQUIRE(dst != id());
  RCAST_REQUIRE(payload_bits >= 0);
  auto pkt = std::make_shared<DsrPacket>();
  pkt->type = PacketType::kData;
  pkt->src = id();
  pkt->dst = dst;
  pkt->payload_bits = payload_bits;
  pkt->flow_id = flow_id;
  pkt->app_seq = app_seq;
  pkt->origin_time = sim_.now();
  ++stats_.data_originated;
  if (observer_ != nullptr) observer_->on_data_originated(*pkt, sim_.now());
  try_send(std::move(pkt));
}

void Aodv::try_send(DsrPacketPtr pkt) {
  if (route_usable(pkt->dst)) {
    auto out = std::make_shared<DsrPacket>(*pkt);
    if (out->first_tx_time == 0) out->first_tx_time = sim_.now();
    forward_data(std::move(out));
    return;
  }
  const NodeId dst = pkt->dst;
  buffer_.push_back(Buffered{std::move(pkt), sim_.now()});
  while (buffer_.size() > cfg_.send_buffer_capacity) {
    drop(buffer_.front().pkt, DropReason::kSendBufferOverflow);
    buffer_.pop_front();
  }
  start_discovery(dst);
}

void Aodv::forward_data(DsrPacketPtr pkt) {
  const NodeId nh = table_.at(pkt->dst).next_hop;
  refresh_route(pkt->dst);
  refresh_route(nh);
  if (policy_ != nullptr) {
    policy_->on_routing_event(pkt->src == id()
                                  ? mac::RoutingEvent::kDataSent
                                  : mac::RoutingEvent::kDataForwarded,
                              sim_.now());
  }
  // AODV forbids overhearing: every packet uses the standard ATIM subtype.
  if (!mac_.send(nh, pkt, mac::OverhearingMode::kNone)) {
    drop(pkt, DropReason::kMacQueueFull);
  }
}

void Aodv::start_discovery(NodeId dst) {
  auto [it, inserted] = discoveries_.try_emplace(dst);
  if (!inserted) return;
  it->second.attempts = 0;
  send_rreq(dst, cfg_.ttl_start);
}

void Aodv::send_rreq(NodeId dst, int ttl) {
  auto it = discoveries_.find(dst);
  RCAST_DCHECK(it != discoveries_.end());
  Discovery& d = it->second;

  auto pkt = std::make_shared<DsrPacket>();
  pkt->type = PacketType::kRreq;
  pkt->src = id();
  pkt->dst = dst;
  pkt->rreq_id = ++next_rreq_id_;
  pkt->orig_seq = ++my_seq_;
  const auto known = table_.find(dst);
  pkt->dest_seq = known != table_.end() ? known->second.dest_seq : 0;
  pkt->hop_count = 0;
  pkt->ttl = ttl;
  ++stats_.rreq_originated;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRreq, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(pkt), mac::OverhearingMode::kNone);

  sim::Time delay = cfg_.rreq_backoff_base;
  for (int i = 0; i < d.attempts && delay < cfg_.rreq_backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, cfg_.rreq_backoff_max);
  delay += sim::from_millis(rng_.uniform(0.0, 100.0));
  d.retry_event = sim_.after(delay, [this, dst] { on_rreq_timeout(dst); });
}

void Aodv::on_rreq_timeout(NodeId dst) {
  auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  const bool pending = std::any_of(
      buffer_.begin(), buffer_.end(),
      [dst](const Buffered& b) { return b.pkt->dst == dst; });
  if (!pending || route_usable(dst)) {
    discoveries_.erase(it);
    if (route_usable(dst)) drain_buffer(dst);
    return;
  }
  Discovery& d = it->second;
  ++d.attempts;
  if (d.attempts >= cfg_.max_rreq_attempts) {
    discoveries_.erase(it);
    for (auto b = buffer_.begin(); b != buffer_.end();) {
      if (b->pkt->dst == dst) {
        drop(b->pkt, DropReason::kNoRoute);
        b = buffer_.erase(b);
      } else {
        ++b;
      }
    }
    return;
  }
  // Expanding-ring: grow the TTL, then go network-wide.
  int ttl = cfg_.ttl_start + d.attempts * cfg_.ttl_increment;
  if (ttl > cfg_.ttl_threshold) ttl = cfg_.network_ttl;
  send_rreq(dst, ttl);
}

void Aodv::drain_buffer(NodeId dst) {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->pkt->dst == dst && route_usable(dst)) {
      auto out = std::make_shared<DsrPacket>(*it->pkt);
      if (out->first_tx_time == 0) out->first_tx_time = sim_.now();
      it = buffer_.erase(it);
      forward_data(std::move(out));
    } else {
      ++it;
    }
  }
}

void Aodv::expire_buffer() {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (sim_.now() - it->enqueued > cfg_.send_buffer_timeout) {
      drop(it->pkt, DropReason::kSendBufferTimeout);
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  // Lazy route expiry accounting (the table itself is checked on use).
  for (auto& [dst, r] : table_) {
    if (r.valid && r.expires <= sim_.now()) {
      r.valid = false;
      ++stats_.routes_expired;
    }
  }
}

void Aodv::drop(const DsrPacketPtr& pkt, DropReason reason) {
  ++stats_.drops[static_cast<int>(reason)];
  if (observer_ != nullptr) {
    observer_->on_data_dropped(*pkt, reason, sim_.now());
  }
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void Aodv::mac_deliver(const mac::NetDatagramPtr& pkt, NodeId from) {
  const DsrPacket& p = as_pkt(pkt);
  neighbors_last_heard_[from] = sim_.now();
  switch (p.type) {
    case PacketType::kRreq:
      handle_rreq(p, from);
      break;
    case PacketType::kRrep:
      handle_rrep(p, from);
      break;
    case PacketType::kRerr:
      handle_rerr(p, from);
      break;
    case PacketType::kHello:
      handle_hello(p, from);
      break;
    case PacketType::kData:
      handle_data(p, as_pkt_ptr(pkt), from);
      break;
  }
}

bool Aodv::rreq_seen(NodeId origin, std::uint32_t rreq_id) {
  if (rreq_seen_.size() > 4096) {
    const sim::Time cutoff = sim_.now() - 30 * sim::kSecond;
    std::erase_if(rreq_seen_,
                  [cutoff](const auto& kv) { return kv.second < cutoff; });
  }
  auto [it, inserted] = rreq_seen_.try_emplace(rreq_key(origin, rreq_id),
                                               sim_.now());
  if (!inserted) {
    it->second = sim_.now();
    return true;
  }
  return false;
}

void Aodv::handle_rreq(const DsrPacket& pkt, NodeId from) {
  if (pkt.src == id()) return;
  if (rreq_seen(pkt.src, pkt.rreq_id)) {
    ++stats_.rreq_duplicates;
    return;
  }

  // Reverse route toward the originator (via the transmitter).
  update_route(pkt.src, from, pkt.orig_seq, pkt.hop_count + 1,
               cfg_.active_route_timeout);
  update_route(from, from, 0, 1, cfg_.active_route_timeout);

  auto reply = [&](std::uint32_t dest_seq, std::uint32_t hops,
                   bool from_target) {
    auto rrep = std::make_shared<DsrPacket>();
    rrep->type = PacketType::kRrep;
    rrep->src = pkt.dst;   // route target
    rrep->dst = pkt.src;   // back to the originator
    rrep->dest_seq = dest_seq;
    rrep->hop_count = hops;
    if (from_target) {
      ++stats_.rrep_from_target;
    } else {
      ++stats_.rrep_from_intermediate;
    }
    if (observer_ != nullptr) {
      observer_->on_control_transmit(PacketType::kRrep, sim_.now());
    }
    mac_.send(table_.at(pkt.src).next_hop, std::move(rrep),
              mac::OverhearingMode::kNone);
  };

  if (pkt.dst == id()) {
    // RFC: the destination bumps its seq to at least the requested one.
    if (seq_newer(pkt.dest_seq, my_seq_)) my_seq_ = pkt.dest_seq;
    ++my_seq_;
    reply(my_seq_, 0, true);
    return;
  }

  if (cfg_.intermediate_rrep) {
    const auto it = table_.find(pkt.dst);
    if (it != table_.end() && it->second.valid &&
        it->second.expires > sim_.now() &&
        !seq_newer(pkt.dest_seq, it->second.dest_seq)) {
      reply(it->second.dest_seq, it->second.hop_count, false);
      return;
    }
  }

  if (pkt.ttl <= 1) return;
  auto fwd = std::make_shared<DsrPacket>(pkt);
  fwd->hop_count = pkt.hop_count + 1;
  fwd->ttl = pkt.ttl - 1;
  ++stats_.rreq_forwarded;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRreq, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(fwd), mac::OverhearingMode::kNone);
}

void Aodv::handle_rrep(const DsrPacket& pkt, NodeId from) {
  // Forward route to the target (pkt.src) via the transmitter.
  const bool installed = update_route(pkt.src, from, pkt.dest_seq,
                                      pkt.hop_count + 1,
                                      cfg_.active_route_timeout);
  update_route(from, from, 0, 1, cfg_.active_route_timeout);
  if (policy_ != nullptr) {
    policy_->on_routing_event(mac::RoutingEvent::kRrepReceived, sim_.now());
  }

  if (pkt.dst == id()) {
    auto it = discoveries_.find(pkt.src);
    if (it != discoveries_.end()) {
      sim_.cancel(it->second.retry_event);
      discoveries_.erase(it);
    }
    drain_buffer(pkt.src);
    return;
  }

  // Forward toward the originator along the reverse route.
  (void)installed;
  if (!route_usable(pkt.dst)) return;  // reverse route gone
  auto fwd = std::make_shared<DsrPacket>(pkt);
  fwd->hop_count = pkt.hop_count + 1;
  ++stats_.rrep_forwarded;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRrep, sim_.now());
  }
  mac_.send(table_.at(pkt.dst).next_hop, std::move(fwd),
            mac::OverhearingMode::kNone);
}

void Aodv::handle_data(const DsrPacket& pkt, const DsrPacketPtr& shared,
                       NodeId from) {
  refresh_route(pkt.src);
  refresh_route(from);
  if (pkt.dst == id()) {
    ++stats_.data_delivered;
    if (policy_ != nullptr) {
      policy_->on_routing_event(mac::RoutingEvent::kDataReceived, sim_.now());
    }
    if (observer_ != nullptr) observer_->on_data_delivered(pkt, sim_.now());
    return;
  }
  if (!route_usable(pkt.dst)) {
    // No forward route: RERR back toward the source (broadcast, TTL 1).
    ++stats_.link_breaks;
    const auto it = table_.find(pkt.dst);
    send_rerr({{pkt.dst, it != table_.end() ? it->second.dest_seq : 0}});
    drop(shared, DropReason::kLinkFailure);
    return;
  }
  ++stats_.data_forwarded;
  if (observer_ != nullptr) observer_->on_data_forwarded(id(), sim_.now());
  forward_data(std::make_shared<DsrPacket>(pkt));
}

void Aodv::handle_hello(const DsrPacket&, NodeId from) {
  update_route(from, from, 0, 1,
               cfg_.allowed_hello_loss * cfg_.hello_interval +
                   cfg_.hello_interval / 2);
}

void Aodv::handle_rerr(const DsrPacket& pkt, NodeId from) {
  // Invalidate every route whose next hop is the RERR sender and whose
  // destination is listed; propagate for routes we invalidated.
  std::vector<std::pair<NodeId, std::uint32_t>> propagate;
  for (const auto& [dst, seq] : pkt.unreachable) {
    auto it = table_.find(dst);
    if (it == table_.end() || !it->second.valid) continue;
    if (it->second.next_hop != from) continue;
    it->second.valid = false;
    it->second.dest_seq = std::max(it->second.dest_seq, seq);
    propagate.emplace_back(dst, seq);
  }
  if (!propagate.empty()) send_rerr(std::move(propagate));
}

// --------------------------------------------------------------------------
// Link maintenance
// --------------------------------------------------------------------------

void Aodv::mac_overhear(const mac::NetDatagramPtr&, NodeId from, NodeId) {
  // AODV does not use promiscuous route learning (the paper's §1 footnote),
  // but hearing any frame proves the neighbor is alive.
  neighbors_last_heard_[from] = sim_.now();
}

void Aodv::mac_tx_ok(const mac::NetDatagramPtr&, NodeId next) {
  neighbors_last_heard_[next] = sim_.now();
}

void Aodv::mac_tx_failed(const mac::NetDatagramPtr& pkt, NodeId next) {
  ++stats_.link_breaks;
  on_link_broken(next);
  const DsrPacket& p = as_pkt(pkt);
  if (p.type != PacketType::kData) return;
  if (p.src == id() && p.salvage_count == 0) {
    // Source: buffer and rediscover instead of dropping.
    auto requeued = std::make_shared<DsrPacket>(p);
    requeued->salvage_count = 1;
    try_send(std::move(requeued));
    return;
  }
  drop(as_pkt_ptr(pkt), DropReason::kLinkFailure);
}

void Aodv::on_link_broken(NodeId neighbor) {
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;
  for (auto& [dst, r] : table_) {
    if (r.valid && r.next_hop == neighbor) {
      r.valid = false;
      ++r.dest_seq;  // RFC: increment seq of the lost destination
      unreachable.emplace_back(dst, r.dest_seq);
    }
  }
  neighbors_last_heard_.erase(neighbor);
  if (!unreachable.empty()) send_rerr(std::move(unreachable));
}

void Aodv::send_rerr(
    std::vector<std::pair<NodeId, std::uint32_t>> unreachable) {
  auto rerr = std::make_shared<DsrPacket>();
  rerr->type = PacketType::kRerr;
  rerr->src = id();
  rerr->dst = mac::kBroadcastId;
  rerr->ttl = 1;
  rerr->unreachable = std::move(unreachable);
  ++stats_.rerr_sent;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRerr, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(rerr), mac::OverhearingMode::kNone);
}

void Aodv::on_hello_timer() {
  check_neighbors();
  if (cfg_.hello_only_when_active) {
    const bool active = std::any_of(
        table_.begin(), table_.end(), [this](const auto& kv) {
          return kv.second.valid && kv.second.expires > sim_.now();
        });
    if (!active) return;
  }
  auto hello = std::make_shared<DsrPacket>();
  hello->type = PacketType::kHello;
  hello->src = id();
  hello->dst = mac::kBroadcastId;
  hello->dest_seq = my_seq_;
  ++stats_.hello_sent;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kHello, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(hello), mac::OverhearingMode::kNone);
}

void Aodv::check_neighbors() {
  // A neighbor silent for allowed_hello_loss hello intervals is gone.
  const sim::Time deadline =
      sim_.now() - cfg_.allowed_hello_loss * cfg_.hello_interval;
  std::vector<NodeId> lost;
  for (const auto& [n, heard] : neighbors_last_heard_) {
    if (heard < deadline) lost.push_back(n);
  }
  for (NodeId n : lost) {
    bool routed_via = false;
    for (const auto& [dst, r] : table_) {
      if (r.valid && r.next_hop == n && r.expires > sim_.now()) {
        routed_via = true;
        break;
      }
    }
    if (routed_via) {
      on_link_broken(n);
    } else {
      neighbors_last_heard_.erase(n);
    }
  }
}

}  // namespace rcast::routing
