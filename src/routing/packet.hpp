// MANET network-layer packets.
//
// One struct covers both routing protocols implemented here: DSR's four
// packet types (with source routes) and AODV's five (hop-by-hop with
// sequence numbers and hellos). The active fields depend on `type` and the
// owning protocol. Packets are immutable once handed to the MAC (shared
// between the transmitter, every receiver and the overhearing taps);
// forwarding clones the packet and advances its position.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mac/mac_types.hpp"
#include "sim/time.hpp"
#include "util/small_vec.hpp"

namespace rcast::routing {

using mac::NodeId;

/// A source route / accumulated route record. Routes in the paper's arena
/// are a handful of hops, so 8 node ids live inline in the packet itself —
/// copying a packet on the forward path touches no extra allocation; longer
/// routes (deep topologies, network_ttl floods) spill to the heap.
using Route = util::SmallVec<NodeId, 8>;

/// Network-layer packet type, shared by both protocols (HELLO is AODV
/// only).
enum class PacketType : std::uint8_t {
  kData = 0,
  kRreq = 1,
  kRrep = 2,
  kRerr = 3,
  kHello = 4,  // AODV only
};

constexpr const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData:
      return "DATA";
    case PacketType::kRreq:
      return "RREQ";
    case PacketType::kRrep:
      return "RREP";
    case PacketType::kRerr:
      return "RERR";
    case PacketType::kHello:
      return "HELLO";
  }
  return "?";
}

struct DsrPacket final : mac::NetDatagram {
  PacketType type = PacketType::kData;
  NodeId src = 0;  // end-to-end originator
  NodeId dst = 0;  // end-to-end destination

  /// DATA / RREP: the complete discovered source route [src, ..., dst].
  /// RERR: the path from the error detector back to the data source.
  Route route;

  /// Index in `route` of the node currently holding the packet. DATA and
  /// RERR traverse `route` forward; RREP traverses it backward (it starts
  /// at route.size()-1 and is delivered when it reaches index 0).
  std::size_t hop_index = 0;

  // DATA
  std::int64_t payload_bits = 0;
  std::uint32_t flow_id = 0;
  std::uint32_t app_seq = 0;
  sim::Time origin_time = 0;
  /// First time the source handed this packet to its MAC (0 until then);
  /// lets the metrics layer split end-to-end delay into route-acquisition
  /// wait and network transit.
  sim::Time first_tx_time = 0;
  int salvage_count = 0;

  // RREQ
  std::uint32_t rreq_id = 0;
  Route recorded;  // accumulated route, starts with src
  int ttl = 0;

  // RERR
  NodeId broken_from = 0;
  NodeId broken_to = 0;

  // AODV fields (hop-by-hop routing; `route`/`recorded` stay empty).
  std::uint32_t orig_seq = 0;  // originator's sequence number (RREQ)
  std::uint32_t dest_seq = 0;  // destination sequence number (RREQ/RREP)
  std::uint32_t hop_count = 0;
  /// RERR: destinations that became unreachable, with their sequence nums.
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;

  /// On-air network-layer size: 20-byte IP header + 4-byte DSR fixed header
  /// + per-type option (the DSR option sizes round the RFC 4728 encodings to
  /// whole words) + payload.
  std::int64_t size_bits() const override {
    constexpr std::int64_t kIpDsrHeader = (20 + 4) * 8;
    switch (type) {
      case PacketType::kData:
        return kIpDsrHeader +
               (4 + 4 * static_cast<std::int64_t>(route.size())) * 8 +
               payload_bits;
      case PacketType::kRreq:
        return kIpDsrHeader +
               (8 + 4 * static_cast<std::int64_t>(recorded.size())) * 8;
      case PacketType::kRrep:
        return kIpDsrHeader +
               (8 + 4 * static_cast<std::int64_t>(route.size())) * 8;
      case PacketType::kRerr:
        return kIpDsrHeader +
               (12 + 4 * static_cast<std::int64_t>(route.size()) +
                8 * static_cast<std::int64_t>(unreachable.size())) *
                   8;
      case PacketType::kHello:
        return kIpDsrHeader + 12 * 8;  // AODV hello = minimal RREP
    }
    return kIpDsrHeader;
  }
};

using DsrPacketPtr = std::shared_ptr<const DsrPacket>;

}  // namespace rcast::routing
