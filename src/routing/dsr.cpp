#include "routing/dsr.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/pool.hpp"

namespace rcast::routing {

namespace {

std::uint64_t rreq_key(NodeId origin, std::uint32_t id) {
  return (static_cast<std::uint64_t>(origin) << 32) | id;
}

const DsrPacket& as_dsr(const mac::NetDatagramPtr& pkt) {
  return *static_cast<const DsrPacket*>(pkt.get());
}

DsrPacketPtr as_dsr_ptr(const mac::NetDatagramPtr& pkt) {
  return std::static_pointer_cast<const DsrPacket>(pkt);
}

}  // namespace

Dsr::Dsr(sim::Simulator& simulator, mac::Mac& mac_layer,
         const DsrConfig& config, Rng rng, mac::PowerPolicy* policy)
    : sim_(simulator),
      mac_(mac_layer),
      cfg_(config),
      rng_(rng),
      policy_(policy),
      cache_(mac_layer.id(), config.cache),
      buffer_(config.send_buffer_capacity),
      buffer_expiry_(simulator, [this] { expire_buffer(); }) {
  mac_.set_callbacks(this);
  buffer_expiry_.start(simulator.now() + sim::kSecond, sim::kSecond);
}

// --------------------------------------------------------------------------
// Origination
// --------------------------------------------------------------------------

void Dsr::send_data(NodeId dst, std::int64_t payload_bits,
                    std::uint32_t flow_id, std::uint32_t app_seq) {
  RCAST_REQUIRE(dst != id());
  RCAST_REQUIRE(payload_bits >= 0);
  auto pkt = util::make_pooled<DsrPacket>(sim_.pools());
  pkt->type = PacketType::kData;
  pkt->src = id();
  pkt->dst = dst;
  pkt->payload_bits = payload_bits;
  pkt->flow_id = flow_id;
  pkt->app_seq = app_seq;
  pkt->origin_time = sim_.now();
  ++stats_.data_originated;
  if (observer_ != nullptr) observer_->on_data_originated(*pkt, sim_.now());
  try_send(std::move(pkt));
}

void Dsr::try_send(DsrPacketPtr pkt) {
  auto route = cache_.find(pkt->dst, sim_.now());
  if (route) {
    auto routed = util::make_pooled<DsrPacket>(sim_.pools(), *pkt);
    routed->route = std::move(*route);
    routed->hop_index = 0;
    if (routed->first_tx_time == 0) routed->first_tx_time = sim_.now();
    transmit_data(std::move(routed));
    return;
  }
  const NodeId dst = pkt->dst;
  for (auto& victim : buffer_.push(std::move(pkt), sim_.now())) {
    drop(victim, DropReason::kSendBufferOverflow);
  }
  start_discovery(dst);
}

void Dsr::transmit_data(DsrPacketPtr pkt) {
  RCAST_DCHECK(pkt->route.size() >= 2);
  RCAST_DCHECK(pkt->route[pkt->hop_index] == id());
  const NodeId next = pkt->route[pkt->hop_index + 1];
  if (pkt->hop_index == 0 && observer_ != nullptr) {
    observer_->on_route_used(pkt->route, sim_.now());
  }
  if (policy_ != nullptr && pkt->hop_index == 0) {
    policy_->on_routing_event(mac::RoutingEvent::kDataSent, sim_.now());
  }
  if (!mac_.send(next, pkt, cfg_.oh_map.data)) {
    drop(pkt, DropReason::kMacQueueFull);
  }
}

void Dsr::start_discovery(NodeId dst) {
  auto [it, inserted] = discoveries_.try_emplace(dst);
  if (!inserted) return;  // discovery already running
  it->second.attempts = 0;
  send_rreq(dst, cfg_.nonpropagating_first ? 1 : cfg_.network_ttl);
}

void Dsr::send_rreq(NodeId dst, int ttl) {
  auto it = discoveries_.find(dst);
  RCAST_DCHECK(it != discoveries_.end());
  Discovery& d = it->second;

  auto pkt = util::make_pooled<DsrPacket>(sim_.pools());
  pkt->type = PacketType::kRreq;
  pkt->src = id();
  pkt->dst = dst;
  pkt->rreq_id = ++next_rreq_id_;
  pkt->recorded = {id()};
  pkt->ttl = ttl;
  ++stats_.rreq_originated;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRreq, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(pkt), cfg_.oh_map.rreq_bcast);

  // Exponential retry backoff with jitter.
  sim::Time delay = cfg_.rreq_backoff_base;
  for (int i = 0; i < d.attempts && delay < cfg_.rreq_backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, cfg_.rreq_backoff_max);
  delay += sim::from_millis(rng_.uniform(0.0, 100.0));
  d.retry_event = sim_.after(delay, [this, dst] { on_rreq_timeout(dst); });
}

void Dsr::on_rreq_timeout(NodeId dst) {
  auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  if (!buffer_.any_for(dst)) {
    discoveries_.erase(it);
    return;
  }
  // A route may have been learned via overhearing meanwhile.
  if (cache_.has_route(dst, sim_.now())) {
    discoveries_.erase(it);
    drain_buffer_via_cache();
    return;
  }
  Discovery& d = it->second;
  ++d.attempts;
  if (d.attempts >= cfg_.max_rreq_attempts) {
    discoveries_.erase(it);
    for (auto& pkt : buffer_.take_for(dst)) {
      drop(pkt, DropReason::kNoRoute);
    }
    return;
  }
  send_rreq(dst, cfg_.network_ttl);
}

void Dsr::cancel_discovery(NodeId dst) {
  auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  sim_.cancel(it->second.retry_event);
  discoveries_.erase(it);
}

void Dsr::expire_buffer() {
  for (auto& pkt : buffer_.expire(sim_.now(), cfg_.send_buffer_timeout)) {
    drop(pkt, DropReason::kSendBufferTimeout);
  }
}

void Dsr::drop(const DsrPacketPtr& pkt, DropReason reason) {
  ++stats_.drops[static_cast<int>(reason)];
  if (observer_ != nullptr) {
    observer_->on_data_dropped(*pkt, reason, sim_.now());
  }
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void Dsr::mac_deliver(const mac::NetDatagramPtr& pkt, NodeId from) {
  (void)from;
  const DsrPacket& p = as_dsr(pkt);
  switch (p.type) {
    case PacketType::kRreq:
      handle_rreq(p);
      break;
    case PacketType::kRrep:
      handle_rrep(p);
      break;
    case PacketType::kData:
      handle_data(p, as_dsr_ptr(pkt));
      break;
    case PacketType::kRerr:
      handle_rerr(p);
      break;
    case PacketType::kHello:
      break;  // AODV-only packet type; DSR never originates or expects it
  }
}

bool Dsr::rreq_seen(NodeId origin, std::uint32_t rreq_id) {
  // Lazy pruning bounds the table on long runs.
  if (rreq_seen_.size() > 4096) {
    const sim::Time cutoff = sim_.now() - 30 * sim::kSecond;
    std::erase_if(rreq_seen_,
                  [cutoff](const auto& kv) { return kv.second < cutoff; });
  }
  const auto key = rreq_key(origin, rreq_id);
  auto [it, inserted] = rreq_seen_.try_emplace(key, sim_.now());
  if (!inserted) {
    it->second = sim_.now();
    return true;
  }
  return false;
}

void Dsr::handle_rreq(const DsrPacket& pkt) {
  if (pkt.src == id()) return;  // our own flood echoed back
  if (rreq_seen(pkt.src, pkt.rreq_id)) {
    ++stats_.rreq_duplicates;
    return;
  }
  // Already on the recorded route ⇒ forwarding would loop.
  if (std::find(pkt.recorded.begin(), pkt.recorded.end(), id()) !=
      pkt.recorded.end()) {
    return;
  }

  // The accumulated record is a route back to the originator.
  Route reverse(pkt.recorded.rbegin(), pkt.recorded.rend());
  reverse.insert(reverse.begin(), id());
  cache_.add(std::move(reverse), sim_.now());

  if (pkt.dst == id()) {
    // Target: reply with the complete recorded route.
    Route route = pkt.recorded;
    route.push_back(id());
    ++stats_.rrep_from_target;
    send_rrep(std::move(route), pkt.recorded.size());
    return;
  }

  if (cfg_.reply_from_cache) {
    if (auto cached = cache_.find(pkt.dst, sim_.now())) {
      // Splice recorded + (me ... dst); reply only if loop-free.
      Route full = pkt.recorded;
      full.insert(full.end(), cached->begin(), cached->end());
      std::unordered_set<NodeId> seen_nodes;
      bool loop = false;
      for (NodeId n : full) {
        if (!seen_nodes.insert(n).second) {
          loop = true;
          break;
        }
      }
      if (!loop) {
        ++stats_.rrep_from_cache;
        send_rrep(std::move(full), pkt.recorded.size());
        return;
      }
    }
  }

  if (pkt.ttl <= 1) return;
  auto fwd = util::make_pooled<DsrPacket>(sim_.pools(), pkt);
  fwd->recorded.push_back(id());
  fwd->ttl = pkt.ttl - 1;
  ++stats_.rreq_forwarded;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRreq, sim_.now());
  }
  mac_.send(mac::kBroadcastId, std::move(fwd), cfg_.oh_map.rreq_bcast);
}

void Dsr::send_rrep(Route route, std::size_t my_index) {
  RCAST_DCHECK(my_index > 0 && my_index < route.size());
  RCAST_DCHECK(route[my_index] == id());
  auto rrep = util::make_pooled<DsrPacket>(sim_.pools());
  rrep->type = PacketType::kRrep;
  rrep->src = id();
  rrep->dst = route.front();
  rrep->route = std::move(route);
  rrep->hop_index = my_index;
  const NodeId next = rrep->route[my_index - 1];
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRrep, sim_.now());
  }
  mac_.send(next, std::move(rrep), cfg_.oh_map.rrep);
}

void Dsr::handle_rrep(const DsrPacket& pkt) {
  // Find our position on the reply path. hop_index was the sender's index;
  // we expect to sit one step closer to the originator.
  RCAST_DCHECK(pkt.hop_index > 0 && pkt.hop_index < pkt.route.size());
  const std::size_t my_index = pkt.hop_index - 1;
  if (my_index >= pkt.route.size() || pkt.route[my_index] != id()) return;

  // Every node on the reply path learns the full discovered route: forward
  // segment toward the route's end, reverse segment toward its start.
  Route forward(pkt.route.begin() + static_cast<std::ptrdiff_t>(my_index),
                pkt.route.end());
  cache_.add(std::move(forward), sim_.now());
  if (my_index > 0) {
    Route back(pkt.route.rend() - static_cast<std::ptrdiff_t>(my_index) - 1,
               pkt.route.rend());
    cache_.add(std::move(back), sim_.now());
  }

  if (policy_ != nullptr) {
    policy_->on_routing_event(mac::RoutingEvent::kRrepReceived, sim_.now());
  }

  if (my_index == 0) {
    // We are the original requester: release buffered traffic.
    cancel_discovery(pkt.route.back());
    drain_buffer_via_cache();
    return;
  }

  auto fwd = util::make_pooled<DsrPacket>(sim_.pools(), pkt);
  fwd->hop_index = my_index;
  ++stats_.rrep_forwarded;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRrep, sim_.now());
  }
  mac_.send(pkt.route[my_index - 1], std::move(fwd), cfg_.oh_map.rrep);
}

void Dsr::drain_buffer_via_cache() {
  // Release every buffered packet whose destination is now resolvable (a
  // single RREP can unblock several destinations along the route).
  std::vector<NodeId> resolvable;
  for (const CachedRoute& r : cache_.routes()) {
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      if (buffer_.any_for(r.path[i])) resolvable.push_back(r.path[i]);
    }
  }
  std::sort(resolvable.begin(), resolvable.end());
  resolvable.erase(std::unique(resolvable.begin(), resolvable.end()),
                   resolvable.end());
  for (NodeId dst : resolvable) {
    cancel_discovery(dst);
    for (auto& pkt : buffer_.take_for(dst)) {
      try_send(std::move(pkt));
    }
  }
}

void Dsr::handle_data(const DsrPacket& pkt, const DsrPacketPtr& shared) {
  if (pkt.dst == id()) {
    ++stats_.data_delivered;
    if (policy_ != nullptr) {
      policy_->on_routing_event(mac::RoutingEvent::kDataReceived, sim_.now());
    }
    if (observer_ != nullptr) observer_->on_data_delivered(pkt, sim_.now());
    return;
  }

  // Forward along the source route.
  const std::size_t my_index = pkt.hop_index + 1;
  if (my_index >= pkt.route.size() || pkt.route[my_index] != id()) {
    return;  // stale delivery (e.g. route salvaged upstream)
  }
  if (my_index + 1 >= pkt.route.size()) return;

  // Being on the route teaches us the route (both directions).
  Route forward(pkt.route.begin() + static_cast<std::ptrdiff_t>(my_index),
                pkt.route.end());
  cache_.add(std::move(forward), sim_.now());
  Route back(pkt.route.rend() - static_cast<std::ptrdiff_t>(my_index) - 1,
             pkt.route.rend());
  cache_.add(std::move(back), sim_.now());

  if (policy_ != nullptr) {
    policy_->on_routing_event(mac::RoutingEvent::kDataForwarded, sim_.now());
  }
  if (observer_ != nullptr) observer_->on_data_forwarded(id(), sim_.now());
  auto fwd = util::make_pooled<DsrPacket>(sim_.pools(), pkt);
  fwd->hop_index = my_index;
  ++stats_.data_forwarded;
  if (!mac_.send(pkt.route[my_index + 1], std::move(fwd), cfg_.oh_map.data)) {
    drop(shared, DropReason::kMacQueueFull);
  }
}

void Dsr::handle_rerr(const DsrPacket& pkt) {
  cache_.remove_link(pkt.broken_from, pkt.broken_to);
  const std::size_t my_index = pkt.hop_index + 1;
  if (my_index >= pkt.route.size() || pkt.route[my_index] != id()) return;
  if (my_index + 1 >= pkt.route.size()) return;  // reached the source
  auto fwd = util::make_pooled<DsrPacket>(sim_.pools(), pkt);
  fwd->hop_index = my_index;
  ++stats_.rerr_forwarded;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRerr, sim_.now());
  }
  mac_.send(pkt.route[my_index + 1], std::move(fwd), cfg_.oh_map.rerr);
}

// --------------------------------------------------------------------------
// Overhearing tap
// --------------------------------------------------------------------------

void Dsr::mac_overhear(const mac::NetDatagramPtr& pkt, NodeId from,
                       NodeId to) {
  (void)to;
  ++stats_.overheard;
  const DsrPacket& p = as_dsr(pkt);
  switch (p.type) {
    case PacketType::kData:
      if (policy_ != nullptr) {
        policy_->on_routing_event(mac::RoutingEvent::kDataOverheard,
                                  sim_.now());
      }
      cache_from_overheard_route(p.route, from);
      break;
    case PacketType::kRrep:
      cache_from_overheard_route(p.route, from);
      break;
    case PacketType::kRerr:
      // Stale-route purging: this is why RERR is sent with unconditional
      // overhearing (paper §3.3).
      cache_.remove_link(p.broken_from, p.broken_to);
      break;
    case PacketType::kRreq:
    case PacketType::kHello:
      break;  // broadcasts are delivered, not overheard; hello is AODV-only
  }
}

void Dsr::cache_from_overheard_route(const Route& route, NodeId from) {
  const auto it = std::find(route.begin(), route.end(), from);
  if (it == route.end()) return;
  const auto from_pos = static_cast<std::size_t>(it - route.begin());
  if (std::find(route.begin(), route.end(), id()) != route.end()) return;

  // We heard `from` directly, so [me, from, ...rest of route] is usable.
  Route toward_dst;
  toward_dst.push_back(id());
  toward_dst.insert(toward_dst.end(), route.begin() +
                                          static_cast<std::ptrdiff_t>(from_pos),
                    route.end());
  if (toward_dst.size() >= 2 && cache_.add(std::move(toward_dst), sim_.now())) {
    ++stats_.cache_adds_overhear;
  }

  if (cfg_.cache_reverse_overheard && from_pos > 0) {
    Route toward_src;
    toward_src.push_back(id());
    for (std::size_t i = from_pos + 1; i-- > 0;) {
      toward_src.push_back(route[i]);
    }
    if (cache_.add(std::move(toward_src), sim_.now())) {
      ++stats_.cache_adds_overhear;
    }
  }
}

// --------------------------------------------------------------------------
// Link-failure handling
// --------------------------------------------------------------------------

void Dsr::mac_tx_ok(const mac::NetDatagramPtr&, NodeId) {}

void Dsr::mac_tx_failed(const mac::NetDatagramPtr& pkt, NodeId next_hop) {
  cache_.remove_link(id(), next_hop);
  const DsrPacket& p = as_dsr(pkt);

  if (p.type != PacketType::kData) return;  // control packets are not salvaged

  // Inform the source (unless we are the source ourselves).
  if (p.src != id()) {
    originate_rerr(p, next_hop);
  }

  // Try to salvage with an alternative cached route.
  if (cfg_.salvage && p.salvage_count < cfg_.max_salvage) {
    if (auto route = cache_.find(p.dst, sim_.now())) {
      auto salvaged = util::make_pooled<DsrPacket>(sim_.pools(), p);
      salvaged->route = std::move(*route);
      salvaged->hop_index = 0;
      salvaged->salvage_count = p.salvage_count + 1;
      ++stats_.data_salvaged;
      if (observer_ != nullptr) observer_->on_data_salvaged(id(), sim_.now());
      if (mac_.send(salvaged->route[1], salvaged, cfg_.oh_map.data)) return;
    }
  }

  if (p.src == id() && p.salvage_count == 0) {
    // Source without an alternative: rediscover and retransmit from the
    // send buffer rather than dropping outright.
    auto requeued = util::make_pooled<DsrPacket>(sim_.pools(), p);
    requeued->route.clear();
    requeued->hop_index = 0;
    requeued->salvage_count = p.salvage_count + 1;
    try_send(std::move(requeued));
    return;
  }

  drop(as_dsr_ptr(pkt), DropReason::kLinkFailure);
}

void Dsr::originate_rerr(const DsrPacket& data_pkt, NodeId broken_to) {
  // Reverse of the traversed prefix: [me, ..., src].
  const std::size_t my_index = data_pkt.hop_index;
  if (my_index >= data_pkt.route.size() || data_pkt.route[my_index] != id()) {
    return;
  }
  Route back;
  for (std::size_t i = my_index + 1; i-- > 0;) back.push_back(data_pkt.route[i]);
  if (back.size() < 2) return;
  auto rerr = util::make_pooled<DsrPacket>(sim_.pools());
  rerr->type = PacketType::kRerr;
  rerr->src = id();
  rerr->dst = data_pkt.src;
  rerr->route = std::move(back);
  rerr->hop_index = 0;
  rerr->broken_from = id();
  rerr->broken_to = broken_to;
  ++stats_.rerr_originated;
  if (observer_ != nullptr) {
    observer_->on_control_transmit(PacketType::kRerr, sim_.now());
  }
  const NodeId next = rerr->route[1];
  mac_.send(next, std::move(rerr), cfg_.oh_map.rerr);
}

}  // namespace rcast::routing
