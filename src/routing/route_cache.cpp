#include "routing/route_cache.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcast::routing {

RouteCache::RouteCache(NodeId owner, const RouteCacheConfig& config)
    : owner_(owner), cfg_(config) {
  RCAST_REQUIRE(cfg_.capacity > 0);
}

bool RouteCache::add(Route path, sim::Time now) {
  if (path.size() < 2) return false;
  if (path.front() != owner_) return false;
  // Loop check: routes are a handful of hops, so the quadratic scan beats a
  // hash set (and allocates nothing).
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      if (path[i] == path[j]) return false;  // loop
    }
  }
  for (CachedRoute& r : routes_) {
    if (r.path == path) {
      r.added = now;
      r.last_used = now;
      ++stats_.refreshes;
      return true;
    }
  }
  routes_.push_back(CachedRoute{std::move(path), now, now});
  ++stats_.adds;
  evict_if_needed();
  return true;
}

bool RouteCache::expired(const CachedRoute& r, sim::Time now) const {
  return cfg_.route_ttl > 0 && now - r.added > cfg_.route_ttl;
}

void RouteCache::evict_if_needed() {
  while (routes_.size() > cfg_.capacity) {
    auto victim = std::min_element(
        routes_.begin(), routes_.end(),
        [](const CachedRoute& a, const CachedRoute& b) {
          if (a.last_used != b.last_used) return a.last_used < b.last_used;
          return a.added < b.added;
        });
    routes_.erase(victim);
    ++stats_.evictions;
  }
}

std::optional<Route> RouteCache::find(NodeId dst, sim::Time now) {
  // Drop stale entries lazily.
  if (cfg_.route_ttl > 0) {
    const std::size_t before = routes_.size();
    std::erase_if(routes_,
                  [&](const CachedRoute& r) { return expired(r, now); });
    stats_.expired += before - routes_.size();
  }

  CachedRoute* best = nullptr;
  std::size_t best_len = 0;
  for (CachedRoute& r : routes_) {
    const auto it = std::find(r.path.begin(), r.path.end(), dst);
    if (it == r.path.end()) continue;
    const auto len = static_cast<std::size_t>(it - r.path.begin()) + 1;
    if (len < 2) continue;  // dst == owner
    if (best == nullptr || len < best_len ||
        (len == best_len && r.added > best->added)) {
      best = &r;
      best_len = len;
    }
  }
  if (best == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  best->last_used = now;
  return Route(best->path.begin(),
               best->path.begin() + static_cast<std::ptrdiff_t>(best_len));
}

bool RouteCache::has_route(NodeId dst, sim::Time now) const {
  for (const CachedRoute& r : routes_) {
    if (expired(r, now)) continue;
    const auto it = std::find(r.path.begin(), r.path.end(), dst);
    if (it != r.path.end() && it != r.path.begin()) return true;
  }
  return false;
}

void RouteCache::remove_link(NodeId a, NodeId b) {
  bool truncated_any = false;
  for (auto it = routes_.begin(); it != routes_.end();) {
    CachedRoute& r = it->path.empty() ? *it : *it;  // readability alias
    std::size_t cut = r.path.size();
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      const NodeId u = r.path[i];
      const NodeId v = r.path[i + 1];
      if ((u == a && v == b) || (u == b && v == a)) {
        cut = i + 1;  // keep prefix up to and including u
        break;
      }
    }
    if (cut == r.path.size()) {
      ++it;
      continue;
    }
    truncated_any = true;
    if (cut < 2) {
      it = routes_.erase(it);
    } else {
      r.path.resize(cut);
      ++it;
    }
  }
  if (truncated_any) ++stats_.link_truncations;
}

}  // namespace rcast::routing
