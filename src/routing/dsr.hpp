// The DSR routing agent.
//
// Implements route discovery (expanding-ring RREQ flooding with exponential
// retry backoff), route replies (from the target and, optionally, from
// intermediate nodes' caches), source-routed data forwarding, route errors
// with salvaging, and the promiscuous overhearing taps that feed the route
// cache — the mechanism whose energy cost Rcast controls.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/overhearing_map.hpp"
#include "mac/mac.hpp"
#include "routing/observer.hpp"
#include "routing/packet.hpp"
#include "routing/route_cache.hpp"
#include "routing/send_buffer.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rcast::routing {

struct DsrConfig {
  core::OverhearingMap oh_map = core::OverhearingMap::rcast();
  RouteCacheConfig cache;
  sim::Time send_buffer_timeout = 30 * sim::kSecond;
  std::size_t send_buffer_capacity = 64;
  bool reply_from_cache = true;
  /// Expanding ring search: first RREQ with TTL 1, retries network-wide.
  bool nonpropagating_first = true;
  int max_rreq_attempts = 8;
  sim::Time rreq_backoff_base = 500 * sim::kMillisecond;
  sim::Time rreq_backoff_max = 10 * sim::kSecond;
  int network_ttl = 64;
  /// Also cache the reverse (toward-source) direction of overheard routes.
  bool cache_reverse_overheard = true;
  bool salvage = true;
  int max_salvage = 2;
};

struct DsrStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_salvaged = 0;
  std::uint64_t rreq_originated = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rreq_duplicates = 0;
  std::uint64_t rrep_from_target = 0;
  std::uint64_t rrep_from_cache = 0;
  std::uint64_t rrep_forwarded = 0;
  std::uint64_t rerr_originated = 0;
  std::uint64_t rerr_forwarded = 0;
  std::uint64_t overheard = 0;
  std::uint64_t cache_adds_overhear = 0;
  std::uint64_t drops[static_cast<int>(DropReason::kCount)] = {};
};

class Dsr final : public mac::MacCallbacks, public RoutingAgent {
 public:
  Dsr(sim::Simulator& simulator, mac::Mac& mac_layer, const DsrConfig& config,
      Rng rng, mac::PowerPolicy* policy = nullptr);

  Dsr(const Dsr&) = delete;
  Dsr& operator=(const Dsr&) = delete;

  NodeId id() const override { return mac_.id(); }
  void set_observer(Observer* obs) override { observer_ = obs; }

  /// Application entry point: send `payload_bits` of data to `dst`.
  void send_data(NodeId dst, std::int64_t payload_bits, std::uint32_t flow_id,
                 std::uint32_t app_seq) override;

  RouteCache& cache() { return cache_; }
  const RouteCache& cache() const { return cache_; }
  const DsrStats& stats() const { return stats_; }
  std::size_t send_buffer_depth() const { return buffer_.size(); }

  // --- mac::MacCallbacks ---------------------------------------------------
  void mac_deliver(const mac::NetDatagramPtr& pkt, NodeId from) override;
  void mac_overhear(const mac::NetDatagramPtr& pkt, NodeId from,
                    NodeId to) override;
  void mac_tx_ok(const mac::NetDatagramPtr& pkt, NodeId next_hop) override;
  void mac_tx_failed(const mac::NetDatagramPtr& pkt, NodeId next_hop) override;

 private:
  struct Discovery {
    int attempts = 0;
    sim::EventId retry_event;
  };

  // Origination and forwarding.
  void try_send(DsrPacketPtr pkt);
  void transmit_data(DsrPacketPtr pkt);
  void start_discovery(NodeId dst);
  void send_rreq(NodeId dst, int ttl);
  void on_rreq_timeout(NodeId dst);
  void cancel_discovery(NodeId dst);

  // Receive handlers.
  void handle_rreq(const DsrPacket& pkt);
  void handle_rrep(const DsrPacket& pkt);
  void handle_data(const DsrPacket& pkt, const DsrPacketPtr& shared);
  void handle_rerr(const DsrPacket& pkt);

  void send_rrep(Route route, std::size_t my_index);
  void originate_rerr(const DsrPacket& data_pkt, NodeId broken_to);
  void drain_buffer_via_cache();
  void drop(const DsrPacketPtr& pkt, DropReason reason);
  void expire_buffer();
  bool rreq_seen(NodeId origin, std::uint32_t rreq_id);

  /// Feeds the cache from a packet heard from transmitter `from` carrying
  /// source route `route` with `from` at position `from_pos`.
  void cache_from_overheard_route(const Route& route, NodeId from);

  sim::Simulator& sim_;
  mac::Mac& mac_;
  DsrConfig cfg_;
  Rng rng_;
  mac::PowerPolicy* policy_;
  Observer* observer_ = nullptr;

  RouteCache cache_;
  SendBuffer buffer_;
  std::unordered_map<NodeId, Discovery> discoveries_;
  std::unordered_map<std::uint64_t, sim::Time> rreq_seen_;
  std::uint32_t next_rreq_id_ = 0;
  sim::PeriodicTimer buffer_expiry_;
  DsrStats stats_;
};

}  // namespace rcast::routing
