// DSR path cache.
//
// Stores complete source routes beginning at the owning node, answers
// shortest-route queries (truncating longer paths at the requested
// destination), and truncates routes when link errors are learned. Capacity
// is bounded with LRU eviction; an optional TTL implements the timeout-based
// staleness eviction of Hu & Johnson (off by default, as in the paper's DSR).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/packet.hpp"
#include "sim/time.hpp"

namespace rcast::routing {

struct RouteCacheConfig {
  std::size_t capacity = 64;   // maximum cached paths
  sim::Time route_ttl = 0;     // 0 = no timeout (paper's DSR)
};

struct CachedRoute {
  Route path;  // path[0] == owner
  sim::Time added = 0;
  sim::Time last_used = 0;
};

struct RouteCacheStats {
  std::uint64_t adds = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t link_truncations = 0;
  std::uint64_t expired = 0;
};

class RouteCache {
 public:
  RouteCache(NodeId owner, const RouteCacheConfig& config);

  NodeId owner() const { return owner_; }

  /// Inserts a loop-free path starting at the owner. Paths shorter than two
  /// nodes, with loops, or not anchored at the owner are rejected (returns
  /// false). Re-adding an existing path refreshes its timestamps.
  bool add(Route path, sim::Time now);

  /// Shortest (then freshest) cached route from the owner to `dst`,
  /// truncated at `dst` if it appears inside a longer path. Updates LRU.
  std::optional<Route> find(NodeId dst, sim::Time now);

  /// True if find() would succeed, without touching LRU state.
  bool has_route(NodeId dst, sim::Time now) const;

  /// Handles a broken link (either direction): truncates every path at the
  /// link, dropping paths that become trivial.
  void remove_link(NodeId a, NodeId b);

  std::size_t size() const { return routes_.size(); }
  const std::vector<CachedRoute>& routes() const { return routes_; }
  const RouteCacheStats& stats() const { return stats_; }

 private:
  bool expired(const CachedRoute& r, sim::Time now) const;
  void evict_if_needed();

  NodeId owner_;
  RouteCacheConfig cfg_;
  std::vector<CachedRoute> routes_;
  RouteCacheStats stats_;
};

}  // namespace rcast::routing
