// Holds data packets while route discovery runs (DSR send buffer).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "routing/packet.hpp"

namespace rcast::routing {

class SendBuffer {
 public:
  explicit SendBuffer(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Buffers a packet; if full, the oldest entry is dropped and returned so
  /// the caller can account for it.
  std::vector<DsrPacketPtr> push(DsrPacketPtr pkt, sim::Time now);

  /// Removes and returns all packets destined to `dst`.
  std::vector<DsrPacketPtr> take_for(NodeId dst);

  /// Removes and returns all packets older than `timeout`.
  std::vector<DsrPacketPtr> expire(sim::Time now, sim::Time timeout);

  bool any_for(NodeId dst) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    DsrPacketPtr pkt;
    sim::Time enqueued;
  };

  std::size_t capacity_;
  std::deque<Entry> entries_;
};

}  // namespace rcast::routing
