#include "routing/send_buffer.hpp"

namespace rcast::routing {

std::vector<DsrPacketPtr> SendBuffer::push(DsrPacketPtr pkt, sim::Time now) {
  std::vector<DsrPacketPtr> dropped;
  entries_.push_back(Entry{std::move(pkt), now});
  while (entries_.size() > capacity_) {
    dropped.push_back(std::move(entries_.front().pkt));
    entries_.pop_front();
  }
  return dropped;
}

std::vector<DsrPacketPtr> SendBuffer::take_for(NodeId dst) {
  std::vector<DsrPacketPtr> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->pkt->dst == dst) {
      out.push_back(std::move(it->pkt));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<DsrPacketPtr> SendBuffer::expire(sim::Time now,
                                             sim::Time timeout) {
  std::vector<DsrPacketPtr> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->enqueued > timeout) {
      out.push_back(std::move(it->pkt));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

bool SendBuffer::any_for(NodeId dst) const {
  for (const Entry& e : entries_) {
    if (e.pkt->dst == dst) return true;
  }
  return false;
}

}  // namespace rcast::routing
