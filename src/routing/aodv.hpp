// Ad-hoc On-demand Distance Vector routing (Perkins & Royer, RFC 3561,
// simplified).
//
// Included as the contrast protocol the paper discusses in §1: AODV keeps
// hop-by-hop routing tables with destination sequence numbers, uses
// *periodic hello broadcasts* for link sensing, forbids promiscuous
// overhearing, and evicts routes by timeout. Under the IEEE 802.11 PSM this
// design is expensive — every hello is a broadcast announcement that keeps
// the whole neighborhood awake for a beacon interval — which is exactly the
// paper's argument for building Rcast on DSR. bench_aodv_contrast
// quantifies that claim.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mac/mac.hpp"
#include "routing/observer.hpp"
#include "routing/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rcast::routing {

struct AodvConfig {
  sim::Time active_route_timeout = 3 * sim::kSecond;
  sim::Time hello_interval = 1 * sim::kSecond;
  int allowed_hello_loss = 2;  // missed hellos before the link is declared dead
  /// Discovery: expanding TTLs per attempt, then network-wide retries.
  int ttl_start = 1;
  int ttl_increment = 2;
  int ttl_threshold = 7;
  int network_ttl = 64;
  int max_rreq_attempts = 5;
  sim::Time rreq_backoff_base = 500 * sim::kMillisecond;
  sim::Time rreq_backoff_max = 10 * sim::kSecond;
  sim::Time send_buffer_timeout = 30 * sim::kSecond;
  std::size_t send_buffer_capacity = 64;
  /// Reply from an intermediate node holding a fresh-enough route.
  bool intermediate_rrep = true;
  /// Send hellos only while the node has active routes (RFC behaviour) or
  /// unconditionally.
  bool hello_only_when_active = true;
};

struct AodvStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t rreq_originated = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rreq_duplicates = 0;
  std::uint64_t rrep_from_target = 0;
  std::uint64_t rrep_from_intermediate = 0;
  std::uint64_t rrep_forwarded = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t hello_sent = 0;
  std::uint64_t routes_expired = 0;
  std::uint64_t link_breaks = 0;
  std::uint64_t drops[static_cast<int>(DropReason::kCount)] = {};
};

class Aodv final : public mac::MacCallbacks, public RoutingAgent {
 public:
  Aodv(sim::Simulator& simulator, mac::Mac& mac_layer,
       const AodvConfig& config, Rng rng,
       mac::PowerPolicy* policy = nullptr);

  Aodv(const Aodv&) = delete;
  Aodv& operator=(const Aodv&) = delete;

  NodeId id() const override { return mac_.id(); }
  void set_observer(Observer* obs) override { observer_ = obs; }

  void send_data(NodeId dst, std::int64_t payload_bits, std::uint32_t flow_id,
                 std::uint32_t app_seq) override;

  const AodvStats& stats() const { return stats_; }

  /// Routing-table introspection (tests).
  bool has_route(NodeId dst) const;
  NodeId next_hop(NodeId dst) const;
  std::size_t route_count() const { return table_.size(); }
  std::size_t send_buffer_depth() const { return buffer_.size(); }

  // --- mac::MacCallbacks ---------------------------------------------------
  void mac_deliver(const mac::NetDatagramPtr& pkt, NodeId from) override;
  void mac_overhear(const mac::NetDatagramPtr& pkt, NodeId from,
                    NodeId to) override;
  void mac_tx_ok(const mac::NetDatagramPtr& pkt, NodeId next_hop) override;
  void mac_tx_failed(const mac::NetDatagramPtr& pkt, NodeId next_hop) override;

 private:
  struct Route {
    NodeId next_hop = 0;
    std::uint32_t dest_seq = 0;
    std::uint32_t hop_count = 0;
    sim::Time expires = 0;
    bool valid = false;
  };

  struct Discovery {
    int attempts = 0;
    sim::EventId retry_event;
  };

  struct Buffered {
    DsrPacketPtr pkt;
    sim::Time enqueued;
  };

  // Origination and forwarding.
  void try_send(DsrPacketPtr pkt);
  void forward_data(DsrPacketPtr pkt);
  void start_discovery(NodeId dst);
  void send_rreq(NodeId dst, int ttl);
  void on_rreq_timeout(NodeId dst);
  void drain_buffer(NodeId dst);
  void drop(const DsrPacketPtr& pkt, DropReason reason);
  void expire_buffer();

  // Receive handlers.
  void handle_rreq(const DsrPacket& pkt, NodeId from);
  void handle_rrep(const DsrPacket& pkt, NodeId from);
  void handle_rerr(const DsrPacket& pkt, NodeId from);
  void handle_hello(const DsrPacket& pkt, NodeId from);
  void handle_data(const DsrPacket& pkt, const DsrPacketPtr& shared,
                   NodeId from);

  // Table maintenance.
  /// Installs/refreshes a route if it is fresher or shorter (RFC rules).
  bool update_route(NodeId dst, NodeId via, std::uint32_t dest_seq,
                    std::uint32_t hops, sim::Time lifetime);
  void refresh_route(NodeId dst);
  bool route_usable(NodeId dst) const;
  void on_link_broken(NodeId neighbor);
  void send_rerr(std::vector<std::pair<NodeId, std::uint32_t>> unreachable);

  // Hello protocol.
  void on_hello_timer();
  void check_neighbors();
  bool rreq_seen(NodeId origin, std::uint32_t rreq_id);

  sim::Simulator& sim_;
  mac::Mac& mac_;
  AodvConfig cfg_;
  Rng rng_;
  mac::PowerPolicy* policy_;
  Observer* observer_ = nullptr;

  std::unordered_map<NodeId, Route> table_;
  std::unordered_map<NodeId, Discovery> discoveries_;
  std::unordered_map<std::uint64_t, sim::Time> rreq_seen_;
  std::unordered_map<NodeId, sim::Time> neighbors_last_heard_;
  std::deque<Buffered> buffer_;
  std::uint32_t my_seq_ = 0;
  std::uint32_t next_rreq_id_ = 0;
  sim::PeriodicTimer hello_timer_;
  sim::PeriodicTimer buffer_expiry_;
  AodvStats stats_;
};

}  // namespace rcast::routing
