// Observation interface shared by the routing agents (DSR and AODV).
// Subscribers — the metrics collector, the event tracer, the telemetry
// bus's routing layer — implement the hooks they care about.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/packet.hpp"
#include "sim/time.hpp"

namespace rcast::routing {

enum class DropReason : std::uint8_t {
  kNoRoute = 0,          // discovery exhausted its retries
  kSendBufferOverflow = 1,
  kSendBufferTimeout = 2,
  kLinkFailure = 3,      // MAC retries exhausted and salvage failed
  kMacQueueFull = 4,
  kCount = 5,
};

constexpr const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kSendBufferOverflow:
      return "send-buffer-overflow";
    case DropReason::kSendBufferTimeout:
      return "send-buffer-timeout";
    case DropReason::kLinkFailure:
      return "link-failure";
    case DropReason::kMacQueueFull:
      return "mac-queue-full";
    default:
      return "?";
  }
}

/// Routing-layer event hooks; all methods have empty defaults. Both DSR and
/// AODV emit through this interface.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_data_originated(const DsrPacket&, sim::Time) {}
  virtual void on_data_delivered(const DsrPacket&, sim::Time) {}
  virtual void on_data_dropped(const DsrPacket&, DropReason, sim::Time) {}
  /// Each MAC transmission of a routing control packet (per hop).
  virtual void on_control_transmit(PacketType, sim::Time) {}
  /// A source route was attached to an originated data packet — emitted by
  /// DSR only, since AODV routes hop-by-hop (the paper's role-number
  /// accounting input).
  virtual void on_route_used(const Route&, sim::Time) {}
  /// A node forwarded a data packet (both protocols; AODV's role measure).
  virtual void on_data_forwarded(NodeId /*by*/, sim::Time) {}
  /// An intermediate node rescued a data packet onto an alternate cached
  /// route after a link failure (DSR salvage).
  virtual void on_data_salvaged(NodeId /*by*/, sim::Time) {}
};

/// Both routing agents implement this; traffic sources and the scenario
/// builder talk to it.
class RoutingAgent {
 public:
  virtual ~RoutingAgent() = default;
  virtual NodeId id() const = 0;
  virtual void send_data(NodeId dst, std::int64_t payload_bits,
                         std::uint32_t flow_id, std::uint32_t app_seq) = 0;
  virtual void set_observer(Observer* obs) = 0;
};

}  // namespace rcast::routing
