// Radio power states shared by the PHY and the energy accounting layer.
#pragma once

#include <array>
#include <string_view>

namespace rcast::energy {

enum class RadioState : int {
  kIdle = 0,   // awake, listening, no frame in flight
  kRx = 1,     // actively receiving a frame
  kTx = 2,     // actively transmitting a frame
  kSleep = 3,  // low-power doze (PSM outside ATIM window / not overhearing)
  kOff = 4,    // battery depleted (lifetime studies)
};

inline constexpr int kRadioStateCount = 5;

constexpr std::string_view to_string(RadioState s) {
  constexpr std::array<std::string_view, kRadioStateCount> names = {
      "idle", "rx", "tx", "sleep", "off"};
  return names[static_cast<int>(s)];
}

constexpr bool is_awake(RadioState s) {
  return s == RadioState::kIdle || s == RadioState::kRx ||
         s == RadioState::kTx;
}

}  // namespace rcast::energy
