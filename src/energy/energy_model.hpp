// Power tables and per-node energy accounting.
//
// The paper uses Lucent WaveLAN-II numbers and deliberately collapses
// idle/receive/transmit to a single "awake" draw: 1.15 W awake, 0.045 W in
// the low-power doze state. The table below keeps the states separate so
// ablations can explore asymmetric draws, but defaults to the paper's values.
#pragma once

#include <array>

#include "energy/radio_state.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace rcast::energy {

struct PowerTable {
  double idle_w = 1.15;
  double rx_w = 1.15;
  double tx_w = 1.15;
  double sleep_w = 0.045;

  constexpr double watts(RadioState s) const {
    switch (s) {
      case RadioState::kIdle:
        return idle_w;
      case RadioState::kRx:
        return rx_w;
      case RadioState::kTx:
        return tx_w;
      case RadioState::kSleep:
        return sleep_w;
      case RadioState::kOff:
        return 0.0;
    }
    return 0.0;
  }

  /// The paper's WaveLAN-II model (awake 1.15 W / sleep 0.045 W).
  static constexpr PowerTable wavelan2() { return PowerTable{}; }
};

/// Integrates energy over radio-state residency for one node, and optionally
/// models a finite battery for network-lifetime studies.
class EnergyMeter {
 public:
  /// `initial_battery_joules` <= 0 means an infinite battery (paper default).
  EnergyMeter(PowerTable table, sim::Time start,
              double initial_battery_joules = 0.0)
      : table_(table),
        battery_(initial_battery_joules),
        finite_battery_(initial_battery_joules > 0.0),
        state_(RadioState::kIdle),
        state_since_(start) {}

  RadioState state() const { return state_; }

  /// Switches state at time `now` (monotone). Returns the new state actually
  /// entered: once the battery is depleted the meter pins to kOff.
  RadioState set_state(RadioState s, sim::Time now) {
    settle(now);
    if (state_ != RadioState::kOff) state_ = s;
    return state_;
  }

  /// Total energy consumed up to `now`, in joules.
  double consumed_joules(sim::Time now) {
    settle(now);
    return consumed_;
  }

  /// Time spent in each state up to `now` (seconds).
  double seconds_in(RadioState s, sim::Time now) {
    settle(now);
    return seconds_[static_cast<int>(s)];
  }

  bool depleted() const { return finite_battery_ && state_ == RadioState::kOff; }

  /// Time at which the battery hit zero; only meaningful if depleted().
  sim::Time depletion_time() const { return depletion_time_; }

  /// Remaining battery fraction in [0,1]; 1.0 for infinite batteries.
  double battery_fraction(sim::Time now) {
    if (!finite_battery_) return 1.0;
    settle(now);
    return remaining_ / battery_;
  }

 private:
  void settle(sim::Time now);

  PowerTable table_;
  double battery_;
  bool finite_battery_;
  RadioState state_;
  sim::Time state_since_;
  double consumed_ = 0.0;
  double remaining_ = 0.0;
  bool remaining_init_ = false;
  sim::Time depletion_time_ = 0;
  std::array<double, kRadioStateCount> seconds_{};
};

}  // namespace rcast::energy
