#include "energy/fleet_accountant.hpp"

#include <algorithm>

namespace rcast::energy {

std::vector<double> FleetAccountant::per_node_joules(sim::Time now) const {
  std::vector<double> out;
  out.reserve(meters_.size());
  for (EnergyMeter* m : meters_) out.push_back(m->consumed_joules(now));
  return out;
}

std::vector<double> FleetAccountant::sorted_joules(sim::Time now) const {
  auto out = per_node_joules(now);
  std::sort(out.begin(), out.end());
  return out;
}

double FleetAccountant::total_joules(sim::Time now) const {
  double total = 0.0;
  for (EnergyMeter* m : meters_) total += m->consumed_joules(now);
  return total;
}

double FleetAccountant::variance(sim::Time now) const {
  return stats(now).variance();
}

RunningStats FleetAccountant::stats(sim::Time now) const {
  RunningStats s;
  for (EnergyMeter* m : meters_) s.add(m->consumed_joules(now));
  return s;
}

std::size_t FleetAccountant::dead_count() const {
  return static_cast<std::size_t>(
      std::count_if(meters_.begin(), meters_.end(),
                    [](EnergyMeter* m) { return m->depleted(); }));
}

std::optional<sim::Time> FleetAccountant::first_death() const {
  std::optional<sim::Time> first;
  for (EnergyMeter* m : meters_) {
    if (m->depleted() && (!first || m->depletion_time() < *first)) {
      first = m->depletion_time();
    }
  }
  return first;
}

}  // namespace rcast::energy
