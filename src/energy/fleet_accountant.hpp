// Fleet-level energy views: the per-node curves, variance, and lifetime
// numbers the paper's Figures 5, 6 and the lifetime extension report.
#pragma once

#include <optional>
#include <vector>

#include "energy/energy_model.hpp"
#include "util/stats.hpp"

namespace rcast::energy {

class FleetAccountant {
 public:
  /// Registers a node's meter; index order defines node ids.
  void add(EnergyMeter* meter) {
    RCAST_REQUIRE(meter != nullptr);
    meters_.push_back(meter);
  }

  std::size_t size() const { return meters_.size(); }

  /// Per-node consumed joules at `now`, in node-id order.
  std::vector<double> per_node_joules(sim::Time now) const;

  /// Per-node consumed joules sorted ascending — the Fig. 5 curve.
  std::vector<double> sorted_joules(sim::Time now) const;

  double total_joules(sim::Time now) const;

  /// Population variance of per-node consumption — the Fig. 6 metric.
  double variance(sim::Time now) const;

  RunningStats stats(sim::Time now) const;

  /// Number of nodes with depleted batteries at any time so far.
  std::size_t dead_count() const;

  /// Earliest battery-depletion instant across the fleet, if any died.
  std::optional<sim::Time> first_death() const;

 private:
  std::vector<EnergyMeter*> meters_;
};

}  // namespace rcast::energy
