#include "energy/energy_model.hpp"

namespace rcast::energy {

void EnergyMeter::settle(sim::Time now) {
  RCAST_REQUIRE_MSG(now >= state_since_, "energy meter time went backwards");
  if (!remaining_init_) {
    remaining_ = battery_;
    remaining_init_ = true;
  }
  const double dt = sim::to_seconds(now - state_since_);
  const double watts = table_.watts(state_);
  double spend = watts * dt;
  if (finite_battery_ && state_ != RadioState::kOff && spend >= remaining_ &&
      watts > 0.0) {
    // Battery dies partway through the interval: bill only what was left and
    // pin the state to kOff at the depletion instant.
    const double dt_alive = remaining_ / watts;
    depletion_time_ = state_since_ + sim::from_seconds(dt_alive);
    seconds_[static_cast<int>(state_)] += dt_alive;
    seconds_[static_cast<int>(RadioState::kOff)] += dt - dt_alive;
    consumed_ += remaining_;
    remaining_ = 0.0;
    state_ = RadioState::kOff;
    state_since_ = now;
    return;
  }
  seconds_[static_cast<int>(state_)] += dt;
  consumed_ += spend;
  if (finite_battery_) remaining_ -= spend;
  state_since_ = now;
}

}  // namespace rcast::energy
