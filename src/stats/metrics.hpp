// Network-wide metrics collection: one collector subscribes to the
// telemetry bus's routing layer (events from every node's DSR or AODV
// agent) and computes the quantities the paper's figures report.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "routing/observer.hpp"
#include "util/stats.hpp"

namespace rcast::stats {

class MetricsCollector final : public routing::Observer {
 public:
  explicit MetricsCollector(std::size_t n_nodes) : role_(n_nodes, 0) {}

  // --- routing::Observer ---------------------------------------------------
  void on_data_originated(const routing::DsrPacket& pkt,
                          sim::Time now) override;
  void on_data_delivered(const routing::DsrPacket& pkt,
                         sim::Time now) override;
  void on_data_dropped(const routing::DsrPacket& pkt,
                       routing::DropReason reason, sim::Time now) override;
  void on_control_transmit(routing::PacketType type, sim::Time now) override;
  void on_route_used(const routing::Route& route,
                     sim::Time now) override;

  // --- figure-level metrics ------------------------------------------------

  std::uint64_t originated() const { return originated_; }
  /// Unique application packets delivered (duplicates from salvage paths
  /// are counted once).
  std::uint64_t delivered() const { return delivered_; }

  /// Packet delivery ratio in percent (Fig. 7b/e).
  double pdr_percent() const;

  /// Mean end-to-end delay in seconds (Fig. 8a/c).
  double avg_delay_s() const { return delay_.mean(); }
  const RunningStats& delay_stats() const { return delay_; }

  /// Delay decomposition: time waiting for a route at the source vs time
  /// in flight once first transmitted.
  const RunningStats& route_wait_stats() const { return route_wait_; }
  const RunningStats& transit_stats() const { return transit_; }

  /// Exact delay quantile over all delivered packets; q in [0,1].
  double delay_quantile(double q) const {
    return delay_samples_.empty() ? 0.0 : delay_samples_.quantile(q);
  }

  /// Total routing control transmissions per hop (RREQ+RREP+RERR, plus
  /// HELLOs for AODV).
  std::uint64_t control_transmissions() const;
  std::uint64_t control_transmissions(routing::PacketType t) const {
    return control_tx_[static_cast<int>(t)];
  }

  /// Control packets per delivered data packet (Fig. 8b/d).
  double normalized_overhead() const;

  /// Application payload bits successfully delivered (for energy-per-bit).
  std::uint64_t delivered_payload_bits() const { return delivered_bits_; }

  /// Per-node role numbers (Fig. 9): how often each node appeared as an
  /// intermediate hop on the source route of an originated data packet.
  const std::vector<std::uint64_t>& role_numbers() const { return role_; }

  std::uint64_t drops(routing::DropReason r) const {
    return drops_[static_cast<int>(r)];
  }
  std::uint64_t total_drops() const;

  /// Folds another collector into this one (sharded runs: per-shard
  /// collectors merged in shard order at summarize). Delivered keys cannot
  /// collide across shards — a packet is delivered at exactly one node, and
  /// every node's events land on its home shard's collector.
  void merge(const MetricsCollector& o);

 private:
  static std::uint64_t key_of(const routing::DsrPacket& pkt) {
    return (static_cast<std::uint64_t>(pkt.flow_id) << 32) | pkt.app_seq;
  }

  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bits_ = 0;
  std::unordered_set<std::uint64_t> delivered_keys_;
  RunningStats delay_;
  RunningStats route_wait_;
  RunningStats transit_;
  SampleSet delay_samples_;
  std::array<std::uint64_t, 5> control_tx_{};  // indexed by PacketType
  std::array<std::uint64_t, static_cast<int>(routing::DropReason::kCount)>
      drops_{};
  std::vector<std::uint64_t> role_;
};

}  // namespace rcast::stats
