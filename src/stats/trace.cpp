#include "stats/trace.hpp"

#include <sstream>

namespace rcast::stats {

EventTracer::EventTracer(std::ostream& out) : out_(out) {
  out_ << "time_s,event,detail\n";
}

void EventTracer::line(sim::Time now, const char* event,
                       const std::string& detail) {
  out_ << sim::to_seconds(now) << ',' << event << ',' << detail << '\n';
  ++lines_;
}

void EventTracer::on_data_originated(const routing::DsrPacket& pkt,
                                     sim::Time now) {
  std::ostringstream os;
  os << "flow=" << pkt.flow_id << " seq=" << pkt.app_seq << " src=" << pkt.src
     << " dst=" << pkt.dst;
  line(now, "originate", os.str());
}

void EventTracer::on_data_delivered(const routing::DsrPacket& pkt,
                                    sim::Time now) {
  std::ostringstream os;
  os << "flow=" << pkt.flow_id << " seq=" << pkt.app_seq
     << " delay=" << sim::to_seconds(now - pkt.origin_time);
  line(now, "deliver", os.str());
}

void EventTracer::on_data_dropped(const routing::DsrPacket& pkt,
                                  routing::DropReason reason, sim::Time now) {
  std::ostringstream os;
  os << "flow=" << pkt.flow_id << " seq=" << pkt.app_seq << " reason="
     << to_string(reason);
  line(now, "drop", os.str());
}

void EventTracer::on_control_transmit(routing::PacketType type,
                                      sim::Time now) {
  line(now, "control", to_string(type));
}

void EventTracer::on_route_used(const routing::Route& route,
                                sim::Time now) {
  std::ostringstream os;
  os << "len=" << route.size() << " path=";
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (i) os << '-';
    os << route[i];
  }
  line(now, "route", os.str());
}

void EventTracer::on_data_forwarded(routing::NodeId by, sim::Time now) {
  std::ostringstream os;
  os << "node=" << by;
  line(now, "forward", os.str());
}

void EventTracer::on_data_salvaged(routing::NodeId by, sim::Time now) {
  std::ostringstream os;
  os << "node=" << by;
  line(now, "salvage", os.str());
}

void EventTracer::on_atim_tx(NodeId id, NodeId dst, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id << " dst=" << dst;
  line(now, "atim-tx", os.str());
}

void EventTracer::on_atim_acked(NodeId id, NodeId dst, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id << " dst=" << dst;
  line(now, "atim-ack", os.str());
}

void EventTracer::on_atim_failed(NodeId id, NodeId dst, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id << " dst=" << dst;
  line(now, "atim-fail", os.str());
}

void EventTracer::on_overhear_commit(NodeId id, NodeId sender,
                                     mac::OverhearingMode oh, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id << " sender=" << sender << " mode=" << to_string(oh);
  line(now, "overhear-commit", os.str());
}

void EventTracer::on_overhear_decline(NodeId id, NodeId sender,
                                      mac::OverhearingMode oh, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id << " sender=" << sender << " mode=" << to_string(oh);
  line(now, "overhear-decline", os.str());
}

void EventTracer::on_mac_sleep(NodeId id, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id;
  line(now, "sleep", os.str());
}

void EventTracer::on_mac_wake(NodeId id, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id;
  line(now, "wake", os.str());
}

void EventTracer::on_queue_drop(NodeId id, sim::Time now) {
  std::ostringstream os;
  os << "node=" << id;
  line(now, "queue-drop", os.str());
}

}  // namespace rcast::stats
