#include "stats/metrics.hpp"

#include <numeric>

namespace rcast::stats {

void MetricsCollector::on_data_originated(const routing::DsrPacket&,
                                          sim::Time) {
  ++originated_;
}

void MetricsCollector::on_data_delivered(const routing::DsrPacket& pkt,
                                         sim::Time now) {
  if (!delivered_keys_.insert(key_of(pkt)).second) return;  // duplicate path
  ++delivered_;
  delivered_bits_ += static_cast<std::uint64_t>(pkt.payload_bits);
  const double delay_s = sim::to_seconds(now - pkt.origin_time);
  delay_.add(delay_s);
  delay_samples_.add(delay_s);
  if (pkt.first_tx_time != 0) {
    route_wait_.add(sim::to_seconds(pkt.first_tx_time - pkt.origin_time));
    transit_.add(sim::to_seconds(now - pkt.first_tx_time));
  }
}

void MetricsCollector::on_data_dropped(const routing::DsrPacket&,
                                       routing::DropReason reason,
                                       sim::Time) {
  ++drops_[static_cast<int>(reason)];
}

void MetricsCollector::on_control_transmit(routing::PacketType type, sim::Time) {
  ++control_tx_[static_cast<int>(type)];
}

void MetricsCollector::on_route_used(
    const routing::Route& route, sim::Time) {
  for (std::size_t i = 1; i + 1 < route.size(); ++i) {
    if (route[i] < role_.size()) ++role_[route[i]];
  }
}

double MetricsCollector::pdr_percent() const {
  if (originated_ == 0) return 0.0;
  return 100.0 * static_cast<double>(delivered_) /
         static_cast<double>(originated_);
}

std::uint64_t MetricsCollector::control_transmissions() const {
  return control_tx_[static_cast<int>(routing::PacketType::kRreq)] +
         control_tx_[static_cast<int>(routing::PacketType::kRrep)] +
         control_tx_[static_cast<int>(routing::PacketType::kRerr)] +
         control_tx_[static_cast<int>(routing::PacketType::kHello)];
}

double MetricsCollector::normalized_overhead() const {
  if (delivered_ == 0) return 0.0;
  return static_cast<double>(control_transmissions()) /
         static_cast<double>(delivered_);
}

std::uint64_t MetricsCollector::total_drops() const {
  return std::accumulate(drops_.begin(), drops_.end(), std::uint64_t{0});
}

void MetricsCollector::merge(const MetricsCollector& o) {
  originated_ += o.originated_;
  delivered_ += o.delivered_;
  delivered_bits_ += o.delivered_bits_;
  delivered_keys_.insert(o.delivered_keys_.begin(), o.delivered_keys_.end());
  delay_.merge(o.delay_);
  route_wait_.merge(o.route_wait_);
  transit_.merge(o.transit_);
  for (const double x : o.delay_samples_.raw()) delay_samples_.add(x);
  for (std::size_t i = 0; i < control_tx_.size(); ++i) {
    control_tx_[i] += o.control_tx_[i];
  }
  for (std::size_t i = 0; i < drops_.size(); ++i) drops_[i] += o.drops_[i];
  if (role_.size() < o.role_.size()) role_.resize(o.role_.size(), 0);
  for (std::size_t i = 0; i < o.role_.size(); ++i) role_[i] += o.role_[i];
}

}  // namespace rcast::stats
