// Thread-safe live telemetry counters for the serving layer.
//
// LayerCounters is single-Simulator-owned and read only after a run ends;
// the serving daemon instead needs a bus subscriber whose totals can be
// *read while jobs are running, from other threads* (the HTTP /metrics
// endpoint streams them). LiveCounters does that with relaxed atomics: one
// instance may subscribe to many Networks at once (each campaign worker
// thread runs its own Simulator), every emission is a single atomic add,
// and snapshot() is a coherent-enough view for monitoring (counters are
// independent; no cross-counter invariant is promised mid-run).
#pragma once

#include <atomic>
#include <cstdint>

#include "stats/telemetry.hpp"

namespace rcast::stats {

/// Point-in-time copy of every live counter (plain integers, serializable
/// by any layer without touching atomics).
struct LiveSnapshot {
  std::uint64_t phy_tx = 0;
  std::uint64_t phy_rx_ok = 0;
  std::uint64_t phy_rx_lost = 0;
  std::uint64_t atim_tx = 0;
  std::uint64_t overhear_commits = 0;
  std::uint64_t overhear_declines = 0;
  std::uint64_t mac_sleeps = 0;
  std::uint64_t data_tx_attempts = 0;
  std::uint64_t data_tx_failed = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t control_tx = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;

  LiveSnapshot& operator+=(const LiveSnapshot& o) {
    phy_tx += o.phy_tx;
    phy_rx_ok += o.phy_rx_ok;
    phy_rx_lost += o.phy_rx_lost;
    atim_tx += o.atim_tx;
    overhear_commits += o.overhear_commits;
    overhear_declines += o.overhear_declines;
    mac_sleeps += o.mac_sleeps;
    data_tx_attempts += o.data_tx_attempts;
    data_tx_failed += o.data_tx_failed;
    queue_drops += o.queue_drops;
    data_originated += o.data_originated;
    data_delivered += o.data_delivered;
    data_dropped += o.data_dropped;
    control_tx += o.control_tx;
    jobs_completed += o.jobs_completed;
    jobs_failed += o.jobs_failed;
    return *this;
  }
};

class LiveCounters final : public PhyEvents,
                           public MacEvents,
                           public routing::Observer {
 public:
  // --- PhyEvents ------------------------------------------------------------
  void on_phy_tx(NodeId, std::int64_t, sim::Time) override { bump(phy_tx_); }
  void on_phy_rx_ok(NodeId, NodeId, sim::Time) override { bump(phy_rx_ok_); }
  void on_phy_rx_lost(NodeId, PhyLoss, sim::Time) override {
    bump(phy_rx_lost_);
  }

  // --- MacEvents ------------------------------------------------------------
  void on_atim_tx(NodeId, NodeId, sim::Time) override { bump(atim_tx_); }
  void on_overhear_commit(NodeId, NodeId, mac::OverhearingMode,
                          sim::Time) override {
    bump(overhear_commits_);
  }
  void on_overhear_decline(NodeId, NodeId, mac::OverhearingMode,
                           sim::Time) override {
    bump(overhear_declines_);
  }
  void on_mac_sleep(NodeId, sim::Time) override { bump(mac_sleeps_); }
  void on_data_tx_attempt(NodeId, NodeId, sim::Time) override {
    bump(data_tx_attempts_);
  }
  void on_data_tx_failed(NodeId, NodeId, sim::Time) override {
    bump(data_tx_failed_);
  }
  void on_queue_drop(NodeId, sim::Time) override { bump(queue_drops_); }

  // --- routing::Observer ----------------------------------------------------
  void on_data_originated(const routing::DsrPacket&, sim::Time) override {
    bump(data_originated_);
  }
  void on_data_delivered(const routing::DsrPacket&, sim::Time) override {
    bump(data_delivered_);
  }
  void on_data_dropped(const routing::DsrPacket&, routing::DropReason,
                       sim::Time) override {
    bump(data_dropped_);
  }
  void on_control_transmit(routing::PacketType, sim::Time) override {
    bump(control_tx_);
  }

  // --- campaign-level marks (called by the runner, not the bus) -------------
  void mark_job_completed() { bump(jobs_completed_); }
  void mark_job_failed() { bump(jobs_failed_); }

  LiveSnapshot snapshot() const {
    LiveSnapshot s;
    s.phy_tx = phy_tx_.load(std::memory_order_relaxed);
    s.phy_rx_ok = phy_rx_ok_.load(std::memory_order_relaxed);
    s.phy_rx_lost = phy_rx_lost_.load(std::memory_order_relaxed);
    s.atim_tx = atim_tx_.load(std::memory_order_relaxed);
    s.overhear_commits = overhear_commits_.load(std::memory_order_relaxed);
    s.overhear_declines = overhear_declines_.load(std::memory_order_relaxed);
    s.mac_sleeps = mac_sleeps_.load(std::memory_order_relaxed);
    s.data_tx_attempts = data_tx_attempts_.load(std::memory_order_relaxed);
    s.data_tx_failed = data_tx_failed_.load(std::memory_order_relaxed);
    s.queue_drops = queue_drops_.load(std::memory_order_relaxed);
    s.data_originated = data_originated_.load(std::memory_order_relaxed);
    s.data_delivered = data_delivered_.load(std::memory_order_relaxed);
    s.data_dropped = data_dropped_.load(std::memory_order_relaxed);
    s.control_tx = control_tx_.load(std::memory_order_relaxed);
    s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
    s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> phy_tx_{0};
  std::atomic<std::uint64_t> phy_rx_ok_{0};
  std::atomic<std::uint64_t> phy_rx_lost_{0};
  std::atomic<std::uint64_t> atim_tx_{0};
  std::atomic<std::uint64_t> overhear_commits_{0};
  std::atomic<std::uint64_t> overhear_declines_{0};
  std::atomic<std::uint64_t> mac_sleeps_{0};
  std::atomic<std::uint64_t> data_tx_attempts_{0};
  std::atomic<std::uint64_t> data_tx_failed_{0};
  std::atomic<std::uint64_t> queue_drops_{0};
  std::atomic<std::uint64_t> data_originated_{0};
  std::atomic<std::uint64_t> data_delivered_{0};
  std::atomic<std::uint64_t> data_dropped_{0};
  std::atomic<std::uint64_t> control_tx_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
};

}  // namespace rcast::stats
