// Packet/MAC-event tracing and result export.
//
// EventTracer subscribes to the telemetry bus (routing + MAC layers) and
// writes one CSV line per event — the raw material for custom
// post-processing or debugging a protocol exchange down to individual
// sleep/overhear decisions. ResultCsv serializes RunResult-style summaries
// with a stable column set for spreadsheet/plotting pipelines.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "stats/telemetry.hpp"

namespace rcast::stats {

/// Streams per-event CSV: `time_s,event,detail`. Attach with
/// `bus.subscribe_routing(&tracer)` and/or `bus.subscribe_mac(&tracer)` —
/// each layer's subscription is independent, so a routing-only trace stays
/// compact while a full trace also records ATIM outcomes, overhearing
/// decisions and per-interval sleep/wake choices.
class EventTracer final : public routing::Observer, public MacEvents {
 public:
  /// `out` must outlive the tracer. Writes a header line immediately.
  explicit EventTracer(std::ostream& out);

  // --- routing::Observer ----------------------------------------------------
  void on_data_originated(const routing::DsrPacket& pkt,
                          sim::Time now) override;
  void on_data_delivered(const routing::DsrPacket& pkt,
                         sim::Time now) override;
  void on_data_dropped(const routing::DsrPacket& pkt,
                       routing::DropReason reason, sim::Time now) override;
  void on_control_transmit(routing::PacketType type, sim::Time now) override;
  void on_route_used(const routing::Route& route,
                     sim::Time now) override;
  void on_data_forwarded(routing::NodeId by, sim::Time now) override;
  void on_data_salvaged(routing::NodeId by, sim::Time now) override;

  // --- MacEvents ------------------------------------------------------------
  void on_atim_tx(NodeId id, NodeId dst, sim::Time now) override;
  void on_atim_acked(NodeId id, NodeId dst, sim::Time now) override;
  void on_atim_failed(NodeId id, NodeId dst, sim::Time now) override;
  void on_overhear_commit(NodeId id, NodeId sender, mac::OverhearingMode oh,
                          sim::Time now) override;
  void on_overhear_decline(NodeId id, NodeId sender, mac::OverhearingMode oh,
                           sim::Time now) override;
  void on_mac_sleep(NodeId id, sim::Time now) override;
  void on_mac_wake(NodeId id, sim::Time now) override;
  void on_queue_drop(NodeId id, sim::Time now) override;

  std::uint64_t lines_written() const { return lines_; }

 private:
  void line(sim::Time now, const char* event, const std::string& detail);

  std::ostream& out_;
  std::uint64_t lines_ = 0;
};

}  // namespace rcast::stats
