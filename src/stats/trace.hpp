// Packet-event tracing and result export.
//
// EventTracer implements the routing observer interface and writes one CSV
// line per packet event — the raw material for custom post-processing or
// debugging a protocol exchange. ResultCsv serializes RunResult-style
// summaries with a stable column set for spreadsheet/plotting pipelines.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "routing/observer.hpp"

namespace rcast::stats {

/// Streams per-packet routing events as CSV: `time_s,event,detail,...`.
/// Attach with `dsr.set_observer(&tracer)` or chain behind the metrics
/// collector via TeeObserver.
class EventTracer final : public routing::DsrObserver {
 public:
  /// `out` must outlive the tracer. Writes a header line immediately.
  explicit EventTracer(std::ostream& out);

  void on_data_originated(const routing::DsrPacket& pkt,
                          sim::Time now) override;
  void on_data_delivered(const routing::DsrPacket& pkt,
                         sim::Time now) override;
  void on_data_dropped(const routing::DsrPacket& pkt,
                       routing::DropReason reason, sim::Time now) override;
  void on_control_transmit(routing::DsrType type, sim::Time now) override;
  void on_route_used(const routing::Route& route,
                     sim::Time now) override;
  void on_data_forwarded(routing::NodeId by, sim::Time now) override;

  std::uint64_t lines_written() const { return lines_; }

 private:
  void line(sim::Time now, const char* event, const std::string& detail);

  std::ostream& out_;
  std::uint64_t lines_ = 0;
};

/// Fans one observer stream out to two receivers (e.g. metrics + tracer).
class TeeObserver final : public routing::DsrObserver {
 public:
  TeeObserver(routing::DsrObserver& a, routing::DsrObserver& b)
      : a_(a), b_(b) {}

  void on_data_originated(const routing::DsrPacket& p, sim::Time t) override {
    a_.on_data_originated(p, t);
    b_.on_data_originated(p, t);
  }
  void on_data_delivered(const routing::DsrPacket& p, sim::Time t) override {
    a_.on_data_delivered(p, t);
    b_.on_data_delivered(p, t);
  }
  void on_data_dropped(const routing::DsrPacket& p, routing::DropReason r,
                       sim::Time t) override {
    a_.on_data_dropped(p, r, t);
    b_.on_data_dropped(p, r, t);
  }
  void on_control_transmit(routing::DsrType k, sim::Time t) override {
    a_.on_control_transmit(k, t);
    b_.on_control_transmit(k, t);
  }
  void on_route_used(const routing::Route& r,
                     sim::Time t) override {
    a_.on_route_used(r, t);
    b_.on_route_used(r, t);
  }
  void on_data_forwarded(routing::NodeId n, sim::Time t) override {
    a_.on_data_forwarded(n, t);
    b_.on_data_forwarded(n, t);
  }

 private:
  routing::DsrObserver& a_;
  routing::DsrObserver& b_;
};

}  // namespace rcast::stats
