// Cross-layer telemetry spine.
//
// One multi-subscriber instrumentation bus for the whole stack: PHY, MAC,
// power policy, and routing all emit typed events into a `TelemetryBus`,
// and any number of consumers — the metrics collector, the event tracer,
// the per-layer aggregate counters, campaign-side analyzers — subscribe to
// the layers they care about. Protocol modules never know who is listening.
//
// Design rules (DESIGN.md §10):
//  * Zero overhead when idle: an emission with no subscribers for that
//    layer is a null-pointer check plus an empty-vector check, both inline
//    (`TelemetryBus` is final, so emit calls devirtualize).
//  * No per-event allocation: dispatch walks a pre-built pointer vector;
//    events pass scalars and references only.
//  * Deterministic dispatch: subscribers fire in subscription order, and
//    subscribing/unsubscribing never perturbs the simulation itself —
//    subscribers are observers, not actors.
//  * Re-entrancy-safe: a subscriber may unsubscribe itself (or anyone
//    else) from inside a callback; the slot is nulled during dispatch and
//    compacted afterwards. Subscribers added mid-dispatch first see the
//    *next* event.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/radio_state.hpp"
#include "mac/mac_types.hpp"
#include "routing/observer.hpp"
#include "sim/time.hpp"

namespace rcast::stats {

using mac::NodeId;

/// Why an in-range arrival was not decoded.
enum class PhyLoss : std::uint8_t {
  kCollision = 0,   // locked reception corrupted by interference
  kWhileBusy = 1,   // arrived mid-decode of another frame
  kWhileAsleep = 2, // radio was dozing
  kWhileTx = 3,     // radio was transmitting (half-duplex)
};

constexpr const char* to_string(PhyLoss l) {
  switch (l) {
    case PhyLoss::kCollision:
      return "collision";
    case PhyLoss::kWhileBusy:
      return "busy";
    case PhyLoss::kWhileAsleep:
      return "asleep";
    case PhyLoss::kWhileTx:
      return "tx";
  }
  return "?";
}

/// Radio-level events. All defaults empty; subscribers override what they
/// need.
class PhyEvents {
 public:
  virtual ~PhyEvents() = default;
  /// A frame started serializing onto the air.
  virtual void on_phy_tx(NodeId, std::int64_t /*bits*/, sim::Time) {}
  /// A frame was fully and cleanly decoded (from `from`).
  virtual void on_phy_rx_ok(NodeId, NodeId /*from*/, sim::Time) {}
  /// An in-range arrival was lost (see PhyLoss).
  virtual void on_phy_rx_lost(NodeId, PhyLoss, sim::Time) {}
  /// The radio changed power state (idle/rx/tx/sleep/off).
  virtual void on_radio_state(NodeId, energy::RadioState, sim::Time) {}
};

/// MAC-level events: the PSM/ATIM machinery the paper's argument lives in.
class MacEvents {
 public:
  virtual ~MacEvents() = default;
  // ATIM announcement outcomes.
  virtual void on_atim_tx(NodeId, NodeId /*dst*/, sim::Time) {}
  virtual void on_atim_acked(NodeId, NodeId /*dst*/, sim::Time) {}
  virtual void on_atim_failed(NodeId, NodeId /*dst*/, sim::Time) {}
  // The Rcast decision point: a node heard an ATIM for someone else and
  // chose to stay awake (commit) or doze (decline).
  virtual void on_overhear_commit(NodeId, NodeId /*sender*/,
                                  mac::OverhearingMode, sim::Time) {}
  virtual void on_overhear_decline(NodeId, NodeId /*sender*/,
                                   mac::OverhearingMode, sim::Time) {}
  // Per-beacon-interval sleep/wake decisions.
  virtual void on_mac_sleep(NodeId, sim::Time) {}
  virtual void on_mac_wake(NodeId, sim::Time) {}
  // Data-frame operations.
  virtual void on_data_tx_attempt(NodeId, NodeId /*dst*/, sim::Time) {}
  virtual void on_data_tx_ok(NodeId, NodeId /*dst*/, sim::Time) {}
  virtual void on_data_tx_failed(NodeId, NodeId /*dst*/, sim::Time) {}
  /// A stale believed-awake (ODPM) fast-path send fell back to the ATIM
  /// path instead of declaring a link failure.
  virtual void on_immediate_fallback(NodeId, NodeId /*dst*/, sim::Time) {}
  /// Interface queue overflow: the packet was refused.
  virtual void on_queue_drop(NodeId, sim::Time) {}
};

/// Power-management events.
class PowerEvents {
 public:
  virtual ~PowerEvents() = default;
  /// An ODPM node left PS mode: it will stay in AM until `until`.
  virtual void on_am_window(NodeId, sim::Time /*until*/, sim::Time) {}
  /// The node's finite battery hit zero; the radio is permanently off.
  virtual void on_battery_depleted(NodeId, sim::Time) {}
};

/// Routing-level events are the (renamed) observer interface the routing
/// agents already emit; the bus fans it out unchanged.
using RoutingEvents = routing::Observer;

/// Ordered subscriber list with re-entrancy-safe removal. Not thread-safe
/// by design: one bus belongs to one Simulator (same ownership rule as the
/// object pools).
template <typename S>
class SubscriberList {
 public:
  void add(S* s) {
    if (s == nullptr) return;
    for (S* p : subs_) {
      if (p == s) return;  // already subscribed; order keeps first position
    }
    subs_.push_back(s);
  }

  void remove(S* s) {
    for (auto it = subs_.begin(); it != subs_.end(); ++it) {
      if (*it == s) {
        if (dispatching_ > 0) {
          *it = nullptr;  // nulled mid-dispatch, compacted after
          compact_ = true;
        } else {
          subs_.erase(it);
        }
        return;
      }
    }
  }

  bool empty() const { return subs_.empty(); }
  std::size_t size() const { return subs_.size(); }

  template <typename F>
  void emit(F&& f) {
    if (subs_.empty()) return;
    ++dispatching_;
    // Size captured up front: subscribers added during dispatch first see
    // the next event; removed ones are skipped via the null check.
    const std::size_t n = subs_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (subs_[i] != nullptr) f(*subs_[i]);
    }
    if (--dispatching_ == 0 && compact_) {
      std::erase(subs_, static_cast<S*>(nullptr));
      compact_ = false;
    }
  }

 private:
  std::vector<S*> subs_;
  int dispatching_ = 0;
  bool compact_ = false;
};

/// The bus. Emitters hold a `TelemetryBus*` and call the event methods
/// directly; each call fans out to that layer's subscribers in
/// subscription order. The bus itself implements every layer interface, so
/// it plugs into `RoutingAgent::set_observer` unchanged.
class TelemetryBus final : public PhyEvents,
                           public MacEvents,
                           public PowerEvents,
                           public routing::Observer {
 public:
  // --- subscription ---------------------------------------------------------
  void subscribe_phy(PhyEvents* s) { phy_.add(s); }
  void unsubscribe_phy(PhyEvents* s) { phy_.remove(s); }
  void subscribe_mac(MacEvents* s) { mac_.add(s); }
  void unsubscribe_mac(MacEvents* s) { mac_.remove(s); }
  void subscribe_power(PowerEvents* s) { power_.add(s); }
  void unsubscribe_power(PowerEvents* s) { power_.remove(s); }
  void subscribe_routing(routing::Observer* s) { routing_.add(s); }
  void unsubscribe_routing(routing::Observer* s) { routing_.remove(s); }

  std::size_t phy_subscribers() const { return phy_.size(); }
  std::size_t mac_subscribers() const { return mac_.size(); }
  std::size_t power_subscribers() const { return power_.size(); }
  std::size_t routing_subscribers() const { return routing_.size(); }

  // --- PhyEvents fan-out ----------------------------------------------------
  void on_phy_tx(NodeId id, std::int64_t bits, sim::Time now) override {
    phy_.emit([&](PhyEvents& s) { s.on_phy_tx(id, bits, now); });
  }
  void on_phy_rx_ok(NodeId id, NodeId from, sim::Time now) override {
    phy_.emit([&](PhyEvents& s) { s.on_phy_rx_ok(id, from, now); });
  }
  void on_phy_rx_lost(NodeId id, PhyLoss loss, sim::Time now) override {
    phy_.emit([&](PhyEvents& s) { s.on_phy_rx_lost(id, loss, now); });
  }
  void on_radio_state(NodeId id, energy::RadioState st,
                      sim::Time now) override {
    phy_.emit([&](PhyEvents& s) { s.on_radio_state(id, st, now); });
  }

  // --- MacEvents fan-out ----------------------------------------------------
  void on_atim_tx(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_atim_tx(id, dst, now); });
  }
  void on_atim_acked(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_atim_acked(id, dst, now); });
  }
  void on_atim_failed(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_atim_failed(id, dst, now); });
  }
  void on_overhear_commit(NodeId id, NodeId sender, mac::OverhearingMode oh,
                          sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_overhear_commit(id, sender, oh, now); });
  }
  void on_overhear_decline(NodeId id, NodeId sender, mac::OverhearingMode oh,
                           sim::Time now) override {
    mac_.emit(
        [&](MacEvents& s) { s.on_overhear_decline(id, sender, oh, now); });
  }
  void on_mac_sleep(NodeId id, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_mac_sleep(id, now); });
  }
  void on_mac_wake(NodeId id, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_mac_wake(id, now); });
  }
  void on_data_tx_attempt(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_data_tx_attempt(id, dst, now); });
  }
  void on_data_tx_ok(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_data_tx_ok(id, dst, now); });
  }
  void on_data_tx_failed(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_data_tx_failed(id, dst, now); });
  }
  void on_immediate_fallback(NodeId id, NodeId dst, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_immediate_fallback(id, dst, now); });
  }
  void on_queue_drop(NodeId id, sim::Time now) override {
    mac_.emit([&](MacEvents& s) { s.on_queue_drop(id, now); });
  }

  // --- PowerEvents fan-out --------------------------------------------------
  void on_am_window(NodeId id, sim::Time until, sim::Time now) override {
    power_.emit([&](PowerEvents& s) { s.on_am_window(id, until, now); });
  }
  void on_battery_depleted(NodeId id, sim::Time now) override {
    power_.emit([&](PowerEvents& s) { s.on_battery_depleted(id, now); });
  }

  // --- routing::Observer fan-out --------------------------------------------
  void on_data_originated(const routing::DsrPacket& p,
                          sim::Time now) override {
    routing_.emit([&](routing::Observer& s) { s.on_data_originated(p, now); });
  }
  void on_data_delivered(const routing::DsrPacket& p, sim::Time now) override {
    routing_.emit([&](routing::Observer& s) { s.on_data_delivered(p, now); });
  }
  void on_data_dropped(const routing::DsrPacket& p, routing::DropReason r,
                       sim::Time now) override {
    routing_.emit(
        [&](routing::Observer& s) { s.on_data_dropped(p, r, now); });
  }
  void on_control_transmit(routing::PacketType t, sim::Time now) override {
    routing_.emit(
        [&](routing::Observer& s) { s.on_control_transmit(t, now); });
  }
  void on_route_used(const routing::Route& r, sim::Time now) override {
    routing_.emit([&](routing::Observer& s) { s.on_route_used(r, now); });
  }
  void on_data_forwarded(NodeId by, sim::Time now) override {
    routing_.emit([&](routing::Observer& s) { s.on_data_forwarded(by, now); });
  }
  void on_data_salvaged(NodeId by, sim::Time now) override {
    routing_.emit([&](routing::Observer& s) { s.on_data_salvaged(by, now); });
  }

 private:
  SubscriberList<PhyEvents> phy_;
  SubscriberList<MacEvents> mac_;
  SubscriberList<PowerEvents> power_;
  SubscriberList<routing::Observer> routing_;
};

/// Network-wide per-layer aggregate counters, reconstituted from bus events.
/// This subscriber is what `Network::summarize()` reads instead of scraping
/// `MacStats`/`DsrStats`/`AodvStats` out of every node; the per-node structs
/// are temporarily retained for unit tests and the bus-vs-struct regression
/// check (test_telemetry.cpp).
class LayerCounters final : public MacEvents, public routing::Observer {
 public:
  // --- MacEvents ------------------------------------------------------------
  void on_atim_tx(NodeId, NodeId, sim::Time) override { ++atim_tx_; }
  void on_atim_acked(NodeId, NodeId, sim::Time) override { ++atim_acked_; }
  void on_atim_failed(NodeId, NodeId, sim::Time) override { ++atim_failed_; }
  void on_overhear_commit(NodeId, NodeId, mac::OverhearingMode,
                          sim::Time) override {
    ++overhear_commits_;
  }
  void on_overhear_decline(NodeId, NodeId, mac::OverhearingMode,
                           sim::Time) override {
    ++overhear_declines_;
  }
  void on_mac_sleep(NodeId, sim::Time) override { ++sleeps_; }
  void on_mac_wake(NodeId, sim::Time) override { ++wakes_; }
  void on_data_tx_attempt(NodeId, NodeId, sim::Time) override {
    ++data_tx_attempts_;
  }
  void on_data_tx_ok(NodeId, NodeId, sim::Time) override { ++data_tx_ok_; }
  void on_data_tx_failed(NodeId, NodeId, sim::Time) override {
    ++data_tx_failed_;
  }
  void on_immediate_fallback(NodeId, NodeId, sim::Time) override {
    ++immediate_fallbacks_;
  }
  void on_queue_drop(NodeId, sim::Time) override { ++queue_drops_; }

  // --- routing::Observer ----------------------------------------------------
  void on_control_transmit(routing::PacketType t, sim::Time) override {
    ++control_tx_[static_cast<int>(t)];
  }
  void on_data_salvaged(NodeId, sim::Time) override { ++data_salvaged_; }

  // --- reads ----------------------------------------------------------------
  std::uint64_t atim_tx() const { return atim_tx_; }
  std::uint64_t atim_acked() const { return atim_acked_; }
  std::uint64_t atim_failed() const { return atim_failed_; }
  std::uint64_t overhear_commits() const { return overhear_commits_; }
  std::uint64_t overhear_declines() const { return overhear_declines_; }
  std::uint64_t sleeps() const { return sleeps_; }
  std::uint64_t wakes() const { return wakes_; }
  std::uint64_t data_tx_attempts() const { return data_tx_attempts_; }
  std::uint64_t data_tx_ok() const { return data_tx_ok_; }
  std::uint64_t data_tx_failed() const { return data_tx_failed_; }
  std::uint64_t immediate_fallbacks() const { return immediate_fallbacks_; }
  std::uint64_t queue_drops() const { return queue_drops_; }
  std::uint64_t data_salvaged() const { return data_salvaged_; }
  /// Per-hop control transmissions of one packet type (network-wide).
  std::uint64_t control_tx(routing::PacketType t) const {
    return control_tx_[static_cast<int>(t)];
  }

  /// Folds another counter set into this one (sharded runs: per-shard
  /// counters merged in shard order at summarize).
  void merge(const LayerCounters& o) {
    atim_tx_ += o.atim_tx_;
    atim_acked_ += o.atim_acked_;
    atim_failed_ += o.atim_failed_;
    overhear_commits_ += o.overhear_commits_;
    overhear_declines_ += o.overhear_declines_;
    sleeps_ += o.sleeps_;
    wakes_ += o.wakes_;
    data_tx_attempts_ += o.data_tx_attempts_;
    data_tx_ok_ += o.data_tx_ok_;
    data_tx_failed_ += o.data_tx_failed_;
    immediate_fallbacks_ += o.immediate_fallbacks_;
    queue_drops_ += o.queue_drops_;
    data_salvaged_ += o.data_salvaged_;
    for (std::size_t i = 0; i < 5; ++i) control_tx_[i] += o.control_tx_[i];
  }

 private:
  std::uint64_t atim_tx_ = 0;
  std::uint64_t atim_acked_ = 0;
  std::uint64_t atim_failed_ = 0;
  std::uint64_t overhear_commits_ = 0;
  std::uint64_t overhear_declines_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t data_tx_attempts_ = 0;
  std::uint64_t data_tx_ok_ = 0;
  std::uint64_t data_tx_failed_ = 0;
  std::uint64_t immediate_fallbacks_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t data_salvaged_ = 0;
  std::uint64_t control_tx_[5] = {};  // indexed by routing::PacketType
};

}  // namespace rcast::stats
