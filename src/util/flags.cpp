#include "util/flags.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace rcast {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const { return raw(name).has_value(); }

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (!queried_.count(k)) out.push_back(k);
  }
  return out;
}

std::string Flags::env_or(const std::string& name,
                          const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : fallback;
}

bool Flags::env_flag(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (!v) return false;
  const std::string s = v;
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace rcast
