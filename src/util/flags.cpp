#include "util/flags.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace rcast {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    values_[name] = value;
    occurrences_.emplace_back(std::move(name), std::move(value));
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const { return raw(name).has_value(); }

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> Flags::get_all(const std::string& name) const {
  queried_[name] = true;
  std::vector<std::string> out;
  for (const auto& [k, v] : occurrences_) {
    if (k == name) out.push_back(v);
  }
  return out;
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (!queried_.count(k)) out.push_back(k);
  }
  return out;
}

namespace {

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::optional<double> Flags::parse_double(const std::string& s) {
  const std::string t = trimmed(s);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size() || errno == ERANGE) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> Flags::parse_u64(const std::string& s) {
  const std::string t = trimmed(s);
  if (t.empty() || t[0] == '-' || t[0] == '+') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::string Flags::env_or(const std::string& name,
                          const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v ? std::string(v) : fallback;
}

bool Flags::env_flag(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (!v) return false;
  const std::string s = v;
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace rcast
