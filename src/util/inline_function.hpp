// Move-only type-erased `void()` callable with fixed inline storage.
//
// The event queue stores millions of short-lived handlers per run; putting
// each capture behind a `std::function` heap allocation dominated the
// schedule path. Callables up to `Capacity` bytes (with alignment no
// stricter than `max_align_t` and a noexcept move) live entirely inside the
// object; anything bigger falls back to a heap-allocated box, which the
// queue counts so the hot paths can prove they never take it.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rcast::util {

template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): by design
    emplace(std::forward<F>(f));
  }

  /// Constructs a callable directly in this object's storage, destroying any
  /// current one first. The event queue uses this to build handlers in their
  /// slot with zero intermediate moves (push sites pass the raw lambda).
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        } else {
          static_cast<D*>(dst)->~D();
        }
      };
    } else {
      // Oversized / over-aligned / throwing-move capture: box it. The buffer
      // then holds just the owning pointer.
      D* box = new D(std::forward<F>(f));
      std::memcpy(buf_, &box, sizeof(box));
      invoke_ = [](void* p) {
        D* b;
        std::memcpy(&b, p, sizeof(b));
        (*b)();
      };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          std::memcpy(dst, src, sizeof(D*));
        } else {
          D* b;
          std::memcpy(&b, dst, sizeof(b));
          delete b;
        }
      };
      heap_ = true;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True if this callable did not fit inline and lives on the heap.
  bool heap_allocated() const { return heap_; }

  /// Compile-time check callers can use to static_assert a capture fits.
  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(buf_, other.buf_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(void* dst, void* src) = nullptr;  // src!=null: move; else destroy
  bool heap_ = false;
};

}  // namespace rcast::util
