// Free-list object pools and the pooled-shared_ptr factory.
//
// The per-transmission hot path used to heap-allocate every Frame, MacFrame
// and DsrPacket. `make_pooled<T>` routes those through a `Pool<T>` instead:
// one combined block per object (payload + shared_ptr control block, via
// std::allocate_shared) drawn from a free list, returned to it by the
// control block's allocator when the last reference drops. Pools live in a
// `PoolArena` owned by the Simulator — per-run, never shared across threads
// — which is what keeps the thread-per-seed parallelism of run_repetitions
// data-race free without any locking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace rcast::util {

struct PoolStats {
  std::uint64_t hits = 0;    // served from the free list (no allocation)
  std::uint64_t misses = 0;  // carved from chunk storage (amortized alloc)
};

class PoolBase {
 public:
  virtual ~PoolBase() = default;
  virtual const PoolStats& stats() const = 0;
};

/// Fixed-size-block free-list pool. Blocks are recycled raw storage for one
/// `T`; construction/destruction is the caller's business (make_pooled and
/// allocate_shared handle it). Chunks grow geometrically and are only
/// released when the pool dies, so steady state allocates nothing.
template <class T>
class Pool final : public PoolBase {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void* allocate() {
    if (free_head_ != nullptr) {
      ++stats_.hits;
      void* p = free_head_;
      std::memcpy(&free_head_, p, sizeof(void*));
      return p;
    }
    ++stats_.misses;
    if (cursor_ == chunk_cap_) grow();
    return chunks_.back().get() + (cursor_++ * kBlockSize);
  }

  void deallocate(void* p) {
    std::memcpy(p, &free_head_, sizeof(void*));
    free_head_ = p;
  }

  const PoolStats& stats() const override { return stats_; }

 private:
  static constexpr std::size_t kBlockSize =
      sizeof(T) < sizeof(void*) ? sizeof(void*) : sizeof(T);
  static constexpr std::size_t kAlign =
      alignof(T) < alignof(void*) ? alignof(void*) : alignof(T);

  struct Deleter {
    void operator()(unsigned char* p) const {
      ::operator delete[](p, std::align_val_t{kAlign});
    }
  };

  void grow() {
    const std::size_t blocks = chunks_.empty() ? 64 : chunk_cap_ * 2;
    auto* raw = static_cast<unsigned char*>(
        ::operator new[](blocks * kBlockSize, std::align_val_t{kAlign}));
    chunks_.emplace_back(raw);
    chunk_cap_ = blocks;
    cursor_ = 0;
  }

  std::vector<std::unique_ptr<unsigned char[], Deleter>> chunks_;
  std::size_t chunk_cap_ = 0;  // blocks in the current (last) chunk
  std::size_t cursor_ = 0;     // next unused block in the current chunk
  void* free_head_ = nullptr;
  PoolStats stats_;
};

/// Type-indexed registry of pools. One arena per Simulator; `get<T>()` is
/// O(1) after the first call for a given T.
class PoolArena {
 public:
  PoolArena() = default;
  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  /// Marks the arena as visible from multiple threads at once (sharded
  /// runs). The free lists are not thread-safe, so make_pooled then falls
  /// back to std::make_shared — a pointer released on another shard's
  /// thread would otherwise corrupt the list. Set once at build time.
  void set_thread_shared(bool shared) { thread_shared_ = shared; }
  bool thread_shared() const { return thread_shared_; }

  template <class T>
  Pool<T>& get() {
    const std::size_t idx = index_of<T>();
    if (idx >= pools_.size()) pools_.resize(idx + 1);
    if (pools_[idx] == nullptr) pools_[idx] = std::make_unique<Pool<T>>();
    return *static_cast<Pool<T>*>(pools_[idx].get());
  }

  /// Aggregate hit/miss counters across every pool in the arena.
  PoolStats total_stats() const {
    PoolStats total;
    for (const auto& p : pools_) {
      if (p == nullptr) continue;
      total.hits += p->stats().hits;
      total.misses += p->stats().misses;
    }
    return total;
  }

 private:
  // The index assignment is global (a static per-T), but the pools
  // themselves are per-arena; the atomic only runs once per type.
  static std::size_t next_index() {
    static std::atomic<std::size_t> counter{0};
    return counter.fetch_add(1);
  }

  template <class T>
  static std::size_t index_of() {
    static const std::size_t idx = next_index();
    return idx;
  }

  std::vector<std::unique_ptr<PoolBase>> pools_;
  bool thread_shared_ = false;
};

/// std::allocator-compatible adapter over a PoolArena; allocate_shared
/// rebinds it to its internal node type, so the control block and the
/// payload share one pooled block.
template <class T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(PoolArena& arena) : arena_(&arena) {}

  template <class U>
  PoolAllocator(const PoolAllocator<U>& other) : arena_(other.arena_) {}

  T* allocate([[maybe_unused]] std::size_t n) {
    RCAST_DCHECK(n == 1);
    return static_cast<T*>(arena_->get<T>().allocate());
  }

  void deallocate(T* p, std::size_t) { arena_->get<T>().deallocate(p); }

  template <class U>
  bool operator==(const PoolAllocator<U>& other) const {
    return arena_ == other.arena_;
  }

  PoolArena* arena_;
};

/// Pooled replacement for std::make_shared: same call shape, but the block
/// comes from (and returns to) `arena`'s Pool. The arena must outlive every
/// pointer it produced — guaranteed when the arena belongs to the Simulator,
/// which all protocol state hangs off.
template <class T, class... Args>
std::shared_ptr<T> make_pooled(PoolArena& arena, Args&&... args) {
  if (arena.thread_shared()) {
    return std::make_shared<T>(std::forward<Args>(args)...);
  }
  return std::allocate_shared<T>(PoolAllocator<T>(arena),
                                 std::forward<Args>(args)...);
}

}  // namespace rcast::util
