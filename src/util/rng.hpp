// Deterministic, platform-independent pseudo-random number generation.
//
// The simulator must replay identically for a given seed on any platform, so
// we implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded through splitmix64, instead of relying on unspecified standard
// library distribution implementations. All distribution sampling (uniform,
// exponential, bernoulli, shuffles) is written out explicitly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rcast {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (e.g. for hashing sender IDs).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** deterministic PRNG with explicit distribution sampling.
///
/// Each simulated node / subsystem should own its own stream created via
/// `fork()`, so adding a random draw in one subsystem does not perturb the
/// sequence seen by another (critical for comparing schemes seed-by-seed).
class Rng {
 public:
  /// Seeds the four-word state via splitmix64 as recommended by the authors.
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    RCAST_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    RCAST_REQUIRE(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    RCAST_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range; next_u64 is already uniform.
    if (span == 0) return static_cast<std::int64_t>(next_u64());
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed sample with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream. Deterministic in (parent state
  /// consumed so far, salt), so a fixed fork order yields fixed streams.
  Rng fork(std::uint64_t salt) {
    return Rng(next_u64() ^ mix64(salt));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rcast
