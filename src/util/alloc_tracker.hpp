// Opt-in global-allocation counting.
//
// When the build defines RCAST_COUNT_ALLOCS (the default; disabled
// automatically under RCAST_SANITIZE so sanitizer interceptors keep full
// visibility), global operator new/delete are replaced with thin malloc
// wrappers that add the requested size to a thread-local counter whenever
// tracking is enabled on that thread. The counters are per-thread, so
// run_repetitions workers measure their own runs independently and without
// synchronization. When the hook is compiled out, every call is a no-op and
// bytes() is always 0.
#pragma once

#include <cstdint>

namespace rcast::util {

class AllocTracker {
 public:
  /// Starts counting allocations made by the calling thread.
  static void enable();
  /// Stops counting on the calling thread (the byte total is retained).
  static void disable();
  /// Zeroes the calling thread's byte total.
  static void reset();
  /// Bytes requested through operator new on this thread while enabled.
  static std::uint64_t bytes();
  /// True if the counting hook is compiled into this binary.
  static bool compiled_in();
};

}  // namespace rcast::util
