// Tiny command-line / environment flag helper for bench and example binaries.
//
// Supported syntax: --name=value, --name value, and bare --name (bool true).
// Unrecognized flags are kept and can be listed, so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcast {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Every value the flag was given, in command-line order (the get_*
  /// accessors see only the last one). For repeatable flags like --set.
  std::vector<std::string> get_all(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were never queried via get_*/has; call after parsing all
  /// known flags to report typos.
  std::vector<std::string> unknown() const;

  /// Environment helper: returns $name if set, else fallback.
  static std::string env_or(const std::string& name,
                            const std::string& fallback);
  static bool env_flag(const std::string& name);

  /// Strict numeric parsing: the entire (whitespace-trimmed) string must be
  /// a finite number, otherwise nullopt. Unlike std::stod/std::stoul these
  /// never accept trailing garbage ("1.5x"), negative values sign-wrapped
  /// into unsigned ("-3"), or empty input. Shared by env-var validation and
  /// the campaign manifest parser.
  static std::optional<double> parse_double(const std::string& s);
  static std::optional<std::uint64_t> parse_u64(const std::string& s);

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  /// Every (name, value) occurrence in command-line order.
  std::vector<std::pair<std::string, std::string>> occurrences_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace rcast
