// Lightweight contract checking used across the rcast libraries.
//
// RCAST_REQUIRE  -- precondition on public API boundaries (always on).
// RCAST_ENSURE   -- postcondition / invariant check (always on).
// RCAST_DCHECK   -- debug-only internal consistency check.
//
// Violations throw rcast::ContractViolation so tests can assert on them and
// long experiment sweeps fail loudly instead of corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rcast {

/// Thrown when a RCAST_REQUIRE / RCAST_ENSURE contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace rcast

#define RCAST_REQUIRE(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rcast::detail::contract_fail("precondition", #expr, __FILE__,        \
                                     __LINE__, "");                          \
  } while (false)

#define RCAST_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rcast::detail::contract_fail("precondition", #expr, __FILE__,        \
                                     __LINE__, (msg));                       \
  } while (false)

#define RCAST_ENSURE(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::rcast::detail::contract_fail("invariant", #expr, __FILE__, __LINE__, \
                                     "");                                    \
  } while (false)

#ifdef NDEBUG
#define RCAST_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define RCAST_DCHECK(expr)                                                \
  do {                                                                    \
    if (!(expr))                                                          \
      ::rcast::detail::contract_fail("dcheck", #expr, __FILE__, __LINE__, \
                                     "");                                 \
  } while (false)
#endif
