#include "util/rng.hpp"

#include <cmath>

namespace rcast {

double Rng::exponential(double mean) {
  RCAST_REQUIRE(mean > 0.0);
  // Inverse-CDF; 1 - uniform01() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - uniform01());
}

}  // namespace rcast
