#include "util/alloc_tracker.hpp"

#include <cstdlib>
#include <new>

namespace rcast::util {
namespace {

thread_local bool t_enabled = false;
thread_local std::uint64_t t_bytes = 0;

}  // namespace

void AllocTracker::enable() { t_enabled = true; }
void AllocTracker::disable() { t_enabled = false; }
void AllocTracker::reset() { t_bytes = 0; }
std::uint64_t AllocTracker::bytes() { return t_bytes; }

bool AllocTracker::compiled_in() {
#ifdef RCAST_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

}  // namespace rcast::util

#ifdef RCAST_COUNT_ALLOCS

namespace {

void* counted_alloc(std::size_t size) {
  if (rcast::util::t_enabled) rcast::util::t_bytes += size;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (rcast::util::t_enabled) rcast::util::t_bytes += size;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Replaceable global allocation functions ([new.delete]); both the scalar
// and array forms, plus the C++17 aligned overloads, must be covered or the
// counted and uncounted families could mismatch.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (rcast::util::t_enabled) rcast::util::t_bytes += size;
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (rcast::util::t_enabled) rcast::util::t_bytes += size;
  return std::malloc(size != 0 ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // RCAST_COUNT_ALLOCS
