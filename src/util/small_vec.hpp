// Small vector with inline storage for trivially copyable elements.
//
// DSR source routes are short — the paper's 1500 m x 300 m arena never needs
// more than a handful of hops — yet every forward/copy of a packet cloned a
// heap-allocated std::vector. SmallVec keeps up to N elements inline (no
// allocation at all) and spills to the heap only beyond that, which makes
// route copies part of the packet-pool block instead of extra allocations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <ostream>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace rcast::util {

template <class T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for trivially copyable elements");
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVec() = default;

  template <class InputIt,
            class = typename std::iterator_traits<InputIt>::iterator_category>
  SmallVec(InputIt first, InputIt last) {
    assign(first, last);
  }

  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  /// Intentionally implicit: lets existing std::vector-based call sites and
  /// tests hand routes over without churn.
  SmallVec(const std::vector<T>& v) {  // NOLINT(google-explicit-constructor)
    assign(v.begin(), v.end());
  }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  const T* data() const { return data_; }
  T* data() { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t cap) {
    if (cap > cap_) grow_to(cap);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow_to(cap_ * 2);
    data_[size_++] = v;
  }

  void pop_back() {
    RCAST_DCHECK(size_ > 0);
    --size_;
  }

  void resize(std::size_t n) {
    if (n > cap_) grow_to(std::max(n, cap_ * 2));
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  iterator insert(const_iterator pos, const T& v) {
    return insert(pos, &v, &v + 1);
  }

  template <class InputIt>
  iterator insert(const_iterator pos, InputIt first, InputIt last) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    const std::size_t count = static_cast<std::size_t>(
        std::distance(first, last));
    if (size_ + count > cap_) grow_to(std::max(size_ + count, cap_ * 2));
    std::memmove(data_ + at + count, data_ + at, (size_ - at) * sizeof(T));
    std::copy(first, last, data_ + at);
    size_ += count;
    return data_ + at;
  }

  iterator erase(const_iterator pos) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    std::memmove(data_ + at, data_ + at + 1, (size_ - at - 1) * sizeof(T));
    --size_;
    return data_ + at;
  }

  template <class InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const SmallVec& a, const std::vector<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<T>& a, const SmallVec& b) {
    return b == a;
  }

  friend std::ostream& operator<<(std::ostream& os, const SmallVec& v) {
    os << '[';
    for (std::size_t i = 0; i < v.size_; ++i) {
      if (i > 0) os << ' ';
      os << v.data_[i];
    }
    return os << ']';
  }

 private:
  void grow_to(std::size_t cap) {
    cap = std::max(cap, N + N);
    T* heap = new T[cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    release();
    data_ = heap;
    cap_ = cap;
  }

  void release() {
    if (data_ != inline_storage()) delete[] data_;
    data_ = inline_storage();
    cap_ = N;
  }

  void steal(SmallVec& other) noexcept {
    if (other.data_ != other.inline_storage()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_storage();
      other.cap_ = N;
      other.size_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  T* inline_storage() { return reinterpret_cast<T*>(inline_); }

  T* data_ = inline_storage();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace rcast::util
