#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace rcast {

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ += delta * static_cast<double>(o.n_) / n;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::sum() const {
  return std::accumulate(xs_.begin(), xs_.end(), 0.0);
}

double SampleSet::mean() const {
  return xs_.empty() ? 0.0 : sum() / static_cast<double>(xs_.size());
}

double SampleSet::variance() const {
  if (xs_.empty()) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs_.size());
}

double SampleSet::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double SampleSet::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double SampleSet::quantile(double q) const {
  RCAST_REQUIRE(!xs_.empty());
  RCAST_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(xs_.begin(), xs_.end());
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] + frac * (xs_[hi] - xs_[lo]);
}

std::vector<double> SampleSet::sorted() const {
  std::vector<double> out = xs_;
  std::sort(out.begin(), out.end());
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  RCAST_REQUIRE(hi > lo);
  RCAST_REQUIRE(buckets > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  RCAST_REQUIRE(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  RCAST_REQUIRE(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bucket_lo(i) << ".." << (bucket_lo(i) + width_) << ": "
       << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace rcast
