// Streaming statistics accumulators used by the metrics layer and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace rcast {

/// Single-pass accumulator of count/mean/variance/min/max (Welford's method).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& o);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n). Matches the paper's "variance of
  /// energy consumption between nodes" over the full node population.
  double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (divides by n-1); 0 when fewer than two samples.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; supports exact quantiles. Use for modest sample
/// counts (per-node metrics, per-packet delays in scaled runs).
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double sum() const;
  double mean() const;
  /// Population variance; 0 when empty.
  double variance() const;
  double min() const;
  double max() const;
  /// Exact quantile with linear interpolation; q in [0,1]. Requires samples.
  double quantile(double q) const;
  /// Samples sorted ascending (e.g. Fig. 5's sorted per-node energy curve).
  std::vector<double> sorted() const;
  const std::vector<double>& raw() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const;
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  /// Renders "lo..hi: count" lines; convenient for bench output.
  std::string to_string() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rcast
