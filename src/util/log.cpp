#include "util/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace rcast {

LogLevel parse_log_level(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "debug") return LogLevel::kDebug;
  if (t == "info") return LogLevel::kInfo;
  if (t == "warn" || t == "warning") return LogLevel::kWarn;
  if (t == "error") return LogLevel::kError;
  if (t == "off" || t == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("RCAST_LOG")) {
    level_ = parse_log_level(env);
  }
}

void Logger::write(LogLevel lvl, const std::string& msg) {
  if (!enabled(lvl)) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[rcast:" << names[static_cast<int>(lvl)] << "] " << msg
            << '\n';
}

}  // namespace rcast
