// Minimal leveled logger. Simulations are silent by default; raise the level
// (e.g. via RCAST_LOG=debug or Logger::set_level) to trace protocol events.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace rcast {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive); defaults to
/// kWarn on unrecognized input.
LogLevel parse_log_level(const std::string& s);

/// Process-wide logger; thread-safe sink, per-call formatting.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel lvl) const { return lvl >= level_ && level_ != LogLevel::kOff; }

  void write(LogLevel lvl, const std::string& msg);

 private:
  Logger();
  LogLevel level_;
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Logger::instance().write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rcast

#define RCAST_LOG(lvl)                               \
  if (!::rcast::Logger::instance().enabled(lvl)) {   \
  } else                                             \
    ::rcast::detail::LogLine(lvl)

#define RCAST_DEBUG RCAST_LOG(::rcast::LogLevel::kDebug)
#define RCAST_INFO RCAST_LOG(::rcast::LogLevel::kInfo)
#define RCAST_WARN RCAST_LOG(::rcast::LogLevel::kWarn)
#define RCAST_ERROR RCAST_LOG(::rcast::LogLevel::kError)
