// IEEE 802.11 MAC: DCF (CSMA/CA with binary exponential backoff and ACKs)
// plus the DCF power-saving mechanism (beacon intervals, ATIM window,
// ATIM/ATIM-ACK announcement handshake, per-interval sleep decisions), with
// the Rcast overhearing subtypes.
//
// Modeling notes (see DESIGN.md):
//  * Beacon boundaries are globally synchronized and beacon frames are not
//    contended (the paper assumes an external sync algorithm).
//  * RTS/CTS and virtual carrier sense (NAV) are not modeled; the paper's
//    setup (64-byte packets, no RTS threshold) does not exercise them.
//  * During the ATIM window only ATIM/ATIM-ACK frames contend; data frames
//    contend afterwards. A node in PS mode that fails its announcement
//    retries in the next beacon interval.
#pragma once

#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mac/mac_types.hpp"
#include "phy/phy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rcast::stats {
class TelemetryBus;
}

namespace rcast::mac {

class Mac final : public phy::PhyListener {
 public:
  Mac(sim::Simulator& simulator, phy::Phy& phy, const MacConfig& config,
      Rng rng);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  NodeId id() const { return phy_.id(); }
  const MacConfig& config() const { return cfg_; }

  void set_callbacks(MacCallbacks* cb) { callbacks_ = cb; }
  void set_power_policy(PowerPolicy* p) { policy_ = p; }
  /// Attach the telemetry bus (may be null). The MAC emits ATIM outcomes,
  /// overhearing decisions, sleep/wake choices and data-frame operations;
  /// emission never affects protocol behavior.
  void set_telemetry(stats::TelemetryBus* bus) { telemetry_ = bus; }

  /// Starts the beacon schedule (PSM mode). Call once at simulation start.
  void start();

  /// Enqueues a network packet for `next_hop` (or kBroadcastId) with the
  /// requested Rcast overhearing level. Returns false on queue overflow.
  bool send(NodeId next_hop, NetDatagramPtr pkt, OverhearingMode oh);

  /// Number of packets waiting in the interface queue.
  std::size_t queue_depth() const { return queue_.size(); }

  /// Oldest queued packet: its age (0 when empty) and destination
  /// (kBroadcastId when empty); diagnostic surface for starvation analysis.
  struct OldestQueued {
    sim::Time age = 0;
    NodeId dst = kBroadcastId;
  };
  OldestQueued oldest_queued() const {
    OldestQueued best;
    bool found = false;
    for (const TxItem& i : queue_) {
      const sim::Time age = sim_.now() - i.enqueued;
      if (!found || age > best.age) {
        best = OldestQueued{age, i.dst};
        found = true;
      }
    }
    return best;
  }
  sim::Time oldest_queued_age() const { return oldest_queued().age; }
  NodeId oldest_queued_dst() const { return oldest_queued().dst; }

  bool awake() const { return !phy_.sleeping(); }
  const MacStats& stats() const { return stats_; }

  /// True while the current instant is inside an ATIM window (PSM only).
  bool in_atim_window() const;

  // --- phy::PhyListener ----------------------------------------------------
  void phy_rx_ok(const phy::FramePtr& frame) override;
  void phy_tx_done() override;
  void phy_carrier_busy() override;
  void phy_carrier_idle() override;

 private:
  struct TxItem {
    NetDatagramPtr pkt;
    NodeId dst = kBroadcastId;
    OverhearingMode oh = OverhearingMode::kNone;
    sim::Time enqueued = 0;
  };

  struct Announcement {
    NodeId dst = kBroadcastId;  // kBroadcastId = broadcast announcement
    OverhearingMode oh = OverhearingMode::kNone;
  };

  enum class DcfState { kIdle, kContending, kWaitAck };
  enum class CurrentTx { kNone, kOp, kResponse };

  // Beacon/interval machinery.
  void on_beacon();
  void on_atim_window_end();
  void rebuild_announcements();
  bool should_stay_awake();
  void maybe_sleep();
  bool has_eligible_data() const;
  bool data_item_eligible(const TxItem& item) const;
  bool policy_ps_now();

  // DCF engine.
  void kick();
  void start_op_announcement(Announcement a);
  void start_op_data(TxItem item, bool immediate);
  void begin_contention();
  void resume_contention();
  void pause_contention();
  void on_backoff_expired();
  void transmit_op_frame();
  void on_ack_timeout();
  void op_success();
  void op_failure();
  void on_announcement_failed(NodeId dst);
  void abort_op_requeue();
  void finish_op();

  // Receive path.
  void handle_atim(const MacFrame& frame);
  void handle_atim_ack(const MacFrame& frame);
  void handle_data(const MacFrame& frame);
  void handle_ack(const MacFrame& frame);
  void send_response(FrameKind kind, NodeId dst);
  void schedule_response();
  void fire_response();
  bool duplicate_filter(NodeId src, std::uint32_t seq);

  MacFramePtr make_frame(FrameKind kind, NodeId dst, OverhearingMode oh,
                         bool bcast_announce, NetDatagramPtr datagram);
  std::int64_t frame_bits(FrameKind kind, const NetDatagramPtr& d) const;
  sim::Time frame_airtime(FrameKind kind, const NetDatagramPtr& d) const;
  sim::Time ack_timeout_delay() const;
  bool fits_before(sim::Time deadline, sim::Time airtime) const;
  sim::Time next_bi_start() const { return bi_start_ + cfg_.beacon_interval; }

  sim::Simulator& sim_;
  phy::Phy& phy_;
  MacConfig cfg_;
  Rng rng_;
  MacCallbacks* callbacks_ = nullptr;
  PowerPolicy* policy_ = nullptr;
  stats::TelemetryBus* telemetry_ = nullptr;

  // Interface queue and per-BI announcement work.
  std::deque<TxItem> queue_;
  std::deque<Announcement> announcements_;

  // Per-beacon-interval state.
  sim::Time bi_start_ = 0;
  bool started_ = false;
  std::unordered_set<NodeId> acked_dsts_;   // our ATIM was acked by these
  bool bcast_announced_ = false;            // our broadcast ATIM went out
  bool must_awake_rx_ = false;              // we acked an ATIM / broadcast
  bool must_awake_overhear_ = false;        // committed to overhear
  std::unordered_set<NodeId> oh_decided_;   // senders already decided on
  std::unordered_set<NodeId> announce_planned_;  // dsts with an ATIM planned
  bool bcast_announce_planned_ = false;

  // DCF operation in flight.
  DcfState dcf_ = DcfState::kIdle;
  bool op_is_announcement_ = false;
  bool op_immediate_ = false;  // data sent on a believes-awake fast path
  Announcement op_announcement_;
  TxItem op_item_;
  MacFramePtr op_frame_;
  int op_attempts_ = 0;
  int op_cw_ = 0;
  int backoff_slots_ = 0;
  bool counting_down_ = false;
  sim::Time countdown_start_ = 0;
  sim::EventId backoff_event_;
  sim::EventId ack_timeout_event_;
  // Schedule-hint memos for the per-interval pushes: every PSM node beacons
  // at the same synced instants, and backoff re-arms recur at near-constant
  // horizons, so the queue-tier routing is almost always unchanged between
  // consecutive pushes from the same site.
  sim::EventQueue::ScheduleHint beacon_hint_;
  sim::EventQueue::ScheduleHint atim_end_hint_;
  sim::EventQueue::ScheduleHint backoff_hint_;
  CurrentTx current_tx_ = CurrentTx::kNone;

  // Pending SIFS responses (ACK / ATIM-ACK).
  std::deque<MacFramePtr> responses_;
  bool response_scheduled_ = false;

  // Consecutive beacon intervals with a failed ATIM, per destination.
  std::unordered_map<NodeId, int> atim_fail_streak_;

  // Receiver-side duplicate filtering (per-sender last sequence number).
  std::unordered_map<NodeId, std::uint32_t> last_seq_;
  std::uint32_t my_seq_ = 0;

  MacStats stats_;
};

}  // namespace rcast::mac
