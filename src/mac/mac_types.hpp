// Shared MAC-layer types: frame formats, the overhearing levels Rcast adds
// to the ATIM subtype field, and the interfaces the MAC exposes upward (to
// the network layer) and sideways (to the power-management policy).
#pragma once

#include <cstdint>
#include <memory>

#include "phy/frame.hpp"
#include "sim/time.hpp"

namespace rcast::mac {

using phy::kBroadcastId;
using phy::NodeId;

/// Rcast overhearing levels, encoded in the ATIM frame subtype (paper §3.2):
/// 1001 = standard ATIM (no overhearing), 1110 = randomized, 1111 =
/// unconditional (two reserved management subtypes).
enum class OverhearingMode : std::uint8_t {
  kNone = 0,           // subtype 1001 — only the addressed receiver wakes
  kRandomized = 1,     // subtype 1110 — neighbors overhear with prob. P_R
  kUnconditional = 2,  // subtype 1111 — every neighbor stays awake
};

constexpr const char* to_string(OverhearingMode m) {
  switch (m) {
    case OverhearingMode::kNone:
      return "none";
    case OverhearingMode::kRandomized:
      return "randomized";
    case OverhearingMode::kUnconditional:
      return "unconditional";
  }
  return "?";
}

enum class FrameKind : std::uint8_t {
  kData = 0,
  kAck = 1,
  kAtim = 2,
  kAtimAck = 3,
};

/// Base class for network-layer packets carried in MAC data frames. The MAC
/// treats them opaquely; it only needs the on-air size.
struct NetDatagram {
  virtual ~NetDatagram() = default;
  virtual std::int64_t size_bits() const = 0;
  /// Policy-control payloads (e.g. cluster-head announcements) ride the MAC
  /// data path but must not surface to the routing layer, which casts
  /// delivered datagrams to its own packet types. The MAC drops them after
  /// the power policy has seen the frame via on_frame_decoded.
  virtual bool policy_private() const { return false; }
};

using NetDatagramPtr = std::shared_ptr<const NetDatagram>;

/// A MAC frame as carried through the PHY.
struct MacFrame : phy::Payload {
  FrameKind kind = FrameKind::kData;
  NodeId src = 0;
  NodeId dst = kBroadcastId;
  /// IEEE 802.11 PwrMgt bit: the mode (AM=true / PS=false) the sender will
  /// be in after this exchange. ODPM learns neighbor modes from it.
  bool pwr_mgt_am = false;
  /// For ATIM frames: requested overhearing level (the Rcast subtype).
  OverhearingMode oh = OverhearingMode::kNone;
  /// For ATIM frames: true if this announces buffered broadcast traffic.
  bool bcast_announce = false;
  /// Sender-local sequence number (duplicate filtering at the receiver).
  std::uint32_t seq = 0;
  /// Network payload; non-null iff kind == kData.
  NetDatagramPtr datagram;
};

using MacFramePtr = std::shared_ptr<const MacFrame>;

/// Events the routing layer reports to the power policy (ODPM keeps a node
/// in AM for a timeout after these; see Zheng & Kravets).
enum class RoutingEvent : std::uint8_t {
  kRrepReceived,
  kDataReceived,    // as final destination
  kDataForwarded,   // as intermediate hop
  kDataSent,        // as source
  kDataOverheard,   // someone else's data decoded while awake
};

/// Power-management policy: tells the MAC when to sleep and whether to
/// overhear. Implementations: AlwaysOnPolicy (plain 802.11), PsmPolicy
/// (PSM with fixed no/unconditional overhearing), OdpmPolicy, RcastPolicy.
class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  /// Plain-802.11 mode: no PSM structure at all, radio never sleeps.
  virtual bool always_awake() const { return false; }

  /// True if the node currently operates in PS mode (sleeps outside the
  /// ATIM window when idle). ODPM returns false while an AM timeout runs.
  virtual bool ps_mode_now(sim::Time now) {
    (void)now;
    return true;
  }

  /// Overhearing decision upon hearing a unicast ATIM addressed to another
  /// node, per the announced level. Called at most once per (sender, beacon
  /// interval); true commits the node to stay awake for this interval.
  virtual bool should_overhear(NodeId sender, OverhearingMode mode,
                               sim::Time now) = 0;

  /// Decision upon hearing a broadcast-announce ATIM. Standard PSM: always
  /// stay awake; the Rcast broadcast extension randomizes this.
  virtual bool should_receive_broadcast(NodeId sender, sim::Time now) {
    (void)sender;
    (void)now;
    return true;
  }

  /// True if `neighbor` is believed to be awake in AM right now, in which
  /// case the MAC may transmit to it immediately without an ATIM (ODPM).
  virtual bool believes_awake(NodeId neighbor, sim::Time now) {
    (void)neighbor;
    (void)now;
    return false;
  }

  /// Called when an immediate (non-ATIM) transmission to a believed-AM
  /// neighbor exhausted its retries — the belief was stale.
  virtual void on_immediate_send_failed(NodeId neighbor) { (void)neighbor; }

  /// Every cleanly decoded frame is reported here (PwrMgt-bit learning,
  /// passive neighbor discovery).
  virtual void on_frame_decoded(const MacFrame& frame, sim::Time now) {
    (void)frame;
    (void)now;
  }

  /// Routing-layer events (ODPM AM timeouts).
  virtual void on_routing_event(RoutingEvent ev, sim::Time now) {
    (void)ev;
    (void)now;
  }
};

/// Upward interface: the network layer (DSR) implements this.
class MacCallbacks {
 public:
  virtual ~MacCallbacks() = default;

  /// A data frame addressed to this node (or broadcast) was received.
  virtual void mac_deliver(const NetDatagramPtr& pkt, NodeId from) = 0;

  /// A data frame addressed to another node was decoded while awake —
  /// the overhearing tap that feeds DSR's route cache.
  virtual void mac_overhear(const NetDatagramPtr& pkt, NodeId from,
                            NodeId to) = 0;

  /// Unicast transmission to `next_hop` succeeded (ACK received).
  virtual void mac_tx_ok(const NetDatagramPtr& pkt, NodeId next_hop) = 0;

  /// Unicast transmission to `next_hop` failed after all retries — DSR
  /// treats this as a broken link (RERR).
  virtual void mac_tx_failed(const NetDatagramPtr& pkt, NodeId next_hop) = 0;
};

/// Protocol timing and size constants (IEEE 802.11 DSSS at 2 Mbps).
struct MacConfig {
  sim::Time beacon_interval = 250 * sim::kMillisecond;  // paper
  sim::Time atim_window = 50 * sim::kMillisecond;       // paper
  sim::Time slot = 20 * sim::kMicrosecond;
  sim::Time sifs = 10 * sim::kMicrosecond;
  sim::Time difs = 50 * sim::kMicrosecond;
  int cw_min = 31;
  int cw_max = 1023;
  int retry_limit = 7;
  std::int64_t data_header_bits = 28 * 8;  // MAC header + FCS
  std::int64_t ack_bits = 14 * 8;
  std::int64_t atim_bits = 28 * 8;  // management frame, null body (Fig. 4)
  std::int64_t preamble_bits = 384;  // 192 us PLCP preamble+header at 2 Mbps
  std::size_t queue_limit = 64;      // interface queue length
  bool psm_enabled = true;  // false = plain 802.11 (no beacons, no ATIM)
  /// Consecutive beacon intervals of un-acked ATIMs to one destination
  /// before the queued packets are reported as link failures (the neighbor
  /// has moved away or died; DSR needs the signal to repair the route).
  int atim_fail_limit = 3;
  /// Offset of this node's beacon schedule from the global epoch. The paper
  /// assumes perfect distributed clock sync (offset 0 everywhere);
  /// bench_ablation_sync sweeps per-node random offsets to measure how much
  /// desynchronization PSM tolerates.
  sim::Time beacon_offset = 0;
};

struct MacStats {
  std::uint64_t data_tx_attempts = 0;   // each on-air data transmission
  std::uint64_t data_tx_ok = 0;         // unicast acked / broadcast sent
  std::uint64_t data_tx_failed = 0;     // retry limit exceeded (link break)
  std::uint64_t data_delivered = 0;     // frames delivered upward
  std::uint64_t data_duplicates = 0;    // retransmissions filtered
  std::uint64_t data_overheard = 0;     // frames tapped to the routing layer
  std::uint64_t atim_tx = 0;
  std::uint64_t atim_acked = 0;
  std::uint64_t atim_failed = 0;        // un-acked announcements this BI
  std::uint64_t atim_heard_other = 0;   // ATIMs for other destinations heard
  std::uint64_t overhear_commits = 0;   // decided to stay awake to overhear
  std::uint64_t overhear_declines = 0;  // decided to sleep instead
  std::uint64_t sleeps = 0;             // ATIM-window-end sleep decisions
  std::uint64_t queue_drops = 0;        // interface queue overflow
  std::uint64_t immediate_fallbacks = 0;  // stale-AM sends requeued via ATIM
  sim::Time max_queue_residency = 0;    // longest time a packet sat queued
};

}  // namespace rcast::mac
