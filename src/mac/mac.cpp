#include "mac/mac.hpp"

#include <algorithm>

#include "stats/telemetry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/pool.hpp"

namespace rcast::mac {

namespace {
constexpr sim::Time kAckMargin = 60 * sim::kMicrosecond;
// Conservative headroom when checking that an exchange fits before a phase
// boundary: covers DIFS plus a full maximum backoff at CWmin.
constexpr sim::Time kFitMargin = 1 * sim::kMillisecond;
}  // namespace

Mac::Mac(sim::Simulator& simulator, phy::Phy& phy, const MacConfig& config,
         Rng rng)
    : sim_(simulator), phy_(phy), cfg_(config), rng_(rng) {
  RCAST_REQUIRE(cfg_.atim_window > 0 &&
                cfg_.atim_window < cfg_.beacon_interval);
  RCAST_REQUIRE(cfg_.retry_limit >= 0);
  phy_.set_listener(this);
}

void Mac::start() {
  RCAST_REQUIRE_MSG(!started_, "Mac::start called twice");
  RCAST_REQUIRE(cfg_.beacon_offset >= 0);
  started_ = true;
  if (cfg_.psm_enabled) {
    bi_start_ = sim_.now() + cfg_.beacon_offset;
    sim_.at(bi_start_, [this] { on_beacon(); });
  }
}

bool Mac::in_atim_window() const {
  if (!cfg_.psm_enabled || !started_) return false;
  if (sim_.now() < bi_start_) return false;  // before the first beacon
  return sim_.now() - bi_start_ < cfg_.atim_window;
}

bool Mac::policy_ps_now() {
  if (!cfg_.psm_enabled) return false;
  if (policy_ == nullptr) return true;
  if (policy_->always_awake()) return false;
  return policy_->ps_mode_now(sim_.now());
}

// --------------------------------------------------------------------------
// Send path
// --------------------------------------------------------------------------

bool Mac::send(NodeId next_hop, NetDatagramPtr pkt, OverhearingMode oh) {
  RCAST_REQUIRE(pkt != nullptr);
  if (phy_.dead()) return false;
  if (queue_.size() >= cfg_.queue_limit) {
    ++stats_.queue_drops;
    if (telemetry_ != nullptr) telemetry_->on_queue_drop(id(), sim_.now());
    return false;
  }
  queue_.push_back(TxItem{std::move(pkt), next_hop, oh, sim_.now()});

  if (!cfg_.psm_enabled) {
    kick();
    return true;
  }

  // A packet arriving mid-window can still be announced in this window.
  if (awake() && in_atim_window()) {
    const TxItem& item = queue_.back();
    if (item.dst == kBroadcastId) {
      if (!bcast_announce_planned_ && !bcast_announced_) {
        bcast_announce_planned_ = true;
        announcements_.push_back(Announcement{kBroadcastId, item.oh});
      }
    } else if (!announce_planned_.count(item.dst) &&
               !acked_dsts_.count(item.dst) &&
               !(policy_ != nullptr &&
                 policy_->believes_awake(item.dst, sim_.now()))) {
      announce_planned_.insert(item.dst);
      announcements_.push_back(Announcement{item.dst, item.oh});
    }
    kick();
    return true;
  }

  if (!awake()) {
    // ODPM fast path: wake up to transmit immediately to a believed-AM
    // neighbor; otherwise stay asleep and announce next beacon interval.
    if (next_hop != kBroadcastId && policy_ != nullptr &&
        policy_->believes_awake(next_hop, sim_.now())) {
      phy_.wake();
      if (telemetry_ != nullptr) telemetry_->on_mac_wake(id(), sim_.now());
      kick();
    }
    return true;
  }

  kick();
  return true;
}

// --------------------------------------------------------------------------
// Beacon interval machinery
// --------------------------------------------------------------------------

void Mac::on_beacon() {
  bi_start_ = sim_.now();
  sim_.after(cfg_.beacon_interval, [this] { on_beacon(); }, beacon_hint_);
  if (phy_.dead()) return;
  sim_.after(cfg_.atim_window, [this] { on_atim_window_end(); },
             atim_end_hint_);

  // An operation contending across the boundary loses its clearance — but a
  // frame already on the air must finish (its ACK wait re-verifies later).
  if (dcf_ == DcfState::kContending && current_tx_ != CurrentTx::kOp) {
    if (op_is_announcement_) {
      finish_op();
    } else {
      abort_op_requeue();
    }
  }

  acked_dsts_.clear();
  oh_decided_.clear();
  announce_planned_.clear();
  bcast_announced_ = false;
  bcast_announce_planned_ = false;
  must_awake_rx_ = false;
  must_awake_overhear_ = false;

  const bool was_sleeping = phy_.sleeping();
  phy_.wake();
  if (was_sleeping && telemetry_ != nullptr) {
    telemetry_->on_mac_wake(id(), sim_.now());
  }
  rebuild_announcements();
  kick();
}

void Mac::rebuild_announcements() {
  announcements_.clear();
  if (!cfg_.psm_enabled) return;
  // Aggregate queued traffic per destination; announce the strongest
  // requested overhearing level.
  for (const TxItem& item : queue_) {
    if (item.dst == kBroadcastId) {
      if (!bcast_announce_planned_) {
        bcast_announce_planned_ = true;
        announcements_.push_back(Announcement{kBroadcastId, item.oh});
      } else {
        for (auto& a : announcements_) {
          if (a.dst == kBroadcastId) a.oh = std::max(a.oh, item.oh);
        }
      }
      continue;
    }
    if (policy_ != nullptr && policy_->believes_awake(item.dst, sim_.now())) {
      continue;  // fast path, no announcement needed
    }
    if (announce_planned_.insert(item.dst).second) {
      announcements_.push_back(Announcement{item.dst, item.oh});
    } else {
      for (auto& a : announcements_) {
        if (a.dst == item.dst) a.oh = std::max(a.oh, item.oh);
      }
    }
  }
}

void Mac::on_atim_window_end() {
  if (phy_.dead()) return;
  // Unsent announcements forfeit this interval; they are rebuilt next BI.
  // An announcement frame already on the air is left to finish. An aborted
  // announcement that already burned transmission attempts without an ACK
  // counts toward the dead-neighbor streak, otherwise a vanished receiver
  // whose retries straddle the window end is never detected.
  if (dcf_ == DcfState::kContending && op_is_announcement_ &&
      current_tx_ != CurrentTx::kOp) {
    if (op_attempts_ > 0 && op_announcement_.dst != kBroadcastId) {
      ++stats_.atim_failed;
      if (telemetry_ != nullptr) {
        telemetry_->on_atim_failed(id(), op_announcement_.dst, sim_.now());
      }
      on_announcement_failed(op_announcement_.dst);
    }
    finish_op();
  }
  announcements_.clear();

  if (should_stay_awake()) {
    kick();  // data phase begins
  } else {
    maybe_sleep();
  }
}

bool Mac::should_stay_awake() {
  if (!policy_ps_now()) return true;
  if (must_awake_rx_ || must_awake_overhear_) return true;
  if (dcf_ != DcfState::kIdle) return true;  // exchange still resolving
  if (phy_.transmitting() || current_tx_ != CurrentTx::kNone) return true;
  if (response_scheduled_ || !responses_.empty()) return true;
  if (has_eligible_data()) return true;
  return false;
}

void Mac::maybe_sleep() {
  if (!cfg_.psm_enabled || !started_) return;
  if (phy_.dead() || phy_.sleeping()) return;
  if (in_atim_window()) return;
  if (should_stay_awake()) return;
  ++stats_.sleeps;
  if (telemetry_ != nullptr) telemetry_->on_mac_sleep(id(), sim_.now());
  phy_.sleep();
}

bool Mac::has_eligible_data() const {
  return std::any_of(queue_.begin(), queue_.end(), [this](const TxItem& i) {
    return data_item_eligible(i);
  });
}

bool Mac::data_item_eligible(const TxItem& item) const {
  if (!cfg_.psm_enabled) return true;
  if (in_atim_window()) return false;  // only ATIMs contend in the window
  if (item.dst == kBroadcastId) return bcast_announced_;
  if (acked_dsts_.count(item.dst)) return true;
  return policy_ != nullptr && policy_->believes_awake(item.dst, sim_.now());
}

// --------------------------------------------------------------------------
// DCF engine
// --------------------------------------------------------------------------

void Mac::kick() {
  if (!started_ || phy_.dead() || phy_.sleeping()) return;
  if (dcf_ != DcfState::kIdle) return;
  if (current_tx_ != CurrentTx::kNone) return;

  if (cfg_.psm_enabled && in_atim_window()) {
    while (!announcements_.empty()) {
      Announcement a = announcements_.front();
      announcements_.pop_front();
      const sim::Time airtime = frame_airtime(FrameKind::kAtim, nullptr) +
                                cfg_.sifs +
                                frame_airtime(FrameKind::kAtimAck, nullptr);
      if (!fits_before(bi_start_ + cfg_.atim_window, airtime)) continue;
      start_op_announcement(a);
      return;
    }
    return;
  }

  // Data phase (or non-PSM operation): first eligible packet that fits.
  const sim::Time deadline = cfg_.psm_enabled
                                 ? next_bi_start()
                                 : std::numeric_limits<sim::Time>::max();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!data_item_eligible(*it)) continue;
    sim::Time airtime = frame_airtime(FrameKind::kData, it->pkt);
    if (it->dst != kBroadcastId) {
      airtime += cfg_.sifs + frame_airtime(FrameKind::kAck, nullptr);
    }
    if (!fits_before(deadline, airtime)) continue;
    TxItem item = std::move(*it);
    queue_.erase(it);
    stats_.max_queue_residency =
        std::max(stats_.max_queue_residency, sim_.now() - item.enqueued);
    const bool immediate =
        cfg_.psm_enabled && item.dst != kBroadcastId &&
        !acked_dsts_.count(item.dst) && policy_ != nullptr &&
        policy_->believes_awake(item.dst, sim_.now());
    start_op_data(std::move(item), immediate);
    return;
  }
}

bool Mac::fits_before(sim::Time deadline, sim::Time airtime) const {
  if (!cfg_.psm_enabled) return true;
  return sim_.now() + cfg_.difs + airtime + kFitMargin <= deadline;
}

void Mac::start_op_announcement(Announcement a) {
  op_is_announcement_ = true;
  op_immediate_ = false;
  op_announcement_ = a;
  op_frame_ = make_frame(FrameKind::kAtim, a.dst, a.oh,
                         a.dst == kBroadcastId, nullptr);
  op_attempts_ = 0;
  op_cw_ = cfg_.cw_min;
  begin_contention();
}

void Mac::start_op_data(TxItem item, bool immediate) {
  op_is_announcement_ = false;
  op_immediate_ = immediate;
  op_item_ = std::move(item);
  op_frame_ = make_frame(FrameKind::kData, op_item_.dst, op_item_.oh, false,
                         op_item_.pkt);
  op_attempts_ = 0;
  op_cw_ = cfg_.cw_min;
  begin_contention();
}

void Mac::begin_contention() {
  dcf_ = DcfState::kContending;
  backoff_slots_ = static_cast<int>(rng_.uniform_int(0, op_cw_));
  counting_down_ = false;
  resume_contention();
}

void Mac::resume_contention() {
  RCAST_DCHECK(dcf_ == DcfState::kContending);
  if (counting_down_) return;
  if (phy_.transmitting() || phy_.carrier_busy()) return;  // resume on idle
  counting_down_ = true;
  countdown_start_ = sim_.now();
  const sim::Time wait = cfg_.difs + backoff_slots_ * cfg_.slot;
  auto on_expired = [this] { on_backoff_expired(); };
  static_assert(sim::EventQueue::Handler::fits_inline<decltype(on_expired)>());
  backoff_event_ = sim_.after(wait, std::move(on_expired), backoff_hint_);
}

void Mac::pause_contention() {
  if (!counting_down_) return;
  sim_.cancel(backoff_event_);
  const sim::Time elapsed = sim_.now() - countdown_start_;
  if (elapsed > cfg_.difs) {
    const auto consumed = static_cast<int>((elapsed - cfg_.difs) / cfg_.slot);
    backoff_slots_ = std::max(0, backoff_slots_ - consumed);
  }
  counting_down_ = false;
}

void Mac::on_backoff_expired() {
  counting_down_ = false;
  if (dcf_ != DcfState::kContending) return;
  if (phy_.transmitting() || phy_.carrier_busy()) {
    // e.g. our own SIFS response fired during the countdown; resume when the
    // medium frees up (phy_tx_done / phy_carrier_idle re-enter here).
    return;
  }

  // Re-verify clearance: the window or interval may have rolled over while
  // we were backing off.
  if (op_is_announcement_) {
    if (!in_atim_window()) {
      finish_op();
      return;
    }
  } else if (cfg_.psm_enabled) {
    if (!data_item_eligible(op_item_)) {
      abort_op_requeue();
      return;
    }
  }
  transmit_op_frame();
}

void Mac::transmit_op_frame() {
  if (phy_.dead()) {
    finish_op();
    return;
  }
  if (op_is_announcement_) {
    ++stats_.atim_tx;
    if (telemetry_ != nullptr) {
      telemetry_->on_atim_tx(id(), op_announcement_.dst, sim_.now());
    }
  } else {
    ++stats_.data_tx_attempts;
    if (telemetry_ != nullptr) {
      telemetry_->on_data_tx_attempt(id(), op_item_.dst, sim_.now());
    }
  }
  auto pf = util::make_pooled<phy::Frame>(sim_.pools());
  pf->tx = id();
  pf->rx = op_frame_->dst;
  pf->bits = frame_bits(op_frame_->kind, op_frame_->datagram);
  pf->payload = op_frame_;
  current_tx_ = CurrentTx::kOp;
  phy_.start_tx(std::move(pf));
}

void Mac::phy_tx_done() {
  if (current_tx_ == CurrentTx::kResponse) {
    current_tx_ = CurrentTx::kNone;
    if (!responses_.empty()) schedule_response();
    if (dcf_ == DcfState::kContending) {
      resume_contention();
    } else {
      kick();
    }
    return;
  }

  RCAST_DCHECK(current_tx_ == CurrentTx::kOp);
  current_tx_ = CurrentTx::kNone;
  if (op_frame_ != nullptr && op_frame_->dst != kBroadcastId) {
    dcf_ = DcfState::kWaitAck;
    ack_timeout_event_ =
        sim_.after(ack_timeout_delay(), [this] { on_ack_timeout(); });
  } else {
    op_success();
  }
}

sim::Time Mac::ack_timeout_delay() const {
  return cfg_.sifs + frame_airtime(FrameKind::kAck, nullptr) + kAckMargin;
}

void Mac::on_ack_timeout() {
  if (dcf_ != DcfState::kWaitAck) return;
  ++op_attempts_;
  if (op_attempts_ > cfg_.retry_limit) {
    op_failure();
    return;
  }
  op_cw_ = std::min(2 * op_cw_ + 1, cfg_.cw_max);
  // Re-verify clearance before re-contending.
  if (op_is_announcement_) {
    if (!in_atim_window()) {
      ++stats_.atim_failed;
      if (telemetry_ != nullptr) {
        telemetry_->on_atim_failed(id(), op_announcement_.dst, sim_.now());
      }
      if (op_announcement_.dst != kBroadcastId) {
        on_announcement_failed(op_announcement_.dst);
      }
      finish_op();
      return;
    }
  } else if (cfg_.psm_enabled && !data_item_eligible(op_item_)) {
    abort_op_requeue();
    return;
  }
  begin_contention();
}

void Mac::op_success() {
  if (op_is_announcement_) {
    if (op_announcement_.dst == kBroadcastId) {
      bcast_announced_ = true;
    } else {
      ++stats_.atim_acked;
      if (telemetry_ != nullptr) {
        telemetry_->on_atim_acked(id(), op_announcement_.dst, sim_.now());
      }
      acked_dsts_.insert(op_announcement_.dst);
      atim_fail_streak_.erase(op_announcement_.dst);
    }
  } else {
    ++stats_.data_tx_ok;
    if (telemetry_ != nullptr) {
      telemetry_->on_data_tx_ok(id(), op_item_.dst, sim_.now());
    }
    if (op_item_.dst != kBroadcastId && callbacks_ != nullptr) {
      callbacks_->mac_tx_ok(op_item_.pkt, op_item_.dst);
    }
  }
  finish_op();
}

void Mac::op_failure() {
  if (op_is_announcement_) {
    ++stats_.atim_failed;
    if (telemetry_ != nullptr) {
      telemetry_->on_atim_failed(id(), op_announcement_.dst, sim_.now());
    }
    if (op_announcement_.dst != kBroadcastId) {
      on_announcement_failed(op_announcement_.dst);
    }
    finish_op();
    return;
  }
  if (op_immediate_) {
    // Our belief that the receiver was in AM was stale: fall back to the
    // announcement path instead of declaring the link broken.
    ++stats_.immediate_fallbacks;
    if (telemetry_ != nullptr) {
      telemetry_->on_immediate_fallback(id(), op_item_.dst, sim_.now());
    }
    if (policy_ != nullptr) policy_->on_immediate_send_failed(op_item_.dst);
    queue_.push_front(std::move(op_item_));
    finish_op();
    return;
  }
  ++stats_.data_tx_failed;
  if (telemetry_ != nullptr) {
    telemetry_->on_data_tx_failed(id(), op_item_.dst, sim_.now());
  }
  if (callbacks_ != nullptr) {
    callbacks_->mac_tx_failed(op_item_.pkt, op_item_.dst);
  }
  finish_op();
}

void Mac::on_announcement_failed(NodeId dst) {
  const int streak = ++atim_fail_streak_[dst];
  if (streak < cfg_.atim_fail_limit) return;
  atim_fail_streak_.erase(dst);
  // The neighbor has been unreachable for several beacon intervals: surface
  // a link failure for everything queued to it so DSR can repair the route.
  std::vector<TxItem> failed;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->dst == dst) {
      failed.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  for (TxItem& item : failed) {
    ++stats_.data_tx_failed;
    if (telemetry_ != nullptr) {
      telemetry_->on_data_tx_failed(id(), dst, sim_.now());
    }
    if (callbacks_ != nullptr) callbacks_->mac_tx_failed(item.pkt, dst);
  }
}

void Mac::abort_op_requeue() {
  RCAST_DCHECK(!op_is_announcement_);
  queue_.push_front(std::move(op_item_));
  finish_op();
}

void Mac::finish_op() {
  dcf_ = DcfState::kIdle;
  counting_down_ = false;
  sim_.cancel(backoff_event_);
  sim_.cancel(ack_timeout_event_);
  op_frame_.reset();
  op_item_ = TxItem{};
  kick();
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void Mac::phy_rx_ok(const phy::FramePtr& frame) {
  const auto* mf = static_cast<const MacFrame*>(frame->payload.get());
  RCAST_DCHECK(mf != nullptr);
  if (policy_ != nullptr) policy_->on_frame_decoded(*mf, sim_.now());

  switch (mf->kind) {
    case FrameKind::kAtim:
      handle_atim(*mf);
      break;
    case FrameKind::kAtimAck:
      if (mf->dst == id()) handle_atim_ack(*mf);
      break;
    case FrameKind::kData:
      handle_data(*mf);
      break;
    case FrameKind::kAck:
      if (mf->dst == id()) handle_ack(*mf);
      break;
  }
}

void Mac::handle_atim(const MacFrame& frame) {
  if (frame.bcast_announce) {
    // Broadcast announcement: standard PSM keeps everyone awake; the Rcast
    // broadcast extension randomizes the decision.
    const bool stay = frame.oh != OverhearingMode::kRandomized ||
                      policy_ == nullptr ||
                      policy_->should_receive_broadcast(frame.src, sim_.now());
    if (stay) must_awake_rx_ = true;
    return;
  }

  if (frame.dst == id()) {
    must_awake_rx_ = true;
    send_response(FrameKind::kAtimAck, frame.src);
    return;
  }

  // An advertisement for someone else: the Rcast decision point.
  ++stats_.atim_heard_other;
  if (frame.oh == OverhearingMode::kNone) return;
  if (!oh_decided_.insert(frame.src).second) return;  // one draw per BI
  bool commit = false;
  if (frame.oh == OverhearingMode::kUnconditional) {
    commit = true;
  } else if (policy_ != nullptr) {
    commit = policy_->should_overhear(frame.src, frame.oh, sim_.now());
  }
  if (commit) {
    must_awake_overhear_ = true;
    ++stats_.overhear_commits;
    if (telemetry_ != nullptr) {
      telemetry_->on_overhear_commit(id(), frame.src, frame.oh, sim_.now());
    }
  } else {
    ++stats_.overhear_declines;
    if (telemetry_ != nullptr) {
      telemetry_->on_overhear_decline(id(), frame.src, frame.oh, sim_.now());
    }
  }
}

void Mac::handle_atim_ack(const MacFrame& frame) {
  if (dcf_ != DcfState::kWaitAck || !op_is_announcement_) return;
  if (frame.src != op_frame_->dst) return;
  sim_.cancel(ack_timeout_event_);
  op_success();
}

void Mac::handle_ack(const MacFrame& frame) {
  if (dcf_ != DcfState::kWaitAck || op_is_announcement_) return;
  if (frame.src != op_frame_->dst) return;
  sim_.cancel(ack_timeout_event_);
  op_success();
}

void Mac::handle_data(const MacFrame& frame) {
  // Policy-control payloads terminate here: the power policy already saw the
  // frame in on_frame_decoded, and the routing layer must never receive a
  // datagram that is not one of its own packet types.
  const bool deliverable =
      callbacks_ != nullptr &&
      !(frame.datagram != nullptr && frame.datagram->policy_private());
  if (frame.dst == id()) {
    send_response(FrameKind::kAck, frame.src);  // ACK even duplicates
    if (duplicate_filter(frame.src, frame.seq)) {
      ++stats_.data_duplicates;
      return;
    }
    ++stats_.data_delivered;
    if (deliverable) callbacks_->mac_deliver(frame.datagram, frame.src);
    return;
  }
  if (frame.dst == kBroadcastId) {
    if (duplicate_filter(frame.src, frame.seq)) {
      ++stats_.data_duplicates;
      return;
    }
    ++stats_.data_delivered;
    if (deliverable) callbacks_->mac_deliver(frame.datagram, frame.src);
    return;
  }
  // Someone else's unicast, decoded while awake: the overhearing tap.
  if (duplicate_filter(frame.src, frame.seq)) return;
  ++stats_.data_overheard;
  if (deliverable) {
    callbacks_->mac_overhear(frame.datagram, frame.src, frame.dst);
  }
}

bool Mac::duplicate_filter(NodeId src, std::uint32_t seq) {
  auto [it, inserted] = last_seq_.try_emplace(src, seq);
  if (inserted) return false;
  if (seq <= it->second) return true;
  it->second = seq;
  return false;
}

void Mac::send_response(FrameKind kind, NodeId dst) {
  responses_.push_back(make_frame(kind, dst, OverhearingMode::kNone, false,
                                  nullptr));
  if (!response_scheduled_) schedule_response();
}

void Mac::schedule_response() {
  response_scheduled_ = true;
  sim_.after(cfg_.sifs, [this] {
    response_scheduled_ = false;
    fire_response();
  });
}

void Mac::fire_response() {
  if (responses_.empty()) return;
  if (phy_.sleeping() || phy_.dead()) {
    responses_.clear();
    return;
  }
  if (phy_.transmitting()) {
    schedule_response();
    return;
  }
  MacFramePtr resp = responses_.front();
  responses_.pop_front();
  auto pf = util::make_pooled<phy::Frame>(sim_.pools());
  pf->tx = id();
  pf->rx = resp->dst;
  pf->bits = frame_bits(resp->kind, nullptr);
  pf->payload = resp;
  current_tx_ = CurrentTx::kResponse;
  phy_.start_tx(std::move(pf));
}

void Mac::phy_carrier_busy() {
  if (dcf_ == DcfState::kContending) pause_contention();
}

void Mac::phy_carrier_idle() {
  if (dcf_ == DcfState::kContending) resume_contention();
}

// --------------------------------------------------------------------------
// Frame construction
// --------------------------------------------------------------------------

MacFramePtr Mac::make_frame(FrameKind kind, NodeId dst, OverhearingMode oh,
                            bool bcast_announce, NetDatagramPtr datagram) {
  auto f = util::make_pooled<MacFrame>(sim_.pools());
  f->kind = kind;
  f->src = id();
  f->dst = dst;
  f->oh = oh;
  f->bcast_announce = bcast_announce;
  f->datagram = std::move(datagram);
  f->pwr_mgt_am = !policy_ps_now();
  if (kind == FrameKind::kData || kind == FrameKind::kAtim) {
    f->seq = ++my_seq_;
  }
  return f;
}

std::int64_t Mac::frame_bits(FrameKind kind, const NetDatagramPtr& d) const {
  switch (kind) {
    case FrameKind::kData:
      RCAST_DCHECK(d != nullptr);
      return cfg_.preamble_bits + cfg_.data_header_bits + d->size_bits();
    case FrameKind::kAck:
    case FrameKind::kAtimAck:
      return cfg_.preamble_bits + cfg_.ack_bits;
    case FrameKind::kAtim:
      return cfg_.preamble_bits + cfg_.atim_bits;
  }
  return cfg_.preamble_bits;
}

sim::Time Mac::frame_airtime(FrameKind kind, const NetDatagramPtr& d) const {
  return phy_.channel().duration_of(frame_bits(kind, d));
}

}  // namespace rcast::mac
