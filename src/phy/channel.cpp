#include "phy/channel.hpp"

#include <algorithm>

#include "phy/phy.hpp"
#include "util/assert.hpp"

namespace rcast::phy {

namespace {

// Propagation delay: distance / c. In nanoseconds, c ≈ 0.3 m/ns.
sim::Time propagation_delay(double meters) {
  return static_cast<sim::Time>(meters / 0.299792458);
}

// Arrival ids are globally unique and never 0 (0 is the "none" sentinel in
// Phy's reception lock).
std::uint64_t g_dummy;  // placate some linters about anonymous namespace

}  // namespace

Channel::Channel(sim::Simulator& simulator,
                 mobility::MobilityManager& mobility,
                 const ChannelConfig& config)
    : sim_(simulator), mobility_(mobility), cfg_(config) {
  RCAST_REQUIRE(cfg_.tx_range_m > 0.0);
  RCAST_REQUIRE(cfg_.cs_range_m >= cfg_.tx_range_m);
  RCAST_REQUIRE(cfg_.bitrate_bps > 0);
  (void)g_dummy;
}

void Channel::attach(Phy* phy) {
  RCAST_REQUIRE(phy != nullptr);
  const NodeId id = phy->id();
  if (id >= phys_.size()) phys_.resize(id + 1, nullptr);
  RCAST_REQUIRE_MSG(phys_[id] == nullptr, "duplicate phy for node");
  phys_[id] = phy;
}

void Channel::prune_in_flight() {
  const sim::Time horizon = sim_.now() - 10 * sim::kMicrosecond;
  std::erase_if(in_flight_,
                [horizon](const InFlight& f) { return f.end < horizon; });
}

void Channel::transmit(FramePtr frame, sim::Time duration) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE(duration > 0);
  static thread_local std::uint64_t next_arrival_id = 0;

  const geo::Vec2 tx_pos = mobility_.position(frame->tx);
  const sim::Time now = sim_.now();

  ++stats_.frames_transmitted;
  stats_.bits_transmitted += static_cast<std::uint64_t>(frame->bits);

  prune_in_flight();
  in_flight_.push_back(InFlight{tx_pos, now + duration});

  const auto sensed =
      mobility_.nodes_within(tx_pos, cfg_.cs_range_m, frame->tx);
  const double rx2 = cfg_.tx_range_m * cfg_.tx_range_m;
  for (NodeId r : sensed) {
    if (r >= phys_.size() || phys_[r] == nullptr) continue;
    Phy* phy = phys_[r];
    const double d2 = geo::distance_sq(mobility_.position(r), tx_pos);
    const bool in_rx_range = d2 <= rx2;
    const double dist = std::sqrt(d2);
    const sim::Time prop = propagation_delay(dist);
    const std::uint64_t arrival_id = ++next_arrival_id;
    const sim::Time start = now + prop;
    const sim::Time end = start + duration;
    sim_.at(start, [phy, arrival_id, frame, in_rx_range, dist, end] {
      phy->arrival_start(arrival_id, frame, in_rx_range, dist, end);
    });
    sim_.at(end, [phy, arrival_id, frame, in_rx_range] {
      phy->arrival_end(arrival_id, frame, in_rx_range);
    });
  }
}

sim::Time Channel::sensed_busy_until(geo::Vec2 pos) const {
  sim::Time latest = 0;
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  for (const InFlight& f : in_flight_) {
    const double d2 = geo::distance_sq(f.tx_pos, pos);
    if (d2 > cs2) continue;
    const sim::Time arrival_end = f.end + propagation_delay(std::sqrt(d2));
    latest = std::max(latest, arrival_end);
  }
  return latest;
}

std::size_t Channel::neighbor_count(NodeId id) const {
  return mobility_.neighbors_within(id, cfg_.tx_range_m).size();
}

geo::Vec2 Channel::position_of(NodeId id) const {
  return mobility_.position(id);
}

}  // namespace rcast::phy
