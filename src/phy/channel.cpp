#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>

#include "phy/phy.hpp"
#include "util/assert.hpp"

namespace rcast::phy {

namespace {

// Propagation delay: distance / c. In nanoseconds, c ≈ 0.3 m/ns.
sim::Time propagation_delay(double meters) {
  return static_cast<sim::Time>(meters / 0.299792458);
}

// Expired in-flight entries are harmless to keep around (their busy window
// lies in the past — see the horizon note in add_in_flight), so pruning only
// has to bound each cell, not keep it exact: sweep a cell when it grows past
// the watermark.
constexpr std::size_t kCellPruneWatermark = 32;

}  // namespace

Channel::Channel(sim::Simulator& simulator,
                 mobility::MobilityManager& mobility,
                 const ChannelConfig& config)
    : sim_(simulator),
      mobility_(mobility),
      cfg_(config),
      sharded_(simulator.sharded()) {
  RCAST_REQUIRE(cfg_.tx_range_m > 0.0);
  RCAST_REQUIRE(cfg_.cs_range_m >= cfg_.tx_range_m);
  RCAST_REQUIRE(cfg_.bitrate_bps > 0);
  capture_ratio_ =
      cfg_.capture_db > 0.0 ? std::pow(10.0, cfg_.capture_db / 40.0) : 0.0;

  // Carrier-sense cells sized to the cs range: a disc of that radius always
  // fits in <= 3x3 cells. Same geometry/clamping as geo::GridIndex so
  // positions slightly outside the world land in edge cells.
  const geo::Rect& world = mobility.world();
  cs_cell_size_ = cfg_.cs_range_m;
  cs_cols_ = static_cast<std::uint32_t>(
                 std::ceil(world.width / cs_cell_size_)) + 1;
  cs_rows_ = static_cast<std::uint32_t>(
                 std::ceil(world.height / cs_cell_size_)) + 1;
  max_prop_ = propagation_delay(cfg_.cs_range_m);

  state_.resize(simulator.shard_count());
  for (std::size_t k = 0; k < state_.size(); ++k) {
    state_[k].cs_cells.resize(static_cast<std::size_t>(cs_cols_) * cs_rows_);
    // Disjoint per-shard id streams (ids only need to be unique per
    // receiving Phy, but disjoint streams keep them globally unique and
    // run-for-run deterministic regardless of worker interleaving).
    state_[k].next_arrival_id = static_cast<std::uint64_t>(k) << 56;
  }
}

void Channel::attach(Phy* phy) {
  RCAST_REQUIRE(phy != nullptr);
  const NodeId id = phy->id();
  if (id >= phys_.size()) phys_.resize(id + 1, nullptr);
  RCAST_REQUIRE_MSG(phys_[id] == nullptr, "duplicate phy for node");
  phys_[id] = phy;
}

void Channel::set_shard_map(std::vector<std::uint32_t> node_shard) {
  RCAST_REQUIRE(sharded_);
  for (const std::uint32_t s : node_shard) {
    RCAST_REQUIRE(s < state_.size());
  }
  node_shard_ = std::move(node_shard);
}

std::uint32_t Channel::cs_cell_of(geo::Vec2 p) const {
  const geo::Rect& world = mobility_.world();
  const double cx = std::clamp(p.x, 0.0, world.width);
  const double cy = std::clamp(p.y, 0.0, world.height);
  const auto col = static_cast<std::uint32_t>(cx / cs_cell_size_);
  const auto row = static_cast<std::uint32_t>(cy / cs_cell_size_);
  return row * cs_cols_ + col;
}

void Channel::add_in_flight(ShardState& st, geo::Vec2 tx_pos, sim::Time end) {
  CsCell& cell = st.cs_cells[cs_cell_of(tx_pos)];
  if (cell.entries.size() >= kCellPruneWatermark) {
    // An entry can only still matter while end + propagation >= now, and
    // propagation within cs range is bounded by max_prop_; anything older
    // produced a busy window entirely in the past.
    const sim::Time horizon = sim_.now() - (max_prop_ + sim::kMicrosecond);
    std::erase_if(cell.entries,
                  [horizon](const InFlight& f) { return f.end < horizon; });
    cell.max_end = 0;
    for (const InFlight& f : cell.entries) {
      cell.max_end = std::max(cell.max_end, f.end);
    }
  }
  cell.entries.push_back(InFlight{tx_pos, end});
  cell.max_end = std::max(cell.max_end, end);
}

void Channel::transmit(FramePtr frame, sim::Time duration) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE(duration > 0);

  const geo::Vec2 tx_pos = mobility_.position(frame->tx);
  const sim::Time now = sim_.now();
  const std::size_t here = sim_.current_shard();
  ShardState& local = state_[here];

  ++local.stats.frames_transmitted;
  local.stats.bits_transmitted += static_cast<std::uint64_t>(frame->bits);

  add_in_flight(local, tx_pos, now + duration);

  // Fan out to every radio that senses the frame, straight from the spatial
  // query (no intermediate result list): the callback fires in deterministic
  // grid order with the exact squared distance already computed.
  //
  // All receivers' arrival starts (and separately, ends) land within one
  // propagation spread of each other, so two schedule hints memoize the
  // queue-tier routing across the whole fan-out: one bucket resolution per
  // burst instead of one per event.
  sim::Simulator::ScheduleHint start_hint;
  sim::Simulator::ScheduleHint end_hint;
  const double rx2 = cfg_.tx_range_m * cfg_.tx_range_m;
  std::uint64_t remote_mask = 0;  // home shards with a remote receiver
  mobility_.for_each_within(
      tx_pos, cfg_.cs_range_m, frame->tx, [&](NodeId r, double d2) {
        if (r >= phys_.size() || phys_[r] == nullptr) return;
        Phy* phy = phys_[r];
        const bool in_rx_range = d2 <= rx2;
        const double dist = std::sqrt(d2);
        const sim::Time prop = propagation_delay(dist);
        const std::uint64_t arrival_id = ++local.next_arrival_id;
        const sim::Time start = now + prop;
        const sim::Time end = start + duration;
        auto on_start = [phy, arrival_id, frame, in_rx_range, dist, end] {
          phy->arrival_start(arrival_id, frame, in_rx_range, dist, end);
        };
        auto on_end = [phy, arrival_id, frame, in_rx_range] {
          phy->arrival_end(arrival_id, frame, in_rx_range);
        };
        // Two of these are scheduled per sensed receiver per frame — the
        // single hottest schedule site; they must never spill to the heap.
        static_assert(
            sim::EventQueue::Handler::fits_inline<decltype(on_start)>());
        static_assert(
            sim::EventQueue::Handler::fits_inline<decltype(on_end)>());
        if (!sharded_ || node_shard_[r] == here) {
          sim_.at(start, std::move(on_start), start_hint);
          sim_.at(end, std::move(on_end), end_hint);
        } else {
          // Remote receiver: deliver via the barrier mailbox. Posting start
          // before end for the same receiver preserves their relative order
          // even when both get clamped to the window end.
          const std::size_t home = node_shard_[r];
          sim_.post(home, start, std::move(on_start));
          sim_.post(home, end, std::move(on_end));
          remote_mask |= std::uint64_t{1} << home;
        }
      });

  if (remote_mask != 0) {
    // Ghost busy-marker: every remote shard with a sensed receiver mirrors
    // this transmission into its own carrier-sense replica, so a radio
    // waking there mid-frame still senses it. Arrives clamped to the window
    // end — the same bounded deferral as the arrivals themselves.
    const sim::Time tx_end = now + duration;
    for (std::size_t m = 0; remote_mask != 0; ++m, remote_mask >>= 1) {
      if ((remote_mask & 1) == 0) continue;
      sim_.post(m, now, [this, tx_pos, tx_end] {
        add_in_flight(local_state(), tx_pos, tx_end);
      });
    }
  }
}

sim::Time Channel::sensed_busy_until(geo::Vec2 pos) const {
  sim::Time latest = 0;
  ShardState& st = local_state();
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  const auto col_lo = static_cast<std::int64_t>(
      std::floor((pos.x - cfg_.cs_range_m) / cs_cell_size_));
  const auto col_hi = static_cast<std::int64_t>(
      std::floor((pos.x + cfg_.cs_range_m) / cs_cell_size_));
  const auto row_lo = static_cast<std::int64_t>(
      std::floor((pos.y - cfg_.cs_range_m) / cs_cell_size_));
  const auto row_hi = static_cast<std::int64_t>(
      std::floor((pos.y + cfg_.cs_range_m) / cs_cell_size_));
  for (std::int64_t row = std::max<std::int64_t>(0, row_lo);
       row <= std::min<std::int64_t>(cs_rows_ - 1, row_hi); ++row) {
    for (std::int64_t col = std::max<std::int64_t>(0, col_lo);
         col <= std::min<std::int64_t>(cs_cols_ - 1, col_hi); ++col) {
      const CsCell& cell =
          st.cs_cells[static_cast<std::size_t>(row) * cs_cols_ + col];
      ++st.stats.cs_cells_visited;
      if (cell.entries.empty()) continue;
      // Every arrival-end in this cell is <= max_end + max_prop_: skip the
      // scan when even that bound cannot beat the current maximum.
      if (cell.max_end + max_prop_ <= latest) continue;
      for (const InFlight& f : cell.entries) {
        ++st.stats.cs_entries_scanned;
        const double d2 = geo::distance_sq(f.tx_pos, pos);
        if (d2 > cs2) continue;
        const sim::Time arrival_end =
            f.end + propagation_delay(std::sqrt(d2));
        latest = std::max(latest, arrival_end);
      }
    }
  }
  return latest;
}

std::size_t Channel::neighbor_count(NodeId id) const {
  return mobility_.count_neighbors(id, cfg_.tx_range_m);
}

std::size_t Channel::in_flight_size() const {
  std::size_t n = 0;
  for (const ShardState& st : state_) {
    for (const CsCell& cell : st.cs_cells) n += cell.entries.size();
  }
  return n;
}

geo::Vec2 Channel::position_of(NodeId id) const {
  return mobility_.position(id);
}

ChannelStats Channel::stats() const {
  ChannelStats total;
  for (const ShardState& st : state_) {
    total.frames_transmitted += st.stats.frames_transmitted;
    total.bits_transmitted += st.stats.bits_transmitted;
    total.cs_cells_visited += st.stats.cs_cells_visited;
    total.cs_entries_scanned += st.stats.cs_entries_scanned;
  }
  return total;
}

}  // namespace rcast::phy
