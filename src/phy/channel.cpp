#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>

#include "phy/phy.hpp"
#include "util/assert.hpp"

namespace rcast::phy {

namespace {

// Propagation delay: distance / c. In nanoseconds, c ≈ 0.3 m/ns.
sim::Time propagation_delay(double meters) {
  return static_cast<sim::Time>(meters / 0.299792458);
}

// Expired in-flight entries are harmless to keep around (their busy window
// lies in the past — see the horizon note in add_in_flight), so pruning only
// has to bound each cell, not keep it exact: sweep a cell when it grows past
// the watermark.
constexpr std::size_t kCellPruneWatermark = 32;

}  // namespace

Channel::Channel(sim::Simulator& simulator,
                 mobility::MobilityManager& mobility,
                 const ChannelConfig& config)
    : sim_(simulator), mobility_(mobility), cfg_(config) {
  RCAST_REQUIRE(cfg_.tx_range_m > 0.0);
  RCAST_REQUIRE(cfg_.cs_range_m >= cfg_.tx_range_m);
  RCAST_REQUIRE(cfg_.bitrate_bps > 0);
  capture_ratio_ =
      cfg_.capture_db > 0.0 ? std::pow(10.0, cfg_.capture_db / 40.0) : 0.0;

  // Carrier-sense cells sized to the cs range: a disc of that radius always
  // fits in <= 3x3 cells. Same geometry/clamping as geo::GridIndex so
  // positions slightly outside the world land in edge cells.
  const geo::Rect& world = mobility.world();
  cs_cell_size_ = cfg_.cs_range_m;
  cs_cols_ = static_cast<std::uint32_t>(
                 std::ceil(world.width / cs_cell_size_)) + 1;
  cs_rows_ = static_cast<std::uint32_t>(
                 std::ceil(world.height / cs_cell_size_)) + 1;
  cs_cells_.resize(static_cast<std::size_t>(cs_cols_) * cs_rows_);
  max_prop_ = propagation_delay(cfg_.cs_range_m);
}

void Channel::attach(Phy* phy) {
  RCAST_REQUIRE(phy != nullptr);
  const NodeId id = phy->id();
  if (id >= phys_.size()) phys_.resize(id + 1, nullptr);
  RCAST_REQUIRE_MSG(phys_[id] == nullptr, "duplicate phy for node");
  phys_[id] = phy;
}

std::uint32_t Channel::cs_cell_of(geo::Vec2 p) const {
  const geo::Rect& world = mobility_.world();
  const double cx = std::clamp(p.x, 0.0, world.width);
  const double cy = std::clamp(p.y, 0.0, world.height);
  const auto col = static_cast<std::uint32_t>(cx / cs_cell_size_);
  const auto row = static_cast<std::uint32_t>(cy / cs_cell_size_);
  return row * cs_cols_ + col;
}

void Channel::add_in_flight(geo::Vec2 tx_pos, sim::Time end) {
  CsCell& cell = cs_cells_[cs_cell_of(tx_pos)];
  if (cell.entries.size() >= kCellPruneWatermark) {
    // An entry can only still matter while end + propagation >= now, and
    // propagation within cs range is bounded by max_prop_; anything older
    // produced a busy window entirely in the past.
    const sim::Time horizon = sim_.now() - (max_prop_ + sim::kMicrosecond);
    std::erase_if(cell.entries,
                  [horizon](const InFlight& f) { return f.end < horizon; });
    cell.max_end = 0;
    for (const InFlight& f : cell.entries) {
      cell.max_end = std::max(cell.max_end, f.end);
    }
  }
  cell.entries.push_back(InFlight{tx_pos, end});
  cell.max_end = std::max(cell.max_end, end);
}

void Channel::transmit(FramePtr frame, sim::Time duration) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE(duration > 0);

  const geo::Vec2 tx_pos = mobility_.position(frame->tx);
  const sim::Time now = sim_.now();

  ++stats_.frames_transmitted;
  stats_.bits_transmitted += static_cast<std::uint64_t>(frame->bits);

  add_in_flight(tx_pos, now + duration);

  // Fan out to every radio that senses the frame, straight from the spatial
  // query (no intermediate result list): the callback fires in deterministic
  // grid order with the exact squared distance already computed.
  //
  // All receivers' arrival starts (and separately, ends) land within one
  // propagation spread of each other, so two schedule hints memoize the
  // queue-tier routing across the whole fan-out: one bucket resolution per
  // burst instead of one per event.
  sim::Simulator::ScheduleHint start_hint;
  sim::Simulator::ScheduleHint end_hint;
  const double rx2 = cfg_.tx_range_m * cfg_.tx_range_m;
  mobility_.for_each_within(
      tx_pos, cfg_.cs_range_m, frame->tx, [&](NodeId r, double d2) {
        if (r >= phys_.size() || phys_[r] == nullptr) return;
        Phy* phy = phys_[r];
        const bool in_rx_range = d2 <= rx2;
        const double dist = std::sqrt(d2);
        const sim::Time prop = propagation_delay(dist);
        const std::uint64_t arrival_id = ++next_arrival_id_;
        const sim::Time start = now + prop;
        const sim::Time end = start + duration;
        auto on_start = [phy, arrival_id, frame, in_rx_range, dist, end] {
          phy->arrival_start(arrival_id, frame, in_rx_range, dist, end);
        };
        auto on_end = [phy, arrival_id, frame, in_rx_range] {
          phy->arrival_end(arrival_id, frame, in_rx_range);
        };
        // Two of these are scheduled per sensed receiver per frame — the
        // single hottest schedule site; they must never spill to the heap.
        static_assert(
            sim::EventQueue::Handler::fits_inline<decltype(on_start)>());
        static_assert(
            sim::EventQueue::Handler::fits_inline<decltype(on_end)>());
        sim_.at(start, std::move(on_start), start_hint);
        sim_.at(end, std::move(on_end), end_hint);
      });
}

sim::Time Channel::sensed_busy_until(geo::Vec2 pos) const {
  sim::Time latest = 0;
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  const auto col_lo = static_cast<std::int64_t>(
      std::floor((pos.x - cfg_.cs_range_m) / cs_cell_size_));
  const auto col_hi = static_cast<std::int64_t>(
      std::floor((pos.x + cfg_.cs_range_m) / cs_cell_size_));
  const auto row_lo = static_cast<std::int64_t>(
      std::floor((pos.y - cfg_.cs_range_m) / cs_cell_size_));
  const auto row_hi = static_cast<std::int64_t>(
      std::floor((pos.y + cfg_.cs_range_m) / cs_cell_size_));
  for (std::int64_t row = std::max<std::int64_t>(0, row_lo);
       row <= std::min<std::int64_t>(cs_rows_ - 1, row_hi); ++row) {
    for (std::int64_t col = std::max<std::int64_t>(0, col_lo);
         col <= std::min<std::int64_t>(cs_cols_ - 1, col_hi); ++col) {
      const CsCell& cell =
          cs_cells_[static_cast<std::size_t>(row) * cs_cols_ + col];
      ++stats_.cs_cells_visited;
      if (cell.entries.empty()) continue;
      // Every arrival-end in this cell is <= max_end + max_prop_: skip the
      // scan when even that bound cannot beat the current maximum.
      if (cell.max_end + max_prop_ <= latest) continue;
      for (const InFlight& f : cell.entries) {
        ++stats_.cs_entries_scanned;
        const double d2 = geo::distance_sq(f.tx_pos, pos);
        if (d2 > cs2) continue;
        const sim::Time arrival_end =
            f.end + propagation_delay(std::sqrt(d2));
        latest = std::max(latest, arrival_end);
      }
    }
  }
  return latest;
}

std::size_t Channel::neighbor_count(NodeId id) const {
  return mobility_.count_neighbors(id, cfg_.tx_range_m);
}

std::size_t Channel::in_flight_size() const {
  std::size_t n = 0;
  for (const CsCell& cell : cs_cells_) n += cell.entries.size();
  return n;
}

geo::Vec2 Channel::position_of(NodeId id) const {
  return mobility_.position(id);
}

}  // namespace rcast::phy
