#include "phy/channel.hpp"

#include <algorithm>

#include "phy/phy.hpp"
#include "util/assert.hpp"

namespace rcast::phy {

namespace {

// Propagation delay: distance / c. In nanoseconds, c ≈ 0.3 m/ns.
sim::Time propagation_delay(double meters) {
  return static_cast<sim::Time>(meters / 0.299792458);
}

// Expired in-flight entries are harmless to keep around (their busy window
// lies in the past), so pruning only has to bound the list, not keep it
// exact: sweep when it grows past the watermark or a coarse interval passed.
constexpr std::size_t kPruneWatermark = 64;
constexpr sim::Time kPruneInterval = 10 * sim::kMillisecond;

}  // namespace

Channel::Channel(sim::Simulator& simulator,
                 mobility::MobilityManager& mobility,
                 const ChannelConfig& config)
    : sim_(simulator), mobility_(mobility), cfg_(config) {
  RCAST_REQUIRE(cfg_.tx_range_m > 0.0);
  RCAST_REQUIRE(cfg_.cs_range_m >= cfg_.tx_range_m);
  RCAST_REQUIRE(cfg_.bitrate_bps > 0);
}

void Channel::attach(Phy* phy) {
  RCAST_REQUIRE(phy != nullptr);
  const NodeId id = phy->id();
  if (id >= phys_.size()) phys_.resize(id + 1, nullptr);
  RCAST_REQUIRE_MSG(phys_[id] == nullptr, "duplicate phy for node");
  phys_[id] = phy;
}

void Channel::prune_in_flight() {
  if (in_flight_.size() < kPruneWatermark &&
      sim_.now() - last_prune_ < kPruneInterval) {
    return;
  }
  last_prune_ = sim_.now();
  const sim::Time horizon = sim_.now() - 10 * sim::kMicrosecond;
  std::erase_if(in_flight_,
                [horizon](const InFlight& f) { return f.end < horizon; });
}

void Channel::transmit(FramePtr frame, sim::Time duration) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE(duration > 0);
  static thread_local std::uint64_t next_arrival_id = 0;

  const geo::Vec2 tx_pos = mobility_.position(frame->tx);
  const sim::Time now = sim_.now();

  ++stats_.frames_transmitted;
  stats_.bits_transmitted += static_cast<std::uint64_t>(frame->bits);

  prune_in_flight();
  in_flight_.push_back(InFlight{tx_pos, now + duration});

  const auto sensed =
      mobility_.nodes_within(tx_pos, cfg_.cs_range_m, frame->tx);
  const double rx2 = cfg_.tx_range_m * cfg_.tx_range_m;
  for (NodeId r : sensed) {
    if (r >= phys_.size() || phys_[r] == nullptr) continue;
    Phy* phy = phys_[r];
    const double d2 = geo::distance_sq(mobility_.position(r), tx_pos);
    const bool in_rx_range = d2 <= rx2;
    const double dist = std::sqrt(d2);
    const sim::Time prop = propagation_delay(dist);
    const std::uint64_t arrival_id = ++next_arrival_id;
    const sim::Time start = now + prop;
    const sim::Time end = start + duration;
    auto on_start = [phy, arrival_id, frame, in_rx_range, dist, end] {
      phy->arrival_start(arrival_id, frame, in_rx_range, dist, end);
    };
    auto on_end = [phy, arrival_id, frame, in_rx_range] {
      phy->arrival_end(arrival_id, frame, in_rx_range);
    };
    // Two of these are scheduled per sensed receiver per frame — the single
    // hottest schedule site; they must never spill to the heap.
    static_assert(
        sim::EventQueue::Handler::fits_inline<decltype(on_start)>());
    static_assert(sim::EventQueue::Handler::fits_inline<decltype(on_end)>());
    sim_.at(start, std::move(on_start));
    sim_.at(end, std::move(on_end));
  }
}

sim::Time Channel::sensed_busy_until(geo::Vec2 pos) const {
  sim::Time latest = 0;
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  for (const InFlight& f : in_flight_) {
    const double d2 = geo::distance_sq(f.tx_pos, pos);
    if (d2 > cs2) continue;
    const sim::Time arrival_end = f.end + propagation_delay(std::sqrt(d2));
    latest = std::max(latest, arrival_end);
  }
  return latest;
}

std::size_t Channel::neighbor_count(NodeId id) const {
  return mobility_.neighbors_within(id, cfg_.tx_range_m).size();
}

geo::Vec2 Channel::position_of(NodeId id) const {
  return mobility_.position(id);
}

}  // namespace rcast::phy
