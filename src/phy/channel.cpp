#include "phy/channel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "phy/phy.hpp"
#include "util/assert.hpp"

namespace rcast::phy {

namespace {

// Propagation delay: distance / c. In nanoseconds, c ≈ 0.3 m/ns.
sim::Time propagation_delay(double meters) {
  return static_cast<sim::Time>(meters / 0.299792458);
}

// Expired in-flight entries are harmless to keep around (their busy window
// lies in the past — see the horizon note in add_in_flight), so pruning only
// has to bound each cell, not keep it exact: sweep a cell when it grows past
// the watermark.
constexpr std::size_t kCellPruneWatermark = 32;

}  // namespace

Channel::Channel(sim::Simulator& simulator,
                 mobility::MobilityManager& mobility,
                 const ChannelConfig& config)
    : sim_(simulator),
      mobility_(mobility),
      cfg_(config),
      sharded_(simulator.sharded()) {
  RCAST_REQUIRE(cfg_.tx_range_m > 0.0);
  RCAST_REQUIRE(cfg_.cs_range_m >= cfg_.tx_range_m);
  RCAST_REQUIRE(cfg_.bitrate_bps > 0);
  capture_ratio_ =
      cfg_.capture_db > 0.0 ? std::pow(10.0, cfg_.capture_db / 40.0) : 0.0;

  // Carrier-sense cells sized to the cs range: a disc of that radius always
  // fits in <= 3x3 cells. Same geometry/clamping as geo::GridIndex so
  // positions slightly outside the world land in edge cells.
  const geo::Rect& world = mobility.world();
  cs_cell_size_ = cfg_.cs_range_m;
  cs_cols_ = static_cast<std::uint32_t>(
                 std::ceil(world.width / cs_cell_size_)) + 1;
  cs_rows_ = static_cast<std::uint32_t>(
                 std::ceil(world.height / cs_cell_size_)) + 1;
  max_prop_ = propagation_delay(cfg_.cs_range_m);

  state_.resize(simulator.shard_count());
  for (std::size_t k = 0; k < state_.size(); ++k) {
    state_[k].cs_cells.resize(static_cast<std::size_t>(cs_cols_) * cs_rows_);
    // Disjoint per-shard id streams (ids only need to be unique per
    // receiving Phy, but disjoint streams keep them globally unique and
    // run-for-run deterministic regardless of worker interleaving).
    state_[k].next_arrival_id = static_cast<std::uint64_t>(k) << 56;
    // Open-group table: one slot per possible integer propagation delay
    // within cs range (~1.8k entries); epoch stamps make it pass-scoped
    // without per-transmission clearing.
    state_[k].open_groups.resize(static_cast<std::size_t>(max_prop_) + 1);
  }
}

void Channel::attach(Phy* phy) {
  RCAST_REQUIRE(phy != nullptr);
  const NodeId id = phy->id();
  if (id >= phys_.size()) phys_.resize(id + 1, nullptr);
  RCAST_REQUIRE_MSG(phys_[id] == nullptr, "duplicate phy for node");
  phys_[id] = phy;
}

void Channel::set_shard_map(std::vector<std::uint32_t> node_shard) {
  RCAST_REQUIRE(sharded_);
  for (const std::uint32_t s : node_shard) {
    RCAST_REQUIRE(s < state_.size());
  }
  node_shard_ = std::move(node_shard);
}

std::uint32_t Channel::cs_cell_of(geo::Vec2 p) const {
  const geo::Rect& world = mobility_.world();
  const double cx = std::clamp(p.x, 0.0, world.width);
  const double cy = std::clamp(p.y, 0.0, world.height);
  const auto col = static_cast<std::uint32_t>(cx / cs_cell_size_);
  const auto row = static_cast<std::uint32_t>(cy / cs_cell_size_);
  return row * cs_cols_ + col;
}

void Channel::add_in_flight(ShardState& st, geo::Vec2 tx_pos, sim::Time end) {
  CsCell& cell = st.cs_cells[cs_cell_of(tx_pos)];
  if (cell.entries.size() >= kCellPruneWatermark) {
    // An entry can only still matter while end + propagation >= now, and
    // propagation within cs range is bounded by max_prop_; anything older
    // produced a busy window entirely in the past.
    const sim::Time horizon = sim_.now() - (max_prop_ + sim::kMicrosecond);
    std::erase_if(cell.entries,
                  [horizon](const InFlight& f) { return f.end < horizon; });
    cell.max_end = 0;
    for (const InFlight& f : cell.entries) {
      cell.max_end = std::max(cell.max_end, f.end);
    }
  }
  cell.entries.push_back(InFlight{tx_pos, end});
  cell.max_end = std::max(cell.max_end, end);
}

namespace {
/// Log2 bucket for the arrival-group size histogram (size >= 1).
std::size_t group_size_bucket(std::size_t n) {
  return std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(n)) - 1, 7);
}
}  // namespace

void Channel::fire_group_start(ArrivalGroup* g) {
  ShardState& st = local_state();
  ++st.stats.arrival_group_fires;
  st.stats.arrival_member_fires += g->recs.size();
  deliver_arrival_group_start(*g);
}

void Channel::fire_group_end(ArrivalGroup* g) {
  ShardState& st = local_state();
  ++st.stats.arrival_group_fires;
  st.stats.arrival_member_fires += g->recs.size();
  deliver_arrival_group_end(*g);
  st.group_pool.release(g);
}

void Channel::fire_remote_group_end(ArrivalGroup* g) {
  // Cross-shard groups are shared_ptr-owned by their two closures; no pool
  // release — the last closure destroyed frees the group on this thread.
  ShardState& st = local_state();
  ++st.stats.arrival_group_fires;
  st.stats.arrival_member_fires += g->recs.size();
  deliver_arrival_group_end(*g);
}

void Channel::transmit(FramePtr frame, sim::Time duration) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE(duration > 0);

  const geo::Vec2 tx_pos = mobility_.position(frame->tx);
  const sim::Time now = sim_.now();
  const std::size_t here = sim_.current_shard();
  ShardState& local = state_[here];

  ++local.stats.frames_transmitted;
  local.stats.bits_transmitted += static_cast<std::uint64_t>(frame->bits);

  add_in_flight(local, tx_pos, now + duration);

  // Fan out to every radio that senses the frame, straight from the spatial
  // query (no intermediate result list): the callback fires in deterministic
  // grid order with the exact squared distance already computed. Receivers
  // sharing an integer propagation delay share exact start/end timestamps,
  // so they batch into one arrival group (DESIGN.md §17): one start and one
  // end event per (frame, delay) with two or more receivers. A lone receiver
  // is parked as a pending single and scheduled after the pass as the
  // classic pair of direct closures — all delivery state inline in the event
  // slot, no group indirection on the (dominant) collision-free path.
  //
  // Scheduling after the pass reorders pushes between delay slots relative
  // to per-receiver scheduling, which is unobservable: transmit()'s pushes
  // are contiguous in the sequence space, so FIFO ties with events outside
  // this block cannot change, and equal timestamps inside it imply the same
  // delay slot — whose members fire through one group event in grid order.
  //
  // All starts (and separately, ends) land within one propagation spread of
  // each other, so two schedule hints memoize the queue-tier routing across
  // the whole fan-out.
  sim::Simulator::ScheduleHint start_hint;
  sim::Simulator::ScheduleHint end_hint;
  const double rx2 = cfg_.tx_range_m * cfg_.tx_range_m;
  std::uint64_t remote_mask = 0;  // home shards with a remote receiver
  local.group_scratch.clear();
  local.single_scratch.clear();
  local.remote_scratch.clear();
  const std::uint64_t epoch = ++local.open_epoch;
  mobility_.for_each_within(
      tx_pos, cfg_.cs_range_m, frame->tx, [&](NodeId r, double d2) {
        if (r >= phys_.size() || phys_[r] == nullptr) return;
        const bool in_rx_range = d2 <= rx2;
        const double dist = std::sqrt(d2);
        const sim::Time prop = propagation_delay(dist);
        const ArrivalRec rec{phys_[r], ++local.next_arrival_id, dist,
                             in_rx_range};
        if (sharded_ && node_shard_[r] != here) {
          // Remote receiver: noted now (arrival ids stay in grid order),
          // grouped per destination shard after the pass.
          local.remote_scratch.push_back(
              RemoteRec{rec, prop, node_shard_[r]});
          remote_mask |= std::uint64_t{1} << node_shard_[r];
          return;
        }
        OpenGroup& slot = local.open_groups[static_cast<std::size_t>(prop)];
        if (slot.epoch != epoch) {
          slot.epoch = epoch;
          slot.group = nullptr;
          slot.single =
              static_cast<std::uint32_t>(local.single_scratch.size());
          local.single_scratch.push_back(PendingSingle{rec, prop});
          return;
        }
        ArrivalGroup* g = slot.group;
        if (g == nullptr) {
          // Second receiver on this delay: promote the parked single.
          PendingSingle& first = local.single_scratch[slot.single];
          g = local.group_pool.acquire();
          g->frame = frame;
          g->end_time = now + prop + duration;
          g->recs.push_back(first.rec);
          first.rec.phy = nullptr;  // consumed
          slot.group = g;
          local.group_scratch.push_back(g);
        } else if (g->recs.size() == kArrivalGroupCapacity) {
          g = local.group_pool.acquire();
          g->frame = frame;
          g->end_time = slot.group->end_time;
          slot.group = g;
          local.group_scratch.push_back(g);
        }
        g->recs.push_back(rec);
      });

  for (ArrivalGroup* g : local.group_scratch) {
    ++local.stats.arrival_groups;
    local.stats.arrival_records += g->recs.size();
    ++local.stats.arrival_group_size_hist[group_size_bucket(g->recs.size())];
    auto on_start = [this, g] { fire_group_start(g); };
    auto on_end = [this, g] { fire_group_end(g); };
    static_assert(
        sim::EventQueue::Handler::fits_inline<decltype(on_start)>());
    static_assert(
        sim::EventQueue::Handler::fits_inline<decltype(on_end)>());
    sim_.at(g->end_time - duration, std::move(on_start), start_hint);
    sim_.at(g->end_time, std::move(on_end), end_hint);
  }
  for (const PendingSingle& s : local.single_scratch) {
    if (s.rec.phy == nullptr) continue;  // promoted into a group
    Phy* phy = s.rec.phy;
    const std::uint64_t arrival_id = s.rec.arrival_id;
    const bool in_rx_range = s.rec.in_rx_range;
    const double dist = s.rec.distance_m;
    const sim::Time end = now + s.prop + duration;
    auto on_start = [phy, arrival_id, frame, in_rx_range, dist, end] {
      phy->arrival_start(arrival_id, frame, in_rx_range, dist, end);
    };
    auto on_end = [phy, arrival_id, frame, in_rx_range] {
      phy->arrival_end(arrival_id, frame, in_rx_range);
    };
    // Scheduled per lone receiver per frame — the single hottest schedule
    // site; they must never spill to the heap.
    static_assert(
        sim::EventQueue::Handler::fits_inline<decltype(on_start)>());
    static_assert(
        sim::EventQueue::Handler::fits_inline<decltype(on_end)>());
    sim_.at(now + s.prop, std::move(on_start), start_hint);
    sim_.at(end, std::move(on_end), end_hint);
  }

  if (!local.remote_scratch.empty()) {
    // One grouping pass per destination shard, ascending — preserving the
    // per-mailbox append order that barrier drains rely on. Both closures
    // share ownership of a group; it dies on the destination thread when
    // the second one is destroyed after firing. Lone remote receivers keep
    // the direct per-receiver posts, exactly like the local singles above
    // (their pending state lives in remote_scratch itself: a promoted
    // entry's phy is nulled, and each entry belongs to exactly one dst).
    // group_scratch (done with the local tally above) is reused to
    // histogram remote groups once their record counts are final; the raw
    // pointers stay valid through this call because the closures hold the
    // owning references.
    local.group_scratch.clear();
    for (std::size_t dst = 0; dst < state_.size(); ++dst) {
      if ((remote_mask & (std::uint64_t{1} << dst)) == 0) continue;
      const std::uint64_t dst_epoch = ++local.open_epoch;
      for (std::size_t i = 0; i < local.remote_scratch.size(); ++i) {
        RemoteRec& rr = local.remote_scratch[i];
        if (rr.home != dst) continue;
        OpenGroup& slot =
            local.open_groups[static_cast<std::size_t>(rr.prop)];
        if (slot.epoch != dst_epoch) {
          slot.epoch = dst_epoch;
          slot.group = nullptr;
          slot.single = static_cast<std::uint32_t>(i);
          continue;
        }
        ArrivalGroup* g = slot.group;
        if (g == nullptr || g->recs.size() == kArrivalGroupCapacity) {
          auto sg = std::make_shared<ArrivalGroup>();
          ArrivalGroup* fresh = sg.get();
          fresh->frame = frame;
          fresh->end_time = now + rr.prop + duration;
          if (g == nullptr) {
            RemoteRec& first = local.remote_scratch[slot.single];
            fresh->recs.push_back(first.rec);
            first.rec.phy = nullptr;  // consumed
          }
          g = fresh;
          slot.group = g;
          local.group_scratch.push_back(g);
          sim_.post(dst, now + rr.prop,
                    [this, sg] { fire_group_start(sg.get()); });
          sim_.post(dst, g->end_time,
                    [this, sg] { fire_remote_group_end(sg.get()); });
        }
        g->recs.push_back(rr.rec);
      }
      for (const RemoteRec& rr : local.remote_scratch) {
        if (rr.home != dst || rr.rec.phy == nullptr) continue;
        Phy* phy = rr.rec.phy;
        const std::uint64_t arrival_id = rr.rec.arrival_id;
        const bool in_rx_range = rr.rec.in_rx_range;
        const double dist = rr.rec.distance_m;
        const sim::Time start = now + rr.prop;
        const sim::Time end = start + duration;
        sim_.post(dst, start,
                  [phy, arrival_id, frame, in_rx_range, dist, end] {
                    phy->arrival_start(arrival_id, frame, in_rx_range, dist,
                                       end);
                  });
        sim_.post(dst, end, [phy, arrival_id, frame, in_rx_range] {
          phy->arrival_end(arrival_id, frame, in_rx_range);
        });
      }
    }
    for (const ArrivalGroup* g : local.group_scratch) {
      ++local.stats.arrival_groups;
      local.stats.arrival_records += g->recs.size();
      ++local.stats
            .arrival_group_size_hist[group_size_bucket(g->recs.size())];
    }
  }

  if (remote_mask != 0) {
    // Ghost busy-marker: every remote shard with a sensed receiver mirrors
    // this transmission into its own carrier-sense replica, so a radio
    // waking there mid-frame still senses it. Arrives clamped to the window
    // end — the same bounded deferral as the arrivals themselves.
    const sim::Time tx_end = now + duration;
    for (std::size_t m = 0; remote_mask != 0; ++m, remote_mask >>= 1) {
      if ((remote_mask & 1) == 0) continue;
      sim_.post(m, now, [this, tx_pos, tx_end] {
        add_in_flight(local_state(), tx_pos, tx_end);
      });
    }
  }
}

sim::Time Channel::sensed_busy_until(geo::Vec2 pos) const {
  sim::Time latest = 0;
  ShardState& st = local_state();
  const double cs2 = cfg_.cs_range_m * cfg_.cs_range_m;
  const auto col_lo = static_cast<std::int64_t>(
      std::floor((pos.x - cfg_.cs_range_m) / cs_cell_size_));
  const auto col_hi = static_cast<std::int64_t>(
      std::floor((pos.x + cfg_.cs_range_m) / cs_cell_size_));
  const auto row_lo = static_cast<std::int64_t>(
      std::floor((pos.y - cfg_.cs_range_m) / cs_cell_size_));
  const auto row_hi = static_cast<std::int64_t>(
      std::floor((pos.y + cfg_.cs_range_m) / cs_cell_size_));
  for (std::int64_t row = std::max<std::int64_t>(0, row_lo);
       row <= std::min<std::int64_t>(cs_rows_ - 1, row_hi); ++row) {
    for (std::int64_t col = std::max<std::int64_t>(0, col_lo);
         col <= std::min<std::int64_t>(cs_cols_ - 1, col_hi); ++col) {
      const CsCell& cell =
          st.cs_cells[static_cast<std::size_t>(row) * cs_cols_ + col];
      ++st.stats.cs_cells_visited;
      if (cell.entries.empty()) continue;
      // Every arrival-end in this cell is <= max_end + max_prop_: skip the
      // scan when even that bound cannot beat the current maximum.
      if (cell.max_end + max_prop_ <= latest) continue;
      for (const InFlight& f : cell.entries) {
        ++st.stats.cs_entries_scanned;
        const double d2 = geo::distance_sq(f.tx_pos, pos);
        if (d2 > cs2) continue;
        const sim::Time arrival_end =
            f.end + propagation_delay(std::sqrt(d2));
        latest = std::max(latest, arrival_end);
      }
    }
  }
  return latest;
}

std::size_t Channel::neighbor_count(NodeId id) const {
  return mobility_.count_neighbors(id, cfg_.tx_range_m);
}

std::size_t Channel::in_flight_size() const {
  std::size_t n = 0;
  for (const ShardState& st : state_) {
    for (const CsCell& cell : st.cs_cells) n += cell.entries.size();
  }
  return n;
}

geo::Vec2 Channel::position_of(NodeId id) const {
  return mobility_.position(id);
}

ChannelStats Channel::stats() const {
  ChannelStats total;
  for (const ShardState& st : state_) {
    total.frames_transmitted += st.stats.frames_transmitted;
    total.bits_transmitted += st.stats.bits_transmitted;
    total.cs_cells_visited += st.stats.cs_cells_visited;
    total.cs_entries_scanned += st.stats.cs_entries_scanned;
    total.arrival_groups += st.stats.arrival_groups;
    total.arrival_records += st.stats.arrival_records;
    total.arrival_group_fires += st.stats.arrival_group_fires;
    total.arrival_member_fires += st.stats.arrival_member_fires;
    for (std::size_t i = 0; i < total.arrival_group_size_hist.size(); ++i) {
      total.arrival_group_size_hist[i] += st.stats.arrival_group_size_hist[i];
    }
  }
  return total;
}

}  // namespace rcast::phy
