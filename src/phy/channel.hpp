// Shared wireless channel.
//
// Reception model (see DESIGN.md §2): with fixed transmit power, ns-2's
// two-ray ground propagation reduces to two deterministic thresholds — a
// reception range (250 m) and a carrier-sense/interference range (550 m).
// A frame is decodable by an awake radio iff the radio is within reception
// range and no other signal (within interference range) overlaps it in time
// at that radio; there is no capture. Propagation delay is distance / c.
//
// Scaling (DESIGN.md §12): the sensed set per transmission comes straight
// from the mobility layer's allocation-free range query, and in-flight
// transmissions are bucketed into a per-channel uniform grid of
// carrier-sense cells (cell size = cs_range) with a per-cell max-busy-until
// aggregate, so sensed_busy_until inspects only the <= 3x3 cells overlapping
// the carrier-sense disc instead of the global in-flight list.
//
// Sharded runs (DESIGN.md §15): every piece of per-transmission mutable
// state — the cs-cell grid, the stats, the arrival-id stream — is replicated
// per shard, so transmit() and sensed_busy_until() touch only the calling
// shard's replica. Receivers homed on other shards get their arrival events
// as cross-shard posts (delivered at the next barrier, clamped to the window
// end), and a ghost busy-marker is posted to every remote shard that had a
// receiver in the sensed set so its carrier-sense replica reflects the
// transmission. Arrival-id streams are seeded shard << 56: disjoint and
// per-run deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/mobility_manager.hpp"
#include "phy/arrival_group.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"

namespace rcast::phy {

struct ChannelConfig {
  double tx_range_m = 250.0;  // reception threshold (two-ray, WaveLAN)
  double cs_range_m = 550.0;  // carrier-sense / interference threshold
  std::int64_t bitrate_bps = 2'000'000;
  /// Capture threshold in dB (ns-2 CPThresh default: 10). A locked
  /// reception survives an overlapping arrival whose signal is at least
  /// this much weaker; under two-ray d^-4 path loss that means the
  /// interferer is farther than 10^(dB/40) times the signal distance.
  /// <= 0 disables capture (any overlap within cs range corrupts).
  double capture_db = 10.0;
};

class Phy;

/// Aggregate channel-level counters for a run.
struct ChannelStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t bits_transmitted = 0;
  /// Carrier-sense cells inspected across all sensed_busy_until calls (the
  /// cell-aggregated replacement for scanning the whole in-flight list).
  std::uint64_t cs_cells_visited = 0;
  /// In-flight entries distance-checked inside those cells.
  std::uint64_t cs_entries_scanned = 0;
  /// Arrival groups created by transmit() and receiver records batched into
  /// them, plus a log2 histogram of group sizes (bucket i = 2^i..2^(i+1)-1
  /// records; buckets >= 3 are impossible under kArrivalGroupCapacity and
  /// CI treats them as a zero budget). Only delay slots that attract a
  /// second receiver form groups — singleton arrivals keep the direct
  /// per-receiver closures and appear in none of these counters.
  std::uint64_t arrival_groups = 0;
  std::uint64_t arrival_records = 0;
  std::array<std::uint64_t, 8> arrival_group_size_hist{};
  /// Fire-side view: group events dispatched (each start and end event
  /// counts once) and receiver records delivered by them. The difference is
  /// exactly the events the per-receiver scheme would have executed on top,
  /// which is how run summaries keep events_executed comparable.
  std::uint64_t arrival_group_fires = 0;
  std::uint64_t arrival_member_fires = 0;
};

class Channel {
 public:
  Channel(sim::Simulator& simulator, mobility::MobilityManager& mobility,
          const ChannelConfig& config);

  const ChannelConfig& config() const { return cfg_; }
  std::int64_t bitrate() const { return cfg_.bitrate_bps; }

  /// Interferer-over-signal distance ratio above which a locked reception
  /// survives (10^(capture_db/40) under two-ray d^-4); 0 when capture is
  /// disabled. Precomputed once — it sits on the arrival hot path.
  double capture_ratio() const { return capture_ratio_; }

  /// Registers a radio; its node id indexes into the mobility manager.
  void attach(Phy* phy);

  /// Sharded runs only: node -> home shard, set by the scenario layer after
  /// partitioning and before any node schedules events. Receivers whose home
  /// shard differs from the transmitter's get their arrivals via
  /// cross-shard posts.
  void set_shard_map(std::vector<std::uint32_t> node_shard);

  /// Serialization time of a frame of `bits` on this channel.
  sim::Time duration_of(std::int64_t bits) const {
    return sim::tx_duration(bits, cfg_.bitrate_bps);
  }

  /// Called by a Phy to put a frame on the air. Computes the sensed set at
  /// transmission start and schedules arrival start/end at each radio.
  void transmit(FramePtr frame, sim::Time duration);

  /// Latest end time (including propagation) of any in-flight transmission
  /// whose signal reaches `pos`; used when a radio wakes mid-transmission.
  /// Sharded runs consult only the calling shard's replica.
  sim::Time sensed_busy_until(geo::Vec2 pos) const;

  /// Current neighbor count of a node within reception range (topology
  /// truth; protocol code should prefer the passive NeighborTable).
  std::size_t neighbor_count(NodeId id) const;

  /// Current exact position of a node (forwarded from the mobility layer).
  geo::Vec2 position_of(NodeId id) const;

  /// Aggregated counters (summed across shard replicas in shard order).
  ChannelStats stats() const;

  /// Live in-flight entries across all carrier-sense cells and shards
  /// (expired entries are pruned lazily, so this is an upper bound on the
  /// active count).
  std::size_t in_flight_size() const;

 private:
  struct InFlight {
    geo::Vec2 tx_pos;
    sim::Time end;  // end of serialization at the transmitter
  };
  /// One carrier-sense cell: the in-flight transmissions whose transmitter
  /// sits in this cell, plus the max serialization-end over them. The max is
  /// an upper bound between prunes; entries expire lazily on insert sweeps.
  struct CsCell {
    std::vector<InFlight> entries;
    sim::Time max_end = 0;
  };
  /// A remote receiver noted during the fan-out's single grid pass; grouped
  /// per destination shard afterwards (DESIGN.md §17).
  struct RemoteRec {
    ArrivalRec rec;
    sim::Time prop = 0;
    std::uint32_t home = 0;
  };
  /// Per-shard replica of all per-transmission mutable state; exactly one
  /// in single-queue mode. Padded so neighboring shards' hot counters never
  /// share a cache line.
  struct alignas(64) ShardState {
    std::vector<CsCell> cs_cells;
    std::uint64_t next_arrival_id = 0;
    ChannelStats stats;
    // Arrival-group machinery: pooled groups, the prop-indexed open-group
    // table (epoch-scoped to one grouping pass), and per-transmit scratch
    // reused across calls.
    ArrivalGroupPool group_pool;
    std::vector<OpenGroup> open_groups;  // indexed by prop delay in ns
    std::uint64_t open_epoch = 0;
    std::vector<ArrivalGroup*> group_scratch;  // local groups this transmit
    std::vector<PendingSingle> single_scratch;  // lone local receivers
    std::vector<RemoteRec> remote_scratch;     // remote recs this transmit
  };

  std::uint32_t cs_cell_of(geo::Vec2 p) const;
  void add_in_flight(ShardState& st, geo::Vec2 tx_pos, sim::Time end);
  ShardState& local_state() const { return state_[sim_.current_shard()]; }

  // Arrival-group fire paths (called from queue handlers; see transmit).
  void fire_group_start(ArrivalGroup* g);
  void fire_group_end(ArrivalGroup* g);
  void fire_remote_group_end(ArrivalGroup* g);  // shared_ptr owns the group

  sim::Simulator& sim_;
  mobility::MobilityManager& mobility_;
  ChannelConfig cfg_;
  double capture_ratio_ = 0.0;
  bool sharded_ = false;
  std::vector<Phy*> phys_;
  std::vector<std::uint32_t> node_shard_;  // empty in single-queue mode

  // Carrier-sense cell grid geometry (same clamped-cell scheme as
  // geo::GridIndex); the cells themselves live in the shard replicas.
  double cs_cell_size_ = 0.0;
  std::uint32_t cs_cols_ = 0;
  std::uint32_t cs_rows_ = 0;
  sim::Time max_prop_ = 0;  // propagation delay across cs_range

  mutable std::vector<ShardState> state_;
};

}  // namespace rcast::phy
