// Per-node radio.
//
// Tracks power state (idle/rx/tx/sleep), carrier sensing, reception locking
// and collision corruption, and drives the node's EnergyMeter on every state
// transition. The MAC observes the radio through PhyListener callbacks plus
// carrier_busy()/busy_until() queries.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/energy_model.hpp"
#include "phy/channel.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"

namespace rcast::stats {
class TelemetryBus;
}

namespace rcast::phy {

/// MAC-side observer of radio events.
class PhyListener {
 public:
  virtual ~PhyListener() = default;

  /// A frame was fully and cleanly decoded (addressed to anyone). The MAC
  /// decides whether this is a receive, an overhear, or to be dropped.
  virtual void phy_rx_ok(const FramePtr& frame) = 0;

  /// Our own transmission finished serializing.
  virtual void phy_tx_done() = 0;

  /// Carrier went busy (first sensed arrival after an idle period).
  virtual void phy_carrier_busy() = 0;

  /// Carrier went idle (all sensed arrivals ended).
  virtual void phy_carrier_idle() = 0;
};

struct PhyStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t rx_ok = 0;
  std::uint64_t rx_collisions = 0;   // locked receptions corrupted
  std::uint64_t rx_missed_busy = 0;  // in-range arrivals while already busy
  std::uint64_t rx_missed_sleep = 0; // in-range arrivals while asleep
  std::uint64_t rx_missed_tx = 0;    // in-range arrivals while transmitting
};

class Phy {
 public:
  /// `meter` may be null (no energy accounting, e.g. unit tests).
  Phy(sim::Simulator& simulator, Channel& channel, NodeId id,
      energy::EnergyMeter* meter);

  NodeId id() const { return id_; }
  void set_listener(PhyListener* l) { listener_ = l; }
  /// Attach the telemetry bus (may be null). The radio emits tx/rx events,
  /// losses, power-state transitions and battery death; emission never
  /// affects radio behavior.
  void set_telemetry(stats::TelemetryBus* bus) { telemetry_ = bus; }
  const Channel& channel() const { return channel_; }

  // --- MAC-facing control -------------------------------------------------

  /// Begins transmitting. Requires the radio to be awake, not already
  /// transmitting, and not depleted. Aborts any in-progress reception.
  void start_tx(FramePtr frame);

  bool transmitting() const { return tx_busy_; }
  bool sleeping() const { return asleep_; }

  /// True if energy is sensed on the medium now (own TX counts as busy).
  bool carrier_busy() const;

  /// Time until which the medium is known busy (may be in the past).
  sim::Time busy_until() const { return busy_until_; }

  /// Enters the low-power doze state: all receptions drop, carrier sensing
  /// stops. No-op while transmitting (callers must not sleep a busy TX).
  void sleep();

  /// Wakes the radio; re-acquires carrier state from the channel (a radio
  /// waking mid-frame senses energy but cannot decode the partial frame).
  void wake();

  /// True once the node's battery is depleted (radio permanently off).
  bool dead() const;

  const PhyStats& stats() const { return stats_; }

  // --- Channel-facing (not for MAC use) ------------------------------------

  void arrival_start(std::uint64_t arrival_id, const FramePtr& frame,
                     bool in_rx_range, double distance_m, sim::Time end_time);
  void arrival_end(std::uint64_t arrival_id, const FramePtr& frame,
                   bool in_rx_range);


 private:
  struct Arrival {
    std::uint64_t id = 0;     // channel arrival id (0 is never assigned)
    FramePtr frame;
    double distance_m = 0.0;  // transmitter-to-us distance at frame start
    bool corrupted = false;
    bool locked = false;  // we are attempting to decode this one
  };

  Arrival* find_arrival(std::uint64_t arrival_id);

  /// True if an interferer at `d_interferer` corrupts a signal being decoded
  /// from `d_signal` (pairwise SINR under two-ray d^-4 with the channel's
  /// capture threshold).
  bool interferes(double d_interferer, double d_signal) const;

  void update_energy_state();
  void extend_busy(sim::Time until);
  void schedule_idle_check();

  sim::Simulator& sim_;
  Channel& channel_;
  NodeId id_;
  energy::EnergyMeter* meter_;
  PhyListener* listener_ = nullptr;
  stats::TelemetryBus* telemetry_ = nullptr;
  energy::RadioState last_state_ = energy::RadioState::kIdle;
  bool death_reported_ = false;

  bool asleep_ = false;
  bool tx_busy_ = false;
  /// Sensed in-flight arrivals. A handful at most at any instant, so a flat
  /// reused vector (linear find, swap-erase) beats a node-per-entry map and
  /// keeps the steady-state arrival path allocation-free.
  std::vector<Arrival> arrivals_;
  std::uint64_t locked_arrival_ = 0;  // Arrival::id, 0 = none
  sim::Time busy_until_ = 0;
  bool carrier_was_busy_ = false;
  sim::EventId idle_check_;
  /// Lazy idle-check state (see schedule_idle_check): whether a check event
  /// is pending and the deadline it was armed for.
  bool idle_check_armed_ = false;
  sim::Time idle_check_at_ = 0;
  PhyStats stats_;
};

/// Batched delivery (DESIGN.md §17): unpack an arrival group into
/// per-receiver arrival_start/arrival_end calls, in record order. Defined in
/// phy.cpp so the per-record calls inline into the loop.
void deliver_arrival_group_start(const ArrivalGroup& g);
void deliver_arrival_group_end(const ArrivalGroup& g);

}  // namespace rcast::phy
