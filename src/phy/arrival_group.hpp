// Batched PHY arrival delivery (DESIGN.md §17).
//
// A broadcast in a dense storm used to schedule two closures per sensed
// receiver (arrival start + arrival end), so one frame became 2·N queue
// entries each paying routing, slot and dispatch costs. Receivers whose
// integer propagation delay (ns) coincides share the exact same start and
// end timestamps, so their deliveries are batched into one arrival *group*:
// a pooled record vector consumed by a tight loop at fire time. Groups are
// keyed by propagation delay during a single transmit() fan-out via an
// epoch-stamped open-group table (one entry per possible delay in ns, no
// clearing between transmissions), and records are appended in the spatial
// query's deterministic grid order so per-receiver delivery order — and with
// it goldens and TelemetryBus streams — is unchanged.
//
// A group only forms once a second receiver lands on the same delay: a lone
// receiver stays a *pending single* (parked in per-transmit scratch, indexed
// from its open-group slot) and is scheduled as the classic pair of direct
// per-receiver closures after the pass. At continuous-uniform placement most
// delay slots hold exactly one receiver, and the direct closure keeps all
// delivery state inline in the event slot — the group indirection is paid
// only where it collapses events. Reordering between delay slots is
// unobservable: equal timestamps imply equal delay, i.e. the same slot.
//
// Capacity: a group holds at most kArrivalGroupCapacity records; the next
// same-delay receiver chains a fresh group (scheduled right behind, so
// (time, seq) order still matches per-receiver scheduling). The SmallVec
// therefore never spills to the heap, which CI proves via the size
// histogram's forbidden buckets.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/frame.hpp"
#include "sim/time.hpp"
#include "util/small_vec.hpp"

namespace rcast::phy {

class Phy;

/// One receiver's slice of a batched arrival: everything arrival_start /
/// arrival_end need beyond the frame itself. Trivially copyable (SmallVec
/// element contract).
struct ArrivalRec {
  Phy* phy = nullptr;
  std::uint64_t arrival_id = 0;
  double distance_m = 0.0;
  bool in_rx_range = false;
};

/// Records per group; chosen so a group stays ~256 B and the record vector
/// can never heap-spill (push past capacity chains a new group instead).
inline constexpr std::size_t kArrivalGroupCapacity = 7;

/// All same-(frame, start, end) arrivals of one transmission. The start and
/// end events both point at one group; the end fire releases it.
struct ArrivalGroup {
  FramePtr frame;
  sim::Time end_time = 0;  // arrival end at the receivers (start + duration)
  util::SmallVec<ArrivalRec, kArrivalGroupCapacity> recs;
};

/// Free-list arena of permanently constructed groups. Chunks never move or
/// shrink, so raw group pointers stay valid for the closure lifetime;
/// release() only resets the per-use fields (frame reference, records), and
/// chunk destruction releases any frames still held by never-fired groups
/// (a run stopped mid-flight) while the simulator's pools are still alive.
class ArrivalGroupPool {
 public:
  ArrivalGroup* acquire() {
    if (free_.empty()) grow();
    ArrivalGroup* g = free_.back();
    free_.pop_back();
    return g;
  }

  void release(ArrivalGroup* g) {
    g->frame.reset();
    g->recs.clear();
    free_.push_back(g);
  }

 private:
  static constexpr std::size_t kChunk = 64;

  void grow() {
    chunks_.push_back(std::make_unique<ArrivalGroup[]>(kChunk));
    ArrivalGroup* base = chunks_.back().get();
    for (std::size_t i = kChunk; i > 0; --i) free_.push_back(base + (i - 1));
  }

  std::vector<std::unique_ptr<ArrivalGroup[]>> chunks_;
  std::vector<ArrivalGroup*> free_;
};

/// A receiver parked while its delay slot is still a singleton, in the
/// per-transmit scratch vector. `rec.phy == nullptr` marks it consumed
/// (promoted into a group when a second same-delay receiver arrived).
struct PendingSingle {
  ArrivalRec rec;
  sim::Time prop = 0;
};

/// Open-group table entry, indexed by propagation delay (ns). The epoch
/// stamp scopes entries to one grouping pass — bumping the pass epoch
/// invalidates the whole table in O(1) instead of clearing ~1800 entries
/// per transmission. While `group` is null the slot holds one pending
/// receiver, referenced by index (`single`) into the pass's scratch vector
/// (an index, not a pointer — the scratch may grow mid-pass).
struct OpenGroup {
  std::uint64_t epoch = 0;
  ArrivalGroup* group = nullptr;
  std::uint32_t single = 0;
};

}  // namespace rcast::phy
