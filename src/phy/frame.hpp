// The unit the channel moves between radios.
//
// The PHY is MAC-agnostic: it serializes `bits` on the air and delivers the
// opaque payload to every radio that can decode it. The MAC layer derives its
// frame types from `Payload`.
#pragma once

#include <cstdint>
#include <memory>

namespace rcast::phy {

using NodeId = std::uint32_t;
inline constexpr NodeId kBroadcastId = 0xFFFFFFFFu;

/// Base class for MAC-layer frame contents carried through the PHY.
struct Payload {
  virtual ~Payload() = default;
};

struct Frame {
  NodeId tx = 0;               // transmitting node
  NodeId rx = kBroadcastId;    // intended receiver, or broadcast
  std::int64_t bits = 0;       // on-air size
  std::shared_ptr<const Payload> payload;
};

using FramePtr = std::shared_ptr<const Frame>;

}  // namespace rcast::phy
