#include "phy/phy.hpp"

#include <algorithm>
#include <cmath>

#include "stats/telemetry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace rcast::phy {

Phy::Phy(sim::Simulator& simulator, Channel& channel, NodeId id,
         energy::EnergyMeter* meter)
    : sim_(simulator), channel_(channel), id_(id), meter_(meter) {
  channel.attach(this);
}

bool Phy::dead() const { return meter_ != nullptr && meter_->depleted(); }

void Phy::update_energy_state() {
  energy::RadioState desired;
  if (asleep_) {
    desired = energy::RadioState::kSleep;
  } else if (tx_busy_) {
    desired = energy::RadioState::kTx;
  } else if (locked_arrival_ != 0) {
    desired = energy::RadioState::kRx;
  } else {
    desired = energy::RadioState::kIdle;
  }
  // Without a meter the desired state is the actual state; with one, the
  // meter may pin to kOff (battery depleted).
  energy::RadioState actual = desired;
  if (meter_ != nullptr) actual = meter_->set_state(desired, sim_.now());
  if (telemetry_ != nullptr) {
    if (actual != last_state_) {
      telemetry_->on_radio_state(id_, actual, sim_.now());
    }
    if (!death_reported_ && meter_ != nullptr && meter_->depleted()) {
      death_reported_ = true;
      telemetry_->on_battery_depleted(id_, sim_.now());
    }
  }
  last_state_ = actual;
}

bool Phy::carrier_busy() const {
  return tx_busy_ || sim_.now() < busy_until_;
}

void Phy::extend_busy(sim::Time until) {
  if (until <= busy_until_) {
    // Still need a busy-edge notification if we were idle (e.g. a short
    // arrival inside an already-covered window cannot shrink it).
    if (!carrier_was_busy_ && carrier_busy()) {
      carrier_was_busy_ = true;
      if (listener_ != nullptr) listener_->phy_carrier_busy();
    }
    return;
  }
  busy_until_ = until;
  if (!carrier_was_busy_) {
    carrier_was_busy_ = true;
    if (listener_ != nullptr) listener_->phy_carrier_busy();
  }
  schedule_idle_check();
}

void Phy::schedule_idle_check() {
  // Lazy deadline: a pending check at or before busy_until_ is left alone —
  // it fires, sees the window was extended, and re-arms itself, so the
  // common extend-while-busy path costs zero cancel+push churn (ROADMAP
  // event-dispatch item; bench_micro records the delta). Only a check
  // pending *later* than the deadline (possible after sleep() shrank the
  // window and a later extend re-grew it shorter) must be re-armed eagerly,
  // or the idle edge would fire late.
  // Sharded runs can deliver a boundary-crossing arrival after its frame
  // already ended (bounded by the lookahead window), leaving busy_until_ in
  // the past — the check then runs immediately and emits the idle edge.
  const sim::Time deadline = std::max(busy_until_, sim_.now());
  if (idle_check_armed_ && idle_check_at_ <= deadline) return;
  if (idle_check_armed_) sim_.cancel(idle_check_);
  idle_check_armed_ = true;
  idle_check_at_ = deadline;
  idle_check_ = sim_.at(deadline, [this] {
    idle_check_armed_ = false;
    if (sim_.now() < busy_until_) {
      schedule_idle_check();  // extended meanwhile
      return;
    }
    if (carrier_was_busy_ && !asleep_) {
      carrier_was_busy_ = false;
      if (listener_ != nullptr) listener_->phy_carrier_idle();
    } else {
      carrier_was_busy_ = false;
    }
  });
}

void Phy::start_tx(FramePtr frame) {
  RCAST_REQUIRE(frame != nullptr);
  RCAST_REQUIRE_MSG(!asleep_, "start_tx while asleep");
  RCAST_REQUIRE_MSG(!tx_busy_, "start_tx while already transmitting");
  RCAST_REQUIRE_MSG(frame->tx == id_, "frame tx id mismatch");
  if (dead()) return;

  // Transmitting deafens the radio: abort any in-progress reception.
  if (locked_arrival_ != 0) {
    if (Arrival* locked = find_arrival(locked_arrival_)) {
      locked->corrupted = true;
    }
    locked_arrival_ = 0;
    ++stats_.rx_missed_tx;
    if (telemetry_ != nullptr) {
      telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kWhileTx, sim_.now());
    }
  }

  tx_busy_ = true;
  ++stats_.tx_frames;
  if (telemetry_ != nullptr) telemetry_->on_phy_tx(id_, frame->bits, sim_.now());
  update_energy_state();
  const sim::Time duration = channel_.duration_of(frame->bits);
  channel_.transmit(frame, duration);
  sim_.after(duration, [this] {
    tx_busy_ = false;
    update_energy_state();
    if (listener_ != nullptr) listener_->phy_tx_done();
  });
}

void Phy::sleep() {
  if (asleep_ || dead()) return;
  RCAST_REQUIRE_MSG(!tx_busy_, "cannot sleep mid-transmission");
  asleep_ = true;
  // A dozing radio hears nothing: drop all sensed arrivals and the lock.
  arrivals_.clear();
  locked_arrival_ = 0;
  busy_until_ = sim_.now();
  carrier_was_busy_ = false;
  update_energy_state();
}

void Phy::wake() {
  if (!asleep_) return;
  asleep_ = false;
  update_energy_state();
  if (dead()) {
    asleep_ = true;
    return;
  }
  // Physical carrier sense picks up transmissions already on the air, but a
  // partially-heard frame cannot be decoded.
  const sim::Time busy = channel_.sensed_busy_until(channel_.position_of(id_));
  if (busy > sim_.now()) extend_busy(busy);
}

bool Phy::interferes(double d_interferer, double d_signal) const {
  // Two-ray d^-4: SIR(dB) = 40*log10(d_i/d_s) >= capture_db to survive. The
  // 10^(dB/40) ratio is precomputed by the channel (0 = capture disabled:
  // any overlap corrupts) — this predicate runs per overlapping arrival.
  const double ratio = channel_.capture_ratio();
  if (ratio <= 0.0) return true;
  return d_interferer < ratio * d_signal;
}

Phy::Arrival* Phy::find_arrival(std::uint64_t arrival_id) {
  for (Arrival& a : arrivals_) {
    if (a.id == arrival_id) return &a;
  }
  return nullptr;
}

void Phy::arrival_start(std::uint64_t arrival_id, const FramePtr& frame,
                        bool in_rx_range, double distance_m,
                        sim::Time end_time) {
  if (asleep_ || dead()) {
    if (in_rx_range && (frame->rx == id_ || frame->rx == kBroadcastId)) {
      ++stats_.rx_missed_sleep;
      if (telemetry_ != nullptr) {
        telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kWhileAsleep,
                                   sim_.now());
      }
    }
    return;
  }

  Arrival a;
  a.id = arrival_id;
  a.frame = frame;
  a.distance_m = distance_m;

  // Does this new arrival corrupt an ongoing locked reception?
  if (locked_arrival_ != 0) {
    Arrival* locked = find_arrival(locked_arrival_);
    if (locked != nullptr && interferes(distance_m, locked->distance_m)) {
      locked->corrupted = true;
    }
  }

  if (in_rx_range) {
    if (tx_busy_) {
      a.corrupted = true;
      ++stats_.rx_missed_tx;
      if (telemetry_ != nullptr) {
        telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kWhileTx, sim_.now());
      }
    } else if (locked_arrival_ != 0) {
      // Mid-decode of another frame: cannot re-lock (no preamble capture).
      a.corrupted = true;
      ++stats_.rx_missed_busy;
      if (telemetry_ != nullptr) {
        telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kWhileBusy, sim_.now());
      }
    } else {
      // Decodable iff every ongoing signal is weak enough to be captured
      // over; energy from an unknown source (sensed while waking) counts
      // as an unconditional interferer.
      bool clean = arrivals_.empty() ? sim_.now() >= busy_until_ : true;
      for (const Arrival& ongoing : arrivals_) {
        if (interferes(ongoing.distance_m, distance_m)) {
          clean = false;
          break;
        }
      }
      if (clean) {
        a.locked = true;
      } else {
        a.corrupted = true;
        ++stats_.rx_missed_busy;
        if (telemetry_ != nullptr) {
          telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kWhileBusy,
                                     sim_.now());
        }
      }
    }
  } else {
    a.corrupted = true;  // carrier-sense-only signal, never decodable here
  }

  if (a.locked) locked_arrival_ = arrival_id;
  arrivals_.push_back(std::move(a));
  update_energy_state();
  extend_busy(end_time);
}

void Phy::arrival_end(std::uint64_t arrival_id, const FramePtr& frame,
                      bool in_rx_range) {
  (void)in_rx_range;
  Arrival* it = find_arrival(arrival_id);
  if (it == nullptr) return;  // slept (or was asleep) meanwhile
  const bool was_locked = (arrival_id == locked_arrival_);
  const bool corrupted = it->corrupted;
  *it = std::move(arrivals_.back());  // swap-erase; order is irrelevant
  arrivals_.pop_back();
  if (was_locked) {
    locked_arrival_ = 0;
    update_energy_state();
    if (corrupted) {
      ++stats_.rx_collisions;
      if (telemetry_ != nullptr) {
        telemetry_->on_phy_rx_lost(id_, stats::PhyLoss::kCollision, sim_.now());
      }
    } else {
      ++stats_.rx_ok;
      if (telemetry_ != nullptr) {
        telemetry_->on_phy_rx_ok(id_, frame->tx, sim_.now());
      }
      if (listener_ != nullptr) listener_->phy_rx_ok(frame);
    }
  }
}

void deliver_arrival_group_start(const ArrivalGroup& g) {
  for (const ArrivalRec& r : g.recs) {
    r.phy->arrival_start(r.arrival_id, g.frame, r.in_rx_range, r.distance_m,
                         g.end_time);
  }
}

void deliver_arrival_group_end(const ArrivalGroup& g) {
  for (const ArrivalRec& r : g.recs) {
    r.phy->arrival_end(r.arrival_id, g.frame, r.in_rx_range);
  }
}

}  // namespace rcast::phy
