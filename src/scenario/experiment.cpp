#include "scenario/experiment.hpp"

#include <algorithm>
#include <future>
#include <iomanip>
#include <sstream>
#include <thread>

#include "util/assert.hpp"
#include "util/flags.hpp"

namespace rcast::scenario {

std::vector<RunResult> run_repetitions(const ScenarioConfig& cfg,
                                       std::size_t repetitions,
                                       std::size_t threads) {
  RCAST_REQUIRE(repetitions > 0);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, repetitions);

  std::vector<RunResult> results(repetitions);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= repetitions) return;
        ScenarioConfig c = cfg;
        c.seed = cfg.seed + i;
        results[i] = run_scenario(c);
      }
    });
  }
  for (auto& w : workers) w.join();
  return results;
}

void RunAverager::add(const RunResult& r) {
  if (n_ == 0) {
    first_ = r;
    per_node_sum_.assign(r.per_node_energy_j.size(), 0.0);
    role_sum_.assign(r.role_numbers.size(), 0.0);
  }
  RCAST_REQUIRE(r.per_node_energy_j.size() == per_node_sum_.size());
  RCAST_REQUIRE(r.role_numbers.size() == role_sum_.size());

  sums_.total_energy_j += r.total_energy_j;
  sums_.energy_variance += r.energy_variance;
  sums_.energy_mean_j += r.energy_mean_j;
  sums_.energy_min_j += r.energy_min_j;
  sums_.energy_max_j += r.energy_max_j;
  sums_.pdr_percent += r.pdr_percent;
  sums_.avg_delay_s += r.avg_delay_s;
  sums_.energy_per_bit_j += r.energy_per_bit_j;
  sums_.normalized_overhead += r.normalized_overhead;
  sums_.first_death_s += r.first_death_s;
  sums_.partition_time_s += r.partition_time_s;

  sums_.originated += static_cast<double>(r.originated);
  sums_.delivered += static_cast<double>(r.delivered);
  sums_.control_tx += static_cast<double>(r.control_tx);
  sums_.atim_tx += static_cast<double>(r.atim_tx);
  sums_.data_tx_attempts += static_cast<double>(r.data_tx_attempts);
  sums_.overhear_commits += static_cast<double>(r.overhear_commits);
  sums_.overhear_declines += static_cast<double>(r.overhear_declines);
  sums_.mac_sleeps += static_cast<double>(r.mac_sleeps);
  sums_.rreq_tx += static_cast<double>(r.rreq_tx);
  sums_.rrep_tx += static_cast<double>(r.rrep_tx);
  sums_.rerr_tx += static_cast<double>(r.rerr_tx);
  sums_.dead_nodes += static_cast<double>(r.dead_nodes);

  for (std::size_t i = 0; i < per_node_sum_.size(); ++i) {
    per_node_sum_[i] += r.per_node_energy_j[i];
  }
  for (std::size_t i = 0; i < role_sum_.size(); ++i) {
    role_sum_[i] += static_cast<double>(r.role_numbers[i]);
  }
  ++n_;
}

RunResult RunAverager::mean() const {
  RCAST_REQUIRE(n_ > 0);
  RunResult avg = first_;
  const double n = static_cast<double>(n_);

  avg.total_energy_j = sums_.total_energy_j / n;
  avg.energy_variance = sums_.energy_variance / n;
  avg.energy_mean_j = sums_.energy_mean_j / n;
  avg.energy_min_j = sums_.energy_min_j / n;
  avg.energy_max_j = sums_.energy_max_j / n;
  avg.pdr_percent = sums_.pdr_percent / n;
  avg.avg_delay_s = sums_.avg_delay_s / n;
  avg.energy_per_bit_j = sums_.energy_per_bit_j / n;
  avg.normalized_overhead = sums_.normalized_overhead / n;
  avg.first_death_s = sums_.first_death_s / n;
  avg.partition_time_s = sums_.partition_time_s / n;

  avg.originated = static_cast<std::uint64_t>(sums_.originated / n);
  avg.delivered = static_cast<std::uint64_t>(sums_.delivered / n);
  avg.control_tx = static_cast<std::uint64_t>(sums_.control_tx / n);
  avg.atim_tx = static_cast<std::uint64_t>(sums_.atim_tx / n);
  avg.data_tx_attempts =
      static_cast<std::uint64_t>(sums_.data_tx_attempts / n);
  avg.overhear_commits =
      static_cast<std::uint64_t>(sums_.overhear_commits / n);
  avg.overhear_declines =
      static_cast<std::uint64_t>(sums_.overhear_declines / n);
  avg.mac_sleeps = static_cast<std::uint64_t>(sums_.mac_sleeps / n);
  avg.rreq_tx = static_cast<std::uint64_t>(sums_.rreq_tx / n);
  avg.rrep_tx = static_cast<std::uint64_t>(sums_.rrep_tx / n);
  avg.rerr_tx = static_cast<std::uint64_t>(sums_.rerr_tx / n);
  avg.dead_nodes = static_cast<std::size_t>(sums_.dead_nodes / n);

  for (std::size_t i = 0; i < per_node_sum_.size(); ++i) {
    avg.per_node_energy_j[i] = per_node_sum_[i] / n;
  }
  for (std::size_t i = 0; i < role_sum_.size(); ++i) {
    avg.role_numbers[i] = static_cast<std::uint64_t>(role_sum_[i] / n);
  }
  return avg;
}

RunResult average(const std::vector<RunResult>& runs) {
  RCAST_REQUIRE(!runs.empty());
  RunAverager acc;
  for (const auto& r : runs) acc.add(r);
  return acc.mean();
}

BenchScale BenchScale::from_env() {
  BenchScale s{};
  s.full = Flags::env_flag("RCAST_FULL");
  if (s.full) {
    s.duration = 1125 * sim::kSecond;
    s.num_nodes = 100;
    s.num_flows = 20;
    s.repetitions = 10;
  } else {
    s.duration = 150 * sim::kSecond;
    s.num_nodes = 60;
    s.num_flows = 12;
    s.repetitions = 3;
  }
  const std::string d = Flags::env_or("RCAST_DURATION_S", "");
  if (!d.empty()) {
    const auto parsed = Flags::parse_double(d);
    if (!parsed || *parsed <= 0.0) {
      throw std::runtime_error(
          "RCAST_DURATION_S: expected a positive number of seconds, got '" +
          d + "'");
    }
    s.duration = sim::from_seconds(*parsed);
  }
  const std::string r = Flags::env_or("RCAST_REPS", "");
  if (!r.empty()) {
    const auto parsed = Flags::parse_u64(r);
    if (!parsed || *parsed == 0) {
      throw std::runtime_error(
          "RCAST_REPS: expected a positive integer repetition count, got '" +
          r + "'");
    }
    s.repetitions = static_cast<std::size_t>(*parsed);
  }
  return s;
}

std::string fmt(double v, int width, int precision) {
  std::ostringstream os;
  os << std::setw(width) << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt(std::uint64_t v, int width) {
  std::ostringstream os;
  os << std::setw(width) << v;
  return os.str();
}

std::string fmt(const std::string& s, int width) {
  std::ostringstream os;
  os << std::setw(width) << s;
  return os.str();
}

}  // namespace rcast::scenario
