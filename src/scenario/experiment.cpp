#include "scenario/experiment.hpp"

#include <algorithm>
#include <future>
#include <iomanip>
#include <sstream>
#include <thread>

#include "util/assert.hpp"
#include "util/flags.hpp"

namespace rcast::scenario {

std::vector<RunResult> run_repetitions(const ScenarioConfig& cfg,
                                       std::size_t repetitions,
                                       std::size_t threads) {
  RCAST_REQUIRE(repetitions > 0);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, repetitions);

  std::vector<RunResult> results(repetitions);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= repetitions) return;
        ScenarioConfig c = cfg;
        c.seed = cfg.seed + i;
        results[i] = run_scenario(c);
      }
    });
  }
  for (auto& w : workers) w.join();
  return results;
}

RunResult average(const std::vector<RunResult>& runs) {
  RCAST_REQUIRE(!runs.empty());
  RunResult avg = runs.front();
  const double n = static_cast<double>(runs.size());

  auto mean_of = [&](auto extract) {
    double acc = 0.0;
    for (const auto& r : runs) acc += extract(r);
    return acc / n;
  };

  avg.total_energy_j = mean_of([](const RunResult& r) { return r.total_energy_j; });
  avg.energy_variance = mean_of([](const RunResult& r) { return r.energy_variance; });
  avg.energy_mean_j = mean_of([](const RunResult& r) { return r.energy_mean_j; });
  avg.energy_min_j = mean_of([](const RunResult& r) { return r.energy_min_j; });
  avg.energy_max_j = mean_of([](const RunResult& r) { return r.energy_max_j; });
  avg.pdr_percent = mean_of([](const RunResult& r) { return r.pdr_percent; });
  avg.avg_delay_s = mean_of([](const RunResult& r) { return r.avg_delay_s; });
  avg.energy_per_bit_j = mean_of([](const RunResult& r) { return r.energy_per_bit_j; });
  avg.normalized_overhead =
      mean_of([](const RunResult& r) { return r.normalized_overhead; });
  avg.first_death_s = mean_of([](const RunResult& r) { return r.first_death_s; });

  auto mean_u64 = [&](auto extract) {
    double acc = 0.0;
    for (const auto& r : runs) acc += static_cast<double>(extract(r));
    return static_cast<std::uint64_t>(acc / n);
  };
  avg.originated = mean_u64([](const RunResult& r) { return r.originated; });
  avg.delivered = mean_u64([](const RunResult& r) { return r.delivered; });
  avg.control_tx = mean_u64([](const RunResult& r) { return r.control_tx; });
  avg.atim_tx = mean_u64([](const RunResult& r) { return r.atim_tx; });
  avg.data_tx_attempts =
      mean_u64([](const RunResult& r) { return r.data_tx_attempts; });
  avg.overhear_commits =
      mean_u64([](const RunResult& r) { return r.overhear_commits; });
  avg.overhear_declines =
      mean_u64([](const RunResult& r) { return r.overhear_declines; });
  avg.mac_sleeps = mean_u64([](const RunResult& r) { return r.mac_sleeps; });
  avg.rreq_tx = mean_u64([](const RunResult& r) { return r.rreq_tx; });
  avg.rrep_tx = mean_u64([](const RunResult& r) { return r.rrep_tx; });
  avg.rerr_tx = mean_u64([](const RunResult& r) { return r.rerr_tx; });
  avg.dead_nodes = static_cast<std::size_t>(
      mean_u64([](const RunResult& r) { return r.dead_nodes; }));

  // Element-wise averages of the per-node vectors.
  for (std::size_t i = 0; i < avg.per_node_energy_j.size(); ++i) {
    double acc = 0.0;
    for (const auto& r : runs) acc += r.per_node_energy_j[i];
    avg.per_node_energy_j[i] = acc / n;
  }
  for (std::size_t i = 0; i < avg.role_numbers.size(); ++i) {
    double acc = 0.0;
    for (const auto& r : runs) acc += static_cast<double>(r.role_numbers[i]);
    avg.role_numbers[i] = static_cast<std::uint64_t>(acc / n);
  }
  return avg;
}

BenchScale BenchScale::from_env() {
  BenchScale s{};
  s.full = Flags::env_flag("RCAST_FULL");
  if (s.full) {
    s.duration = 1125 * sim::kSecond;
    s.num_nodes = 100;
    s.num_flows = 20;
    s.repetitions = 10;
  } else {
    s.duration = 150 * sim::kSecond;
    s.num_nodes = 60;
    s.num_flows = 12;
    s.repetitions = 3;
  }
  const std::string d = Flags::env_or("RCAST_DURATION_S", "");
  if (!d.empty()) {
    const auto parsed = Flags::parse_double(d);
    if (!parsed || *parsed <= 0.0) {
      throw std::runtime_error(
          "RCAST_DURATION_S: expected a positive number of seconds, got '" +
          d + "'");
    }
    s.duration = sim::from_seconds(*parsed);
  }
  const std::string r = Flags::env_or("RCAST_REPS", "");
  if (!r.empty()) {
    const auto parsed = Flags::parse_u64(r);
    if (!parsed || *parsed == 0) {
      throw std::runtime_error(
          "RCAST_REPS: expected a positive integer repetition count, got '" +
          r + "'");
    }
    s.repetitions = static_cast<std::size_t>(*parsed);
  }
  return s;
}

std::string fmt(double v, int width, int precision) {
  std::ostringstream os;
  os << std::setw(width) << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt(std::uint64_t v, int width) {
  std::ostringstream os;
  os << std::setw(width) << v;
  return os.str();
}

std::string fmt(const std::string& s, int width) {
  std::ostringstream os;
  os << std::setw(width) << s;
  return os.str();
}

}  // namespace rcast::scenario
