// Typed parameter registry: the single declarative description of every
// behavior-affecting ScenarioConfig field, including the nested mac.*,
// dsr.*, aodv.*, odpm.*, rcast.* and power.* subconfigs.
//
// One table drives five consumer surfaces that used to each hand-maintain
// their own field list (and silently drift):
//   1. campaign manifests — any registered dotted name is a scalar override
//      or a sweep axis (campaign/manifest.cpp),
//   2. config digests — campaign::config_digest mixes every in_digest
//      param, so no behavior-affecting field can alias a resumed job,
//   3. the CLIs — rcast_sim/rcast_campaign `--set key=value` and the
//      generated `--help-params` listing,
//   4. the result store — records serialize and round-trip the full config
//      (campaign/result_store.cpp),
//   5. docs — the parameter reference in EXPERIMENTS.md is emitted from
//      this table (tools/rcast_params), with a tier-1 stale-docs gate.
//
// Adding a ScenarioConfig field therefore means adding one descriptor here
// (see DESIGN.md §11); the registry completeness test fails the build's
// test suite if a field is added without one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace rcast::scenario {

/// Thrown on unknown names, unparseable values, or bounds violations; the
/// message names the parameter and its accepted range/tokens.
class ParamError : public std::runtime_error {
 public:
  explicit ParamError(const std::string& what) : std::runtime_error(what) {}
};

enum class ParamType : std::uint8_t {
  kDouble = 0,  // floating scalar (times are doubles in the unit the
                // name's suffix states: _s, _ms, _us)
  kUInt = 1,    // non-negative integer
  kBool = 2,    // true/false (also accepts 1/0, yes/no, on/off)
  kEnum = 3,    // one of a fixed token table, matched case-insensitively
};

constexpr std::string_view to_string(ParamType t) {
  switch (t) {
    case ParamType::kDouble:
      return "double";
    case ParamType::kUInt:
      return "uint";
    case ParamType::kBool:
      return "bool";
    case ParamType::kEnum:
      return "enum";
  }
  return "?";
}

/// A typed parameter value in transit between text surfaces and
/// ScenarioConfig fields. Exactly one of the payload members is active,
/// selected by `type`.
struct ParamValue {
  ParamType type = ParamType::kDouble;
  double d = 0.0;
  std::uint64_t u = 0;
  bool b = false;
  std::string token;  // kEnum: canonical spelling from the token table

  static ParamValue of(double v);
  static ParamValue of(std::uint64_t v);
  static ParamValue of(bool v);
  static ParamValue of(std::string_view canonical_token);

  /// Canonical text rendering: %.17g doubles (exact round trip), decimal
  /// integers, "true"/"false", the canonical enum token. This is what the
  /// config digest mixes and what set-from-text parses back.
  std::string text() const;

  /// Human rendering for help/docs: %g doubles, otherwise same as text().
  std::string pretty() const;

  bool operator==(const ParamValue& o) const;
};

/// One registered parameter: a dotted path into ScenarioConfig plus the
/// typed accessors every consumer shares.
struct Param {
  std::string_view name;  // dotted path, e.g. "mac.atim_window_ms"
  ParamType type = ParamType::kDouble;
  std::string_view doc;
  /// Inclusive numeric bounds (kDouble/kUInt); ignored for bool/enum.
  double min_value = 0.0;
  double max_value = 0.0;
  /// False only for knobs that cannot change the simulated result (e.g.
  /// max_wall_seconds, a wall-clock budget): excluded from config_digest.
  bool in_digest = true;
  /// kEnum: accepted tokens, canonical spelling first-class.
  std::vector<std::string_view> tokens;

  ParamValue (*get)(const ScenarioConfig&) = nullptr;
  void (*set)(ScenarioConfig&, const ParamValue&) = nullptr;

  /// kEnum only, optional: alias-aware canonicalizer (e.g. scheme accepts
  /// the historical "802.11" spelling). Returns the canonical token, or
  /// empty if unrecognized. When null, the token table is matched directly
  /// (case-insensitively).
  std::string_view (*canonicalize)(std::string_view) = nullptr;

  /// Value on a default-constructed ScenarioConfig.
  ParamValue default_value() const;

  /// Parses `text` per `type`, enforcing bounds / the token table. Throws
  /// ParamError with the parameter name and accepted range in the message.
  ParamValue parse(std::string_view text) const;

  /// "[min, max]" for numerics, "true|false", or the enum token list.
  std::string range_text() const;
};

/// The registry, in stable registration order (the order the digest mixes
/// and the docs list). Built once, immutable afterwards.
const std::vector<Param>& param_registry();

/// Lookup by dotted name; nullptr if unknown.
const Param* find_param(std::string_view name);

/// Parse + assign in one step; throws ParamError on unknown name, bad
/// value, or bounds violation.
void set_param(ScenarioConfig& cfg, std::string_view name,
               std::string_view value_text);

/// Canonical text of one parameter's current value; throws on unknown name.
std::string param_text(const ScenarioConfig& cfg, std::string_view name);

/// The `--help-params` listing: one line per parameter with type, default,
/// range and doc string.
std::string params_help();

/// The generated EXPERIMENTS.md parameter reference, including the
/// BEGIN/END marker lines (tools/rcast_params --check/--update).
std::string params_markdown();

inline constexpr std::string_view kParamsDocBegin =
    "<!-- BEGIN GENERATED: parameter registry (tools/rcast_params --update=EXPERIMENTS.md) -->";
inline constexpr std::string_view kParamsDocEnd =
    "<!-- END GENERATED: parameter registry -->";

/// Registry completeness self-check. Returns human-readable problems, empty
/// when healthy. Catches: duplicate/malformed names, defaults outside
/// bounds, and — via a sizeof fence on ScenarioConfig and every subconfig —
/// fields added without a descriptor (a new field changes the struct size;
/// the fence then names the struct to update). Run by test_params and by
/// `rcast_params --self-check` under both sanitizer CI legs.
std::vector<std::string> registry_self_check();

}  // namespace rcast::scenario
