#include "scenario/policy_registry.hpp"

#include <algorithm>

#include "core/rcast.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/rpgm.hpp"
#include "power/always_on.hpp"
#include "power/cluster.hpp"
#include "power/psm_policy.hpp"
#include "traffic/sensing.hpp"

namespace rcast::scenario {

namespace {

std::unique_ptr<mac::PowerPolicy> make_rcast(const PowerPolicyContext& ctx) {
  core::RcastConfig rc = ctx.cfg.rcast;
  if (ctx.cfg.rcast_oracle_neighbors && !rc.neighbor_count_fn) {
    rc.neighbor_count_fn = [&channel = ctx.channel, id = ctx.id] {
      return channel.neighbor_count(id);
    };
  }
  return std::make_unique<core::RcastPolicy>(rc, ctx.rng.fork(0x5C),
                                             ctx.meter);
}

/// Reference-point kinematics shared by rwp and rpgm: same clamping the
/// scenario always applied.
void reference_kinematics(const ScenarioConfig& cfg, geo::Rect& world,
                          double& min_speed, double& max_speed,
                          sim::Time& pause) {
  world = cfg.world;
  max_speed = std::max(cfg.max_speed_mps, 0.2);
  min_speed = std::min(0.1, max_speed / 2.0);
  pause = cfg.pause;
}

}  // namespace

PolicyRegistry<PowerPolicyEntry>& power_policies() {
  static PolicyRegistry<PowerPolicyEntry>* reg = [] {
    auto* r = new PolicyRegistry<PowerPolicyEntry>("power scheme");
    r->add({std::string(to_string(Scheme::k80211)), Scheme::k80211,
            /*uses_psm=*/false, core::OverhearingMap::psm_none(),
            [](const PowerPolicyContext&) -> std::unique_ptr<mac::PowerPolicy> {
              return std::make_unique<power::AlwaysOnPolicy>();
            }});
    r->add({std::string(to_string(Scheme::kPsmNone)), Scheme::kPsmNone, true,
            core::OverhearingMap::psm_none(),
            [](const PowerPolicyContext&) -> std::unique_ptr<mac::PowerPolicy> {
              return std::make_unique<power::PsmPolicy>();
            }});
    r->add({std::string(to_string(Scheme::kPsmAll)), Scheme::kPsmAll, true,
            core::OverhearingMap::psm_all(),
            [](const PowerPolicyContext&) -> std::unique_ptr<mac::PowerPolicy> {
              return std::make_unique<power::PsmPolicy>();
            }});
    r->add({std::string(to_string(Scheme::kOdpm)), Scheme::kOdpm, true,
            core::OverhearingMap::psm_none(),
            [](const PowerPolicyContext& ctx)
                -> std::unique_ptr<mac::PowerPolicy> {
              auto odpm = std::make_unique<power::OdpmPolicy>(ctx.cfg.odpm);
              odpm->set_telemetry(ctx.bus, ctx.id);
              return odpm;
            }});
    r->add({std::string(to_string(Scheme::kRcast)), Scheme::kRcast, true,
            core::OverhearingMap::rcast(), make_rcast});
    r->add({std::string(to_string(Scheme::kRcastBcast)), Scheme::kRcastBcast,
            true, core::OverhearingMap::rcast_with_broadcast(), make_rcast});
    r->add({std::string(to_string(Scheme::kLeach)), Scheme::kLeach, true,
            core::OverhearingMap::psm_none(),
            [](const PowerPolicyContext& ctx)
                -> std::unique_ptr<mac::PowerPolicy> {
              auto p = std::make_unique<power::ClusterPowerPolicy>(
                  ctx.cfg.cluster, ctx.sim, ctx.id, ctx.rng.fork(0xC1),
                  ctx.meter);
              p->set_broadcast([&mac = ctx.mac](mac::NetDatagramPtr pkt) {
                mac.send(mac::kBroadcastId, std::move(pkt),
                         mac::OverhearingMode::kNone);
              });
              return p;
            }});
    return r;
  }();
  return *reg;
}

PolicyRegistry<RoutingEntry>& routing_protocols() {
  static PolicyRegistry<RoutingEntry>* reg = [] {
    auto* r = new PolicyRegistry<RoutingEntry>("routing protocol");
    r->add({std::string(to_string(RoutingProtocol::kDsr)),
            RoutingProtocol::kDsr,
            [](const RoutingContext& ctx)
                -> std::unique_ptr<routing::RoutingAgent> {
              routing::DsrConfig dsr_cfg = ctx.cfg.dsr;
              if (!ctx.cfg.override_oh_map) {
                dsr_cfg.oh_map =
                    power_policies().resolve(to_string(ctx.cfg.scheme)).oh_map;
              }
              return std::make_unique<routing::Dsr>(ctx.sim, ctx.mac, dsr_cfg,
                                                    ctx.rng.fork(0xD5),
                                                    ctx.policy);
            }});
    r->add({std::string(to_string(RoutingProtocol::kAodv)),
            RoutingProtocol::kAodv,
            [](const RoutingContext& ctx)
                -> std::unique_ptr<routing::RoutingAgent> {
              return std::make_unique<routing::Aodv>(ctx.sim, ctx.mac,
                                                     ctx.cfg.aodv,
                                                     ctx.rng.fork(0xA0),
                                                     ctx.policy);
            }});
    return r;
  }();
  return *reg;
}

PolicyRegistry<MobilityEntry>& mobility_models() {
  static PolicyRegistry<MobilityEntry>* reg = [] {
    auto* r = new PolicyRegistry<MobilityEntry>("mobility model");
    r->add({"rwp",
            [](MobilityContext&& ctx)
                -> std::unique_ptr<mobility::MobilityModel> {
              mobility::RandomWaypointConfig m;
              reference_kinematics(ctx.cfg, m.world, m.min_speed_mps,
                                   m.max_speed_mps, m.pause);
              return std::make_unique<mobility::RandomWaypointModel>(
                  m, std::move(ctx.rng));
            }});
    r->add({"rpgm",
            [](MobilityContext&& ctx)
                -> std::unique_ptr<mobility::MobilityModel> {
              mobility::RpgmConfig m;
              reference_kinematics(ctx.cfg, m.world, m.min_speed_mps,
                                   m.max_speed_mps, m.pause);
              m.span_m = ctx.cfg.rpgm_span_m;
              m.span_rate_mps = ctx.cfg.rpgm_span_rate_mps;
              // All members of one group share a reference stream derived
              // statelessly from (seed, group) — no draw order to disturb.
              const std::size_t gsize =
                  std::max<std::size_t>(1, ctx.cfg.rpgm_group_size);
              const std::uint64_t group = ctx.id / gsize;
              Rng ref_rng(mix64(ctx.cfg.seed ^ 0x5259474DULL /* "RPGM" */) ^
                          mix64(group));
              return std::make_unique<mobility::RpgmModel>(
                  m, ref_rng, std::move(ctx.rng));
            }});
    return r;
  }();
  return *reg;
}

PolicyRegistry<TrafficEntry>& traffic_patterns() {
  static PolicyRegistry<TrafficEntry>* reg = [] {
    auto* r = new PolicyRegistry<TrafficEntry>("traffic pattern");
    r->add({"cbr",
            [](const TrafficContext& ctx)
                -> std::vector<std::unique_ptr<traffic::TrafficSource>> {
              std::vector<std::unique_ptr<traffic::TrafficSource>> out;
              auto flows = traffic::make_flow_matrix(
                  ctx.cfg.num_nodes, ctx.cfg.num_flows, ctx.cfg.rate_pps,
                  ctx.cfg.payload_bits, ctx.rng);
              out.reserve(flows.size());
              for (const auto& f : flows) {
                ctx.bind_shard(f.src);
                out.push_back(std::make_unique<traffic::CbrSource>(
                    ctx.sim, ctx.agent(f.src), f, ctx.rng.fork(f.flow_id)));
              }
              return out;
            }});
    r->add({"sensing",
            [](const TrafficContext& ctx)
                -> std::vector<std::unique_ptr<traffic::TrafficSource>> {
              std::vector<std::unique_ptr<traffic::TrafficSource>> out;
              auto flows = traffic::make_sensing_flows(
                  ctx.cfg.num_nodes, ctx.cfg.num_flows, ctx.cfg.rate_pps,
                  ctx.cfg.payload_bits, ctx.rng);
              out.reserve(flows.size());
              for (const auto& f : flows) {
                ctx.bind_shard(f.src);
                out.push_back(std::make_unique<traffic::PeriodicBurstSource>(
                    ctx.sim, ctx.agent(f.src), f, ctx.cfg.sensing,
                    ctx.rng.fork(f.flow_id)));
              }
              return out;
            }});
    return r;
  }();
  return *reg;
}

}  // namespace rcast::scenario
