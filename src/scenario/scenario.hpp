// End-to-end scenario assembly: builds the full stack (mobility → channel →
// phy → mac → power policy → DSR → CBR traffic → metrics) for every node,
// runs the simulation, and summarizes the metrics the paper's figures use.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rcast.hpp"
#include "energy/fleet_accountant.hpp"
#include "geo/vec2.hpp"
#include "mac/mac.hpp"
#include "mobility/mobility_manager.hpp"
#include "phy/channel.hpp"
#include "power/cluster.hpp"
#include "power/odpm.hpp"
#include "routing/aodv.hpp"
#include "routing/dsr.hpp"
#include "scenario/scheme.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "stats/telemetry.hpp"
#include "traffic/cbr.hpp"
#include "traffic/sensing.hpp"
#include "traffic/traffic_source.hpp"

namespace rcast::scenario {

struct ScenarioConfig {
  // Topology (paper §4.1 defaults).
  std::size_t num_nodes = 100;
  geo::Rect world{1500.0, 300.0};
  double tx_range_m = 250.0;
  double cs_range_m = 550.0;
  std::int64_t bitrate_bps = 2'000'000;

  // Mobility: random waypoint, v_max 20 m/s. pause >= duration => static.
  double max_speed_mps = 20.0;
  sim::Time pause = 600 * sim::kSecond;

  // Traffic: 20 CBR flows, 64-byte payloads.
  std::size_t num_flows = 20;
  double rate_pps = 1.0;
  std::int64_t payload_bits = 64 * 8;

  sim::Time duration = 1125 * sim::kSecond;
  std::uint64_t seed = 1;

  Scheme scheme = Scheme::kRcast;

  /// Network-layer protocol. DSR is the paper's substrate; AODV is the
  /// contrast protocol (hellos, no overhearing) discussed in §1.
  RoutingProtocol routing = RoutingProtocol::kDsr;

  // Subsystem knobs (oh_map is overridden per scheme unless
  // override_oh_map is set).
  mac::MacConfig mac;
  routing::DsrConfig dsr;
  routing::AodvConfig aodv;
  bool override_oh_map = false;
  core::RcastConfig rcast;
  power::OdpmConfig odpm;
  energy::PowerTable power = energy::PowerTable::wavelan2();
  double battery_joules = 0.0;  // 0 = infinite (paper)

  /// Mobility model registry name ("rwp" | "rpgm"); see policy_registry.hpp.
  std::string mobility_model = "rwp";
  /// Traffic pattern registry name ("cbr" | "sensing").
  std::string traffic_pattern = "cbr";
  /// LEACH-style cluster scheme knobs (power.scheme = LEACH).
  power::ClusterConfig cluster;
  /// Sensing traffic knobs (traffic.pattern = sensing).
  traffic::SensingConfig sensing;
  /// RPGM group mobility: nodes i with the same i / group_size share a
  /// reference trajectory; members scatter within span_m of it and drift at
  /// most span_rate_mps relative to it.
  std::size_t rpgm_group_size = 4;
  double rpgm_span_m = 100.0;
  double rpgm_span_rate_mps = 2.0;
  /// Cadence of the finite-battery lifetime monitor (first death, network
  /// partition). Armed only when battery_joules > 0 (single-queue runs).
  sim::Time lifetime_check_interval = 1 * sim::kSecond;

  /// Use the true topology neighbor count for P_R = 1/N (paper semantics);
  /// false switches to the passive neighbor table (ablation).
  bool rcast_oracle_neighbors = true;

  /// Per-node beacon clock offset drawn uniformly from [0, sync_jitter].
  /// 0 models the paper's perfect-synchronization assumption;
  /// bench_ablation_sync sweeps it.
  sim::Time sync_jitter = 0;

  /// Wall-clock budget for one run; 0 = unlimited. When exceeded the run
  /// throws sim::WallDeadlineExceeded — campaign jobs record this as a
  /// per-job timeout instead of stalling the whole sweep.
  double max_wall_seconds = 0.0;

  /// Spatial shards for one run (DESIGN.md §15): 1 = the exact single-queue
  /// loop (bit-identical to every prior release), K > 1 = K worker threads
  /// advancing K vertical strips of the world under conservative windows,
  /// 0 = one shard per hardware thread. Fixed K is deterministic run-for-run
  /// but K > 1 is not event-for-event identical to K = 1 (cross-shard
  /// arrivals defer to window barriers).
  std::uint64_t sim_shards = 1;

  /// Conservative window width for sharded runs, in ns; 0 derives it from
  /// cs_range_m (propagation delay across the carrier-sense disc, the
  /// tightest physically-motivated lookahead). Larger values mean fewer
  /// barriers but coarser cross-shard timing.
  std::uint64_t sim_horizon_ns = 0;

  /// Campaign journal durability: fsync the journal every N committed jobs
  /// (1 = every commit, the strictest setting). Larger values batch fsyncs;
  /// a crash can then lose up to N-1 journal lines, which only re-runs those
  /// jobs on resume (result records are still fsynced before each journal
  /// line, and duplicates are absorbed by last-wins dedupe). Cannot affect
  /// simulated results, so it is excluded from config_digest.
  std::uint64_t journal_sync_every = 1;
};

/// Flat result record; everything the benches print.
struct RunResult {
  Scheme scheme = Scheme::kRcast;
  double duration_s = 0.0;

  // Energy (Figs. 5–7).
  double total_energy_j = 0.0;
  double energy_variance = 0.0;
  double energy_mean_j = 0.0;
  double energy_min_j = 0.0;
  double energy_max_j = 0.0;
  std::vector<double> per_node_energy_j;  // node-id order

  // Delivery (Figs. 7–8).
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  double pdr_percent = 0.0;
  double avg_delay_s = 0.0;
  double delay_p50_s = 0.0;
  double delay_p90_s = 0.0;
  double avg_route_wait_s = 0.0;  // source-side wait for a usable route
  double avg_transit_s = 0.0;     // in-flight time after first transmission
  double energy_per_bit_j = 0.0;  // total energy / delivered payload bits
  std::uint64_t control_tx = 0;
  double normalized_overhead = 0.0;

  // Role numbers (Fig. 9).
  std::vector<std::uint64_t> role_numbers;

  // MAC aggregates (diagnostics / Table 1).
  std::uint64_t atim_tx = 0;
  std::uint64_t data_tx_attempts = 0;
  std::uint64_t overhear_commits = 0;
  std::uint64_t overhear_declines = 0;
  std::uint64_t mac_sleeps = 0;
  std::uint64_t rreq_tx = 0;
  std::uint64_t rrep_tx = 0;
  std::uint64_t rerr_tx = 0;
  std::uint64_t hello_tx = 0;  // AODV only

  // Drop breakdown (indexed by routing::DropReason).
  std::array<std::uint64_t, static_cast<int>(routing::DropReason::kCount)>
      drops{};
  std::uint64_t data_tx_failed = 0;   // MAC-level link failures
  std::uint64_t data_salvaged = 0;

  // Lifetime (finite-battery runs).
  std::size_t dead_nodes = 0;
  double first_death_s = 0.0;      // 0 = none died
  double partition_time_s = 0.0;   // 0 = alive nodes never partitioned

  std::uint64_t events_executed = 0;

  /// Hot-path counters for the run (event throughput, pool behavior,
  /// wall-clock). See DESIGN.md "Performance" and bench/BENCH_hotpath.json.
  sim::PerfCounters perf;
};

/// One fully-wired simulated node.
class Node {
 public:
  /// `bus` (may be null) is attached to every emitting layer: phy, mac, and
  /// the power policy when it emits (ODPM).
  Node(sim::Simulator& simulator, phy::Channel& channel,
       mobility::MobilityManager& mobility, const ScenarioConfig& cfg,
       phy::NodeId id, Rng rng, stats::TelemetryBus* bus);

  phy::NodeId id() const { return phy_->id(); }
  energy::EnergyMeter& meter() { return *meter_; }
  mac::Mac& mac() { return *mac_; }
  mac::PowerPolicy& policy() { return *policy_; }

  /// The node's routing agent (whichever protocol is configured).
  routing::RoutingAgent& agent();
  /// Protocol-specific accessors; contract-checked against the config.
  routing::Dsr& dsr();
  routing::Aodv& aodv();

 private:
  std::unique_ptr<energy::EnergyMeter> meter_;
  std::unique_ptr<phy::Phy> phy_;
  std::unique_ptr<mac::Mac> mac_;
  std::unique_ptr<mac::PowerPolicy> policy_;
  std::unique_ptr<routing::RoutingAgent> agent_;  // registry-built protocol
};

/// A complete simulated network. Build, run(), then read the result.
class Network {
 public:
  explicit Network(const ScenarioConfig& cfg);

  /// Runs to cfg.duration and returns the summary.
  RunResult run();

  sim::Simulator& simulator() { return sim_; }
  Node& node(std::size_t i) { return *nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }
  stats::MetricsCollector& metrics() { return metrics_; }
  phy::Channel& channel() { return channel_; }

  /// The network's telemetry bus. Subscribe any number of consumers (e.g.
  /// `telemetry().subscribe_routing(&tracer)`); subscribers must outlive the
  /// network or unsubscribe first. The built-in MetricsCollector and
  /// LayerCounters are ordinary subscribers registered at construction.
  /// Sharded runs route node telemetry through per-shard buses instead
  /// (worker threads must not share a collector), so external subscribers
  /// on this bus see events only in single-queue mode.
  stats::TelemetryBus& telemetry() { return bus_; }

  /// Home shard of each node (empty in single-queue mode).
  const std::vector<std::uint32_t>& node_shards() const {
    return node_shard_;
  }

 private:
  /// Per-shard telemetry sinks for sharded runs; merged into the
  /// network-level collectors in shard order at summarize.
  struct ShardStats {
    explicit ShardStats(std::size_t n_nodes) : metrics(n_nodes) {}
    stats::MetricsCollector metrics;
    stats::LayerCounters counters;
    stats::TelemetryBus bus;
  };

  RunResult summarize();
  /// Fields derived from metrics/fleet/simulator — common to both summary
  /// paths.
  RunResult base_summary();
  /// Finite-battery probe: records the first instant the alive nodes no
  /// longer form one connected component at tx_range.
  void lifetime_check();

  ScenarioConfig cfg_;
  sim::Simulator sim_;
  mobility::MobilityManager mobility_;
  phy::Channel channel_;
  stats::MetricsCollector metrics_;
  stats::LayerCounters counters_;
  stats::TelemetryBus bus_;  // must outlive (so precede) nodes_
  std::vector<std::uint32_t> node_shard_;  // sharded runs only
  std::vector<std::unique_ptr<ShardStats>> shard_stats_;  // precede nodes_
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<traffic::TrafficSource>> sources_;
  energy::FleetAccountant fleet_;
  bool shard_stats_merged_ = false;
  // Finite-battery lifetime monitor (single-queue runs only).
  std::unique_ptr<sim::PeriodicTimer> lifetime_timer_;
  double partition_time_s_ = 0.0;
};

/// Convenience: build + run in one call.
RunResult run_scenario(const ScenarioConfig& cfg);

/// The overhearing map a scheme uses (unless overridden).
core::OverhearingMap oh_map_for(Scheme s);

/// True if the scheme runs with PSM beacons/ATIM windows.
bool scheme_uses_psm(Scheme s);

}  // namespace rcast::scenario
