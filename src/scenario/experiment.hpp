// Experiment runner: multi-seed repetitions (in parallel — each run owns an
// independent Simulator), result averaging, and the table emitters the bench
// binaries share.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace rcast::scenario {

/// Runs `repetitions` independent seeds of `cfg` (seed, seed+1, ...) across
/// up to `threads` worker threads (0 = hardware concurrency).
std::vector<RunResult> run_repetitions(const ScenarioConfig& cfg,
                                       std::size_t repetitions,
                                       std::size_t threads = 0);

/// Scalar means across repetitions (vectors averaged element-wise).
RunResult average(const std::vector<RunResult>& runs);

/// Incremental form of `average`: feed results one at a time, read the mean
/// at the end. Feeding the same results in the same order is bit-identical
/// to `average` (which is implemented on top of this), so streaming
/// consumers (campaign export, the serving aggregate cache) can fold a cell
/// without materializing every RunResult.
///
/// Fields `average` does not define a mean for (delay percentiles, drop
/// breakdown, perf counters, ...) are carried from the *first* result added,
/// matching the historical copy-then-overwrite behavior.
class RunAverager {
 public:
  /// Results of one cell must agree on the per-node vector lengths.
  void add(const RunResult& r);

  std::size_t count() const { return n_; }

  /// Mean over everything added so far; requires count() > 0.
  RunResult mean() const;

 private:
  struct Sums {
    double total_energy_j = 0, energy_variance = 0, energy_mean_j = 0;
    double energy_min_j = 0, energy_max_j = 0, pdr_percent = 0;
    double avg_delay_s = 0, energy_per_bit_j = 0, normalized_overhead = 0;
    double first_death_s = 0, partition_time_s = 0;
    double originated = 0, delivered = 0, control_tx = 0, atim_tx = 0;
    double data_tx_attempts = 0, overhear_commits = 0, overhear_declines = 0;
    double mac_sleeps = 0, rreq_tx = 0, rrep_tx = 0, rerr_tx = 0;
    double dead_nodes = 0;
  };

  std::size_t n_ = 0;
  RunResult first_;
  Sums sums_;
  std::vector<double> per_node_sum_;
  std::vector<double> role_sum_;
};

/// Scales the paper's full scenario down so a bench binary finishes in
/// seconds. Honors RCAST_FULL=1 (paper scale: 1125 s, 100 nodes, 10 seeds).
struct BenchScale {
  sim::Time duration;
  std::size_t num_nodes;
  std::size_t num_flows;
  std::size_t repetitions;
  bool full;

  /// Reads RCAST_FULL / RCAST_DURATION_S / RCAST_REPS from the environment.
  static BenchScale from_env();

  void apply(ScenarioConfig& cfg) const {
    cfg.duration = duration;
    cfg.num_nodes = num_nodes;
    cfg.num_flows = num_flows;
  }
};

/// Pause time meaning "static scenario" for a given duration.
inline sim::Time static_pause(sim::Time duration) { return duration; }

/// Fixed-width cell helpers for paper-style tables.
std::string fmt(double v, int width = 10, int precision = 2);
std::string fmt(std::uint64_t v, int width = 10);
std::string fmt(const std::string& s, int width = 10);

}  // namespace rcast::scenario
