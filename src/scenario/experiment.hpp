// Experiment runner: multi-seed repetitions (in parallel — each run owns an
// independent Simulator), result averaging, and the table emitters the bench
// binaries share.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace rcast::scenario {

/// Runs `repetitions` independent seeds of `cfg` (seed, seed+1, ...) across
/// up to `threads` worker threads (0 = hardware concurrency).
std::vector<RunResult> run_repetitions(const ScenarioConfig& cfg,
                                       std::size_t repetitions,
                                       std::size_t threads = 0);

/// Scalar means across repetitions (vectors averaged element-wise).
RunResult average(const std::vector<RunResult>& runs);

/// Scales the paper's full scenario down so a bench binary finishes in
/// seconds. Honors RCAST_FULL=1 (paper scale: 1125 s, 100 nodes, 10 seeds).
struct BenchScale {
  sim::Time duration;
  std::size_t num_nodes;
  std::size_t num_flows;
  std::size_t repetitions;
  bool full;

  /// Reads RCAST_FULL / RCAST_DURATION_S / RCAST_REPS from the environment.
  static BenchScale from_env();

  void apply(ScenarioConfig& cfg) const {
    cfg.duration = duration;
    cfg.num_nodes = num_nodes;
    cfg.num_flows = num_flows;
  }
};

/// Pause time meaning "static scenario" for a given duration.
inline sim::Time static_pause(sim::Time duration) { return duration; }

/// Fixed-width cell helpers for paper-style tables.
std::string fmt(double v, int width = 10, int precision = 2);
std::string fmt(std::uint64_t v, int width = 10);
std::string fmt(const std::string& s, int width = 10);

}  // namespace rcast::scenario
