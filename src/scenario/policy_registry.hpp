// String-keyed factory registries for the four policy layers: power scheme,
// routing protocol, mobility model, traffic pattern. The scenario builder
// resolves registry entries from ScenarioConfig's string/enum axes instead
// of switching over enums, so a new policy is one registry entry — no
// scenario.cpp edits (DESIGN.md §16).
//
// Registries are function-local statics populated with the built-ins on
// first access (thread-safe magic statics; read-only afterwards, so
// concurrent Network builds on worker threads need no locking). Entry order
// is stable and defines the serving-layer ordinal of each name.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace rcast::scenario {

/// Unknown-name resolution failure; the message lists every registered name.
class RegistryError : public std::runtime_error {
 public:
  explicit RegistryError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Everything a power-policy factory may wire up. `rng` is the node's root
/// stream — fork it with a policy-unique salt so schemes that draw (Rcast,
/// LEACH) do not perturb each other's streams.
struct PowerPolicyContext {
  sim::Simulator& sim;
  phy::Channel& channel;
  mac::Mac& mac;
  const ScenarioConfig& cfg;
  phy::NodeId id;
  Rng& rng;
  energy::EnergyMeter* meter;
  stats::TelemetryBus* bus;
};

struct RoutingContext {
  sim::Simulator& sim;
  mac::Mac& mac;
  const ScenarioConfig& cfg;
  Rng& rng;  // fork with a protocol-unique salt
  mac::PowerPolicy* policy;
};

/// `rng` is the node's mobility stream, already forked per node.
struct MobilityContext {
  const ScenarioConfig& cfg;
  std::size_t id;
  Rng rng;
};

/// A traffic factory builds every source of the run (the flow-matrix shape
/// is pattern-specific). `agent` resolves a node's routing agent;
/// `bind_shard` must be called with the source node before constructing each
/// source so its events land on the node's home shard.
struct TrafficContext {
  sim::Simulator& sim;
  const ScenarioConfig& cfg;
  Rng& rng;
  std::function<routing::RoutingAgent&(phy::NodeId)> agent;
  std::function<void(phy::NodeId)> bind_shard;
};

struct PowerPolicyEntry {
  std::string name;  // canonical, matches the power.scheme enum token
  Scheme scheme;     // thin enum alias (goldens, serving ordinals)
  bool uses_psm;     // MacConfig::psm_enabled for this scheme
  core::OverhearingMap oh_map;  // DSR's per-class levels unless overridden
  std::function<std::unique_ptr<mac::PowerPolicy>(const PowerPolicyContext&)>
      make;
};

struct RoutingEntry {
  std::string name;
  RoutingProtocol protocol;
  std::function<std::unique_ptr<routing::RoutingAgent>(const RoutingContext&)>
      make;
};

struct MobilityEntry {
  std::string name;
  std::function<std::unique_ptr<mobility::MobilityModel>(MobilityContext&&)>
      make;
};

struct TrafficEntry {
  std::string name;
  std::function<std::vector<std::unique_ptr<traffic::TrafficSource>>(
      const TrafficContext&)>
      make;
};

template <typename Entry>
class PolicyRegistry {
 public:
  /// `kind` names the layer in error messages ("power scheme", ...).
  explicit PolicyRegistry(std::string kind) : kind_(std::move(kind)) {}

  PolicyRegistry(const PolicyRegistry&) = delete;
  PolicyRegistry& operator=(const PolicyRegistry&) = delete;

  /// Registers an entry. Duplicate names (case-insensitive) are a startup
  /// contract violation: two factories claiming one name cannot both win.
  const Entry& add(Entry entry) {
    RCAST_REQUIRE_MSG(!entry.name.empty(), "registry entry needs a name");
    RCAST_REQUIRE_MSG(find(entry.name) == nullptr,
                      "duplicate " + kind_ + " registration: " + entry.name);
    entries_.push_back(std::move(entry));  // deque: stable addresses
    return entries_.back();
  }

  /// Case-insensitive lookup; nullptr if absent.
  const Entry* find(std::string_view name) const {
    for (const Entry& e : entries_) {
      if (detail::iequals(name, e.name)) return &e;
    }
    return nullptr;
  }

  /// Lookup that throws RegistryError listing the registered names.
  const Entry& resolve(std::string_view name) const {
    if (const Entry* e = find(name)) return *e;
    std::string msg = "unknown " + kind_ + " '" + std::string(name) +
                      "'; registered: ";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += entries_[i].name;
    }
    throw RegistryError(msg);
  }

  /// Registration-order position of `name` — the stable ordinal the serving
  /// index stores for string axes. Throws like resolve.
  std::size_t index_of(std::string_view name) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (detail::iequals(name, entries_[i].name)) return i;
    }
    resolve(name);  // throws with the full name list
    return 0;       // unreachable
  }

  std::size_t size() const { return entries_.size(); }
  const Entry& at(std::size_t i) const { return entries_.at(i); }

  std::vector<std::string_view> names() const {
    std::vector<std::string_view> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.name);
    return out;
  }

 private:
  std::string kind_;
  std::deque<Entry> entries_;
};

/// The four registries, built-ins registered on first access. Registration
/// order matches the Scheme / RoutingProtocol enum values so enum casts and
/// index_of agree for the built-ins.
PolicyRegistry<PowerPolicyEntry>& power_policies();
PolicyRegistry<RoutingEntry>& routing_protocols();
PolicyRegistry<MobilityEntry>& mobility_models();
PolicyRegistry<TrafficEntry>& traffic_patterns();

}  // namespace rcast::scenario
