// The communication schemes compared in the paper (plus the two PSM
// overhearing extremes used as ablation baselines), and the canonical
// name <-> enum mapping shared by the CLI, the bench binaries, and
// campaign manifests.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace rcast::scenario {

enum class Scheme {
  k80211 = 0,     // plain IEEE 802.11, no PSM — always awake
  kPsmNone = 1,   // IEEE 802.11 PSM, no overhearing (the "naive solution")
  kPsmAll = 2,    // IEEE 802.11 PSM, unconditional overhearing
  kOdpm = 3,      // On-Demand Power Management (Zheng & Kravets)
  kRcast = 4,     // RandomCast (the paper's contribution)
  kRcastBcast = 5,  // Rcast + randomized broadcast receiving (paper §5)
  kLeach = 6,     // LEACH-style clustered duty-cycling (registry extension)
};

constexpr std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::k80211:
      return "80211";
    case Scheme::kPsmNone:
      return "PSM-NONE";
    case Scheme::kPsmAll:
      return "PSM-ALL";
    case Scheme::kOdpm:
      return "ODPM";
    case Scheme::kRcast:
      return "RCAST";
    case Scheme::kRcastBcast:
      return "RCAST-BC";
    case Scheme::kLeach:
      return "LEACH";
  }
  return "?";
}

enum class RoutingProtocol {
  kDsr = 0,   // Dynamic Source Routing (the paper's substrate)
  kAodv = 1,  // Ad-hoc On-demand Distance Vector (contrast, paper §1)
};

constexpr std::string_view to_string(RoutingProtocol p) {
  switch (p) {
    case RoutingProtocol::kDsr:
      return "DSR";
    case RoutingProtocol::kAodv:
      return "AODV";
  }
  return "?";
}

/// Every scheme compared in the paper's figures, in figure order. LEACH is
/// deliberately absent: `--scheme=all` and the figure loops iterate the
/// paper's six-way comparison, and the clustered scheme joins sweeps by
/// explicit name (`power.scheme=[rcast,leach]`).
inline constexpr std::array<Scheme, 6> kAllSchemes = {
    Scheme::k80211,  Scheme::kPsmNone, Scheme::kPsmAll,
    Scheme::kOdpm,   Scheme::kRcast,   Scheme::kRcastBcast,
};

/// Canonical display name (same string to_string returns).
constexpr std::string_view scheme_name(Scheme s) { return to_string(s); }

namespace detail {

constexpr bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = (a[i] >= 'A' && a[i] <= 'Z') ? a[i] + ('a' - 'A') : a[i];
    const char cb = (b[i] >= 'A' && b[i] <= 'Z') ? b[i] + ('a' - 'A') : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace detail

/// Parses a scheme name, case-insensitively. Accepts the canonical names
/// ("80211", "PSM-NONE", ..., "RCAST-BC") plus the historical CLI aliases
/// ("802.11", "rcast-bcast").
constexpr std::optional<Scheme> scheme_from_string(std::string_view s) {
  for (Scheme scheme : kAllSchemes) {
    if (detail::iequals(s, to_string(scheme))) return scheme;
  }
  if (detail::iequals(s, "802.11")) return Scheme::k80211;
  if (detail::iequals(s, "rcast-bcast")) return Scheme::kRcastBcast;
  if (detail::iequals(s, to_string(Scheme::kLeach))) return Scheme::kLeach;
  return std::nullopt;
}

/// Parses a routing protocol name, case-insensitively ("dsr" | "aodv").
constexpr std::optional<RoutingProtocol> routing_from_string(
    std::string_view s) {
  if (detail::iequals(s, to_string(RoutingProtocol::kDsr))) {
    return RoutingProtocol::kDsr;
  }
  if (detail::iequals(s, to_string(RoutingProtocol::kAodv))) {
    return RoutingProtocol::kAodv;
  }
  return std::nullopt;
}

}  // namespace rcast::scenario
