// The communication schemes compared in the paper (plus the two PSM
// overhearing extremes used as ablation baselines).
#pragma once

#include <string_view>

namespace rcast::scenario {

enum class Scheme {
  k80211 = 0,     // plain IEEE 802.11, no PSM — always awake
  kPsmNone = 1,   // IEEE 802.11 PSM, no overhearing (the "naive solution")
  kPsmAll = 2,    // IEEE 802.11 PSM, unconditional overhearing
  kOdpm = 3,      // On-Demand Power Management (Zheng & Kravets)
  kRcast = 4,     // RandomCast (the paper's contribution)
  kRcastBcast = 5,  // Rcast + randomized broadcast receiving (paper §5)
};

constexpr std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::k80211:
      return "80211";
    case Scheme::kPsmNone:
      return "PSM-NONE";
    case Scheme::kPsmAll:
      return "PSM-ALL";
    case Scheme::kOdpm:
      return "ODPM";
    case Scheme::kRcast:
      return "RCAST";
    case Scheme::kRcastBcast:
      return "RCAST-BC";
  }
  return "?";
}

enum class RoutingProtocol {
  kDsr = 0,   // Dynamic Source Routing (the paper's substrate)
  kAodv = 1,  // Ad-hoc On-demand Distance Vector (contrast, paper §1)
};

constexpr std::string_view to_string(RoutingProtocol p) {
  switch (p) {
    case RoutingProtocol::kDsr:
      return "DSR";
    case RoutingProtocol::kAodv:
      return "AODV";
  }
  return "?";
}

}  // namespace rcast::scenario
