#include "scenario/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "scenario/policy_registry.hpp"
#include "sim/sharded_executor.hpp"
#include "util/alloc_tracker.hpp"
#include "util/assert.hpp"

namespace rcast::scenario {

namespace {

std::size_t effective_shards(const ScenarioConfig& cfg) {
  std::uint64_t k = cfg.sim_shards;
  if (k == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    k = hw > 0 ? hw : 1;
  }
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(k, sim::ShardedExecutor::kMaxShards));
}

sim::Time effective_horizon(const ScenarioConfig& cfg) {
  if (cfg.sim_horizon_ns != 0) {
    return static_cast<sim::Time>(cfg.sim_horizon_ns);
  }
  // Propagation delay across the carrier-sense disc (distance / c in ns):
  // within one such window a transmission cannot have reached a radio
  // farther than cs_range, so deferring cross-shard arrivals to the window
  // end stays within the physical propagation spread.
  return std::max<sim::Time>(1,
      static_cast<sim::Time>(cfg.cs_range_m / 0.299792458));
}

}  // namespace

core::OverhearingMap oh_map_for(Scheme s) {
  return power_policies().resolve(to_string(s)).oh_map;
}

bool scheme_uses_psm(Scheme s) {
  return power_policies().resolve(to_string(s)).uses_psm;
}

// --------------------------------------------------------------------------
// Node
// --------------------------------------------------------------------------

Node::Node(sim::Simulator& simulator, phy::Channel& channel,
           mobility::MobilityManager& mobility, const ScenarioConfig& cfg,
           phy::NodeId id, Rng rng, stats::TelemetryBus* bus) {
  (void)mobility;
  meter_ = std::make_unique<energy::EnergyMeter>(cfg.power, simulator.now(),
                                                 cfg.battery_joules);
  phy_ = std::make_unique<phy::Phy>(simulator, channel, id, meter_.get());
  phy_->set_telemetry(bus);

  const PowerPolicyEntry& pe =
      power_policies().resolve(to_string(cfg.scheme));
  mac::MacConfig mac_cfg = cfg.mac;
  mac_cfg.psm_enabled = pe.uses_psm;
  Rng mac_rng = rng.fork(0xAC);
  if (cfg.sync_jitter > 0) {
    mac_cfg.beacon_offset = static_cast<sim::Time>(
        mac_rng.uniform(0.0, static_cast<double>(cfg.sync_jitter)));
  }
  mac_ = std::make_unique<mac::Mac>(simulator, *phy_, mac_cfg, mac_rng);
  mac_->set_telemetry(bus);

  policy_ = pe.make(PowerPolicyContext{simulator, channel, *mac_, cfg, id,
                                       rng, meter_.get(), bus});
  mac_->set_power_policy(policy_.get());

  const RoutingEntry& re =
      routing_protocols().resolve(to_string(cfg.routing));
  agent_ = re.make(RoutingContext{simulator, *mac_, cfg, rng, policy_.get()});
  mac_->start();
}

routing::RoutingAgent& Node::agent() { return *agent_; }

routing::Dsr& Node::dsr() {
  auto* d = dynamic_cast<routing::Dsr*>(agent_.get());
  RCAST_REQUIRE_MSG(d != nullptr, "node runs AODV, not DSR");
  return *d;
}

routing::Aodv& Node::aodv() {
  auto* a = dynamic_cast<routing::Aodv*>(agent_.get());
  RCAST_REQUIRE_MSG(a != nullptr, "node runs DSR, not AODV");
  return *a;
}

// --------------------------------------------------------------------------
// Network
// --------------------------------------------------------------------------

Network::Network(const ScenarioConfig& cfg)
    : cfg_(cfg),
      sim_(effective_shards(cfg), effective_horizon(cfg)),
      mobility_(sim_, cfg.world, std::max(cfg.cs_range_m, 1.0)),
      channel_(sim_, mobility_,
               phy::ChannelConfig{cfg.tx_range_m, cfg.cs_range_m,
                                  cfg.bitrate_bps}),
      metrics_(cfg.num_nodes) {
  RCAST_REQUIRE(cfg.num_nodes >= 2);
  // Built-in consumers subscribe first; later subscribers (tracers, custom
  // analyzers) dispatch after them in subscription order.
  bus_.subscribe_routing(&metrics_);
  bus_.subscribe_routing(&counters_);
  bus_.subscribe_mac(&counters_);
  Rng root(cfg.seed);

  // Mobility models, via the registry. The fork order (one child stream per
  // node index) is part of the determinism contract.
  const MobilityEntry& me = mobility_models().resolve(cfg.mobility_model);
  Rng mob_rng = root.fork(0x30B);
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    mobility_.add_node(static_cast<phy::NodeId>(i),
                       me.make(MobilityContext{cfg, i, mob_rng.fork(i)}));
  }

  // Sharded runs: home-pin every node to one of K vertical strips of the
  // world from its initial position (no dynamic handoff — pending events
  // capture module pointers, so ownership must be stable for the run), give
  // each shard its own telemetry sinks, and disable the cross-thread-unsafe
  // pooled allocator.
  if (sim_.sharded()) {
    sim_.pools().set_thread_shared(true);
    const std::size_t shards = sim_.shard_count();
    const double strip =
        cfg.world.width / static_cast<double>(shards);
    node_shard_.resize(cfg.num_nodes);
    for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
      const geo::Vec2 p = mobility_.position(static_cast<phy::NodeId>(i));
      const auto s = static_cast<std::uint32_t>(
          std::min<double>(std::floor(p.x / strip),
                           static_cast<double>(shards - 1)));
      node_shard_[i] = s;
    }
    channel_.set_shard_map(node_shard_);
    for (std::size_t k = 0; k < shards; ++k) {
      shard_stats_.push_back(std::make_unique<ShardStats>(cfg.num_nodes));
      shard_stats_.back()->bus.subscribe_routing(
          &shard_stats_.back()->metrics);
      shard_stats_.back()->bus.subscribe_routing(
          &shard_stats_.back()->counters);
      shard_stats_.back()->bus.subscribe_mac(&shard_stats_.back()->counters);
    }
  }

  // Nodes. In sharded mode each node's construction runs under its home
  // shard's context so build-time events (MAC start, beacon schedule) land
  // in the home shard's queue, and its telemetry binds to the home shard's
  // bus.
  Rng node_rng = root.fork(0x40DE);
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    stats::TelemetryBus* bus = &bus_;
    if (sim_.sharded()) {
      sim_.set_shard_context(node_shard_[i]);
      bus = &shard_stats_[node_shard_[i]]->bus;
    }
    nodes_.push_back(std::make_unique<Node>(sim_, channel_, mobility_, cfg,
                                            static_cast<phy::NodeId>(i),
                                            node_rng.fork(i), bus));
    nodes_.back()->agent().set_observer(bus);
    fleet_.add(&nodes_.back()->meter());
  }

  // Traffic, via the registry. The pattern builds every source; bind_shard
  // routes each source's events to its node's home shard.
  Rng traffic_rng = root.fork(0x7AF1C);
  const TrafficEntry& te = traffic_patterns().resolve(cfg.traffic_pattern);
  sources_ = te.make(TrafficContext{
      sim_, cfg, traffic_rng,
      [this](phy::NodeId id) -> routing::RoutingAgent& {
        return nodes_[id]->agent();
      },
      [this](phy::NodeId id) {
        if (sim_.sharded()) sim_.set_shard_context(node_shard_[id]);
      }});
  if (sim_.sharded()) sim_.clear_shard_context();

  // Finite-battery lifetime probe. Single-queue runs only: the periodic
  // event has no home shard, and lifetime studies are not sharded-scale.
  if (cfg.battery_joules > 0.0 && cfg.lifetime_check_interval > 0 &&
      !sim_.sharded()) {
    lifetime_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, [this] { lifetime_check(); });
    lifetime_timer_->start(cfg.lifetime_check_interval,
                           cfg.lifetime_check_interval);
  }
}

void Network::lifetime_check() {
  if (partition_time_s_ > 0.0) {
    lifetime_timer_->stop();  // first partition instant already recorded
    return;
  }
  std::vector<std::size_t> alive;
  alive.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->meter().depleted()) alive.push_back(i);
  }
  if (alive.size() < 2) return;  // nothing left to partition
  std::vector<geo::Vec2> pos(alive.size());
  for (std::size_t k = 0; k < alive.size(); ++k) {
    pos[k] = mobility_.position(static_cast<phy::NodeId>(alive[k]));
  }
  // Connectivity of the alive nodes at tx_range (BFS over the disc graph).
  const double r2 = cfg_.tx_range_m * cfg_.tx_range_m;
  std::vector<char> seen(alive.size(), 0);
  std::vector<std::size_t> stack{0};
  seen[0] = 1;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v = 0; v < alive.size(); ++v) {
      if (seen[v] || geo::distance_sq(pos[u], pos[v]) > r2) continue;
      seen[v] = 1;
      ++reached;
      stack.push_back(v);
    }
  }
  if (reached < alive.size()) {
    partition_time_s_ = sim::to_seconds(sim_.now());
  }
}

RunResult Network::run() {
  // Measure the event loop only (not build or summarize). The allocation
  // counter is thread-local, so concurrent runs on worker threads (see
  // run_repetitions) each see their own bytes.
  util::AllocTracker::reset();
  util::AllocTracker::enable();
  const auto wall_start = std::chrono::steady_clock::now();
  if (cfg_.max_wall_seconds > 0.0) {
    sim_.set_wall_deadline(wall_start +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   cfg_.max_wall_seconds)));
  }
  sim_.run_until(cfg_.duration);
  const auto wall_end = std::chrono::steady_clock::now();
  util::AllocTracker::disable();

  RunResult r = summarize();
  r.perf = sim_.perf_counters();
  r.perf.bytes_allocated = util::AllocTracker::bytes();
  if (sim_.sharded()) {
    // The main thread only sees barrier-side allocation in sharded runs;
    // the executor tracks each worker's thread-local total.
    r.perf.bytes_allocated += sim_.executor()->worker_alloc_bytes();
  }
  const mobility::MobilityManager::GeoPerf& geo = mobility_.perf();
  r.perf.spatial_queries = geo.spatial_queries;
  r.perf.spatial_candidates_scanned = geo.spatial_candidates_scanned;
  r.perf.segment_refreshes = geo.segment_refreshes;
  const phy::ChannelStats& ch = channel_.stats();
  r.perf.cs_cells_visited = ch.cs_cells_visited;
  r.perf.arrival_group_size_hist = ch.arrival_group_size_hist;
  // Arrival groups batch what used to be one event per receiver into one
  // event per (frame, delay); fold the fan-out back in so events_executed
  // keeps its historical meaning (and goldens/exports their exact values):
  // each fired group of k records would have been k events before batching.
  const std::uint64_t fanout = ch.arrival_member_fires - ch.arrival_group_fires;
  r.perf.events_executed += fanout;
  r.events_executed += fanout;
  r.perf.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  r.perf.events_per_sec =
      r.perf.wall_seconds > 0.0
          ? static_cast<double>(r.perf.events_executed) / r.perf.wall_seconds
          : 0.0;
  return r;
}

RunResult Network::base_summary() {
  RunResult r;
  r.scheme = cfg_.scheme;
  r.duration_s = sim::to_seconds(cfg_.duration);

  const sim::Time now = sim_.now();
  r.per_node_energy_j = fleet_.per_node_joules(now);
  const RunningStats es = fleet_.stats(now);
  r.total_energy_j = es.sum();
  r.energy_variance = es.variance();
  r.energy_mean_j = es.mean();
  r.energy_min_j = es.min();
  r.energy_max_j = es.max();

  r.originated = metrics_.originated();
  r.delivered = metrics_.delivered();
  r.pdr_percent = metrics_.pdr_percent();
  r.avg_delay_s = metrics_.avg_delay_s();
  r.delay_p50_s = metrics_.delay_quantile(0.5);
  r.delay_p90_s = metrics_.delay_quantile(0.9);
  r.avg_route_wait_s = metrics_.route_wait_stats().mean();
  r.avg_transit_s = metrics_.transit_stats().mean();
  const auto bits = metrics_.delivered_payload_bits();
  r.energy_per_bit_j = bits > 0 ? r.total_energy_j / static_cast<double>(bits)
                                : 0.0;
  r.control_tx = metrics_.control_transmissions();
  r.normalized_overhead = metrics_.normalized_overhead();
  r.role_numbers = metrics_.role_numbers();

  for (int d = 0; d < static_cast<int>(routing::DropReason::kCount); ++d) {
    r.drops[static_cast<std::size_t>(d)] =
        metrics_.drops(static_cast<routing::DropReason>(d));
  }

  r.dead_nodes = fleet_.dead_count();
  if (auto fd = fleet_.first_death()) r.first_death_s = sim::to_seconds(*fd);
  r.partition_time_s = partition_time_s_;
  r.events_executed = sim_.executed_events();
  return r;
}

RunResult Network::summarize() {
  // Sharded runs: fold the per-shard sinks into the network-level
  // collectors, in shard order (fixed merge order keeps the floating-point
  // aggregates bit-reproducible for a fixed shard count).
  if (!shard_stats_merged_) {
    shard_stats_merged_ = true;
    for (const auto& ss : shard_stats_) {
      metrics_.merge(ss->metrics);
      counters_.merge(ss->counters);
    }
  }
  RunResult r = base_summary();
  // Per-layer aggregates come from the telemetry bus: every counter below is
  // a LayerCounters event count, so summarize() no longer reaches into
  // per-node protocol internals.
  r.atim_tx = counters_.atim_tx();
  r.data_tx_attempts = counters_.data_tx_attempts();
  r.overhear_commits = counters_.overhear_commits();
  r.overhear_declines = counters_.overhear_declines();
  r.mac_sleeps = counters_.sleeps();
  r.data_tx_failed = counters_.data_tx_failed();
  r.data_salvaged = counters_.data_salvaged();
  r.rreq_tx = counters_.control_tx(routing::PacketType::kRreq);
  r.rrep_tx = counters_.control_tx(routing::PacketType::kRrep);
  r.rerr_tx = counters_.control_tx(routing::PacketType::kRerr);
  r.hello_tx = counters_.control_tx(routing::PacketType::kHello);
  return r;
}

RunResult run_scenario(const ScenarioConfig& cfg) {
  Network net(cfg);
  return net.run();
}

}  // namespace rcast::scenario
