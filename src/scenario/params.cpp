#include "scenario/params.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "util/assert.hpp"

namespace rcast::scenario {

namespace {

// Size fences for registry_self_check(): pinned x86-64 Linux layouts of
// ScenarioConfig and every subconfig it embeds. Adding a field to any of
// these structs changes its size and fails the completeness check until a
// descriptor is registered and the fence updated (DESIGN.md §11).
constexpr std::size_t kScenarioConfigSize = 752;
constexpr std::size_t kMacConfigSize = 112;
constexpr std::size_t kDsrConfigSize = 80;
constexpr std::size_t kAodvConfigSize = 80;
constexpr std::size_t kOdpmConfigSize = 32;
constexpr std::size_t kRcastConfigSize = 104;
constexpr std::size_t kPowerTableSize = 32;
constexpr std::size_t kRouteCacheConfigSize = 16;
constexpr std::size_t kClusterConfigSize = 16;
constexpr std::size_t kSensingConfigSize = 24;

// Times are stored as sim::Time (integer nanoseconds) but exposed as doubles
// in the unit the parameter name states. llround (not static_cast) so that
// value -> text -> value is exact: the round-trip error of ns/1e6*1e6 is far
// below 0.5 ns for every representable scenario time.
sim::Time s_to_time(double s) {
  return static_cast<sim::Time>(std::llround(s * 1e9));
}
sim::Time ms_to_time(double ms) {
  return static_cast<sim::Time>(std::llround(ms * 1e6));
}
sim::Time us_to_time(double us) {
  return static_cast<sim::Time>(std::llround(us * 1e3));
}
double time_to_s(sim::Time t) { return static_cast<double>(t) / 1e9; }
double time_to_ms(sim::Time t) { return static_cast<double>(t) / 1e6; }
double time_to_us(sim::Time t) { return static_cast<double>(t) / 1e3; }

std::string fmt_double(double v, const char* spec) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

mac::OverhearingMode oh_from_token(std::string_view t) {
  using mac::OverhearingMode;
  for (auto m : {OverhearingMode::kNone, OverhearingMode::kRandomized,
                 OverhearingMode::kUnconditional}) {
    if (t == mac::to_string(m)) return m;
  }
  RCAST_REQUIRE_MSG(false, "non-canonical overhearing token: " + std::string(t));
  return OverhearingMode::kNone;
}

core::PrEstimator estimator_from_token(std::string_view t) {
  using core::PrEstimator;
  for (auto e : {PrEstimator::kNeighborCount, PrEstimator::kSenderRecency,
                 PrEstimator::kMobility, PrEstimator::kBattery,
                 PrEstimator::kCombined}) {
    if (t == core::to_string(e)) return e;
  }
  RCAST_REQUIRE_MSG(false, "non-canonical estimator token: " + std::string(t));
  return PrEstimator::kNeighborCount;
}

std::string_view canon_scheme(std::string_view text) {
  if (auto s = scheme_from_string(text)) return to_string(*s);
  return {};
}

std::string_view canon_routing(std::string_view text) {
  if (auto r = routing_from_string(text)) return to_string(*r);
  return {};
}

// Effectively "no upper bound" for 64-bit parameters: both this literal and
// any representable uint64 compare correctly in the double domain.
constexpr double kU64Max = 18446744073709551615.0;

// Descriptor builders. EXPR is a field expression on `c`; every macro
// produces a full Param with capture-free get/set lambdas.
#define PD(NAME, EXPR, MIN, MAX, DOC)                                       \
  {NAME,                                                                    \
   ParamType::kDouble,                                                      \
   DOC,                                                                     \
   MIN,                                                                     \
   MAX,                                                                     \
   true,                                                                    \
   {},                                                                      \
   [](const ScenarioConfig& c) {                                            \
     return ParamValue::of(static_cast<double>(EXPR));                      \
   },                                                                       \
   [](ScenarioConfig& c, const ParamValue& v) { EXPR = v.d; }}

#define PT(NAME, EXPR, UNIT, MIN, MAX, DOC)                                 \
  {NAME,                                                                    \
   ParamType::kDouble,                                                      \
   DOC,                                                                     \
   MIN,                                                                     \
   MAX,                                                                     \
   true,                                                                    \
   {},                                                                      \
   [](const ScenarioConfig& c) {                                            \
     return ParamValue::of(time_to_##UNIT(EXPR));                           \
   },                                                                       \
   [](ScenarioConfig& c, const ParamValue& v) { EXPR = UNIT##_to_time(v.d); }}

#define PU(NAME, EXPR, CAST, MIN, MAX, DOC)                                 \
  {NAME,                                                                    \
   ParamType::kUInt,                                                        \
   DOC,                                                                     \
   MIN,                                                                     \
   MAX,                                                                     \
   true,                                                                    \
   {},                                                                      \
   [](const ScenarioConfig& c) {                                            \
     return ParamValue::of(static_cast<std::uint64_t>(EXPR));               \
   },                                                                       \
   [](ScenarioConfig& c, const ParamValue& v) { EXPR = static_cast<CAST>(v.u); }}

#define PB(NAME, EXPR, DOC)                                                 \
  {NAME,                                                                    \
   ParamType::kBool,                                                        \
   DOC,                                                                     \
   0.0,                                                                     \
   0.0,                                                                     \
   true,                                                                    \
   {},                                                                      \
   [](const ScenarioConfig& c) { return ParamValue::of(bool(EXPR)); },      \
   [](ScenarioConfig& c, const ParamValue& v) { EXPR = v.b; }}

#define POH(NAME, EXPR, DOC)                                                \
  {NAME,                                                                    \
   ParamType::kEnum,                                                        \
   DOC,                                                                     \
   0.0,                                                                     \
   0.0,                                                                     \
   true,                                                                    \
   {"none", "randomized", "unconditional"},                                 \
   [](const ScenarioConfig& c) {                                            \
     return ParamValue::of(std::string_view(mac::to_string(EXPR)));         \
   },                                                                       \
   [](ScenarioConfig& c, const ParamValue& v) {                             \
     EXPR = oh_from_token(v.token);                                         \
   }}

std::vector<Param> build_registry() {
  std::vector<Param> reg = {
      // --- topology / mobility / traffic (paper §4.1) ----------------------
      PU("nodes", c.num_nodes, std::size_t, 1, 1e6,
         "Number of nodes placed uniformly in the world rectangle"),
      PD("world.width_m", c.world.width, 1, 1e6, "World width (m)"),
      PD("world.height_m", c.world.height, 1, 1e6, "World height (m)"),
      PD("tx_range_m", c.tx_range_m, 1, 1e5, "Transmission range (m)"),
      PD("cs_range_m", c.cs_range_m, 1, 1e5, "Carrier-sense range (m)"),
      PU("bitrate_bps", c.bitrate_bps, std::int64_t, 1000, 1e10,
         "Radio bitrate (bits/s)"),
      PD("speed_mps", c.max_speed_mps, 0, 1000,
         "Random-waypoint maximum speed (m/s); 0 = static placement"),
      PT("pause_s", c.pause, s, 0, 1e6,
         "Random-waypoint pause time (s); >= duration_s = static"),
      PU("flows", c.num_flows, std::size_t, 1, 1e6, "Number of CBR flows"),
      PD("rate_pps", c.rate_pps, 1e-6, 1e6, "Per-flow CBR rate (packets/s)"),
      {"payload_bytes",
       ParamType::kDouble,
       "CBR payload size (bytes)",
       1,
       65536,
       true,
       {},
       // Stored as bits; /8 and *8 are exact in binary floating point.
       [](const ScenarioConfig& c) {
         return ParamValue::of(static_cast<double>(c.payload_bits) / 8.0);
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.payload_bits = static_cast<std::int64_t>(std::llround(v.d * 8.0));
       }},
      PT("duration_s", c.duration, s, 0.001, 1e7,
         "Simulated duration (s)"),
      PU("seed", c.seed, std::uint64_t, 0, kU64Max, "Master RNG seed"),
      {"power.scheme",
       ParamType::kEnum,
       "Power-policy scheme (paper comparison axis; 'scheme' pre-v3)",
       0.0,
       0.0,
       true,
       {"80211", "PSM-NONE", "PSM-ALL", "ODPM", "RCAST", "RCAST-BC", "LEACH"},
       [](const ScenarioConfig& c) {
         return ParamValue::of(to_string(c.scheme));
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.scheme = *scheme_from_string(v.token);
       },
       canon_scheme},
      {"routing.protocol",
       ParamType::kEnum,
       "Network-layer routing protocol ('routing' pre-v3)",
       0.0,
       0.0,
       true,
       {"DSR", "AODV"},
       [](const ScenarioConfig& c) {
         return ParamValue::of(to_string(c.routing));
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.routing = *routing_from_string(v.token);
       },
       canon_routing},
      {"mobility.model",
       ParamType::kEnum,
       "Mobility model registry entry (rwp = random waypoint, rpgm = "
       "reference-point group mobility)",
       0.0,
       0.0,
       true,
       {"rwp", "rpgm"},
       [](const ScenarioConfig& c) {
         return ParamValue::of(std::string_view(c.mobility_model));
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.mobility_model = v.token;
       }},
      {"traffic.pattern",
       ParamType::kEnum,
       "Traffic pattern registry entry (cbr = paper's flow matrix, sensing = "
       "periodic reports to a sink plus Poisson event bursts)",
       0.0,
       0.0,
       true,
       {"cbr", "sensing"},
       [](const ScenarioConfig& c) {
         return ParamValue::of(std::string_view(c.traffic_pattern));
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.traffic_pattern = v.token;
       }},
      PD("battery_j", c.battery_joules, 0, 1e12,
         "Initial battery energy per node (J); 0 = infinite (paper)"),
      PB("override_oh_map", c.override_oh_map,
         "Use dsr.oh_* as configured instead of the scheme's canonical map"),
      PT("sync_jitter_ms", c.sync_jitter, ms, 0, 1e6,
         "Per-node beacon clock offset drawn uniformly from [0, jitter]"),
      {"max_wall_seconds",
       ParamType::kDouble,
       "Wall-clock budget per run (s); 0 = unlimited. Cannot affect results",
       0,
       1e9,
       false,  // the only knob excluded from config_digest
       {},
       [](const ScenarioConfig& c) { return ParamValue::of(c.max_wall_seconds); },
       [](ScenarioConfig& c, const ParamValue& v) { c.max_wall_seconds = v.d; }},
      PU("sim.shards", c.sim_shards, std::uint64_t, 0, 64,
         "Spatial shards (worker threads) per run; 1 = single-queue loop, "
         "0 = one per hardware thread (DESIGN.md §15)"),
      PU("sim.horizon_ns", c.sim_horizon_ns, std::uint64_t, 0, 1e12,
         "Conservative window width for sharded runs (ns); 0 = derive from "
         "cs_range_m (propagation across the carrier-sense disc)"),
      {"campaign.journal_sync_every",
       ParamType::kUInt,
       "Fsync the campaign journal every N committed jobs (1 = every commit). "
       "Cannot affect results",
       1,
       1e9,
       false,  // durability knob, like max_wall_seconds: not in config_digest
       {},
       [](const ScenarioConfig& c) {
         return ParamValue::of(c.journal_sync_every);
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.journal_sync_every = v.u;
       }},

      // --- energy model (WaveLAN-II defaults) ------------------------------
      PD("power.idle_w", c.power.idle_w, 0, 1000, "Idle-listening draw (W)"),
      PD("power.rx_w", c.power.rx_w, 0, 1000, "Receive draw (W)"),
      PD("power.tx_w", c.power.tx_w, 0, 1000, "Transmit draw (W)"),
      PD("power.sleep_w", c.power.sleep_w, 0, 1000, "Doze-state draw (W)"),

      // --- MAC (IEEE 802.11 DSSS + PSM) ------------------------------------
      PT("mac.beacon_interval_ms", c.mac.beacon_interval, ms, 1, 1e5,
         "PSM beacon interval (ms)"),
      PT("mac.atim_window_ms", c.mac.atim_window, ms, 0.01, 1e5,
         "ATIM window length (ms)"),
      PT("mac.slot_us", c.mac.slot, us, 1, 1e6, "Contention slot (us)"),
      PT("mac.sifs_us", c.mac.sifs, us, 0, 1e6, "SIFS (us)"),
      PT("mac.difs_us", c.mac.difs, us, 0, 1e6, "DIFS (us)"),
      PU("mac.cw_min", c.mac.cw_min, int, 0, 65535,
         "Minimum contention window"),
      PU("mac.cw_max", c.mac.cw_max, int, 0, 65535,
         "Maximum contention window"),
      PU("mac.retry_limit", c.mac.retry_limit, int, 0, 100,
         "Unicast retry limit before a link-failure report"),
      PU("mac.data_header_bits", c.mac.data_header_bits, std::int64_t, 0, 1e6,
         "MAC data header + FCS (bits)"),
      PU("mac.ack_bits", c.mac.ack_bits, std::int64_t, 0, 1e6,
         "ACK frame size (bits)"),
      PU("mac.atim_bits", c.mac.atim_bits, std::int64_t, 0, 1e6,
         "ATIM management frame size (bits)"),
      PU("mac.preamble_bits", c.mac.preamble_bits, std::int64_t, 0, 1e6,
         "PLCP preamble + header (bits)"),
      PU("mac.queue_limit", c.mac.queue_limit, std::size_t, 1, 1e6,
         "Interface queue length (packets)"),
      PB("mac.psm_enabled", c.mac.psm_enabled,
         "PSM structure on/off; overridden from the scheme by the builder"),
      PU("mac.atim_fail_limit", c.mac.atim_fail_limit, int, 1, 1000,
         "Consecutive un-acked ATIM intervals before a link-failure report"),
      PT("mac.beacon_offset_ms", c.mac.beacon_offset, ms, 0, 1e5,
         "Fixed beacon schedule offset from the global epoch (ms)"),

      // --- DSR --------------------------------------------------------------
      POH("dsr.oh_rrep", c.dsr.oh_map.rrep,
          "Overhearing level announced for RREP transmissions"),
      POH("dsr.oh_data", c.dsr.oh_map.data,
          "Overhearing level announced for data transmissions"),
      POH("dsr.oh_rerr", c.dsr.oh_map.rerr,
          "Overhearing level announced for RERR transmissions"),
      POH("dsr.oh_rreq_bcast", c.dsr.oh_map.rreq_bcast,
          "Receiving level for broadcast RREQ announcements"),
      PU("dsr.cache_capacity", c.dsr.cache.capacity, std::size_t, 1, 1e6,
         "Route cache capacity (paths)"),
      PT("dsr.route_ttl_s", c.dsr.cache.route_ttl, s, 0, 1e6,
         "Cached route lifetime (s); 0 = no timeout (paper's DSR)"),
      PT("dsr.send_buffer_timeout_s", c.dsr.send_buffer_timeout, s, 0, 1e6,
         "Send-buffer packet lifetime while awaiting a route (s)"),
      PU("dsr.send_buffer_capacity", c.dsr.send_buffer_capacity, std::size_t,
         1, 1e6, "Send-buffer capacity (packets)"),
      PB("dsr.reply_from_cache", c.dsr.reply_from_cache,
         "Intermediate nodes answer RREQs from their route cache"),
      PB("dsr.nonpropagating_first", c.dsr.nonpropagating_first,
         "First RREQ attempt with TTL 1 (expanding ring)"),
      PU("dsr.max_rreq_attempts", c.dsr.max_rreq_attempts, int, 1, 1000,
         "Discovery attempts before giving up on a destination"),
      PT("dsr.rreq_backoff_base_ms", c.dsr.rreq_backoff_base, ms, 1, 1e6,
         "Initial RREQ retry backoff (ms)"),
      PT("dsr.rreq_backoff_max_ms", c.dsr.rreq_backoff_max, ms, 1, 1e7,
         "RREQ retry backoff cap (ms)"),
      PU("dsr.network_ttl", c.dsr.network_ttl, int, 1, 255,
         "Network-wide flood TTL"),
      PB("dsr.cache_reverse_overheard", c.dsr.cache_reverse_overheard,
         "Also cache the reverse direction of overheard routes"),
      PB("dsr.salvage", c.dsr.salvage,
         "Salvage data packets via the cache after a link break"),
      PU("dsr.max_salvage", c.dsr.max_salvage, int, 0, 100,
         "Salvage attempts per packet"),

      // --- AODV -------------------------------------------------------------
      PT("aodv.active_route_timeout_s", c.aodv.active_route_timeout, s, 0.01,
         1e6, "Route lifetime after last use (s)"),
      PT("aodv.hello_interval_s", c.aodv.hello_interval, s, 0.01, 1e6,
         "Hello broadcast period (s)"),
      PU("aodv.allowed_hello_loss", c.aodv.allowed_hello_loss, int, 1, 100,
         "Missed hellos before a link is declared dead"),
      PU("aodv.ttl_start", c.aodv.ttl_start, int, 1, 255,
         "Expanding-ring initial TTL"),
      PU("aodv.ttl_increment", c.aodv.ttl_increment, int, 1, 255,
         "Expanding-ring TTL increment per attempt"),
      PU("aodv.ttl_threshold", c.aodv.ttl_threshold, int, 1, 255,
         "TTL beyond which discovery goes network-wide"),
      PU("aodv.network_ttl", c.aodv.network_ttl, int, 1, 255,
         "Network-wide flood TTL"),
      PU("aodv.max_rreq_attempts", c.aodv.max_rreq_attempts, int, 1, 1000,
         "Discovery attempts before giving up on a destination"),
      PT("aodv.rreq_backoff_base_ms", c.aodv.rreq_backoff_base, ms, 1, 1e6,
         "Initial RREQ retry backoff (ms)"),
      PT("aodv.rreq_backoff_max_ms", c.aodv.rreq_backoff_max, ms, 1, 1e7,
         "RREQ retry backoff cap (ms)"),
      PT("aodv.send_buffer_timeout_s", c.aodv.send_buffer_timeout, s, 0, 1e6,
         "Send-buffer packet lifetime while awaiting a route (s)"),
      PU("aodv.send_buffer_capacity", c.aodv.send_buffer_capacity,
         std::size_t, 1, 1e6, "Send-buffer capacity (packets)"),
      PB("aodv.intermediate_rrep", c.aodv.intermediate_rrep,
         "Intermediate nodes with fresh routes answer RREQs"),
      PB("aodv.hello_only_when_active", c.aodv.hello_only_when_active,
         "Send hellos only while holding active routes (RFC behaviour)"),

      // --- ODPM (Zheng & Kravets) -------------------------------------------
      PT("odpm.rrep_timeout_s", c.odpm.rrep_am_timeout, s, 0, 1e6,
         "AM dwell after receiving a RREP (s)"),
      PT("odpm.data_timeout_s", c.odpm.data_am_timeout, s, 0, 1e6,
         "AM dwell after sending/receiving/forwarding data (s)"),
      PT("odpm.belief_timeout_s", c.odpm.belief_timeout, s, 0, 1e6,
         "How long a heard PwrMgt=AM bit is trusted (s)"),
      PB("odpm.refresh_on_overhear", c.odpm.refresh_on_overhear,
         "Overheard data refreshes the AM data timeout (sticky AM)"),

      // --- Rcast (the paper's contribution) ---------------------------------
      {"rcast.estimator",
       ParamType::kEnum,
       "P_R estimator (paper evaluates 'neighbors' = 1/N)",
       0.0,
       0.0,
       true,
       {"neighbors", "sender-id", "mobility", "battery", "combined"},
       [](const ScenarioConfig& c) {
         return ParamValue::of(
             std::string_view(core::to_string(c.rcast.estimator)));
       },
       [](ScenarioConfig& c, const ParamValue& v) {
         c.rcast.estimator = estimator_from_token(v.token);
       }},
      PD("rcast.min_pr", c.rcast.min_pr, 0, 1,
         "Lower clamp on the overhearing probability"),
      PD("rcast.max_pr", c.rcast.max_pr, 0, 1,
         "Upper clamp on the overhearing probability"),
      PT("rcast.neighbor_ttl_s", c.rcast.neighbor_ttl, s, 0.01, 1e6,
         "Passive neighbor-table entry lifetime (s)"),
      PT("rcast.sender_recency_window_s", c.rcast.sender_recency_window, s, 0,
         1e6, "sender-id estimator: always overhear senders silent this long"),
      PU("rcast.max_skips", c.rcast.max_skips, int, 0, 1e6,
         "sender-id estimator: forced overhear after this many skips"),
      PD("rcast.churn_factor", c.rcast.churn_factor, 0, 1e6,
         "mobility estimator: P_R divisor weight on link churn"),
      PD("rcast.bcast_floor", c.rcast.bcast_floor, 0, 1,
         "Broadcast extension: minimum receive probability"),
      PD("rcast.bcast_scale", c.rcast.bcast_scale, 0, 1e6,
         "Broadcast extension: receive probability = max(floor, scale/N)"),
      PB("rcast.oracle_neighbors", c.rcast_oracle_neighbors,
         "P_R = 1/N uses the true topology neighbor count (paper semantics)"),

      // --- clustered family (LEACH-style scheme + RPGM + sensing) -----------
      PT("cluster.round_s", c.cluster.round, s, 0.1, 1e6,
         "LEACH cluster-head rotation period (s)"),
      PD("cluster.ch_fraction", c.cluster.ch_fraction, 1e-4, 1,
         "LEACH target fraction of nodes electing themselves head per round"),
      PU("rpgm.group_size", c.rpgm_group_size, std::size_t, 1, 1e6,
         "RPGM nodes per reference-point group (consecutive ids)"),
      PD("rpgm.span_m", c.rpgm_span_m, 0, 1e5,
         "RPGM member offset bound around the group reference point (m)"),
      PD("rpgm.span_rate_mps", c.rpgm_span_rate_mps, 0, 1000,
         "RPGM maximum member drift speed relative to the reference (m/s)"),
      PD("traffic.burst_rate_pps", c.sensing.burst_rate_pps, 0, 1e6,
         "sensing pattern: Poisson event-burst arrival rate (bursts/s)"),
      PU("traffic.burst_size", c.sensing.burst_size, std::uint64_t, 1, 1e6,
         "sensing pattern: packets per event burst"),
      PT("traffic.burst_spacing_ms", c.sensing.burst_spacing, ms, 0.01, 1e6,
         "sensing pattern: intra-burst packet spacing (ms)"),
      PT("lifetime.check_interval_s", c.lifetime_check_interval, s, 0, 1e6,
         "Finite-battery runs: partition-check period (s); 0 = disabled"),
  };
  return reg;
}

#undef PD
#undef PT
#undef PU
#undef PB
#undef POH

bool iequals_sv(std::string_view a, std::string_view b) {
  return detail::iequals(a, b);
}

}  // namespace

ParamValue ParamValue::of(double v) {
  ParamValue p;
  p.type = ParamType::kDouble;
  p.d = v;
  return p;
}

ParamValue ParamValue::of(std::uint64_t v) {
  ParamValue p;
  p.type = ParamType::kUInt;
  p.u = v;
  return p;
}

ParamValue ParamValue::of(bool v) {
  ParamValue p;
  p.type = ParamType::kBool;
  p.b = v;
  return p;
}

ParamValue ParamValue::of(std::string_view canonical_token) {
  ParamValue p;
  p.type = ParamType::kEnum;
  p.token = canonical_token;
  return p;
}

std::string ParamValue::text() const {
  switch (type) {
    case ParamType::kDouble:
      return fmt_double(d, "%.17g");
    case ParamType::kUInt:
      return std::to_string(u);
    case ParamType::kBool:
      return b ? "true" : "false";
    case ParamType::kEnum:
      return token;
  }
  return {};
}

std::string ParamValue::pretty() const {
  if (type == ParamType::kDouble) return fmt_double(d, "%g");
  return text();
}

bool ParamValue::operator==(const ParamValue& o) const {
  if (type != o.type) return false;
  switch (type) {
    case ParamType::kDouble:
      return d == o.d;
    case ParamType::kUInt:
      return u == o.u;
    case ParamType::kBool:
      return b == o.b;
    case ParamType::kEnum:
      return token == o.token;
  }
  return false;
}

ParamValue Param::default_value() const {
  static const ScenarioConfig kDefaults{};
  return get(kDefaults);
}

std::string Param::range_text() const {
  switch (type) {
    case ParamType::kDouble:
    case ParamType::kUInt: {
      std::string out = "[" + fmt_double(min_value, "%g") + ", " +
                        fmt_double(max_value, "%g") + "]";
      return out;
    }
    case ParamType::kBool:
      return "true|false";
    case ParamType::kEnum: {
      std::string out;
      for (const auto& t : tokens) {
        if (!out.empty()) out += "|";
        out += t;
      }
      return out;
    }
  }
  return {};
}

ParamValue Param::parse(std::string_view text) const {
  const std::string owned(text);
  auto fail = [&](const std::string& why) -> ParamError {
    return ParamError(std::string(name) + ": " + why + " (got '" + owned +
                      "'; expected " + range_text() + ")");
  };
  switch (type) {
    case ParamType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(owned.c_str(), &end);
      if (end == owned.c_str() || *end != '\0' || !std::isfinite(v)) {
        throw fail("not a finite number");
      }
      if (v < min_value || v > max_value) throw fail("out of range");
      return ParamValue::of(v);
    }
    case ParamType::kUInt: {
      if (owned.empty() ||
          owned.find_first_not_of("0123456789") != std::string::npos) {
        throw fail("not a non-negative integer");
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
      if (errno != 0 || *end != '\0') throw fail("not a non-negative integer");
      const double vd = static_cast<double>(v);
      if (vd < min_value || vd > max_value) throw fail("out of range");
      return ParamValue::of(static_cast<std::uint64_t>(v));
    }
    case ParamType::kBool: {
      for (const char* t : {"true", "1", "yes", "on"}) {
        if (iequals_sv(owned, t)) return ParamValue::of(true);
      }
      for (const char* t : {"false", "0", "no", "off"}) {
        if (iequals_sv(owned, t)) return ParamValue::of(false);
      }
      throw fail("not a boolean");
    }
    case ParamType::kEnum: {
      if (canonicalize != nullptr) {
        const std::string_view canon = canonicalize(owned);
        if (!canon.empty()) return ParamValue::of(canon);
        throw fail("unknown token");
      }
      for (const auto& t : tokens) {
        if (iequals_sv(owned, t)) return ParamValue::of(t);
      }
      throw fail("unknown token");
    }
  }
  throw fail("unhandled parameter type");
}

const std::vector<Param>& param_registry() {
  static const std::vector<Param> kRegistry = build_registry();
  return kRegistry;
}

const Param* find_param(std::string_view name) {
  // Legacy aliases: records, manifests, and CLI flags written before the
  // policy-registry split (digest v3) used the bare axis names.
  if (name == "scheme") {
    name = "power.scheme";
  } else if (name == "routing") {
    name = "routing.protocol";
  }
  for (const Param& p : param_registry()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void set_param(ScenarioConfig& cfg, std::string_view name,
               std::string_view value_text) {
  const Param* p = find_param(name);
  if (p == nullptr) {
    throw ParamError("unknown parameter '" + std::string(name) +
                     "' (see --help-params)");
  }
  p->set(cfg, p->parse(value_text));
}

std::string param_text(const ScenarioConfig& cfg, std::string_view name) {
  const Param* p = find_param(name);
  if (p == nullptr) {
    throw ParamError("unknown parameter '" + std::string(name) + "'");
  }
  return p->get(cfg).text();
}

std::string params_help() {
  std::string out;
  out += "Scenario parameters (--set name=value; any name is also a campaign\n"
         "manifest override or sweep axis):\n";
  for (const Param& p : param_registry()) {
    std::string line = "  " + std::string(p.name);
    if (line.size() < 30) line.resize(30, ' ');
    line += "  ";
    line += to_string(p.type);
    line += "  default ";
    line += p.default_value().pretty();
    line += "  ";
    line += p.range_text();
    out += line + "\n";
    out += "      " + std::string(p.doc);
    if (!p.in_digest) out += " [excluded from config digest]";
    out += "\n";
  }
  return out;
}

std::string params_markdown() {
  std::string out;
  out += std::string(kParamsDocBegin) + "\n\n";
  out += "| Parameter | Type | Default | Range / tokens | Description |\n";
  out += "|---|---|---|---|---|\n";
  for (const Param& p : param_registry()) {
    std::string range = p.range_text();
    // '|' is the enum token separator and the markdown cell separator.
    for (std::size_t i = 0; (i = range.find('|', i)) != std::string::npos;
         i += 6) {
      range.replace(i, 1, "\\|");
      i += 1;
    }
    out += "| `" + std::string(p.name) + "` | " + std::string(to_string(p.type)) +
           " | `" + p.default_value().pretty() + "` | " + range + " | " +
           std::string(p.doc);
    if (!p.in_digest) out += " *(excluded from config digest)*";
    out += " |\n";
  }
  out += "\n" + std::string(kParamsDocEnd);
  return out;
}

std::vector<std::string> registry_self_check() {
  std::vector<std::string> problems;
  const auto& reg = param_registry();
  std::unordered_set<std::string_view> seen;

  for (const Param& p : reg) {
    const std::string n(p.name);
    if (!seen.insert(p.name).second) problems.push_back("duplicate name: " + n);
    if (p.name.empty() || !std::islower(static_cast<unsigned char>(p.name[0]))) {
      problems.push_back("name must start with a lowercase letter: " + n);
    }
    for (const char c : p.name) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.')) {
        problems.push_back("bad character in name: " + n);
        break;
      }
    }
    if (p.get == nullptr || p.set == nullptr) {
      problems.push_back("missing accessor: " + n);
      continue;
    }
    if (p.type == ParamType::kEnum && p.tokens.empty()) {
      problems.push_back("enum without token table: " + n);
    }

    // Default must round-trip: default -> canonical text -> parse -> set ->
    // get -> identical canonical text. This is the property the config
    // digest and the result store rely on for every parameter.
    const ParamValue def = p.default_value();
    if (p.type == ParamType::kDouble || p.type == ParamType::kUInt) {
      const double dv = p.type == ParamType::kDouble
                            ? def.d
                            : static_cast<double>(def.u);
      if (dv < p.min_value || dv > p.max_value) {
        problems.push_back("default outside bounds: " + n);
      }
    }
    try {
      const ParamValue reparsed = p.parse(def.text());
      ScenarioConfig cfg;
      p.set(cfg, reparsed);
      if (!(p.get(cfg) == def)) {
        problems.push_back("default does not round-trip through text: " + n);
      }
    } catch (const ParamError& e) {
      problems.push_back("default text does not re-parse: " + n + " (" +
                         e.what() + ")");
    }
  }

  // Completeness fence: without reflection, detect "field added but no
  // descriptor registered" by pinning the size of ScenarioConfig and every
  // subconfig. A new field changes the size; update the descriptor table
  // AND the constant here. Layout is checked on x86-64 Linux (the CI
  // platform) only.
#if defined(__x86_64__) && defined(__linux__)
  struct SizeFence {
    const char* what;
    std::size_t actual;
    std::size_t expected;
  };
  const SizeFence fences[] = {
      {"scenario::ScenarioConfig", sizeof(ScenarioConfig),
       kScenarioConfigSize},
      {"mac::MacConfig", sizeof(mac::MacConfig), kMacConfigSize},
      {"routing::DsrConfig", sizeof(routing::DsrConfig), kDsrConfigSize},
      {"routing::AodvConfig", sizeof(routing::AodvConfig), kAodvConfigSize},
      {"power::OdpmConfig", sizeof(power::OdpmConfig), kOdpmConfigSize},
      {"core::RcastConfig", sizeof(core::RcastConfig), kRcastConfigSize},
      {"energy::PowerTable", sizeof(energy::PowerTable), kPowerTableSize},
      {"routing::RouteCacheConfig", sizeof(routing::RouteCacheConfig),
       kRouteCacheConfigSize},
      {"power::ClusterConfig", sizeof(power::ClusterConfig),
       kClusterConfigSize},
      {"traffic::SensingConfig", sizeof(traffic::SensingConfig),
       kSensingConfigSize},
  };
  for (const auto& f : fences) {
    if (f.actual != f.expected) {
      problems.push_back(
          std::string("sizeof(") + f.what + ") = " +
          std::to_string(f.actual) + ", registry expects " +
          std::to_string(f.expected) +
          " — a field was added/removed without updating the parameter "
          "registry (src/scenario/params.cpp; see DESIGN.md §11)");
    }
  }
#endif
  return problems;
}

}  // namespace rcast::scenario
