#include "campaign/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rcast::campaign::json {

double Value::as_double() const {
  if (type_ == Type::kNull) return std::numeric_limits<double>::quiet_NaN();
  require(Type::kNumber);
  return num_;
}

const Value& Value::at(const std::string& key) const {
  require(Type::kObject);
  auto it = obj_->find(key);
  if (it == obj_->end()) {
    throw std::out_of_range("json: missing key '" + key + "'");
  }
  return it->second;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

void Value::require(Type t) const {
  if (type_ != t) {
    throw std::runtime_error("json: wrong value type requested");
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  // Containers may nest this deep; the parser recurses, so untrusted input
  // (the HTTP layer hands request bodies straight here) must not be able to
  // overflow the stack with "[[[[...".
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json: " + what, pos_);
  }

  template <typename Fn>
  Value with_depth(Fn fn) {
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    Value v = fn();
    --depth_;
    return v;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return with_depth([&] { return parse_object(); });
      case '[': return with_depth([&] { return parse_array(); });
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') { ++pos_; return Value(std::move(obj)); }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == '}') { ++pos_; break; }
      fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') { ++pos_; return Value(std::move(arr)); }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == ']') { ++pos_; break; }
      fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only escapes control characters, so a BMP encode
          // (no surrogate pairing) covers everything we produce.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    // Enforce the RFC 8259 grammar before strtod, which is laxer ("1.",
    // ".5", "0x10" would otherwise slip through).
    const auto grammar_ok = [&tok]() {
      const auto digit = [](char c) { return c >= '0' && c <= '9'; };
      std::size_t i = 0;
      if (i < tok.size() && tok[i] == '-') ++i;
      if (i >= tok.size() || !digit(tok[i])) return false;
      if (tok[i] == '0') {
        ++i;
      } else {
        while (i < tok.size() && digit(tok[i])) ++i;
      }
      if (i < tok.size() && tok[i] == '.') {
        ++i;
        if (i >= tok.size() || !digit(tok[i])) return false;
        while (i < tok.size() && digit(tok[i])) ++i;
      }
      if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
        ++i;
        if (i < tok.size() && (tok[i] == '+' || tok[i] == '-')) ++i;
        if (i >= tok.size() || !digit(tok[i])) return false;
        while (i < tok.size() && digit(tok[i])) ++i;
      }
      return i == tok.size();
    };
    if (!grammar_ok()) {
      pos_ = start;
      fail("malformed number");
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number");
    }
    // JSON has no NaN/Inf; an overflowing literal like 1e999 must be an
    // error, not a silent infinity (the writer encodes non-finite as null).
    if (!std::isfinite(d)) {
      pos_ = start;
      fail("non-finite number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

Writer& Writer::begin_object() {
  comma();
  out_.push_back('{');
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  out_.push_back('}');
  need_comma_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_.push_back('[');
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  out_.push_back(']');
  need_comma_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  write_escaped(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  comma();
  write_escaped(s);
  return *this;
}

Writer& Writer::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf; readers map null back to NaN.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

Writer& Writer::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

Writer& Writer::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

void Writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void Writer::write_escaped(std::string_view s) {
  out_.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

}  // namespace rcast::campaign::json
