#include "campaign/result_store.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "campaign/json.hpp"
#include "scenario/experiment.hpp"
#include "scenario/params.hpp"

namespace rcast::campaign {

namespace {

void fsync_file(std::FILE* f) {
  std::fflush(f);
#ifdef _WIN32
  _commit(_fileno(f));
#else
  ::fsync(fileno(f));
#endif
}

}  // namespace

ResultStore ResultStore::open_append(const std::string& path) {
  ResultStore s;
  s.f_ = std::fopen(path.c_str(), "ab");
  if (!s.f_) throw ResultStoreError("cannot open results file: " + path);
  // "ab" reports position 0 until the first write; seek so append extents
  // are correct from the start.
  std::fseek(s.f_, 0, SEEK_END);
  const long end = std::ftell(s.f_);
  if (end < 0) throw ResultStoreError("cannot size results file: " + path);
  s.offset_ = static_cast<std::uint64_t>(end);
  return s;
}

ResultStore::ResultStore(ResultStore&& other) noexcept
    : f_(other.f_), offset_(other.offset_) {
  other.f_ = nullptr;
}

ResultStore::~ResultStore() { close(); }

void ResultStore::close() {
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

AppendExtent ResultStore::append(const Job& job, const scenario::RunResult& r,
                                 double wall_ms) {
  if (!f_) throw ResultStoreError("result store is closed");
  const std::string line = record_to_json(job, r, wall_ms) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) {
    throw ResultStoreError("results write failed");
  }
  fsync_file(f_);
  AppendExtent ext{offset_, static_cast<std::uint32_t>(line.size() - 1)};
  offset_ += line.size();
  return ext;
}

std::string record_to_json(const Job& job, const scenario::RunResult& r,
                           double wall_ms) {
  json::Writer w;
  w.begin_object();
  w.key("v").value(std::uint64_t{2});
  w.key("job").value(static_cast<std::uint64_t>(job.index));
  w.key("id").value(job.id);
  w.key("cfg_digest").value(job.digest);
  w.key("wall_ms").value(wall_ms);

  // The full config, one member per registered parameter in registry order
  // (typed: numbers, booleans, enum token strings). Round-trips through
  // record_from_json with digest equality — test_params pins this per
  // parameter.
  w.key("config").begin_object();
  for (const scenario::Param& p : scenario::param_registry()) {
    w.key(p.name);
    const scenario::ParamValue v = p.get(job.cfg);
    switch (p.type) {
      case scenario::ParamType::kDouble:
        w.value(v.d);
        break;
      case scenario::ParamType::kUInt:
        w.value(v.u);
        break;
      case scenario::ParamType::kBool:
        w.value(v.b);
        break;
      case scenario::ParamType::kEnum:
        w.value(std::string_view(v.token));
        break;
    }
  }
  w.end_object();

  w.key("result").begin_object();
  w.key("total_energy_j").value(r.total_energy_j);
  w.key("energy_variance").value(r.energy_variance);
  w.key("energy_mean_j").value(r.energy_mean_j);
  w.key("energy_min_j").value(r.energy_min_j);
  w.key("energy_max_j").value(r.energy_max_j);
  w.key("originated").value(r.originated);
  w.key("delivered").value(r.delivered);
  w.key("pdr_percent").value(r.pdr_percent);
  w.key("avg_delay_s").value(r.avg_delay_s);
  w.key("delay_p50_s").value(r.delay_p50_s);
  w.key("delay_p90_s").value(r.delay_p90_s);
  w.key("avg_route_wait_s").value(r.avg_route_wait_s);
  w.key("avg_transit_s").value(r.avg_transit_s);
  w.key("energy_per_bit_j").value(r.energy_per_bit_j);
  w.key("control_tx").value(r.control_tx);
  w.key("normalized_overhead").value(r.normalized_overhead);
  w.key("atim_tx").value(r.atim_tx);
  w.key("data_tx_attempts").value(r.data_tx_attempts);
  w.key("overhear_commits").value(r.overhear_commits);
  w.key("overhear_declines").value(r.overhear_declines);
  w.key("mac_sleeps").value(r.mac_sleeps);
  w.key("rreq_tx").value(r.rreq_tx);
  w.key("rrep_tx").value(r.rrep_tx);
  w.key("rerr_tx").value(r.rerr_tx);
  w.key("hello_tx").value(r.hello_tx);
  w.key("data_tx_failed").value(r.data_tx_failed);
  w.key("data_salvaged").value(r.data_salvaged);
  w.key("dead_nodes").value(static_cast<std::uint64_t>(r.dead_nodes));
  w.key("first_node_death_s").value(r.first_death_s);
  w.key("partition_time_s").value(r.partition_time_s);
  w.key("events_executed").value(r.events_executed);

  w.key("per_node_energy_j").begin_array();
  for (const double e : r.per_node_energy_j) w.value(e);
  w.end_array();
  w.key("role_numbers").begin_array();
  for (const auto n : r.role_numbers) w.value(n);
  w.end_array();
  w.key("drops").begin_array();
  for (const auto d : r.drops) w.value(d);
  w.end_array();

  w.key("perf").begin_object();
  w.key("events_executed").value(r.perf.events_executed);
  w.key("events_scheduled").value(r.perf.events_scheduled);
  w.key("handler_heap_fallbacks").value(r.perf.handler_heap_fallbacks);
  w.key("queue_depth_high_water").value(r.perf.queue_depth_high_water);
  w.key("queue_rung_spawns").value(r.perf.queue_rung_spawns);
  w.key("dispatch_batches").value(r.perf.dispatch_batches);
  w.key("batch_size_hist").begin_array();
  for (const std::uint64_t n : r.perf.batch_size_hist) w.value(n);
  w.end_array();
  w.key("handler_moves").value(r.perf.handler_moves);
  w.key("inplace_fires").value(r.perf.inplace_fires);
  w.key("arrival_group_size_hist").begin_array();
  for (const std::uint64_t n : r.perf.arrival_group_size_hist) w.value(n);
  w.end_array();
  w.key("pool_hits").value(r.perf.pool_hits);
  w.key("pool_misses").value(r.perf.pool_misses);
  w.key("bytes_allocated").value(r.perf.bytes_allocated);
  w.key("spatial_queries").value(r.perf.spatial_queries);
  w.key("spatial_candidates_scanned").value(r.perf.spatial_candidates_scanned);
  w.key("segment_refreshes").value(r.perf.segment_refreshes);
  w.key("cs_cells_visited").value(r.perf.cs_cells_visited);
  w.key("wall_seconds").value(r.perf.wall_seconds);
  w.key("events_per_sec").value(r.perf.events_per_sec);
  w.end_object();
  w.end_object();  // result

  w.end_object();
  return w.take();
}

namespace {

JobRecord record_from_json(const json::Value& v) {
  JobRecord rec;
  rec.job = static_cast<std::size_t>(v.at("job").as_u64());
  rec.id = v.at("id").as_string();
  rec.digest = v.at("cfg_digest").as_string();
  rec.wall_ms = v.at("wall_ms").as_double();

  // Reconstruct the full config through the registry: every registered
  // parameter present in the record's "config" object is applied; absent
  // keys keep their defaults (records always carry the full set since v2).
  const json::Value& cfg = v.at("config");
  for (const scenario::Param& p : scenario::param_registry()) {
    const json::Value* member = cfg.find(std::string(p.name));
    // Records written before the policy-registry split (digest v3) stored
    // the enum axes under their bare pre-v3 names.
    if (member == nullptr && p.name == "power.scheme") {
      member = cfg.find("scheme");
    }
    if (member == nullptr && p.name == "routing.protocol") {
      member = cfg.find("routing");
    }
    if (member == nullptr) continue;
    scenario::ParamValue value;
    try {
      switch (p.type) {
        case scenario::ParamType::kDouble:
          value = scenario::ParamValue::of(member->as_double());
          break;
        case scenario::ParamType::kUInt:
          value = scenario::ParamValue::of(member->as_u64());
          break;
        case scenario::ParamType::kBool:
          value = scenario::ParamValue::of(member->as_bool());
          break;
        case scenario::ParamType::kEnum:
          // Validate + canonicalize the stored token.
          value = p.parse(member->as_string());
          break;
      }
      p.set(rec.cfg, value);
    } catch (const scenario::ParamError& e) {
      throw ResultStoreError("record config." + std::string(p.name) + ": " +
                             e.what());
    }
  }
  rec.cell = config_cell_digest(rec.cfg);
  rec.scheme = rec.cfg.scheme;
  rec.routing = rec.cfg.routing;
  rec.mobility = rec.cfg.mobility_model;
  rec.traffic = rec.cfg.traffic_pattern;
  rec.nodes = rec.cfg.num_nodes;
  rec.flows = rec.cfg.num_flows;
  rec.rate_pps = rec.cfg.rate_pps;
  rec.pause_s = sim::to_seconds(rec.cfg.pause);
  rec.duration_s = sim::to_seconds(rec.cfg.duration);
  rec.seed = rec.cfg.seed;

  const json::Value& res = v.at("result");
  scenario::RunResult& r = rec.result;
  r.scheme = rec.scheme;
  r.duration_s = rec.duration_s;
  r.total_energy_j = res.at("total_energy_j").as_double();
  r.energy_variance = res.at("energy_variance").as_double();
  r.energy_mean_j = res.at("energy_mean_j").as_double();
  r.energy_min_j = res.at("energy_min_j").as_double();
  r.energy_max_j = res.at("energy_max_j").as_double();
  r.originated = res.at("originated").as_u64();
  r.delivered = res.at("delivered").as_u64();
  r.pdr_percent = res.at("pdr_percent").as_double();
  r.avg_delay_s = res.at("avg_delay_s").as_double();
  r.delay_p50_s = res.at("delay_p50_s").as_double();
  r.delay_p90_s = res.at("delay_p90_s").as_double();
  r.avg_route_wait_s = res.at("avg_route_wait_s").as_double();
  r.avg_transit_s = res.at("avg_transit_s").as_double();
  r.energy_per_bit_j = res.at("energy_per_bit_j").as_double();
  r.control_tx = res.at("control_tx").as_u64();
  r.normalized_overhead = res.at("normalized_overhead").as_double();
  r.atim_tx = res.at("atim_tx").as_u64();
  r.data_tx_attempts = res.at("data_tx_attempts").as_u64();
  r.overhear_commits = res.at("overhear_commits").as_u64();
  r.overhear_declines = res.at("overhear_declines").as_u64();
  r.mac_sleeps = res.at("mac_sleeps").as_u64();
  r.rreq_tx = res.at("rreq_tx").as_u64();
  r.rrep_tx = res.at("rrep_tx").as_u64();
  r.rerr_tx = res.at("rerr_tx").as_u64();
  r.hello_tx = res.at("hello_tx").as_u64();
  r.data_tx_failed = res.at("data_tx_failed").as_u64();
  r.data_salvaged = res.at("data_salvaged").as_u64();
  r.dead_nodes = static_cast<std::size_t>(res.at("dead_nodes").as_u64());
  // Renamed from "first_death_s" at digest v3; read either spelling.
  if (const json::Value* g = res.find("first_node_death_s")) {
    r.first_death_s = g->as_double();
  } else {
    r.first_death_s = res.at("first_death_s").as_double();
  }
  if (const json::Value* g = res.find("partition_time_s")) {
    r.partition_time_s = g->as_double();
  }
  r.events_executed = res.at("events_executed").as_u64();

  for (const auto& e : res.at("per_node_energy_j").as_array()) {
    r.per_node_energy_j.push_back(e.as_double());
  }
  for (const auto& n : res.at("role_numbers").as_array()) {
    r.role_numbers.push_back(n.as_u64());
  }
  const auto& drops = res.at("drops").as_array();
  for (std::size_t i = 0; i < drops.size() && i < r.drops.size(); ++i) {
    r.drops[i] = drops[i].as_u64();
  }

  const json::Value& perf = res.at("perf");
  r.perf.events_executed = perf.at("events_executed").as_u64();
  r.perf.events_scheduled = perf.at("events_scheduled").as_u64();
  r.perf.handler_heap_fallbacks = perf.at("handler_heap_fallbacks").as_u64();
  r.perf.pool_hits = perf.at("pool_hits").as_u64();
  r.perf.pool_misses = perf.at("pool_misses").as_u64();
  r.perf.bytes_allocated = perf.at("bytes_allocated").as_u64();
  // Counters added after the v2 schema shipped postdate early stores:
  // tolerate their absence (they read back as zero).
  if (const json::Value* g = perf.find("queue_depth_high_water")) {
    r.perf.queue_depth_high_water = g->as_u64();
  }
  if (const json::Value* g = perf.find("queue_rung_spawns")) {
    r.perf.queue_rung_spawns = g->as_u64();
  }
  if (const json::Value* g = perf.find("dispatch_batches")) {
    r.perf.dispatch_batches = g->as_u64();
  }
  if (const json::Value* g = perf.find("batch_size_hist")) {
    const auto& hist = g->as_array();
    for (std::size_t i = 0;
         i < hist.size() && i < r.perf.batch_size_hist.size(); ++i) {
      r.perf.batch_size_hist[i] = hist[i].as_u64();
    }
  }
  if (const json::Value* g = perf.find("handler_moves")) {
    r.perf.handler_moves = g->as_u64();
  }
  if (const json::Value* g = perf.find("inplace_fires")) {
    r.perf.inplace_fires = g->as_u64();
  }
  if (const json::Value* g = perf.find("arrival_group_size_hist")) {
    const auto& hist = g->as_array();
    for (std::size_t i = 0;
         i < hist.size() && i < r.perf.arrival_group_size_hist.size(); ++i) {
      r.perf.arrival_group_size_hist[i] = hist[i].as_u64();
    }
  }
  if (const json::Value* g = perf.find("spatial_queries")) {
    r.perf.spatial_queries = g->as_u64();
  }
  if (const json::Value* g = perf.find("spatial_candidates_scanned")) {
    r.perf.spatial_candidates_scanned = g->as_u64();
  }
  if (const json::Value* g = perf.find("segment_refreshes")) {
    r.perf.segment_refreshes = g->as_u64();
  }
  if (const json::Value* g = perf.find("cs_cells_visited")) {
    r.perf.cs_cells_visited = g->as_u64();
  }
  r.perf.wall_seconds = perf.at("wall_seconds").as_double();
  r.perf.events_per_sec = perf.at("events_per_sec").as_double();

  return rec;
}

// Walks the complete ('\n'-terminated) lines of `path` sequentially, calling
// fn(offset, line) for each non-blank one. A torn trailing line (no newline,
// the only state a crash can leave) is skipped, matching load_results.
void for_each_line(const std::string& path,
                   const std::function<void(std::uint64_t, const std::string&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ResultStoreError("cannot open results file: " + path);
  std::uint64_t offset = 0;
  std::string line;
  while (std::getline(in, line)) {
    // getline hitting EOF mid-line means the trailing '\n' is missing.
    if (in.eof()) break;
    const std::uint64_t start = offset;
    offset += line.size() + 1;
    if (line.empty()) continue;
    fn(start, line);
  }
}

}  // namespace

JobRecord parse_result_line(std::string_view line) {
  return record_from_json(json::parse(line));
}

std::size_t scan_result_job(std::string_view line) {
  // record_to_json writes the fixed prefix {"v":2,"job":N, — peel the job
  // index straight out of the bytes; a full parse handles anything else.
  constexpr std::string_view kPrefix = "{\"v\":2,\"job\":";
  if (line.substr(0, kPrefix.size()) == kPrefix) {
    std::size_t job = 0;
    std::size_t i = kPrefix.size();
    bool digits = false;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      job = job * 10 + static_cast<std::size_t>(line[i] - '0');
      ++i;
      digits = true;
    }
    if (digits && i < line.size() && line[i] == ',') return job;
  }
  return static_cast<std::size_t>(json::parse(line).at("job").as_u64());
}

std::vector<RecordRef> scan_result_files(const std::vector<std::string>& paths) {
  std::map<std::size_t, RecordRef> by_job;  // last record wins
  for (std::size_t fi = 0; fi < paths.size(); ++fi) {
    for_each_line(paths[fi], [&](std::uint64_t offset, const std::string& line) {
      RecordRef ref;
      ref.job = scan_result_job(line);
      ref.file = fi;
      ref.offset = offset;
      ref.length = static_cast<std::uint32_t>(line.size());
      by_job[ref.job] = ref;
    });
  }
  std::vector<RecordRef> out;
  out.reserve(by_job.size());
  for (const auto& [_, ref] : by_job) out.push_back(ref);
  return out;
}

void for_each_result(const std::vector<std::string>& paths,
                     const std::function<void(JobRecord&&)>& fn) {
  const std::vector<RecordRef> winners = scan_result_files(paths);
  // One open stream per file; winners are job-ordered, not offset-ordered,
  // so re-seek per record (reads are line-sized and page-cache-backed).
  std::vector<std::ifstream> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    files.emplace_back(p, std::ios::binary);
    if (!files.back()) throw ResultStoreError("cannot open results file: " + p);
  }
  std::string buf;
  for (const RecordRef& ref : winners) {
    std::ifstream& in = files[ref.file];
    in.clear();
    in.seekg(static_cast<std::streamoff>(ref.offset));
    buf.resize(ref.length);
    if (!in.read(buf.data(), static_cast<std::streamsize>(ref.length))) {
      throw ResultStoreError(paths[ref.file] + ": short read at offset " +
                             std::to_string(ref.offset));
    }
    fn(parse_result_line(buf));
  }
}

std::vector<JobRecord> load_results(const std::string& path) {
  std::map<std::size_t, JobRecord> by_job;  // last record wins
  for_each_line(path, [&](std::uint64_t, const std::string& line) {
    JobRecord rec = record_from_json(json::parse(line));
    by_job[rec.job] = std::move(rec);
  });

  std::vector<JobRecord> out;
  out.reserve(by_job.size());
  for (auto& [_, rec] : by_job) out.push_back(std::move(rec));
  return out;
}

void AggregateAccumulator::add(const JobRecord& rec) {
  // Group key: the seed-excluded cell digest, which distinguishes cells by
  // *every* config parameter — nested sweep axes (mac.*, odpm.*, ...) form
  // their own cells even though the CSV's classic columns coincide. Records
  // arrive in job-index order, so first-appearance order matches expansion
  // order deterministically.
  auto [it, inserted] = by_cell_.try_emplace(rec.cell, cells_.size());
  if (inserted) {
    cells_.emplace_back();
    AggregateRow& row = cells_.back().row;
    row.cell = rec.cell;
    row.scheme = rec.scheme;
    row.routing = rec.routing;
    row.mobility = rec.mobility;
    row.traffic = rec.traffic;
    row.nodes = rec.nodes;
    row.flows = rec.flows;
    row.rate_pps = rec.rate_pps;
    row.pause_s = rec.pause_s;
    row.duration_s = rec.duration_s;
  }
  cells_[it->second].acc.add(rec.result);
  ++records_;
}

std::vector<AggregateRow> AggregateAccumulator::rows() const {
  std::vector<AggregateRow> rows;
  rows.reserve(cells_.size());
  for (const auto& c : cells_) {
    rows.push_back(c.row);
    rows.back().seeds = c.acc.count();
    rows.back().mean = c.acc.mean();
  }
  return rows;
}

std::vector<AggregateRow> aggregate(const std::vector<JobRecord>& records) {
  AggregateAccumulator acc;
  for (const auto& rec : records) acc.add(rec);
  return acc.rows();
}

std::string export_aggregate_csv(const std::vector<std::string>& paths) {
  AggregateAccumulator acc;
  for_each_result(paths, [&](JobRecord&& rec) { acc.add(rec); });
  return aggregate_csv(acc.rows());
}

std::string aggregate_csv(const std::vector<AggregateRow>& rows) {
  std::string out =
      "scheme,routing,mobility,traffic,nodes,flows,rate_pps,pause_s,"
      "duration_s,seeds,pdr_pct,energy_j,energy_var,energy_mean_j,"
      "epb_j_per_bit,delay_s,norm_overhead,ctrl_tx,hello_tx,dead_nodes,"
      "first_node_death_s,partition_time_s\n";
  char buf[512];
  for (const auto& row : rows) {
    const auto& m = row.mean;
    std::snprintf(
        buf, sizeof(buf),
        "%s,%s,%s,%s,%zu,%zu,%.3f,%.1f,%.1f,%zu,%.2f,%.1f,%.1f,%.1f,%.6g,"
        "%.4f,%.3f,%llu,%llu,%zu,%.1f,%.1f\n",
        std::string(scenario::scheme_name(row.scheme)).c_str(),
        std::string(scenario::to_string(row.routing)).c_str(),
        row.mobility.c_str(), row.traffic.c_str(), row.nodes,
        row.flows, row.rate_pps, row.pause_s, row.duration_s, row.seeds,
        m.pdr_percent, m.total_energy_j, m.energy_variance, m.energy_mean_j,
        m.energy_per_bit_j, m.avg_delay_s, m.normalized_overhead,
        static_cast<unsigned long long>(m.control_tx),
        static_cast<unsigned long long>(m.hello_tx), m.dead_nodes,
        m.first_death_s, m.partition_time_s);
    out += buf;
  }
  return out;
}

}  // namespace rcast::campaign
