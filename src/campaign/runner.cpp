#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/result_store.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace rcast::campaign {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

CampaignResult run_campaign(const Manifest& manifest, const RunnerOptions& opt,
                            const scenario::ScenarioConfig& base) {
  if (opt.shards == 0 || opt.shard >= opt.shards) {
    throw std::invalid_argument("runner: shard must be < shards (shards >= 1)");
  }

  CampaignResult cr;
  cr.jobs = expand(manifest, base);
  cr.outcomes.assign(cr.jobs.size(), JobOutcome{});

  std::optional<Journal> journal;
  std::optional<ResultStore> store;
  if (!opt.journal_path.empty()) {
    journal.emplace(Journal::open(opt.journal_path,
                                  campaign_digest(manifest.name, cr.jobs),
                                  cr.jobs.size()));
    // Durability knob rides the registered param surface; manifest base
    // overrides land in every expanded job, so read it off the first job.
    journal->set_sync_every(cr.jobs.empty()
                                ? base.journal_sync_every
                                : cr.jobs.front().cfg.journal_sync_every);
  }
  if (!opt.results_path.empty()) {
    store.emplace(ResultStore::open_append(opt.results_path));
  }

  // Jobs already committed in the journal are satisfied without re-running;
  // everything else goes on the shared work queue.
  std::vector<std::size_t> pending;
  pending.reserve(cr.jobs.size());
  for (const auto& job : cr.jobs) {
    if (journal) {
      const auto it = journal->entries().find(job.index);
      if (it != journal->entries().end()) {
        // The journal header already pinned the campaign digest, so a
        // per-entry digest mismatch means the file was hand-edited.
        if (it->second.digest != job.digest) {
          throw JournalError("journal entry for job " +
                             std::to_string(job.index) +
                             " does not match the manifest (cfg digest " +
                             it->second.digest + " vs " + job.digest + ")");
        }
        auto& outcome = cr.outcomes[job.index];
        outcome.status = JobStatus::kSkipped;
        outcome.wall_ms = it->second.wall_ms;
        outcome.error = it->second.error;
        ++cr.skipped;
        continue;
      }
    }
    // Jobs owned by other shards stay kNotRun here; their own worker
    // processes run them against their own journals.
    if (opt.shards > 1 && job.index % opt.shards != opt.shard) continue;
    pending.push_back(job.index);
  }

  // Resolve which job (if any) gets the EventTracer attached. Only the
  // owning worker touches the trace file, so no extra locking is needed.
  constexpr std::size_t kNoTrace = static_cast<std::size_t>(-1);
  std::size_t trace_idx = kNoTrace;
  if (!opt.trace_path.empty()) {
    if (opt.trace_job.empty()) {
      if (!pending.empty()) trace_idx = pending.front();
    } else {
      for (const std::size_t idx : pending) {
        if (cr.jobs[idx].id == opt.trace_job) {
          trace_idx = idx;
          break;
        }
      }
      if (trace_idx == kNoTrace) {
        std::fprintf(stderr,
                     "trace: job '%s' is not pending (unknown id or already "
                     "journaled) — no trace written\n",
                     opt.trace_job.c_str());
      }
    }
  }

  std::size_t threads = opt.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(pending.size(), 1));

  const auto campaign_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> started{0};
  std::mutex commit_mu;  // serializes store/journal appends + progress
  std::size_t done_this_run = 0;
  std::uint64_t events_this_run = 0;

  auto worker = [&] {
    for (;;) {
      // Claim under the max_jobs budget: `started` counts claims, so with
      // max_jobs=N exactly the first N pending jobs run, in order.
      if (opt.max_jobs > 0 &&
          started.fetch_add(1) >= opt.max_jobs) {
        return;
      }
      const std::size_t slot = next.fetch_add(1);
      if (slot >= pending.size()) return;
      const std::size_t idx = pending[slot];
      const Job& job = cr.jobs[idx];
      JobOutcome& outcome = cr.outcomes[idx];

      scenario::ScenarioConfig cfg = job.cfg;
      cfg.max_wall_seconds = opt.job_timeout_s;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        if (idx == trace_idx || opt.live != nullptr) {
          std::optional<std::ofstream> trace_out;
          std::optional<stats::EventTracer> tracer;
          scenario::Network net(cfg);
          if (idx == trace_idx) {
            trace_out.emplace(opt.trace_path);
            if (!*trace_out) {
              throw std::runtime_error("cannot open trace file " +
                                       opt.trace_path);
            }
            tracer.emplace(*trace_out);
            net.telemetry().subscribe_routing(&*tracer);
            net.telemetry().subscribe_mac(&*tracer);
          }
          if (opt.live != nullptr) {
            net.telemetry().subscribe_phy(opt.live);
            net.telemetry().subscribe_mac(opt.live);
            net.telemetry().subscribe_routing(opt.live);
          }
          outcome.result = net.run();
          if (tracer) {
            std::fprintf(
                stderr, "trace: %llu events (%s) -> %s\n",
                static_cast<unsigned long long>(tracer->lines_written()),
                job.id.c_str(), opt.trace_path.c_str());
          }
        } else {
          outcome.result = scenario::run_scenario(cfg);
        }
        outcome.status = JobStatus::kOk;
      } catch (const std::exception& e) {
        outcome.status = JobStatus::kFailed;
        outcome.error = e.what();
      }
      outcome.wall_ms = ms_between(t0, std::chrono::steady_clock::now());

      std::lock_guard<std::mutex> lock(commit_mu);
      // Result record first, journal line second: the journal is the commit
      // point, so a crash between the two leaves an orphan record that the
      // loader's last-wins dedupe supersedes after the job re-runs.
      std::optional<AppendExtent> extent;
      if (store && outcome.status == JobStatus::kOk) {
        extent = store->append(job, outcome.result, outcome.wall_ms);
      }
      if (journal) {
        JournalEntry e;
        e.job = job.index;
        e.digest = job.digest;
        e.ok = outcome.status == JobStatus::kOk;
        e.wall_ms = outcome.wall_ms;
        e.error = outcome.error;
        journal->append(e);
      }
      if (opt.live != nullptr) {
        if (outcome.status == JobStatus::kOk) {
          opt.live->mark_job_completed();
        } else {
          opt.live->mark_job_failed();
        }
      }
      if (opt.on_commit) {
        opt.on_commit(job, outcome, extent ? &*extent : nullptr);
      }

      ++done_this_run;
      if (outcome.status == JobStatus::kOk) {
        ++cr.completed;
        events_this_run += outcome.result.perf.events_executed;
      } else {
        ++cr.failed;
      }
      if (opt.progress) {
        const double elapsed_s =
            ms_between(campaign_start, std::chrono::steady_clock::now()) /
            1000.0;
        const std::size_t target =
            opt.max_jobs > 0 ? std::min(opt.max_jobs, pending.size())
                             : pending.size();
        const double eta_s =
            done_this_run > 0
                ? elapsed_s / static_cast<double>(done_this_run) *
                      static_cast<double>(target - done_this_run)
                : 0.0;
        std::fprintf(stderr,
                     "[%zu/%zu] %-32s %s %7.0f ms | %.2fM events/s | eta %.0f s\n",
                     done_this_run, target, job.id.c_str(),
                     outcome.status == JobStatus::kOk ? "ok    " : "FAILED",
                     outcome.wall_ms,
                     elapsed_s > 0.0
                         ? static_cast<double>(events_this_run) / elapsed_s / 1e6
                         : 0.0,
                     eta_s);
        if (outcome.status == JobStatus::kFailed) {
          std::fprintf(stderr, "        error: %s\n", outcome.error.c_str());
        }
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) workers.emplace_back(worker);
  for (auto& w : workers) w.join();

  for (const auto& outcome : cr.outcomes) {
    if (outcome.status == JobStatus::kNotRun) ++cr.remaining;
  }
  return cr;
}

}  // namespace rcast::campaign
