// Campaign runner: executes an expanded job list on a work-stealing worker
// pool (one independent Simulator per job, same isolation model as
// scenario::run_repetitions), with per-job wall-clock timeouts, failure
// capture (a throwing job is recorded as failed, never fatal to the
// campaign), crash-safe journaling, JSONL result persistence, and live
// progress/ETA reporting fed by each run's PerfCounters.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"  // AppendExtent
#include "scenario/experiment.hpp"    // scenario::average
#include "scenario/scenario.hpp"
#include "stats/live_counters.hpp"

namespace rcast::campaign {

struct JobOutcome;

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency (capped at the job count).
  std::size_t threads = 0;
  /// Per-job wall-clock budget in seconds; 0 = unlimited. A job that blows
  /// the budget is recorded as failed with a timeout error.
  double job_timeout_s = 0.0;
  /// Journal path; empty disables checkpointing (pure in-memory campaign,
  /// what the bench binaries use).
  std::string journal_path;
  /// JSONL results path; empty disables persistence.
  std::string results_path;
  /// Stop claiming new jobs once this many have been *newly* run this
  /// process (journal-skipped jobs don't count); 0 = no limit. Used by
  /// tests and CI to interrupt a campaign at a deterministic point.
  std::size_t max_jobs = 0;
  /// Progress/ETA lines on stderr after each job completes.
  bool progress = false;
  /// Attach an EventTracer (routing + MAC events, CSV) to a single job's
  /// telemetry bus and stream it to this path; empty disables tracing.
  std::string trace_path;
  /// Job id to trace (see Job::id, e.g. "rcast_dsr_r1_p0_s1"); empty traces
  /// the first pending job. A job that is skipped via the journal or never
  /// claimed produces no trace.
  std::string trace_job;
  /// Shard the pending job set across `shards` cooperating processes: this
  /// process only claims pending jobs with index % shards == shard. Journal
  /// skipping still covers every index, so per-shard journals carry the full
  /// campaign digest and job count and any shard's journal resumes cleanly.
  /// shards == 1 (the default) disables filtering.
  std::size_t shards = 1;
  std::size_t shard = 0;
  /// Called under the commit lock after each newly-run job is persisted
  /// (result record + journal line). `extent` locates the job's JSONL record
  /// in the results file, or is nullptr when no results file is configured
  /// or the job failed. The serving daemon's index and metrics snapshots
  /// hang off this.
  std::function<void(const Job&, const JobOutcome&, const AppendExtent*)>
      on_commit;
  /// When set, subscribed to every job's telemetry bus (phy + mac + routing)
  /// for the duration of the run and marked on each completion/failure —
  /// the live feed behind the daemon's /metrics endpoint. Must outlive the
  /// run_campaign call.
  stats::LiveCounters* live = nullptr;
};

enum class JobStatus {
  kOk,         // ran this process, result available
  kFailed,     // ran this process, threw or timed out
  kSkipped,    // already committed in the journal — not re-run
  kNotRun,     // never claimed (max_jobs cutoff hit first)
};

struct JobOutcome {
  JobStatus status = JobStatus::kNotRun;
  double wall_ms = 0.0;
  std::string error;            // only for kFailed (or a journaled failure)
  scenario::RunResult result;   // only valid when status == kOk
};

struct CampaignResult {
  std::vector<Job> jobs;
  std::vector<JobOutcome> outcomes;  // parallel to jobs

  std::size_t completed = 0;  // newly run OK this process
  std::size_t failed = 0;     // newly run, threw/timed out
  std::size_t skipped = 0;    // satisfied from the journal
  std::size_t remaining = 0;  // not run (max_jobs cutoff)

  bool all_done() const { return remaining == 0 && failed == 0; }

  /// Mean over every in-memory OK result whose config satisfies `pred`
  /// (seed-ascending order, matching scenario::average over
  /// run_repetitions). Throws if no job matches.
  template <typename Pred>
  scenario::RunResult average_cell(Pred&& pred) const {
    std::vector<scenario::RunResult> runs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (outcomes[i].status == JobStatus::kOk && pred(jobs[i].cfg)) {
        runs.push_back(outcomes[i].result);
      }
    }
    return scenario::average(runs);
  }
};

/// Expands `manifest` over `base` and runs it per `opt`. With a journal
/// configured, committed jobs are skipped and new completions are appended
/// — calling this again after an interruption *is* the resume path.
CampaignResult run_campaign(const Manifest& manifest, const RunnerOptions& opt,
                            const scenario::ScenarioConfig& base = {});

}  // namespace rcast::campaign
