// Campaign manifests: a declarative parameter grid (scheme × routing ×
// rate × pause × node count × extra axes × seed) that expands
// deterministically into a job list. The text form is a flat key = value
// file (TOML-like scalars, comma-separated lists, '#' comments) so a whole
// paper-scale evaluation is one reviewable artifact instead of a loop
// buried in a bench binary.
//
// Beyond the six classic grid keys, *any* parameter registered in
// scenario/params.hpp (e.g. "mac.atim_window_ms", "odpm.rrep_timeout_s")
// is a valid manifest key: a single value is a scalar override applied to
// every job, a comma-separated list becomes an additional sweep axis.
//
// Expansion order is part of the format contract: scheme-major, seed-minor
// (scheme → routing → rate → pause → nodes → extra axes in manifest order
// → seed). Job indices, ids, and config digests are stable across
// processes, which is what lets the journal resume an interrupted campaign
// and the result store prove byte-identical aggregates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/scheme.hpp"

namespace rcast::campaign {

/// Thrown on malformed manifest text; message carries the line number.
class ManifestError : public std::runtime_error {
 public:
  explicit ManifestError(const std::string& what) : std::runtime_error(what) {}
};

/// One pause-time grid point. `is_static` models the paper's "static
/// scenario" column: the pause is pinned to the scenario duration at
/// expansion time, whatever that duration is.
struct PauseSpec {
  double seconds = 0.0;
  bool is_static = false;

  static PauseSpec fixed(double s) { return {s, false}; }
  static PauseSpec static_scenario() { return {0.0, true}; }
};

/// A sweep axis over a registered scenario parameter (scenario/params.hpp).
/// Values are canonical parameter texts, in expansion order.
struct SweepAxis {
  std::string param;
  std::vector<std::string> values;
};

struct Manifest {
  std::string name = "campaign";

  // Grid axes (each axis must be non-empty).
  std::vector<scenario::Scheme> schemes{scenario::Scheme::kRcast};
  std::vector<scenario::RoutingProtocol> routings{
      scenario::RoutingProtocol::kDsr};
  std::vector<double> rates_pps{1.0};
  std::vector<PauseSpec> pauses{PauseSpec::fixed(600.0)};
  std::vector<std::size_t> node_counts{100};
  std::size_t seeds = 1;

  // Scalars applied to every job.
  std::uint64_t seed_base = 1;
  double duration_s = 150.0;
  std::size_t flows = 0;  // 0 = max(1, node count / 5) (the paper's ratio)
  double payload_bytes = 64.0;
  double speed_mps = 20.0;
  double battery_j = 0.0;
  double world_w_m = 1500.0;
  double world_h_m = 300.0;

  /// Registered-parameter scalar overrides, (name, canonical value text) in
  /// manifest order; applied to every job before the grid fields.
  std::vector<std::pair<std::string, std::string>> overrides;

  /// Additional sweep axes over registered parameters, in manifest order
  /// (innermost-but-one loops; the seed stays innermost).
  std::vector<SweepAxis> axes;

  std::size_t job_count() const {
    std::size_t n = schemes.size() * routings.size() * rates_pps.size() *
                    pauses.size() * node_counts.size() * seeds;
    for (const auto& axis : axes) n *= axis.values.size();
    return n;
  }
};

/// Parses the key = value text form. Recognized keys:
///   name, schemes, routings, rates_pps, pauses_s (numbers or "static"),
///   nodes, seeds, seed_base, duration_s, flows, payload_bytes, speed_mps,
///   battery_j, world_m ("WxH") — plus any parameter registered in
///   scenario/params.hpp: a single value is an override, a comma-separated
///   list a sweep axis. Parameters owned by the classic grid keys (scheme,
///   routing, rate_pps, pause_s, nodes, seed) must use those keys.
/// Unknown or duplicate keys, malformed or out-of-bounds values raise
/// ManifestError with the offending line number.
Manifest parse_manifest(std::string_view text);

/// Reads and parses a manifest file; ManifestError on I/O failure too.
Manifest parse_manifest_file(const std::string& path);

/// One expanded grid point.
struct Job {
  std::size_t index = 0;     // position in expansion order
  std::string id;            // e.g. "RCAST/DSR/r1/p600/n100/s3" (extra axes
                             // append "name=value" segments before the seed)
  std::string digest;        // 16-hex-digit config digest
  scenario::ScenarioConfig cfg;
};

/// Expands the grid over `base` (subsystem knobs the manifest leaves
/// untouched come from `base`; manifest overrides and axes win over it).
std::vector<Job> expand(const Manifest& m,
                        const scenario::ScenarioConfig& base = {});

/// FNV-1a digest over the canonical text of every in-digest parameter in
/// the registry (scenario/params.hpp), tagged "cfg/v2": two configs with
/// the same digest produce the same RunResult (the simulator is
/// deterministic given the config). Any registry change — adding a field,
/// renaming, reordering — changes digests and therefore invalidates
/// existing campaign journals; bump the version tag when that happens so
/// the invalidation is explicit (DESIGN.md §11).
std::string config_digest(const scenario::ScenarioConfig& cfg);

/// Same as config_digest but with the seed excluded: identifies the
/// aggregation cell a job belongs to (all seeds of one grid point share
/// it), whatever combination of axes produced the config.
std::string config_cell_digest(const scenario::ScenarioConfig& cfg);

/// Digest of the whole expanded job list (order-sensitive); the journal
/// header pins this so a stale journal can never corrupt a resumed run.
std::string campaign_digest(const std::string& name,
                            const std::vector<Job>& jobs);

}  // namespace rcast::campaign
