// Crash-safe campaign journal: an append-only, fsync'd record of finished
// jobs. One header line pins the campaign digest (manifest + expansion
// order) and job count; each subsequent line commits one job. A job's
// JSONL result record is written *before* its journal line, so the journal
// line is the commit point — on resume, any result record without a
// matching journal entry is a torn write and is superseded by re-running
// the job (deterministically producing the same bytes).
//
// The format is a line-oriented text file so a half-written trailing line
// (the only state a crash can leave, given append + fsync ordering) is
// detected by the missing newline and discarded.
#pragma once

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

namespace rcast::campaign {

class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

struct JournalEntry {
  std::size_t job = 0;
  std::string digest;       // config digest of the committed job
  bool ok = false;          // false = job failed (threw / timed out)
  double wall_ms = 0.0;
  std::string error;        // single line, only meaningful when !ok
};

class Journal {
 public:
  /// Opens `path` for appending, creating it (with a header) if absent.
  /// An existing journal must carry the same campaign digest and job count,
  /// otherwise it belongs to a different campaign and opening throws.
  /// Pre-existing committed entries are loaded and available via entries().
  static Journal open(const std::string& path,
                      const std::string& campaign_digest,
                      std::size_t job_count);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Entries committed before this process opened the journal.
  const std::map<std::size_t, JournalEntry>& entries() const {
    return entries_;
  }

  /// Appends one commit line and fsyncs it to disk before returning.
  void append(const JournalEntry& e);

  void close();

 private:
  Journal() = default;

  std::FILE* f_ = nullptr;
  std::map<std::size_t, JournalEntry> entries_;
};

}  // namespace rcast::campaign
