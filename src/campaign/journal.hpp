// Crash-safe campaign journal: an append-only, fsync'd record of finished
// jobs. One header line pins the campaign digest (manifest + expansion
// order) and job count; each subsequent line commits one job. A job's
// JSONL result record is written *before* its journal line, so the journal
// line is the commit point — on resume, any result record without a
// matching journal entry is a torn write and is superseded by re-running
// the job (deterministically producing the same bytes).
//
// The format is a line-oriented text file so a half-written trailing line
// (the only state a crash can leave, given append + fsync ordering) is
// detected by the missing newline and discarded.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

namespace rcast::campaign {

class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

struct JournalEntry {
  std::size_t job = 0;
  std::string digest;       // config digest of the committed job
  bool ok = false;          // false = job failed (threw / timed out)
  double wall_ms = 0.0;
  std::string error;        // single line, only meaningful when !ok
};

/// Read-only snapshot of a journal file: the header plus every complete
/// committed line at the moment of the read. Unlike Journal::open this never
/// truncates a torn tail or opens the file for append, so it is safe to call
/// on a journal another process is actively writing (the serving daemon polls
/// live worker journals this way).
struct JournalView {
  std::string campaign_digest;
  std::size_t job_count = 0;
  std::map<std::size_t, JournalEntry> entries;
};

class Journal {
 public:
  /// Opens `path` for appending, creating it (with a header) if absent.
  /// An existing journal must carry the same campaign digest and job count,
  /// otherwise it belongs to a different campaign and opening throws.
  /// Pre-existing committed entries are loaded and available via entries().
  static Journal open(const std::string& path,
                      const std::string& campaign_digest,
                      std::size_t job_count);

  /// Parses `path` read-only (see JournalView). Throws JournalError if the
  /// file is missing or the header is malformed; a torn trailing line is
  /// ignored, not repaired.
  static JournalView load(const std::string& path);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Entries committed before this process opened the journal.
  const std::map<std::size_t, JournalEntry>& entries() const {
    return entries_;
  }

  /// Appends one commit line. The line is flushed to the OS immediately
  /// (visible to concurrent readers) and fsynced every `sync_every` appends
  /// (see set_sync_every); with the default of 1 every append is durable
  /// before this returns.
  void append(const JournalEntry& e);

  /// Fsync the journal every N appends (N >= 1; default 1). Batching trades
  /// durability for throughput: a crash can lose up to N-1 trailing commit
  /// lines, which on resume just re-runs those jobs — their orphaned result
  /// records are superseded by last-wins dedupe, so exports stay
  /// byte-identical. Flushing still happens on every append.
  void set_sync_every(std::uint64_t n);

  /// Fsyncs any batched appends now.
  void sync();

  void close();

 private:
  Journal() = default;

  std::FILE* f_ = nullptr;
  std::map<std::size_t, JournalEntry> entries_;
  std::uint64_t sync_every_ = 1;
  std::uint64_t unsynced_ = 0;
};

}  // namespace rcast::campaign
