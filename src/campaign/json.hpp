// Minimal JSON value + parser/printer for the campaign result store.
//
// Scope is deliberately small: the only JSON this repo reads is the JSONL it
// wrote itself (one flat-ish object per job), so this is a strict RFC-8259
// subset — no comments, no trailing commas — with two conveniences:
// doubles are printed with round-trip precision (%.17g) and non-finite
// numbers are written as null (JSON has no NaN/Inf) and read back as NaN.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rcast::campaign::json {

/// Thrown on malformed input; carries the byte offset of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;
using Array = std::vector<Value>;
/// std::map keeps keys sorted, which the writer never relies on (it emits
/// fields in insertion-independent, hand-chosen order via Writer), and the
/// reader only looks keys up.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(std::int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(Array a) : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { require(Type::kBool); return bool_; }
  /// Numbers only; a null reads back as NaN (the writer's encoding for
  /// non-finite doubles).
  double as_double() const;
  std::uint64_t as_u64() const { return static_cast<std::uint64_t>(as_double()); }
  const std::string& as_string() const { require(Type::kString); return str_; }
  const Array& as_array() const { require(Type::kArray); return *arr_; }
  const Object& as_object() const { require(Type::kObject); return *obj_; }

  /// Object member access; throws if not an object or key missing.
  const Value& at(const std::string& key) const;
  /// Object member access; returns nullptr if absent (or not an object).
  const Value* find(const std::string& key) const;

 private:
  void require(Type t) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses exactly one JSON value (trailing whitespace allowed, anything else
/// is an error). Throws ParseError.
Value parse(std::string_view text);

/// Streaming writer that preserves field order — the result store depends on
/// deterministic output bytes for the resume byte-identity guarantee.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view k);
  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double d);
  Writer& value(std::uint64_t u);
  Writer& value(std::int64_t i);
  Writer& value(bool b);
  Writer& null();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  void write_escaped(std::string_view s);

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace rcast::campaign::json
