#include "campaign/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "scenario/params.hpp"
#include "util/flags.hpp"

namespace rcast::campaign {

namespace {

std::string trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

std::vector<std::string> split_list(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto comma = v.find(',', start);
    const std::string item =
        trim(std::string_view(v).substr(start, comma - start));
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw ManifestError("manifest line " + std::to_string(line) + ": " + what);
}

double need_double(int line, const std::string& key, const std::string& v) {
  const auto d = Flags::parse_double(v);
  if (!d) fail(line, key + ": expected a number, got '" + v + "'");
  return *d;
}

std::uint64_t need_u64(int line, const std::string& key,
                       const std::string& v) {
  const auto u = Flags::parse_u64(v);
  if (!u) fail(line, key + ": expected a non-negative integer, got '" + v + "'");
  return *u;
}

// FNV-1a 64-bit over a canonical text rendering.
class Digest {
 public:
  void mix(std::string_view s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    mix_char('|');
  }
  void mix(double d) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    mix(buf);
  }
  void mix(std::uint64_t u) { mix(std::to_string(u)); }
  void mix(std::int64_t i) { mix(std::to_string(i)); }

  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h_));
    return buf;
  }

 private:
  void mix_char(char c) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= 0x100000001b3ULL;
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// Compact number rendering for job ids ("r0.4", "p600", not "p600.000000").
std::string num_id(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Registered params owned by the classic grid keys; as manifest overrides
// or extra axes they would fight the expansion loops, so the parser points
// at the legacy spelling instead.
constexpr std::pair<std::string_view, std::string_view> kAxisOwned[] = {
    {"scheme", "schemes"},   {"routing", "routings"},
    {"power.scheme", "schemes"}, {"routing.protocol", "routings"},
    {"rate_pps", "rates_pps"}, {"pause_s", "pauses_s"},
    {"nodes", "nodes"},      {"seed", "seeds / seed_base"},
};

std::string_view axis_owner(std::string_view param) {
  for (const auto& [p, owner] : kAxisOwned) {
    if (p == param) return owner;
  }
  return {};
}

}  // namespace

Manifest parse_manifest(std::string_view text) {
  Manifest m;
  std::set<std::string> seen;
  std::istringstream in{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, key + ": empty value");
    if (!seen.insert(key).second) fail(line_no, "duplicate key '" + key + "'");

    if (key == "name") {
      m.name = value;
    } else if (key == "schemes") {
      m.schemes.clear();
      for (const auto& item : split_list(value)) {
        const auto s = scenario::scheme_from_string(item);
        if (!s) fail(line_no, "unknown scheme '" + item + "'");
        m.schemes.push_back(*s);
      }
      if (m.schemes.empty()) fail(line_no, "schemes: empty list");
    } else if (key == "routings") {
      m.routings.clear();
      for (const auto& item : split_list(value)) {
        const auto p = scenario::routing_from_string(item);
        if (!p) fail(line_no, "unknown routing '" + item + "'");
        m.routings.push_back(*p);
      }
      if (m.routings.empty()) fail(line_no, "routings: empty list");
    } else if (key == "rates_pps") {
      m.rates_pps.clear();
      for (const auto& item : split_list(value)) {
        const double r = need_double(line_no, key, item);
        if (r <= 0.0) fail(line_no, "rates_pps: must be > 0");
        m.rates_pps.push_back(r);
      }
      if (m.rates_pps.empty()) fail(line_no, "rates_pps: empty list");
    } else if (key == "pauses_s") {
      m.pauses.clear();
      for (const auto& item : split_list(value)) {
        if (item == "static") {
          m.pauses.push_back(PauseSpec::static_scenario());
        } else {
          const double p = need_double(line_no, key, item);
          if (p < 0.0) fail(line_no, "pauses_s: must be >= 0");
          m.pauses.push_back(PauseSpec::fixed(p));
        }
      }
      if (m.pauses.empty()) fail(line_no, "pauses_s: empty list");
    } else if (key == "nodes") {
      m.node_counts.clear();
      for (const auto& item : split_list(value)) {
        const auto n = need_u64(line_no, key, item);
        if (n < 2) fail(line_no, "nodes: need at least 2 nodes");
        m.node_counts.push_back(static_cast<std::size_t>(n));
      }
      if (m.node_counts.empty()) fail(line_no, "nodes: empty list");
    } else if (key == "seeds") {
      m.seeds = static_cast<std::size_t>(need_u64(line_no, key, value));
      if (m.seeds == 0) fail(line_no, "seeds: must be >= 1");
    } else if (key == "seed_base") {
      m.seed_base = need_u64(line_no, key, value);
    } else if (key == "duration_s") {
      m.duration_s = need_double(line_no, key, value);
      if (m.duration_s <= 0.0) fail(line_no, "duration_s: must be > 0");
    } else if (key == "flows") {
      m.flows = static_cast<std::size_t>(need_u64(line_no, key, value));
    } else if (key == "payload_bytes") {
      m.payload_bytes = need_double(line_no, key, value);
      if (m.payload_bytes <= 0.0) fail(line_no, "payload_bytes: must be > 0");
    } else if (key == "speed_mps") {
      m.speed_mps = need_double(line_no, key, value);
      if (m.speed_mps < 0.0) fail(line_no, "speed_mps: must be >= 0");
    } else if (key == "battery_j") {
      m.battery_j = need_double(line_no, key, value);
      if (m.battery_j < 0.0) fail(line_no, "battery_j: must be >= 0");
    } else if (key == "world_m") {
      const auto x = value.find('x');
      if (x == std::string::npos) fail(line_no, "world_m: expected 'WxH'");
      m.world_w_m = need_double(line_no, key, trim(std::string_view(value).substr(0, x)));
      m.world_h_m = need_double(line_no, key, trim(std::string_view(value).substr(x + 1)));
      if (m.world_w_m <= 0.0 || m.world_h_m <= 0.0) {
        fail(line_no, "world_m: dimensions must be > 0");
      }
    } else if (const scenario::Param* p = scenario::find_param(key)) {
      // Any registered scenario parameter: single value = scalar override,
      // comma-separated list = extra sweep axis.
      if (const auto owner = axis_owner(key); !owner.empty()) {
        fail(line_no, "'" + key + "' is a grid axis; use the '" +
                          std::string(owner) + "' key");
      }
      const auto items = split_list(value);
      if (items.empty()) fail(line_no, key + ": empty value");
      std::vector<std::string> canonical;
      canonical.reserve(items.size());
      for (const auto& item : items) {
        try {
          canonical.push_back(p->parse(item).text());
        } catch (const scenario::ParamError& e) {
          fail(line_no, e.what());
        }
      }
      if (value.find(',') != std::string::npos) {
        m.axes.push_back(SweepAxis{key, std::move(canonical)});
      } else {
        m.overrides.emplace_back(key, std::move(canonical.front()));
      }
    } else {
      fail(line_no, "unknown key '" + key +
                        "' (not a manifest key or a registered scenario "
                        "parameter; see rcast_sim --help-params)");
    }
  }
  return m;
}

Manifest parse_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ManifestError("cannot open manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str());
}

namespace {

// Both digests iterate the parameter registry, so every behavior-affecting
// ScenarioConfig field is mixed (the ParamRegistry completeness test pins
// this). The version tag makes registry changes an explicit invalidation:
// adding/renaming/reordering a parameter changes every digest, which
// retires existing campaign journals — bump the tag when you change the
// registry so the incompatibility is visible in code review (DESIGN.md §11).
std::string registry_digest(const scenario::ScenarioConfig& cfg,
                            const char* tag, bool with_seed) {
  Digest d;
  d.mix(tag);
  for (const scenario::Param& p : scenario::param_registry()) {
    if (!p.in_digest) continue;
    if (!with_seed && p.name == "seed") continue;
    d.mix(p.name);
    d.mix(p.get(cfg).text());
  }
  return d.hex();
}

}  // namespace

std::string config_digest(const scenario::ScenarioConfig& cfg) {
  return registry_digest(cfg, "cfg/v3", /*with_seed=*/true);
}

std::string config_cell_digest(const scenario::ScenarioConfig& cfg) {
  return registry_digest(cfg, "cell/v3", /*with_seed=*/false);
}

std::vector<Job> expand(const Manifest& m, const scenario::ScenarioConfig& base) {
  if (m.schemes.empty() || m.routings.empty() || m.rates_pps.empty() ||
      m.pauses.empty() || m.node_counts.empty() || m.seeds == 0) {
    throw ManifestError("manifest '" + m.name + "': every grid axis must be non-empty");
  }
  for (const auto& axis : m.axes) {
    if (axis.values.empty()) {
      throw ManifestError("manifest '" + m.name + "': axis '" + axis.param +
                          "' has no values");
    }
  }

  // Resolve override/axis params once; parse_manifest validated the names.
  auto resolve = [&](const std::string& name) -> const scenario::Param& {
    const scenario::Param* p = scenario::find_param(name);
    if (p == nullptr) {
      throw ManifestError("manifest '" + m.name + "': unknown parameter '" +
                          name + "'");
    }
    return *p;
  };

  // Base config with every scalar override applied, cloned per job.
  scenario::ScenarioConfig overridden = base;
  for (const auto& [name, text] : m.overrides) {
    const scenario::Param& p = resolve(name);
    try {
      p.set(overridden, p.parse(text));
    } catch (const scenario::ParamError& e) {
      throw ManifestError("manifest '" + m.name + "': " + e.what());
    }
  }

  // Odometer over the extra axes (first axis slowest, matching the nesting
  // of the classic loops); empty when there are none.
  std::vector<std::size_t> odo(m.axes.size(), 0);
  const auto advance_odo = [&]() -> bool {
    for (std::size_t i = odo.size(); i-- > 0;) {
      if (++odo[i] < m.axes[i].values.size()) return true;
      odo[i] = 0;
    }
    return false;
  };

  std::vector<Job> jobs;
  jobs.reserve(m.job_count());
  for (const auto scheme : m.schemes) {
    for (const auto routing : m.routings) {
      for (const double rate : m.rates_pps) {
        for (const auto& pause : m.pauses) {
          for (const std::size_t nodes : m.node_counts) {
            bool more_axes = true;
            for (; more_axes; more_axes = advance_odo()) {
              for (std::size_t k = 0; k < m.seeds; ++k) {
                Job job;
                job.index = jobs.size();
                job.cfg = overridden;
                job.cfg.scheme = scheme;
                job.cfg.routing = routing;
                job.cfg.rate_pps = rate;
                job.cfg.num_nodes = nodes;
                job.cfg.num_flows =
                    m.flows > 0 ? m.flows
                                : std::max<std::size_t>(1, nodes / 5);
                job.cfg.duration = sim::from_seconds(m.duration_s);
                job.cfg.pause = pause.is_static
                                    ? job.cfg.duration
                                    : sim::from_seconds(pause.seconds);
                job.cfg.seed = m.seed_base + k;
                job.cfg.payload_bits =
                    static_cast<std::int64_t>(m.payload_bytes) * 8;
                job.cfg.max_speed_mps = m.speed_mps;
                job.cfg.battery_joules = m.battery_j;
                job.cfg.world = {m.world_w_m, m.world_h_m};

                std::ostringstream id;
                id << scenario::scheme_name(scheme) << '/'
                   << scenario::to_string(routing) << "/r" << num_id(rate)
                   << "/p"
                   << (pause.is_static ? std::string("static")
                                       : num_id(pause.seconds))
                   << "/n" << nodes;
                for (std::size_t i = 0; i < m.axes.size(); ++i) {
                  const scenario::Param& p = resolve(m.axes[i].param);
                  const auto value = p.parse(m.axes[i].values[odo[i]]);
                  p.set(job.cfg, value);
                  id << '/' << m.axes[i].param << '=' << value.pretty();
                }
                id << "/s" << job.cfg.seed;

                if (job.cfg.num_flows == 0) {
                  throw ManifestError("manifest '" + m.name + "': job '" +
                                      id.str() + "' expands to 0 flows");
                }
                job.digest = config_digest(job.cfg);
                job.id = id.str();
                jobs.push_back(std::move(job));
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

std::string campaign_digest(const std::string& name,
                            const std::vector<Job>& jobs) {
  Digest d;
  d.mix(name);
  d.mix(static_cast<std::uint64_t>(jobs.size()));
  for (const auto& job : jobs) d.mix(job.digest);
  return d.hex();
}

}  // namespace rcast::campaign
