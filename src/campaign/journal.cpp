#include "campaign/journal.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "util/flags.hpp"

namespace rcast::campaign {

namespace {

constexpr const char* kMagic = "rcast-campaign-journal";
constexpr const char* kVersion = "v1";

void fsync_file(std::FILE* f) {
  std::fflush(f);
#ifdef _WIN32
  _commit(_fileno(f));
#else
  ::fsync(fileno(f));
#endif
}

// Journal fields never contain spaces except the trailing quoted error, so
// a line parses as whitespace-split tokens of key=value.
std::string sanitize_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\n' || c == '\r') {
      out.push_back(' ');
    } else if (c == '"') {
      out.push_back('\'');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string token_value(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return "";
  return token.substr(prefix.size());
}

// Parses every complete ('\n'-terminated) line of `content` into `view`.
// Returns the byte offset just past the last complete line; anything after
// it is a torn tail the caller may truncate (open) or ignore (load).
std::size_t parse_journal(const std::string& path, const std::string& content,
                          JournalView& view) {
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const auto nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn trailing line
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    std::istringstream tok(line);
    std::string first;
    tok >> first;
    if (!have_header) {
      if (first != kMagic) {
        throw JournalError(path + ": not a campaign journal");
      }
      std::string version, digest_tok, jobs_tok;
      tok >> version >> digest_tok >> jobs_tok;
      if (version != kVersion) {
        throw JournalError(path + ": unsupported journal version '" + version + "'");
      }
      view.campaign_digest = token_value(digest_tok, "campaign");
      const std::string jobs_s = token_value(jobs_tok, "jobs");
      const auto jobs = Flags::parse_u64(jobs_s);
      if (!jobs) throw JournalError(path + ": malformed journal job count");
      view.job_count = static_cast<std::size_t>(*jobs);
      have_header = true;
      continue;
    }

    if (first != "done") continue;  // future record kinds: skip, don't choke
    JournalEntry e;
    bool saw_job = false, saw_status = false;
    std::string t;
    while (tok >> t) {
      if (auto v = token_value(t, "job"); !v.empty()) {
        const auto u = Flags::parse_u64(v);
        if (!u) throw JournalError(path + ": bad job index in '" + line + "'");
        e.job = static_cast<std::size_t>(*u);
        saw_job = true;
      } else if (auto c = token_value(t, "cfg"); !c.empty()) {
        e.digest = c;
      } else if (auto s = token_value(t, "status"); !s.empty()) {
        e.ok = (s == "ok");
        saw_status = true;
      } else if (auto w = token_value(t, "wall_ms"); !w.empty()) {
        e.wall_ms = Flags::parse_double(w).value_or(0.0);
      } else if (t.rfind("error=", 0) == 0) {
        // The error is the quoted remainder of the line.
        const auto q = line.find("error=\"");
        if (q != std::string::npos) {
          const auto start = q + 7;
          const auto end = line.rfind('"');
          if (end > start) e.error = line.substr(start, end - start);
        }
        break;
      }
    }
    if (!saw_job || !saw_status) {
      throw JournalError(path + ": malformed journal line '" + line + "'");
    }
    if (e.job >= view.job_count) {
      throw JournalError(path + ": journal entry for out-of-range job " +
                         std::to_string(e.job));
    }
    view.entries[e.job] = std::move(e);
  }
  return pos;
}

std::string read_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  exists = static_cast<bool>(in);
  if (!exists) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

JournalView Journal::load(const std::string& path) {
  bool exists = false;
  const std::string content = read_file(path, exists);
  if (!exists) throw JournalError(path + ": no such journal");
  JournalView view;
  parse_journal(path, content, view);
  if (view.campaign_digest.empty()) {
    throw JournalError(path + ": journal has no header (yet)");
  }
  return view;
}

Journal Journal::open(const std::string& path,
                      const std::string& campaign_digest,
                      std::size_t job_count) {
  Journal j;

  // Read whatever already exists. Only lines terminated by '\n' count; a
  // torn final line from a crash is silently dropped.
  bool exists = false;
  const std::string content = read_file(path, exists);

  JournalView view;
  const std::size_t pos = parse_journal(path, content, view);
  const bool have_header = !view.campaign_digest.empty();
  if (have_header) {
    if (view.campaign_digest != campaign_digest) {
      throw JournalError(path + ": journal belongs to a different campaign (digest " +
                         view.campaign_digest + ", expected " + campaign_digest + ")");
    }
    if (view.job_count != job_count) {
      throw JournalError(path + ": journal job count mismatch");
    }
  }
  j.entries_ = std::move(view.entries);

  // Drop torn trailing bytes so the next append starts on a fresh line
  // instead of merging with a half-written record.
  if (pos < content.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, pos, ec);
    if (ec) throw JournalError(path + ": cannot truncate torn tail: " + ec.message());
  }

  j.f_ = std::fopen(path.c_str(), "ab");
  if (!j.f_) throw JournalError("cannot open journal for append: " + path);
  if (!have_header) {
    std::ostringstream os;
    os << kMagic << ' ' << kVersion << " campaign=" << campaign_digest
       << " jobs=" << job_count << '\n';
    const std::string header = os.str();
    std::fwrite(header.data(), 1, header.size(), j.f_);
    fsync_file(j.f_);
  }
  return j;
}

Journal::Journal(Journal&& other) noexcept
    : f_(other.f_),
      entries_(std::move(other.entries_)),
      sync_every_(other.sync_every_),
      unsynced_(other.unsynced_) {
  other.f_ = nullptr;
  other.unsynced_ = 0;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (f_) {
    if (unsynced_ > 0) fsync_file(f_);
    unsynced_ = 0;
    std::fclose(f_);
    f_ = nullptr;
  }
}

void Journal::set_sync_every(std::uint64_t n) {
  if (n == 0) throw JournalError("journal sync_every must be >= 1");
  sync_every_ = n;
}

void Journal::sync() {
  if (!f_) return;
  fsync_file(f_);
  unsynced_ = 0;
}

void Journal::append(const JournalEntry& e) {
  if (!f_) throw JournalError("journal is closed");
  std::ostringstream os;
  os << "done job=" << e.job << " cfg=" << e.digest
     << " status=" << (e.ok ? "ok" : "failed") << " wall_ms=" << e.wall_ms;
  if (!e.ok) os << " error=\"" << sanitize_error(e.error) << '"';
  os << '\n';
  const std::string line = os.str();
  if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) {
    throw JournalError("journal write failed");
  }
  // Always push the line to the OS so concurrent readers (the serving
  // daemon) observe commits promptly even between batched fsyncs; a crash
  // can then only tear the trailing line, which open() repairs.
  std::fflush(f_);
  if (++unsynced_ >= sync_every_) {
    fsync_file(f_);
    unsynced_ = 0;
  }
}

}  // namespace rcast::campaign
