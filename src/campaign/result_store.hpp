// Structured result store for campaigns: one JSONL record per finished job
// (config + full RunResult + perf counters), plus aggregation into the
// paper-style per-cell CSV the bench binaries and `rcast_campaign export`
// print.
//
// Determinism contract: records are written with fixed field order and
// round-trip float precision, the loader dedupes by job index keeping the
// *last* record (a torn pre-journal write is superseded by the re-run,
// which produces identical bytes), and aggregation walks cells in job-index
// order — so an interrupted-then-resumed campaign exports a CSV that is
// byte-identical to an uninterrupted one.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "scenario/scenario.hpp"

namespace rcast::campaign {

class ResultStoreError : public std::runtime_error {
 public:
  explicit ResultStoreError(const std::string& what)
      : std::runtime_error(what) {}
};

class ResultStore {
 public:
  /// Opens `path` for appending (creates it if absent).
  static ResultStore open_append(const std::string& path);

  ResultStore(ResultStore&& other) noexcept;
  ResultStore& operator=(ResultStore&&) = delete;
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ~ResultStore();

  /// Appends one record and fsyncs. Call *before* the journal commit so a
  /// journaled job always has its record on disk.
  void append(const Job& job, const scenario::RunResult& r, double wall_ms);

  void close();

 private:
  ResultStore() = default;

  std::FILE* f_ = nullptr;
};

/// Serializes one job record to a single JSONL line (no trailing newline).
std::string record_to_json(const Job& job, const scenario::RunResult& r,
                           double wall_ms);

/// One record read back from the store.
struct JobRecord {
  std::size_t job = 0;
  std::string id;
  std::string digest;
  double wall_ms = 0.0;
  /// The full scenario config, reconstructed through the parameter registry
  /// (every registered key present in the record's "config" object).
  scenario::ScenarioConfig cfg;
  /// Seed-excluded cell digest of `cfg` (config_cell_digest): jobs sharing
  /// it are seeds of the same grid point, whatever axes produced them.
  std::string cell;
  // Convenience grid coordinates, derived from `cfg`.
  scenario::Scheme scheme = scenario::Scheme::kRcast;
  scenario::RoutingProtocol routing = scenario::RoutingProtocol::kDsr;
  std::size_t nodes = 0;
  std::size_t flows = 0;
  double rate_pps = 0.0;
  double pause_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
  scenario::RunResult result;
};

/// Loads a JSONL results file: skips blank/torn lines, dedupes by job index
/// (last record wins), returns records sorted by job index.
std::vector<JobRecord> load_results(const std::string& path);

/// One aggregated cell: every seed of one grid point (identified by the
/// seed-excluded cell digest, so extra sweep axes form distinct cells),
/// averaged via scenario::average.
struct AggregateRow {
  std::string cell;  // config_cell_digest shared by the cell's records
  scenario::Scheme scheme = scenario::Scheme::kRcast;
  scenario::RoutingProtocol routing = scenario::RoutingProtocol::kDsr;
  std::size_t nodes = 0;
  std::size_t flows = 0;
  double rate_pps = 0.0;
  double pause_s = 0.0;
  double duration_s = 0.0;
  std::size_t seeds = 0;  // records that contributed (failed jobs missing)
  scenario::RunResult mean;
};

/// Groups records by cell digest (seed excluded) in first-appearance order
/// and averages each group. Input must be job-index-sorted (load_results
/// output qualifies).
std::vector<AggregateRow> aggregate(const std::vector<JobRecord>& records);

/// Renders the aggregate table as CSV (header + one row per cell) with
/// fixed formatting; identical inputs produce identical bytes.
std::string aggregate_csv(const std::vector<AggregateRow>& rows);

}  // namespace rcast::campaign
