// Structured result store for campaigns: one JSONL record per finished job
// (config + full RunResult + perf counters), plus aggregation into the
// paper-style per-cell CSV the bench binaries and `rcast_campaign export`
// print.
//
// Determinism contract: records are written with fixed field order and
// round-trip float precision, the loader dedupes by job index keeping the
// *last* record (a torn pre-journal write is superseded by the re-run,
// which produces identical bytes), and aggregation walks cells in job-index
// order — so an interrupted-then-resumed campaign exports a CSV that is
// byte-identical to an uninterrupted one.
#pragma once

#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/manifest.hpp"
#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace rcast::campaign {

class ResultStoreError : public std::runtime_error {
 public:
  explicit ResultStoreError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Byte extent of one appended JSONL record — the hook the serving index
/// uses to index records incrementally as they are written.
struct AppendExtent {
  std::uint64_t offset = 0;  // byte offset of the line start in the file
  std::uint32_t length = 0;  // line length excluding the trailing '\n'
};

class ResultStore {
 public:
  /// Opens `path` for appending (creates it if absent).
  static ResultStore open_append(const std::string& path);

  ResultStore(ResultStore&& other) noexcept;
  ResultStore& operator=(ResultStore&&) = delete;
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ~ResultStore();

  /// Appends one record and fsyncs. Call *before* the journal commit so a
  /// journaled job always has its record on disk. Returns where the record
  /// landed so callers can index it without re-scanning the file.
  AppendExtent append(const Job& job, const scenario::RunResult& r,
                      double wall_ms);

  void close();

 private:
  ResultStore() = default;

  std::FILE* f_ = nullptr;
  std::uint64_t offset_ = 0;  // current end-of-file position
};

/// Serializes one job record to a single JSONL line (no trailing newline).
std::string record_to_json(const Job& job, const scenario::RunResult& r,
                           double wall_ms);

/// One record read back from the store.
struct JobRecord {
  std::size_t job = 0;
  std::string id;
  std::string digest;
  double wall_ms = 0.0;
  /// The full scenario config, reconstructed through the parameter registry
  /// (every registered key present in the record's "config" object).
  scenario::ScenarioConfig cfg;
  /// Seed-excluded cell digest of `cfg` (config_cell_digest): jobs sharing
  /// it are seeds of the same grid point, whatever axes produced them.
  std::string cell;
  // Convenience grid coordinates, derived from `cfg`.
  scenario::Scheme scheme = scenario::Scheme::kRcast;
  scenario::RoutingProtocol routing = scenario::RoutingProtocol::kDsr;
  std::string mobility;  // mobility.model registry name
  std::string traffic;   // traffic.pattern registry name
  std::size_t nodes = 0;
  std::size_t flows = 0;
  double rate_pps = 0.0;
  double pause_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
  scenario::RunResult result;
};

/// Parses one JSONL line into a JobRecord (the inverse of record_to_json).
/// Throws ResultStoreError / json::ParseError on malformed input.
JobRecord parse_result_line(std::string_view line);

/// Extracts the job index from one JSONL line without a full parse: records
/// are written with the fixed prefix `{"v":2,"job":N,`, so a cheap scan
/// suffices; anything else falls back to a full JSON parse.
std::size_t scan_result_job(std::string_view line);

/// The winning (last-written) record of one job across an ordered set of
/// JSONL files: later files — and later lines within a file — supersede
/// earlier ones, mirroring load_results' last-wins dedupe.
struct RecordRef {
  std::size_t job = 0;
  std::size_t file = 0;       // index into the paths passed to the scan
  std::uint64_t offset = 0;   // byte offset of the line start
  std::uint32_t length = 0;   // line length excluding '\n'
};

/// Pass 1 of a streaming load: scans `paths` in order, keeping one winning
/// RecordRef per job index (blank and torn trailing lines skipped), and
/// returns the winners sorted by job index. Memory is O(jobs), not O(bytes).
std::vector<RecordRef> scan_result_files(const std::vector<std::string>& paths);

/// Streams every winning record of `paths` through `fn` in job-index order
/// without materializing more than one JobRecord at a time. Equivalent to
/// iterating load_results(path) when given a single path.
void for_each_result(const std::vector<std::string>& paths,
                     const std::function<void(JobRecord&&)>& fn);

/// Loads a JSONL results file: skips blank/torn lines, dedupes by job index
/// (last record wins), returns records sorted by job index.
std::vector<JobRecord> load_results(const std::string& path);

/// One aggregated cell: every seed of one grid point (identified by the
/// seed-excluded cell digest, so extra sweep axes form distinct cells),
/// averaged via scenario::average.
struct AggregateRow {
  std::string cell;  // config_cell_digest shared by the cell's records
  scenario::Scheme scheme = scenario::Scheme::kRcast;
  scenario::RoutingProtocol routing = scenario::RoutingProtocol::kDsr;
  std::string mobility;  // mobility.model registry name
  std::string traffic;   // traffic.pattern registry name
  std::size_t nodes = 0;
  std::size_t flows = 0;
  double rate_pps = 0.0;
  double pause_s = 0.0;
  double duration_s = 0.0;
  std::size_t seeds = 0;  // records that contributed (failed jobs missing)
  scenario::RunResult mean;
};

/// Groups records by cell digest (seed excluded) in first-appearance order
/// and averages each group. Input must be job-index-sorted (load_results
/// output qualifies).
std::vector<AggregateRow> aggregate(const std::vector<JobRecord>& records);

/// Incremental form of `aggregate` (which is implemented on top of it): feed
/// job-index-ordered records one at a time; rows() yields the identical
/// first-appearance-ordered AggregateRows without retaining the records.
class AggregateAccumulator {
 public:
  void add(const JobRecord& rec);
  std::size_t records() const { return records_; }
  std::vector<AggregateRow> rows() const;

 private:
  struct Cell {
    AggregateRow row;
    scenario::RunAverager acc;
  };
  std::vector<Cell> cells_;                             // first-appearance order
  std::unordered_map<std::string, std::size_t> by_cell_;  // digest -> cells_ idx
  std::size_t records_ = 0;
};

/// Streaming equivalent of aggregate_csv(aggregate(load_results(path))) over
/// one or more JSONL files (later files win job-index collisions): identical
/// bytes, O(winners) memory.
std::string export_aggregate_csv(const std::vector<std::string>& paths);

/// Renders the aggregate table as CSV (header + one row per cell) with
/// fixed formatting; identical inputs produce identical bytes.
std::string aggregate_csv(const std::vector<AggregateRow>& rows);

}  // namespace rcast::campaign
