#include "geo/grid_index.hpp"

#include <algorithm>
#include <cmath>

namespace rcast::geo {

GridIndex::GridIndex(Rect world, double cell_size)
    : world_(world), cell_size_(cell_size) {
  RCAST_REQUIRE(world.width > 0.0 && world.height > 0.0);
  RCAST_REQUIRE(cell_size > 0.0);
  cols_ = static_cast<std::uint32_t>(std::ceil(world.width / cell_size)) + 1;
  rows_ = static_cast<std::uint32_t>(std::ceil(world.height / cell_size)) + 1;
  cells_.resize(static_cast<std::size_t>(cols_) * rows_);
}

std::uint32_t GridIndex::cell_of(Vec2 p) const {
  const double cx = std::clamp(p.x, 0.0, world_.width);
  const double cy = std::clamp(p.y, 0.0, world_.height);
  const auto col = static_cast<std::uint32_t>(cx / cell_size_);
  const auto row = static_cast<std::uint32_t>(cy / cell_size_);
  return row * cols_ + col;
}

void GridIndex::insert(ItemId id, Vec2 pos) {
  if (id >= slots_.size()) slots_.resize(id + 1);
  RCAST_REQUIRE_MSG(!slots_[id].live, "duplicate insert");
  link(id, pos);
  ++live_count_;
}

void GridIndex::link(ItemId id, Vec2 pos) {
  Slot& s = slots_[id];
  s.pos = pos;
  s.live = true;
  s.cell = cell_of(pos);
  cells_[s.cell].push_back(id);
}

void GridIndex::unlink(ItemId id) {
  Slot& s = slots_[id];
  auto& bucket = cells_[s.cell];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  s.live = false;
}

void GridIndex::move(ItemId id, Vec2 pos) {
  RCAST_REQUIRE(contains(id));
  Slot& s = slots_[id];
  const std::uint32_t nc = cell_of(pos);
  if (nc == s.cell) {
    s.pos = pos;
    return;
  }
  unlink(id);
  link(id, pos);
}

void GridIndex::remove(ItemId id) {
  RCAST_REQUIRE(contains(id));
  unlink(id);
  --live_count_;
}

Vec2 GridIndex::position(ItemId id) const {
  RCAST_REQUIRE(contains(id));
  return slots_[id].pos;
}

bool GridIndex::contains(ItemId id) const {
  return id < slots_.size() && slots_[id].live;
}

std::size_t GridIndex::count_within(ItemId id, double radius) const {
  RCAST_REQUIRE(contains(id));
  std::size_t n = 0;
  for_each_within(slots_[id].pos, radius, id, [&n](ItemId) { ++n; });
  return n;
}

}  // namespace rcast::geo
