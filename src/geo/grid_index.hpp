// Uniform-grid spatial index over node positions.
//
// The channel asks "which nodes lie within R of point p" for every
// transmission; with 100 nodes a linear scan would do, but the grid keeps the
// simulator comfortably fast for the denser ablation scenarios (up to
// thousands of nodes) and bounds the cost at O(nodes in 3x3 cells).
//
// Queries are allocation-free: the core primitive is for_each_within, which
// visits matching items in a deterministic order (row-major cells, insertion
// order within a cell); query() appends to any push_back-able container the
// caller provides (std::vector, util::SmallVec scratch, ...).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/vec2.hpp"
#include "util/assert.hpp"

namespace rcast::geo {

using ItemId = std::uint32_t;

class GridIndex {
 public:
  /// `cell_size` should be >= the largest query radius for the 3x3-cell
  /// neighborhood guarantee; larger radii still work (falls back to scanning
  /// the covering cell range).
  GridIndex(Rect world, double cell_size);

  /// Registers an item; ids must be dense [0, n). Position may be updated
  /// later via move().
  void insert(ItemId id, Vec2 pos);

  /// Updates an item's position.
  void move(ItemId id, Vec2 pos);

  /// Removes an item (e.g. a dead node in lifetime studies). The id may be
  /// re-inserted later.
  void remove(ItemId id);

  Vec2 position(ItemId id) const;
  bool contains(ItemId id) const;
  std::size_t size() const { return live_count_; }
  const Rect& world() const { return world_; }

  static constexpr ItemId npos = static_cast<ItemId>(-1);

  /// Invokes `fn(id)` for every live item within `radius` of `center`
  /// (inclusive), excluding `exclude` (pass npos to exclude nothing).
  /// Deterministic visit order; no allocation.
  template <class Fn>
  void for_each_within(Vec2 center, double radius, ItemId exclude,
                       Fn&& fn) const {
    RCAST_REQUIRE(radius >= 0.0);
    const double r2 = radius * radius;
    const auto col_lo =
        static_cast<std::int64_t>(std::floor((center.x - radius) / cell_size_));
    const auto col_hi =
        static_cast<std::int64_t>(std::floor((center.x + radius) / cell_size_));
    const auto row_lo =
        static_cast<std::int64_t>(std::floor((center.y - radius) / cell_size_));
    const auto row_hi =
        static_cast<std::int64_t>(std::floor((center.y + radius) / cell_size_));
    for (std::int64_t row = std::max<std::int64_t>(0, row_lo);
         row <= std::min<std::int64_t>(rows_ - 1, row_hi); ++row) {
      for (std::int64_t col = std::max<std::int64_t>(0, col_lo);
           col <= std::min<std::int64_t>(cols_ - 1, col_hi); ++col) {
        for (ItemId id : cells_[static_cast<std::size_t>(row) * cols_ + col]) {
          if (id == exclude) continue;
          if (distance_sq(slots_[id].pos, center) <= r2) fn(id);
        }
      }
    }
  }

  /// Appends all live items within `radius` of `center` (inclusive) to
  /// `out`, excluding `exclude`. `out` is any container with push_back
  /// (callers on the hot path pass a reused SmallVec scratch).
  template <class Out>
  void query(Vec2 center, double radius, ItemId exclude, Out& out) const {
    for_each_within(center, radius, exclude,
                    [&out](ItemId id) { out.push_back(id); });
  }

  /// Convenience: count of items within radius of the given item, excluding
  /// itself (the paper's "number of neighbors"). Allocation-free.
  std::size_t count_within(ItemId id, double radius) const;

 private:
  struct Slot {
    Vec2 pos;
    bool live = false;
    std::uint32_t cell = 0;
  };

  std::uint32_t cell_of(Vec2 p) const;
  void unlink(ItemId id);
  void link(ItemId id, Vec2 pos);

  Rect world_;
  double cell_size_;
  std::uint32_t cols_;
  std::uint32_t rows_;
  std::vector<std::vector<ItemId>> cells_;
  std::vector<Slot> slots_;
  std::size_t live_count_ = 0;
};

}  // namespace rcast::geo
