// Uniform-grid spatial index over node positions.
//
// The channel asks "which nodes lie within R of point p" for every
// transmission; with 100 nodes a linear scan would do, but the grid keeps the
// simulator comfortably fast for the denser ablation scenarios (up to
// thousands of nodes) and bounds the cost at O(nodes in 3x3 cells).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec2.hpp"
#include "util/assert.hpp"

namespace rcast::geo {

using ItemId = std::uint32_t;

class GridIndex {
 public:
  /// `cell_size` should be >= the largest query radius for the 3x3-cell
  /// neighborhood guarantee; larger radii still work (falls back to scanning
  /// the covering cell range).
  GridIndex(Rect world, double cell_size);

  /// Registers an item; ids must be dense [0, n). Position may be updated
  /// later via move().
  void insert(ItemId id, Vec2 pos);

  /// Updates an item's position.
  void move(ItemId id, Vec2 pos);

  /// Removes an item (e.g. a dead node in lifetime studies).
  void remove(ItemId id);

  Vec2 position(ItemId id) const;
  bool contains(ItemId id) const;
  std::size_t size() const { return live_count_; }

  /// Appends all live items within `radius` of `center` (inclusive) to
  /// `out`, excluding `exclude` (pass npos to exclude nothing).
  static constexpr ItemId npos = static_cast<ItemId>(-1);
  void query(Vec2 center, double radius, ItemId exclude,
             std::vector<ItemId>& out) const;

  /// Convenience: count of items within radius of the given item, excluding
  /// itself (the paper's "number of neighbors").
  std::size_t count_within(ItemId id, double radius) const;

 private:
  struct Slot {
    Vec2 pos;
    bool live = false;
    std::uint32_t cell = 0;
  };

  std::uint32_t cell_of(Vec2 p) const;
  void unlink(ItemId id);
  void link(ItemId id, Vec2 pos);

  Rect world_;
  double cell_size_;
  std::uint32_t cols_;
  std::uint32_t rows_;
  std::vector<std::vector<ItemId>> cells_;
  std::vector<Slot> slots_;
  std::size_t live_count_ = 0;
};

}  // namespace rcast::geo
