// 2-D geometry primitives for node placement and mobility.
#pragma once

#include <cmath>

#include "util/assert.hpp"

namespace rcast::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm_sq() const { return x * x + y * y; }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

/// Axis-aligned world rectangle [0,width] x [0,height].
struct Rect {
  double width = 0.0;
  double height = 0.0;

  constexpr bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  constexpr double area() const { return width * height; }
};

}  // namespace rcast::geo
