// Common interface for workload generators. A traffic pattern (registry
// entry) builds one TrafficSource per flow; the scenario only needs the
// sent-packet count for diagnostics, everything else is pattern-private.
#pragma once

#include <cstdint>

namespace rcast::traffic {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Packets handed to the routing agent so far.
  virtual std::uint32_t packets_sent() const = 0;
};

}  // namespace rcast::traffic
