// Sensing-style workload for clustered scenarios: every source node sends
// periodic reports toward a sink (convergecast, the WSN data-gathering
// shape) plus Poisson-arriving event bursts — a detected event produces a
// short back-to-back packet train instead of a lone report.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/cbr.hpp"
#include "traffic/traffic_source.hpp"

namespace rcast::traffic {

struct SensingConfig {
  /// Poisson rate of event bursts per source; 0 = periodic reports only.
  double burst_rate_pps = 0.05;
  /// Packets per burst.
  std::uint64_t burst_size = 5;
  /// Spacing between consecutive packets of one burst.
  sim::Time burst_spacing = 10 * sim::kMillisecond;
};

/// Periodic reports at flow.rate_pps (random phase, like CbrSource) plus
/// exponential-interarrival bursts of `burst_size` packets spaced
/// `burst_spacing` apart. Reports and burst packets share one sequence
/// stream toward the flow's destination.
class PeriodicBurstSource final : public TrafficSource {
 public:
  PeriodicBurstSource(sim::Simulator& simulator, routing::RoutingAgent& agent,
                      const CbrFlowConfig& flow, const SensingConfig& sensing,
                      Rng rng);

  std::uint32_t packets_sent() const override { return seq_; }
  const CbrFlowConfig& config() const { return cfg_; }

 private:
  void report();
  void burst_fire();
  bool stopped() const;
  sim::Time next_burst_delay();

  sim::Simulator& sim_;
  routing::RoutingAgent& agent_;
  CbrFlowConfig cfg_;
  SensingConfig sense_;
  Rng rng_;
  sim::Time period_;
  std::uint32_t seq_ = 0;
  std::uint64_t burst_left_ = 0;  // packets remaining in the active burst
  sim::PeriodicTimer report_timer_;
  sim::OneShotTimer burst_timer_;
};

/// Convergecast flow matrix: node 0 is the sink, sources are distinct nodes
/// drawn from 1..n-1. Requires n_flows <= n_nodes - 1.
std::vector<CbrFlowConfig> make_sensing_flows(std::size_t n_nodes,
                                              std::size_t n_flows,
                                              double rate_pps,
                                              std::int64_t payload_bits,
                                              Rng& rng);

}  // namespace rcast::traffic
