// Constant-bit-rate traffic sources (the paper's workload: 20 CBR flows of
// 64-byte packets at 0.2–2.0 packets/second each).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/observer.hpp"
#include "sim/simulator.hpp"
#include "traffic/traffic_source.hpp"
#include "util/rng.hpp"

namespace rcast::traffic {

using routing::NodeId;

struct CbrFlowConfig {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t flow_id = 0;
  double rate_pps = 1.0;               // packets per second
  std::int64_t payload_bits = 64 * 8;  // 64-byte payloads
  sim::Time start = 0;                 // first packet no earlier than this
  sim::Time stop = 0;                  // 0 = run forever
};

/// Emits a packet every 1/rate seconds into the node's routing agent, starting
/// at a random phase within the first period (decorrelates flows).
class CbrSource : public TrafficSource {
 public:
  CbrSource(sim::Simulator& simulator, routing::RoutingAgent& agent,
            const CbrFlowConfig& config, Rng rng);

  std::uint32_t packets_sent() const override { return seq_; }
  const CbrFlowConfig& config() const { return cfg_; }

 private:
  void emit();

  sim::Simulator& sim_;
  routing::RoutingAgent& agent_;
  CbrFlowConfig cfg_;
  sim::Time period_;
  std::uint32_t seq_ = 0;
  sim::PeriodicTimer timer_;
};

/// Draws `n_flows` random (src, dst) pairs with distinct sources, src != dst.
std::vector<CbrFlowConfig> make_flow_matrix(std::size_t n_nodes,
                                            std::size_t n_flows,
                                            double rate_pps,
                                            std::int64_t payload_bits,
                                            Rng& rng);

}  // namespace rcast::traffic
