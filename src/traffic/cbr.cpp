#include "traffic/cbr.hpp"

#include "util/assert.hpp"

namespace rcast::traffic {

CbrSource::CbrSource(sim::Simulator& simulator, routing::RoutingAgent& agent,
                     const CbrFlowConfig& config, Rng rng)
    : sim_(simulator),
      agent_(agent),
      cfg_(config),
      period_(sim::from_seconds(1.0 / config.rate_pps)),
      timer_(simulator, [this] { emit(); }) {
  RCAST_REQUIRE(cfg_.rate_pps > 0.0);
  RCAST_REQUIRE(cfg_.src == agent.id());
  RCAST_REQUIRE(cfg_.src != cfg_.dst);
  const sim::Time phase =
      static_cast<sim::Time>(rng.uniform01() * static_cast<double>(period_));
  timer_.start(cfg_.start + phase, period_);
}

void CbrSource::emit() {
  if (cfg_.stop != 0 && sim_.now() >= cfg_.stop) {
    timer_.stop();
    return;
  }
  agent_.send_data(cfg_.dst, cfg_.payload_bits, cfg_.flow_id, ++seq_);
}

std::vector<CbrFlowConfig> make_flow_matrix(std::size_t n_nodes,
                                            std::size_t n_flows,
                                            double rate_pps,
                                            std::int64_t payload_bits,
                                            Rng& rng) {
  RCAST_REQUIRE(n_nodes >= 2);
  RCAST_REQUIRE(n_flows <= n_nodes);
  std::vector<NodeId> ids(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) ids[i] = static_cast<NodeId>(i);
  rng.shuffle(ids);  // distinct sources

  std::vector<CbrFlowConfig> flows;
  flows.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    CbrFlowConfig f;
    f.src = ids[i];
    do {
      f.dst = static_cast<NodeId>(rng.uniform_u64(n_nodes));
    } while (f.dst == f.src);
    f.flow_id = static_cast<std::uint32_t>(i);
    f.rate_pps = rate_pps;
    f.payload_bits = payload_bits;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace rcast::traffic
