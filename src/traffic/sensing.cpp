#include "traffic/sensing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcast::traffic {

PeriodicBurstSource::PeriodicBurstSource(sim::Simulator& simulator,
                                         routing::RoutingAgent& agent,
                                         const CbrFlowConfig& flow,
                                         const SensingConfig& sensing,
                                         Rng rng)
    : sim_(simulator),
      agent_(agent),
      cfg_(flow),
      sense_(sensing),
      rng_(rng),
      period_(sim::from_seconds(1.0 / flow.rate_pps)),
      report_timer_(simulator, [this] { report(); }),
      burst_timer_(simulator, [this] { burst_fire(); }) {
  RCAST_REQUIRE(cfg_.rate_pps > 0.0);
  RCAST_REQUIRE(cfg_.src == agent.id());
  RCAST_REQUIRE(cfg_.src != cfg_.dst);
  RCAST_REQUIRE(sense_.burst_rate_pps >= 0.0);
  RCAST_REQUIRE(sense_.burst_size >= 1);
  RCAST_REQUIRE(sense_.burst_spacing > 0);
  const sim::Time phase =
      static_cast<sim::Time>(rng_.uniform01() * static_cast<double>(period_));
  report_timer_.start(cfg_.start + phase, period_);
  if (sense_.burst_rate_pps > 0.0) {
    burst_timer_.arm(next_burst_delay());
  }
}

bool PeriodicBurstSource::stopped() const {
  return cfg_.stop != 0 && sim_.now() >= cfg_.stop;
}

sim::Time PeriodicBurstSource::next_burst_delay() {
  return std::max<sim::Time>(
      1, sim::from_seconds(rng_.exponential(1.0 / sense_.burst_rate_pps)));
}

void PeriodicBurstSource::report() {
  if (stopped()) {
    report_timer_.stop();
    return;
  }
  agent_.send_data(cfg_.dst, cfg_.payload_bits, cfg_.flow_id, ++seq_);
}

void PeriodicBurstSource::burst_fire() {
  if (stopped()) return;  // no re-arm: the burst chain ends here
  if (burst_left_ == 0) burst_left_ = sense_.burst_size;  // burst arrival
  agent_.send_data(cfg_.dst, cfg_.payload_bits, cfg_.flow_id, ++seq_);
  --burst_left_;
  burst_timer_.arm(burst_left_ > 0 ? sense_.burst_spacing
                                   : next_burst_delay());
}

std::vector<CbrFlowConfig> make_sensing_flows(std::size_t n_nodes,
                                              std::size_t n_flows,
                                              double rate_pps,
                                              std::int64_t payload_bits,
                                              Rng& rng) {
  RCAST_REQUIRE(n_nodes >= 2);
  RCAST_REQUIRE_MSG(n_flows <= n_nodes - 1,
                    "sensing pattern needs a distinct source per flow "
                    "(node 0 is the sink)");
  std::vector<NodeId> ids(n_nodes - 1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(i + 1);
  }
  rng.shuffle(ids);  // distinct sources, sink excluded

  std::vector<CbrFlowConfig> flows;
  flows.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    CbrFlowConfig f;
    f.src = ids[i];
    f.dst = 0;  // the sink
    f.flow_id = static_cast<std::uint32_t>(i);
    f.rate_pps = rate_pps;
    f.payload_bits = payload_bits;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace rcast::traffic
