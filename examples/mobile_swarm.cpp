// Mobility stress: how each scheme degrades as the network gets more
// dynamic. Sweeps random-waypoint pause time from "always moving" to fully
// static and reports delivery, repair traffic, and energy — plus a per-node
// energy dump (sorted, Fig-5 style) for the most mobile point.
//
//   ./mobile_swarm [--nodes=50] [--seconds=120] [--speed=20] [--seed=1]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rcast;
  Flags flags(argc, argv);

  scenario::ScenarioConfig base;
  base.num_nodes = static_cast<std::size_t>(flags.get_int("nodes", 50));
  base.num_flows = base.num_nodes / 5;
  base.duration = sim::from_seconds(flags.get_double("seconds", 120.0));
  base.max_speed_mps = flags.get_double("speed", 20.0);
  base.rate_pps = 1.0;
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const double duration_s = sim::to_seconds(base.duration);
  const std::vector<double> pauses{0.0, duration_s / 8, duration_s / 2,
                                   duration_s};

  std::printf("mobile swarm: %zu nodes, v_max %.0f m/s, %.0f s per run\n\n",
              base.num_nodes, base.max_speed_mps, duration_s);
  std::printf("%-10s %10s %8s %10s %10s %10s %12s\n", "scheme", "pause(s)",
              "PDR(%)", "delay(s)", "RERRs", "RREQs", "energy(J)");

  for (auto s : {scenario::Scheme::k80211, scenario::Scheme::kOdpm,
                 scenario::Scheme::kRcast}) {
    for (double pause_s : pauses) {
      scenario::ScenarioConfig cfg = base;
      cfg.scheme = s;
      cfg.pause = sim::from_seconds(pause_s);
      const scenario::RunResult r = scenario::run_scenario(cfg);
      std::printf("%-10s %10.0f %8.1f %10.3f %10llu %10llu %12.1f\n",
                  std::string(to_string(s)).c_str(), pause_s, r.pdr_percent,
                  r.avg_delay_s, static_cast<unsigned long long>(r.rerr_tx),
                  static_cast<unsigned long long>(r.rreq_tx),
                  r.total_energy_j);
    }
    std::printf("\n");
  }

  // Per-node energy profile under continuous motion (Fig. 5 flavour).
  std::printf("per-node energy (sorted), pause=0, RCAST vs ODPM:\n");
  std::printf("%-6s %12s %12s\n", "rank", "ODPM(J)", "RCAST(J)");
  scenario::ScenarioConfig cfg = base;
  cfg.pause = 0;
  cfg.scheme = scenario::Scheme::kOdpm;
  auto odpm = scenario::run_scenario(cfg).per_node_energy_j;
  cfg.scheme = scenario::Scheme::kRcast;
  auto rcast = scenario::run_scenario(cfg).per_node_energy_j;
  std::sort(odpm.begin(), odpm.end());
  std::sort(rcast.begin(), rcast.end());
  for (std::size_t i = 0; i < odpm.size(); i += std::max<std::size_t>(1, odpm.size() / 10)) {
    std::printf("%-6zu %12.1f %12.1f\n", i, odpm[i], rcast[i]);
  }
  std::printf(
      "\nThe RCAST column should be flatter: randomized overhearing spreads\n"
      "the listening cost instead of pinning forwarders at always-on.\n");
  return 0;
}
