// Quickstart: the smallest end-to-end Rcast simulation.
//
// Builds a 50-node MANET, runs the three schemes the paper compares
// (plain 802.11, ODPM, Rcast) for 60 simulated seconds each, and prints the
// headline metrics: total energy, energy balance (variance), PDR, delay.
//
//   ./quickstart [--nodes=50] [--rate=1.0] [--seconds=60] [--seed=1]
#include <cstdio>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rcast;
  Flags flags(argc, argv);

  scenario::ScenarioConfig cfg;
  cfg.num_nodes = static_cast<std::size_t>(flags.get_int("nodes", 50));
  cfg.num_flows = std::min<std::size_t>(10, cfg.num_nodes / 3);
  cfg.rate_pps = flags.get_double("rate", 1.0);
  cfg.duration = sim::from_seconds(flags.get_double("seconds", 60.0));
  cfg.pause = 60 * sim::kSecond;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("rcast quickstart: %zu nodes, %zu flows @ %.1f pkt/s, %.0f s\n\n",
              cfg.num_nodes, cfg.num_flows, cfg.rate_pps,
              sim::to_seconds(cfg.duration));
  std::printf("%-10s %12s %12s %8s %10s %12s\n", "scheme", "energy(J)",
              "variance", "PDR(%)", "delay(s)", "ctrl-pkts");

  for (auto scheme : {scenario::Scheme::k80211, scenario::Scheme::kOdpm,
                      scenario::Scheme::kRcast}) {
    cfg.scheme = scheme;
    const scenario::RunResult r = scenario::run_scenario(cfg);
    std::printf("%-10s %12.1f %12.1f %8.1f %10.3f %12llu\n",
                std::string(to_string(scheme)).c_str(), r.total_energy_j,
                r.energy_variance, r.pdr_percent, r.avg_delay_s,
                static_cast<unsigned long long>(r.control_tx));
  }

  std::printf(
      "\nExpected shape (paper Figs. 5-8): 802.11 burns the most energy with\n"
      "zero variance; Rcast uses the least energy with the best balance at\n"
      "the cost of ~0.1-0.3 s extra delay per hop from beacon buffering.\n");
  return 0;
}
