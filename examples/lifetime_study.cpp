// Network-lifetime study with finite batteries (paper §1/§4.2 extension).
//
// Gives every node the same battery and tracks deaths across schemes: when
// the first node dies, how many survive the run, and whether the network
// still delivers traffic afterwards. Demonstrates the paper's argument that
// energy *balance* — not just total savings — extends useful lifetime.
//
//   ./lifetime_study [--nodes=50] [--seconds=150] [--battery-frac=0.7]
#include <cstdio>

#include "scenario/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rcast;
  Flags flags(argc, argv);

  scenario::ScenarioConfig base;
  base.num_nodes = static_cast<std::size_t>(flags.get_int("nodes", 50));
  base.num_flows = base.num_nodes / 5;
  base.duration = sim::from_seconds(flags.get_double("seconds", 150.0));
  base.pause = base.duration / 2;
  base.rate_pps = 1.0;
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // battery-frac: fraction of the run an always-awake radio survives.
  const double frac = flags.get_double("battery-frac", 0.7);
  base.battery_joules = 1.15 * sim::to_seconds(base.duration) * frac;

  std::printf(
      "lifetime study: %zu nodes, %.0f s, battery %.1f J (always-on radio "
      "dies at %.0f%% of the run)\n\n",
      base.num_nodes, sim::to_seconds(base.duration), base.battery_joules,
      100.0 * frac);
  std::printf("%-10s %16s %12s %12s %8s\n", "scheme", "first-death(s)",
              "dead-nodes", "alive(%)", "PDR(%)");

  for (auto s : {scenario::Scheme::k80211, scenario::Scheme::kPsmAll,
                 scenario::Scheme::kOdpm, scenario::Scheme::kRcast}) {
    scenario::ScenarioConfig cfg = base;
    cfg.scheme = s;
    const scenario::RunResult r = scenario::run_scenario(cfg);
    const double alive =
        100.0 * static_cast<double>(cfg.num_nodes - r.dead_nodes) /
        static_cast<double>(cfg.num_nodes);
    std::printf("%-10s %16.1f %12zu %12.1f %8.1f\n",
                std::string(to_string(s)).c_str(),
                r.first_death_s == 0.0 ? sim::to_seconds(cfg.duration)
                                       : r.first_death_s,
                r.dead_nodes, alive, r.pdr_percent);
  }

  std::printf(
      "\n802.11 loses the whole fleet at the same instant; ODPM sacrifices\n"
      "its active-mode backbone early; RCAST's balanced drain keeps most of\n"
      "the network alive to the end — and with it, the delivery ratio.\n");
  return 0;
}
