// Energy survey: a Fig-7-style sweep on a user-configurable topology.
//
// Sweeps packet rate for all six schemes (including the PSM overhearing
// extremes and the broadcast extension) and prints energy / PDR / EPB per
// cell — the quickest way to see where Rcast's savings come from on your
// own scenario.
//
//   ./energy_survey [--nodes=60] [--flows=12] [--seconds=120]
//                   [--width=1500] [--height=300] [--pause=60]
//                   [--seeds=2] [--seed=1]
#include <cstdio>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rcast;
  Flags flags(argc, argv);

  scenario::ScenarioConfig base;
  base.num_nodes = static_cast<std::size_t>(flags.get_int("nodes", 60));
  base.num_flows = static_cast<std::size_t>(
      flags.get_int("flows", static_cast<std::int64_t>(base.num_nodes / 5)));
  base.duration = sim::from_seconds(flags.get_double("seconds", 120.0));
  base.world = {flags.get_double("width", 1500.0),
                flags.get_double("height", 300.0)};
  base.pause = sim::from_seconds(flags.get_double("pause", 60.0));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds", 2));

  for (const auto& unknown : flags.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  const std::vector<double> rates{0.4, 1.0, 2.0};
  const scenario::Scheme schemes[] = {
      scenario::Scheme::k80211,    scenario::Scheme::kPsmNone,
      scenario::Scheme::kPsmAll,   scenario::Scheme::kOdpm,
      scenario::Scheme::kRcast,    scenario::Scheme::kRcastBcast};

  std::printf(
      "energy survey: %zu nodes / %zu flows, %.0fx%.0f m, %.0f s, pause "
      "%.0f s, %zu seed(s)\n\n",
      base.num_nodes, base.num_flows, base.world.width, base.world.height,
      sim::to_seconds(base.duration), sim::to_seconds(base.pause), seeds);
  std::printf("%-10s %6s %12s %8s %12s %10s %12s\n", "scheme", "rate",
              "energy(J)", "PDR(%)", "EPB(J/bit)", "delay(s)", "variance");

  for (auto s : schemes) {
    for (double rate : rates) {
      scenario::ScenarioConfig cfg = base;
      cfg.scheme = s;
      cfg.rate_pps = rate;
      const scenario::RunResult r =
          scenario::average(scenario::run_repetitions(cfg, seeds));
      std::printf("%-10s %6.1f %12.1f %8.1f %12.3g %10.3f %12.1f\n",
                  std::string(to_string(s)).c_str(), rate, r.total_energy_j,
                  r.pdr_percent, r.energy_per_bit_j, r.avg_delay_s,
                  r.energy_variance);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading the table: PSM-NONE is the energy floor but starves DSR's\n"
      "route cache; PSM-ALL keeps DSR fully informed at nearly always-on\n"
      "cost. RCAST sits near the floor while keeping PDR close to 802.11 —\n"
      "that gap is the paper's contribution.\n");
  return 0;
}
