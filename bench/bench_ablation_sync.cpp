// Ablation A5: sensitivity to the clock-synchronization assumption.
//
// The paper (§2.2.2, citing Tseng et al. / Huang & Lai) *assumes* all nodes
// agree on beacon boundaries and does not model sync cost or error. This
// bench sweeps a per-node beacon offset drawn from [0, J] and measures how
// Rcast degrades: with offsets well under the ATIM window (50 ms) the
// announcement windows still overlap and the scheme keeps working; once
// offsets approach the window size, neighbors sleep through each other's
// ATIMs and delivery collapses toward the retry/repair machinery.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Ablation A5: PSM clock-sync jitter sensitivity", scale);

  const double jitters_ms[] = {0.0, 5.0, 20.0, 50.0, 125.0};

  std::printf("%-12s %8s %12s %10s %12s\n", "jitter(ms)", "PDR(%)",
              "energy(J)", "delay(s)", "atim-fails");

  RunResult sync0, sync_small, sync_window;
  for (double j : jitters_ms) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration;  // static: isolate the sync effect
    cfg.sync_jitter = sim::from_millis(j);
    const RunResult r = run_cell(cfg, Scheme::kRcast, scale);
    std::printf("%-12.0f %8.1f %12.1f %10.3f %12llu\n", j, r.pdr_percent,
                r.total_energy_j, r.avg_delay_s,
                static_cast<unsigned long long>(r.data_tx_failed));
    if (j == 0.0) sync0 = r;
    if (j == 5.0) sync_small = r;
    if (j == 50.0) sync_window = r;
  }

  std::printf("\nSHAPE-CHECK\n");
  shape_check(sync_small.pdr_percent > sync0.pdr_percent - 8.0,
              "jitter well under the ATIM window is tolerated");
  shape_check(sync_window.pdr_percent < sync0.pdr_percent + 1.0,
              "window-sized jitter does not improve delivery");
  shape_check(sync0.pdr_percent > 85.0,
              "perfect sync (the paper's assumption) delivers");
  return shape_exit();
}
