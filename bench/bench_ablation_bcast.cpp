// Ablation A2: Rcast applied to broadcast RREQs (paper §5 future work, and
// the broadcast-storm mitigation of Ni/Tseng et al. cited in §1).
//
// Randomized receiving of RREQ announcements lets nodes sleep through
// rebroadcast storms. The risk is failed route discovery; the decision is
// therefore conservative (receive probability max(0.5, 3/N)). This bench
// compares plain Rcast with the broadcast extension.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Ablation A2: randomized broadcast receiving (RREQ)", scale);

  std::printf("%-10s %12s %8s %10s %12s %12s\n", "scheme", "energy(J)",
              "PDR(%)", "delay(s)", "rreq-tx", "norm-ovhd");

  RunResult plain, bcast;
  for (Scheme s : {Scheme::kRcast, Scheme::kRcastBcast}) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration / 2;  // mobility forces rediscoveries
    const RunResult r = run_cell(cfg, s, scale);
    std::printf("%-10s %12.1f %8.1f %10.3f %12llu %12.3f\n",
                std::string(to_string(s)).c_str(), r.total_energy_j,
                r.pdr_percent, r.avg_delay_s,
                static_cast<unsigned long long>(r.rreq_tx),
                r.normalized_overhead);
    (s == Scheme::kRcast ? plain : bcast) = r;
  }

  shape_check(bcast.pdr_percent > plain.pdr_percent - 12.0,
              "conservative randomization keeps discovery working");
  shape_check(bcast.total_energy_j < plain.total_energy_j * 1.05,
              "broadcast extension does not cost energy");
  shape_check(bcast.delivered > 0, "extension still delivers traffic");
  return shape_exit();
}
