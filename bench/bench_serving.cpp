// Serving-layer benchmarks: point lookups through the index sidecar vs the
// displaced linear JSONL scan, memoized vs cold cell aggregates, and a
// heavy-traffic HTTP burst (thousands of concurrent /aggregate queries
// against a >=100k-record store) with p50/p99 latency counters.
//
// The committed BENCH_serving.json stores the linear-scan numbers as the
// "baseline" column and the indexed numbers as "after" under the same
// benchmark name, so tools/check_bench.py --gate-speedup can pin the
// indexed-vs-scan ratio (the issue's >=10x acceptance bar) in CI.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_json.hpp"
#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "serving/http_server.hpp"
#include "serving/result_index.hpp"
#include "serving/result_service.hpp"

namespace {

namespace fs = std::filesystem;
using namespace rcast;

constexpr std::size_t kSeedsPerCell = 2000;  // 50 cells x 2000 = 100k records

/// Synthetic >=100k-record store shared by every benchmark: real expanded
/// jobs (real digests, real record bytes) with made-up results, written
/// without fsync so setup stays in seconds.
struct Store {
  std::string dir;
  std::string jsonl;
  std::vector<std::string> digests;        // one per record, job order
  std::vector<std::uint64_t> cells;        // distinct cell digests
  serving::ResultService* service = nullptr;

  ~Store() {
    delete service;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

Store& store() {
  static Store s = [] {
    Store st;
    st.dir = (fs::temp_directory_path() /
              ("rcast_bench_serving_" + std::to_string(::getpid())))
                 .string();
    fs::create_directories(st.dir);
    st.jsonl = st.dir + "/results.jsonl";

    campaign::Manifest m;
    m.name = "bench_serving";
    m.schemes = {scenario::Scheme::kRcast, scenario::Scheme::kOdpm};
    m.rates_pps = {0.5, 1.0, 2.0, 4.0, 8.0};
    m.node_counts = {10, 20, 30, 40, 50};
    m.seeds = kSeedsPerCell;
    m.duration_s = 10.0;
    const auto jobs = campaign::expand(m);

    std::ofstream out(st.jsonl, std::ios::binary);
    scenario::RunResult r;
    r.per_node_energy_j = {1.0, 2.0};
    std::unordered_set<std::uint64_t> seen_cells;
    for (const auto& job : jobs) {
      r.pdr_percent = 50.0 + static_cast<double>(job.index % 49);
      r.total_energy_j = 10.0 + 0.25 * static_cast<double>(job.index % 97);
      r.delivered = 90 + job.index % 11;
      out << campaign::record_to_json(job, r, 1.5) << '\n';
      st.digests.push_back(job.digest);
      const std::uint64_t cell = serving::digest_to_u64(
          campaign::config_cell_digest(job.cfg));
      if (seen_cells.insert(cell).second) st.cells.push_back(cell);
    }
    out.close();

    st.service = new serving::ResultService({st.jsonl});  // builds the index
    return st;
  }();
  return s;
}

// ------------------------------------------------------------- lookups --

/// Indexed point lookup: hash probe + one seek/read. The committed record
/// stores BM_PointLookupScan's numbers as this benchmark's "baseline"
/// column — the speedup gate compares the two.
void BM_PointLookup(benchmark::State& state) {
  Store& st = store();
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string& hex =
        st.digests[rng() % st.digests.size()];
    auto line = st.service->result_json(serving::digest_to_u64(hex));
    if (!line) state.SkipWithError("digest not found");
    benchmark::DoNotOptimize(line);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(st.digests.size()));
}
BENCHMARK(BM_PointLookup)->Unit(benchmark::kMicrosecond);

/// The displaced path: stream the whole JSONL and string-match the digest,
/// parsing only candidate lines (the strongest linear contender — weaker
/// ones full-parse every line). Kept so the speedup column can be
/// re-measured honestly on the same box.
void BM_PointLookupScan(benchmark::State& state) {
  Store& st = store();
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string& hex = st.digests[rng() % st.digests.size()];
    const std::string needle = "\"cfg_digest\":\"" + hex + "\"";
    std::ifstream in(st.jsonl, std::ios::binary);
    std::string line, winner;
    while (std::getline(in, line)) {
      if (line.find(needle) != std::string::npos) winner = line;
    }
    if (winner.empty()) state.SkipWithError("digest not found");
    benchmark::DoNotOptimize(winner);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLookupScan)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- aggregates --

/// Memoized cell aggregate: every query after the first per cell is a
/// cache hit.
void BM_AggregateCellWarm(benchmark::State& state) {
  Store& st = store();
  for (const std::uint64_t cell : st.cells) {
    st.service->aggregate_cell(cell);  // prime
  }
  std::mt19937_64 rng(11);
  for (auto _ : state) {
    auto row = st.service->aggregate_cell(st.cells[rng() % st.cells.size()]);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["seeds_per_cell"] =
      benchmark::Counter(static_cast<double>(kSeedsPerCell));
}
BENCHMARK(BM_AggregateCellWarm)->Unit(benchmark::kMicrosecond);

/// Cold cell aggregate: a fresh service per query (cache empty), so each
/// iteration folds the cell's records through RunAverager from disk.
void BM_AggregateCellCold(benchmark::State& state) {
  Store& st = store();
  std::mt19937_64 rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    serving::ResultService fresh({st.jsonl});  // sidecar reused, cache empty
    state.ResumeTiming();
    auto row = fresh.aggregate_cell(st.cells[rng() % st.cells.size()]);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggregateCellCold)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- http burst --

/// Minimal keep-alive client for the burst benchmark.
class BurstClient {
 public:
  explicit BurstClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ok_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~BurstClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return ok_; }

  /// One request/response round trip; returns false on any failure.
  bool get(const std::string& target) {
    const std::string req =
        "GET " + target + " HTTP/1.1\r\nHost: b\r\n\r\n";
    if (::send(fd_, req.data(), req.size(), 0) !=
        static_cast<ssize_t>(req.size())) {
      return false;
    }
    // Read headers, then exactly Content-Length body bytes.
    while (buf_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) return false;
    }
    const std::size_t header_end = buf_.find("\r\n\r\n") + 4;
    const auto cl = buf_.find("Content-Length: ");
    if (cl == std::string::npos || cl > header_end) return false;
    const std::size_t len = std::strtoull(buf_.c_str() + cl + 16, nullptr, 10);
    while (buf_.size() < header_end + len) {
      if (!fill()) return false;
    }
    const bool success = buf_.compare(9, 3, "200") == 0;
    buf_.erase(0, header_end + len);
    return success;
  }

 private:
  bool fill() {
    char tmp[8192];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool ok_ = false;
  std::string buf_;
};

/// Thousands of concurrent /aggregate queries per iteration: kConnections
/// keep-alive clients hammer a warmed service, per-request latency recorded
/// for p50/p99 counters.
void BM_HttpAggregateBurst(benchmark::State& state) {
  Store& st = store();
  constexpr int kConnections = 8;
  constexpr int kRequestsPerConn = 250;  // 2000 queries per iteration

  serving::HttpServer server(
      0,
      [&st](const serving::HttpRequest& req) {
        serving::HttpResponse resp;
        const auto it = req.query.find("cell");
        if (it == req.query.end()) {
          resp.status = 400;
          return resp;
        }
        const auto row = st.service->aggregate_cell(
            serving::digest_to_u64(it->second));
        resp.status = row ? 200 : 404;
        resp.body = row ? std::to_string(row->mean.pdr_percent) : "{}";
        return resp;
      },
      4);
  for (const std::uint64_t cell : st.cells) {
    st.service->aggregate_cell(cell);  // warm the cache
  }

  std::vector<double> latencies_us;
  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(kConnections);
    std::vector<std::thread> threads;
    for (int t = 0; t < kConnections; ++t) {
      threads.emplace_back([&, t] {
        BurstClient client(server.port());
        if (!client.ok()) {
          failed = true;
          return;
        }
        std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 17);
        char hex[17];
        for (int i = 0; i < kRequestsPerConn; ++i) {
          const std::uint64_t cell = st.cells[rng() % st.cells.size()];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(cell));
          const auto start = std::chrono::steady_clock::now();
          if (!client.get(std::string("/aggregate?cell=") + hex)) {
            failed = true;
            return;
          }
          per_thread[static_cast<std::size_t>(t)].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& v : per_thread) {
      latencies_us.insert(latencies_us.end(), v.begin(), v.end());
    }
  }
  if (failed) {
    state.SkipWithError("burst client failed");
  } else {
    std::sort(latencies_us.begin(), latencies_us.end());
    const auto pct = [&](double p) {
      return latencies_us[std::min(
          latencies_us.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(
                                           latencies_us.size())))];
    };
    state.counters["p50_us"] = benchmark::Counter(pct(0.50));
    state.counters["p99_us"] = benchmark::Counter(pct(0.99));
    state.counters["connections"] = benchmark::Counter(kConnections);
  }
  state.SetItemsProcessed(state.iterations() * kConnections *
                          kRequestsPerConn);
  server.stop();
}
BENCHMARK(BM_HttpAggregateBurst)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------- reindex --

/// Full sidecar rebuild from the JSONL alone (--reindex): pins the cost of
/// recovering the index for a 100k-record store.
void BM_Reindex(benchmark::State& state) {
  Store& st = store();
  std::size_t entries = 0;
  for (auto _ : state) {
    const auto idx = serving::ResultIndex::rebuild(st.jsonl);
    entries = idx.entries().size();
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(entries));
}
BENCHMARK(BM_Reindex)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rcast::bench::run_and_tee(argc, argv, "RCAST_BENCH_SERVING_JSON",
                                   "BENCH_serving.json");
}
