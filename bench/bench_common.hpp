// Shared scaffolding for the figure-reproduction bench binaries.
//
// Every bench prints (a) the same rows/series the paper figure reports and
// (b) a SHAPE-CHECK section asserting the qualitative result (orderings,
// crossovers, rough factors). Absolute joules differ from the paper's ns-2
// testbed; the shape is the reproduction target (see EXPERIMENTS.md).
//
// Scaling: by default a reduced scenario (60 nodes, 150 s, 3 seeds) keeps
// each binary in the seconds-to-a-minute range. RCAST_FULL=1 restores the
// paper's 100 nodes / 1125 s / 10 seeds. RCAST_DURATION_S / RCAST_REPS
// override individual knobs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace rcast::bench {

using scenario::BenchScale;
using scenario::RunResult;
using scenario::ScenarioConfig;
using scenario::Scheme;

inline int g_shape_failures = 0;

/// Records and prints a shape expectation; returns the condition.
inline bool shape_check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_shape_failures;
  return ok;
}

inline int shape_exit() {
  if (g_shape_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_shape_failures);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

/// Paper-default scenario with bench scaling applied.
inline ScenarioConfig scaled_config(const BenchScale& scale) {
  ScenarioConfig cfg;
  scale.apply(cfg);
  return cfg;
}

/// The paper's packet-rate sweep (Figs. 6-8 x-axis). Scaled mode uses three
/// points; full mode the paper's 0.2..2.0 grid.
inline std::vector<double> rate_sweep(const BenchScale& scale) {
  if (scale.full) return {0.2, 0.4, 0.8, 1.2, 1.6, 2.0};
  return {0.4, 1.0, 2.0};
}

/// Mean over repetitions for one (scheme, config) cell.
inline RunResult run_cell(ScenarioConfig cfg, Scheme scheme,
                          const BenchScale& scale) {
  cfg.scheme = scheme;
  return scenario::average(
      scenario::run_repetitions(cfg, scale.repetitions));
}

inline void print_header(const char* title, const BenchScale& scale) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "scale: %s (%zu nodes, %.0f s, %zu seeds)%s\n\n",
      scale.full ? "FULL (paper)" : "reduced", scale.num_nodes,
      sim::to_seconds(scale.duration), scale.repetitions,
      scale.full ? "" : "   [set RCAST_FULL=1 for paper scale]");
}

}  // namespace rcast::bench
