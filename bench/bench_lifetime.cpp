// Extension E1: network lifetime with finite batteries.
//
// The paper argues (§1, §4.2) that energy balance extends network lifetime
// because overloaded nodes die first. With a finite per-node battery this
// bench measures time-to-first-death and the number of dead nodes at the
// end of the run for each scheme.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Extension E1: network lifetime with finite batteries",
               scale);

  // Battery sized so an always-awake node dies 75% into the run: heavy
  // (always-on / ODPM-AM) consumers die, while a balanced PSM node — which
  // averages well under 0.86 W — survives. (A smaller battery would invert
  // the dead-node comparison: balanced consumption means everyone crosses a
  // low threshold together.)
  const double battery_j = 1.15 * sim::to_seconds(scale.duration) * 0.75;
  std::printf("battery per node: %.1f J\n\n", battery_j);

  std::printf("%-8s %16s %12s %8s %12s\n", "scheme", "first-death(s)",
              "dead-nodes", "PDR(%)", "energy(J)");

  RunResult r80211, rodpm, rrcast;
  for (Scheme s : {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast}) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration / 2;
    cfg.battery_joules = battery_j;
    const RunResult r = run_cell(cfg, s, scale);
    std::printf("%-8s %16.1f %12zu %8.1f %12.1f\n",
                std::string(to_string(s)).c_str(),
                r.first_death_s == 0.0 ? sim::to_seconds(scale.duration)
                                       : r.first_death_s,
                r.dead_nodes, r.pdr_percent, r.total_energy_j);
    if (s == Scheme::k80211) r80211 = r;
    if (s == Scheme::kOdpm) rodpm = r;
    if (s == Scheme::kRcast) rrcast = r;
  }

  const double death_80211 = r80211.first_death_s == 0.0
                                 ? sim::to_seconds(scale.duration)
                                 : r80211.first_death_s;
  const double death_rcast = rrcast.first_death_s == 0.0
                                 ? sim::to_seconds(scale.duration)
                                 : rrcast.first_death_s;
  shape_check(r80211.dead_nodes == scale.num_nodes,
              "always-on 802.11 exhausts every battery");
  shape_check(death_rcast > death_80211,
              "RCAST's first death comes later than 802.11's");
  shape_check(rrcast.dead_nodes <= rodpm.dead_nodes,
              "RCAST loses no more nodes than ODPM (energy balance)");
  shape_check(rrcast.dead_nodes < scale.num_nodes,
              "RCAST keeps part of the network alive");
  return shape_exit();
}
