// Fig. 6: variance of per-node energy consumption vs packet rate, for
// pause=600 (a) and static (b). Paper shape: 802.11 has zero variance;
// ODPM's variance is several times RCAST's ("four times less variance").
//
// This bench drives its scheme × rate grid through the campaign engine
// (src/campaign/) instead of a hand-rolled loop: the grid is declared as a
// Manifest, executed on the work-stealing runner, and cells are read back
// with average_cell — the same path `rcast_campaign run` uses.
#include "bench/bench_common.hpp"
#include "campaign/runner.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

void panel(const char* name, sim::Time pause, const BenchScale& scale) {
  campaign::Manifest m;
  m.name = std::string("fig6") + name;
  m.schemes = {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast};
  m.rates_pps = rate_sweep(scale);
  m.pauses = {campaign::PauseSpec::fixed(sim::to_seconds(pause))};
  m.node_counts = {scale.num_nodes};
  m.flows = scale.num_flows;
  m.duration_s = sim::to_seconds(scale.duration);
  m.seeds = scale.repetitions;

  const campaign::RunnerOptions opt;  // in-memory: no journal, no store
  const campaign::CampaignResult res = campaign::run_campaign(m, opt);

  std::printf("--- Fig.6%s: pause=%.0f s ---\n", name,
              sim::to_seconds(pause));
  std::printf("%-8s", "rate");
  for (double r : m.rates_pps) std::printf(" %10.1f", r);
  std::printf("\n");

  double var_odpm_sum = 0.0, var_rcast_sum = 0.0, var_awake_max = 0.0;
  for (Scheme s : m.schemes) {
    std::printf("%-8s", std::string(scenario::scheme_name(s)).c_str());
    for (double rate : m.rates_pps) {
      const RunResult r = res.average_cell(
          [&](const ScenarioConfig& c) {
            return c.scheme == s && c.rate_pps == rate;
          });
      std::printf(" %10.1f", r.energy_variance);
      if (s == Scheme::kOdpm) var_odpm_sum += r.energy_variance;
      if (s == Scheme::kRcast) var_rcast_sum += r.energy_variance;
      if (s == Scheme::k80211) {
        var_awake_max = std::max(var_awake_max, r.energy_variance);
      }
    }
    std::printf("\n");
  }

  std::printf("variance ratio ODPM/RCAST (sweep mean): %.2fx\n",
              var_odpm_sum / std::max(var_rcast_sum, 1e-12));
  shape_check(res.all_done(), "campaign ran every cell without failures");
  shape_check(var_awake_max < 1e-6, "802.11 variance is zero");
  shape_check(var_odpm_sum > 1.5 * var_rcast_sum,
              "ODPM variance well above RCAST (paper: ~2.4x-4x)");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 6: variance of per-node energy vs packet rate", scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;
  panel("a", mobile_pause, scale);
  panel("b", scale.duration, scale);
  return shape_exit();
}
