// Fig. 6: variance of per-node energy consumption vs packet rate, for
// pause=600 (a) and static (b). Paper shape: 802.11 has zero variance;
// ODPM's variance is several times RCAST's ("four times less variance").
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

void panel(const char* name, sim::Time pause, const BenchScale& scale) {
  ScenarioConfig base = scaled_config(scale);
  base.pause = pause;

  std::printf("--- Fig.6%s: pause=%.0f s ---\n", name,
              sim::to_seconds(pause));
  std::printf("%-8s", "rate");
  const auto rates = rate_sweep(scale);
  for (double r : rates) std::printf(" %10.1f", r);
  std::printf("\n");

  double var_odpm_sum = 0.0, var_rcast_sum = 0.0, var_awake_max = 0.0;
  for (Scheme s : {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast}) {
    std::printf("%-8s", std::string(to_string(s)).c_str());
    for (double rate : rates) {
      ScenarioConfig cfg = base;
      cfg.rate_pps = rate;
      const RunResult r = run_cell(cfg, s, scale);
      std::printf(" %10.1f", r.energy_variance);
      if (s == Scheme::kOdpm) var_odpm_sum += r.energy_variance;
      if (s == Scheme::kRcast) var_rcast_sum += r.energy_variance;
      if (s == Scheme::k80211) {
        var_awake_max = std::max(var_awake_max, r.energy_variance);
      }
    }
    std::printf("\n");
  }

  std::printf("variance ratio ODPM/RCAST (sweep mean): %.2fx\n",
              var_odpm_sum / std::max(var_rcast_sum, 1e-12));
  shape_check(var_awake_max < 1e-6, "802.11 variance is zero");
  shape_check(var_odpm_sum > 1.5 * var_rcast_sum,
              "ODPM variance well above RCAST (paper: ~2.4x-4x)");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 6: variance of per-node energy vs packet rate", scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;
  panel("a", mobile_pause, scale);
  panel("b", scale.duration, scale);
  return shape_exit();
}
