// Scaling benchmarks for the PHY/geo hot path (google-benchmark): spatial
// range queries, carrier-sense cost as concurrent in-flight transmissions
// grow, the transmit storm at paper density scaled to thousands of nodes,
// and a full 2k-node scenario second. Teed to RCAST_BENCH_SCALE_JSON
// (default ./BENCH_scale.json); the committed baseline/after record lives at
// the repo root under the same name.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_json.hpp"
#include "mobility/mobility_manager.hpp"
#include "phy/channel.hpp"
#include "phy/phy.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"

namespace {

using namespace rcast;

// World scaled to hold `n` nodes at the paper's density (50 nodes per
// 1500 m x 300 m), preserving the 5:1 aspect ratio.
geo::Rect world_for(std::size_t n, double per_node_area = 9000.0) {
  const double area = static_cast<double>(n) * per_node_area;
  const double h = std::sqrt(area / 5.0);
  return geo::Rect{5.0 * h, h};
}

// Spatial range query throughput: n static nodes at constant density, query
// the reception disc around random nodes. The hot shape behind every
// Channel::transmit sensed-set computation.
void BM_NodesWithin(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const geo::Rect world = world_for(n);
  sim::Simulator sim;
  mobility::MobilityManager mobility(sim, world, 550.0);
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    mobility.add_node(static_cast<mobility::NodeId>(i),
                      std::make_unique<mobility::StaticModel>(geo::Vec2{
                          rng.uniform(0.0, world.width),
                          rng.uniform(0.0, world.height)}));
  }
  std::uint64_t found = 0;
  util::SmallVec<mobility::NodeId, 128> out;  // reused scratch, no heap churn
  for (auto _ : state) {
    const auto id = static_cast<mobility::NodeId>(rng.uniform_u64(n));
    out.clear();
    mobility.nodes_within(mobility.position(id), 250.0, id, out);
    found += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_neighbors"] = benchmark::Counter(
      static_cast<double>(found) / static_cast<double>(state.iterations()));
  state.counters["candidates_per_query"] = benchmark::Counter(
      static_cast<double>(mobility.perf().spatial_candidates_scanned) /
      static_cast<double>(mobility.perf().spatial_queries));
}
BENCHMARK(BM_NodesWithin)->Arg(256)->Arg(1024)->Arg(4096);

// Carrier-sense query cost as the number of concurrent in-flight
// transmissions grows. Transmitters are spread over a large world, so only a
// handful are ever within carrier-sense range of the probe point; the cost
// of finding that out is what scales (or, after the cell-aggregated rework,
// does not).
void BM_CarrierSense(benchmark::State& state) {
  const std::size_t n_flight = static_cast<std::size_t>(state.range(0));
  const geo::Rect world = world_for(n_flight);
  sim::Simulator sim;
  mobility::MobilityManager mobility(sim, world, 550.0);
  phy::Channel channel(sim, mobility, phy::ChannelConfig{});
  Rng rng(13);
  for (std::size_t i = 0; i < n_flight; ++i) {
    mobility.add_node(static_cast<mobility::NodeId>(i),
                      std::make_unique<mobility::StaticModel>(geo::Vec2{
                          rng.uniform(0.0, world.width),
                          rng.uniform(0.0, world.height)}));
  }
  // No Phy is attached, so transmit() records the in-flight entry without
  // scheduling arrivals; a long duration keeps every entry active.
  for (std::size_t i = 0; i < n_flight; ++i) {
    auto frame = util::make_pooled<phy::Frame>(sim.pools());
    frame->tx = static_cast<phy::NodeId>(i);
    frame->rx = phy::kBroadcastId;
    frame->bits = 512;
    channel.transmit(std::move(frame), 10 * sim::kSecond);
  }
  sim::Time acc = 0;
  for (auto _ : state) {
    const geo::Vec2 probe{rng.uniform(0.0, world.width),
                          rng.uniform(0.0, world.height)};
    acc += channel.sensed_busy_until(probe);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
  state.counters["cells_per_probe"] = benchmark::Counter(
      static_cast<double>(channel.stats().cs_cells_visited) /
      static_cast<double>(state.iterations()));
  state.counters["entries_per_probe"] = benchmark::Counter(
      static_cast<double>(channel.stats().cs_entries_scanned) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CarrierSense)->Arg(16)->Arg(256)->Arg(4096);

// The 1000-node transmit storm from bench_micro, scaled up: paper density,
// staggered broadcast frames, full arrival fan-out through the Phys.
void BM_TransmitStorm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t kFrames = 200;
  const geo::Rect world = world_for(n, 450.0);  // 1000 nodes in 1500x300
  std::uint64_t events = 0;
  std::uint64_t groups = 0;
  std::uint64_t oversize = 0;
  sim::PerfCounters last{};
  for (auto _ : state) {
    sim::Simulator sim;
    mobility::MobilityManager mobility(sim, world, 550.0);
    phy::Channel channel(sim, mobility, phy::ChannelConfig{});
    Rng rng(7);
    std::vector<std::unique_ptr<phy::Phy>> phys;
    phys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      mobility.add_node(static_cast<phy::NodeId>(i),
                        std::make_unique<mobility::StaticModel>(geo::Vec2{
                            rng.uniform(0.0, world.width),
                            rng.uniform(0.0, world.height)}));
      phys.push_back(std::make_unique<phy::Phy>(
          sim, channel, static_cast<phy::NodeId>(i), nullptr));
    }
    for (std::size_t i = 0; i < kFrames; ++i) {
      const auto tx = static_cast<phy::NodeId>(rng.uniform_u64(n));
      const sim::Time at = static_cast<sim::Time>(i) * 50 * sim::kMicrosecond;
      sim.at(at, [&channel, &sim, tx] {
        auto frame = util::make_pooled<phy::Frame>(sim.pools());
        frame->tx = tx;
        frame->rx = phy::kBroadcastId;
        frame->bits = 512;
        channel.transmit(std::move(frame), channel.duration_of(512));
      });
    }
    sim.run_until(kFrames * 50 * sim::kMicrosecond + sim::kSecond);
    // Events-equivalent count: each arrival group fires as one queue event
    // but delivers its whole record vector, so add the fan-out back to stay
    // comparable with per-receiver-scheduling baselines (same convention as
    // the golden-pinned RunResult field). The run drains fully, so fire-time
    // counters equal creation-time counts here.
    const phy::ChannelStats ch = channel.stats();
    events += sim.executed_events() + ch.arrival_member_fires -
              ch.arrival_group_fires;
    groups += ch.arrival_groups;
    for (std::size_t b = 3; b < ch.arrival_group_size_hist.size(); ++b) {
      oversize += ch.arrival_group_size_hist[b];
    }
    last = sim.perf_counters();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events) /
                         static_cast<double>(state.iterations()));
  state.counters["heap_fallbacks"] =
      benchmark::Counter(static_cast<double>(last.handler_heap_fallbacks));
  state.counters["queue_rung_spawns"] =
      benchmark::Counter(static_cast<double>(last.queue_rung_spawns));
  state.counters["queue_depth_high_water"] =
      benchmark::Counter(static_cast<double>(last.queue_depth_high_water));
  state.counters["dispatch_batches"] =
      benchmark::Counter(static_cast<double>(last.dispatch_batches));
  // In-place dispatch proof: an unsharded run must never move a handler out
  // of its slot, and every fired event must go through the in-place path.
  state.counters["handler_moves"] =
      benchmark::Counter(static_cast<double>(last.handler_moves));
  state.counters["inplace_fires"] =
      benchmark::Counter(static_cast<double>(last.inplace_fires));
  state.counters["arrival_groups"] =
      benchmark::Counter(static_cast<double>(groups) /
                         static_cast<double>(state.iterations()));
  // Any group past kArrivalGroupCapacity means chaining failed; CI pins 0.
  state.counters["arrival_group_oversize"] =
      benchmark::Counter(static_cast<double>(oversize));
}
BENCHMARK(BM_TransmitStorm)->Arg(1000)->Arg(4096)->Unit(benchmark::kMillisecond);

// End-to-end second of a 2000-node mobile scenario: the regime where the
// randomized-overhearing comparisons actually diverge, and the workload the
// north star says must run as fast as the hardware allows.
void BM_FullScenario2k(benchmark::State& state) {
  sim::PerfCounters last{};
  for (auto _ : state) {
    scenario::ScenarioConfig cfg;
    cfg.num_nodes = 2000;
    cfg.world = world_for(2000, 450.0);
    cfg.num_flows = 40;
    cfg.duration = 1 * sim::kSecond;
    cfg.pause = 0;
    cfg.scheme = scenario::Scheme::kRcast;
    scenario::RunResult r = scenario::run_scenario(cfg);
    last = r.perf;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_events_per_sec"] =
      benchmark::Counter(last.events_per_sec);
  state.counters["heap_fallbacks"] =
      benchmark::Counter(static_cast<double>(last.handler_heap_fallbacks));
}
BENCHMARK(BM_FullScenario2k)->Unit(benchmark::kMillisecond);

// One second of a 100k-node run, the sharded-execution scale target
// (DESIGN.md §15): Arg is sim.shards (1 = the single-queue path, 4 = the
// spatial decomposition the acceptance criterion names; on CI runners 4 also
// matches the hardware thread count). Items are whole runs and the rate is
// pinned to real time (shard work happens on worker threads, so CPU time of
// the calling thread is meaningless here): items_per_second is 1/wall and
// the recorded after/baseline ratio in BENCH_scale.json is exactly the
// sharded-vs-single speedup. One iteration is ~20 s on the reference box —
// google-benchmark runs it once per Arg at smoke min_time.
void BM_ShardedScenario100k(benchmark::State& state) {
  sim::PerfCounters last{};
  double energy = 0.0;
  for (auto _ : state) {
    scenario::ScenarioConfig cfg;
    cfg.num_nodes = 100000;
    cfg.world = world_for(100000, 450.0);  // paper density: 15000 x 3000
    cfg.num_flows = 200;
    cfg.duration = 1 * sim::kSecond;
    cfg.pause = 0;
    cfg.scheme = scenario::Scheme::kRcast;
    cfg.seed = 3;
    cfg.sim_shards = static_cast<std::uint64_t>(state.range(0));
    scenario::RunResult r = scenario::run_scenario(cfg);
    last = r.perf;
    energy = r.total_energy_j;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sim_events_per_sec"] =
      benchmark::Counter(last.events_per_sec);
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(last.events_executed));
  state.counters["heap_fallbacks"] =
      benchmark::Counter(static_cast<double>(last.handler_heap_fallbacks));
  state.counters["total_energy_j"] = benchmark::Counter(energy);
}
BENCHMARK(BM_ShardedScenario100k)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return rcast::bench::run_and_tee(argc, argv, "RCAST_BENCH_SCALE_JSON",
                                   "BENCH_scale.json");
}
