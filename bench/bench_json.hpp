// Shared google-benchmark scaffolding for the micro/scaling bench binaries:
// a console reporter that also records every run and tees it to a flat JSON
// file (name, real_time, user counters) so throughput numbers can be
// committed and compared across PRs. tools/check_bench.py consumes these
// files in CI. Kept dependency-free; the schema is documented in DESIGN.md
// "Performance".
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace rcast::bench {

class TeeJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      recorded_.push_back(run);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < recorded_.size(); ++i) {
      const Run& run = recorded_[i];
      out << "    {\"name\": \"" << run.benchmark_name() << "\", "
          << "\"real_time\": " << run.GetAdjustedRealTime() << ", "
          << "\"time_unit\": \"" << benchmark::GetTimeUnitString(run.time_unit)
          << "\"";
      for (const auto& [name, counter] : run.counters) {
        out << ", \"" << name << "\": " << static_cast<double>(counter);
      }
      out << "}" << (i + 1 < recorded_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
  }

 private:
  std::vector<Run> recorded_;
};

/// Runs the registered benchmarks and tees the record to `env_var` (or
/// `default_path` when unset). Returns the process exit code.
inline int run_and_tee(int argc, char** argv, const char* env_var,
                       const char* default_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TeeJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* path = std::getenv(env_var);
  const std::string json_path = path != nullptr ? path : default_path;
  if (!reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "bench: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace rcast::bench
