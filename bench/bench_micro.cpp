// Micro-benchmarks (google-benchmark): hot paths of the simulator itself.
// These guard the performance that makes paper-scale sweeps feasible.
#include <benchmark/benchmark.h>

#include "geo/grid_index.hpp"
#include "routing/route_cache.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcast;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngBernoulli(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli(0.2));
  }
}
BENCHMARK(BM_RngBernoulli);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.push(static_cast<sim::Time>(rng.uniform_u64(1'000'000)), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(q.push(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop();
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_GridQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  geo::GridIndex grid(geo::Rect{1500.0, 300.0}, 550.0);
  Rng rng(3);
  for (geo::ItemId i = 0; i < n; ++i) {
    grid.insert(i, {rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)});
  }
  std::vector<geo::ItemId> out;
  for (auto _ : state) {
    out.clear();
    grid.query({rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)}, 550.0,
               geo::GridIndex::npos, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GridQuery)->Arg(100)->Arg(1000);

void BM_RouteCacheAddFind(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    routing::RouteCache cache(0, routing::RouteCacheConfig{});
    for (int i = 0; i < 64; ++i) {
      std::vector<routing::NodeId> path{0};
      const int len = 2 + static_cast<int>(rng.uniform_u64(6));
      for (int h = 0; h < len; ++h) {
        path.push_back(static_cast<routing::NodeId>(1 + rng.uniform_u64(99)));
      }
      cache.add(path, i);
    }
    for (routing::NodeId d = 1; d < 100; ++d) {
      benchmark::DoNotOptimize(cache.find(d, 100));
    }
  }
}
BENCHMARK(BM_RouteCacheAddFind);

void BM_FullScenarioSecond(benchmark::State& state) {
  // End-to-end cost of simulating one second of the paper's scenario.
  for (auto _ : state) {
    scenario::ScenarioConfig cfg;
    cfg.num_nodes = 50;
    cfg.num_flows = 10;
    cfg.duration = 1 * sim::kSecond;
    cfg.scheme = scenario::Scheme::kRcast;
    benchmark::DoNotOptimize(scenario::run_scenario(cfg));
  }
}
BENCHMARK(BM_FullScenarioSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
