// Micro-benchmarks (google-benchmark): hot paths of the simulator itself.
// These guard the performance that makes paper-scale sweeps feasible.
//
// Besides the console table, the run is teed to a machine-readable JSON file
// (RCAST_BENCH_JSON, default ./BENCH_hotpath.json) so throughput numbers can
// be committed and compared across PRs.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"
#include "geo/grid_index.hpp"
#include "mobility/mobility_manager.hpp"
#include "phy/channel.hpp"
#include "phy/phy.hpp"
#include "routing/packet.hpp"
#include "routing/route_cache.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcast;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngBernoulli(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli(0.2));
  }
}
BENCHMARK(BM_RngBernoulli);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.push(static_cast<sim::Time>(rng.uniform_u64(1'000'000)), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(q.push(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop();
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

// Schedule/cancel/pop churn in the ratio a PSM MAC produces: every exchange
// arms a backoff and an ACK timeout and cancels most of them before firing.
void BM_EventChurn(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> live;
    live.reserve(static_cast<std::size_t>(batch));
    sim::Time t = 0;
    for (int i = 0; i < batch; ++i) {
      t += static_cast<sim::Time>(rng.uniform_u64(100));
      live.push_back(q.push(t, [] {}));
      if (live.size() >= 2 && rng.bernoulli(0.5)) {
        q.cancel(live[live.size() - 2]);
      }
      if (q.size() > 64) q.pop();
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventChurn)->Arg(1024)->Arg(16384);

// Synced-beacon shape: every PSM node arms its beacon timer at the same
// instant, so the queue sees large same-timestamp cohorts. Batched dispatch
// should drain each cohort in one bottom-tier sweep.
void BM_EventSameTimeBurst(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  constexpr int kBursts = 64;
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (int b = 0; b < kBursts; ++b) {
      const auto t = static_cast<sim::Time>(b + 1) * 100 * sim::kMillisecond;
      for (int i = 0; i < burst; ++i) q.push(t, [] {});
    }
    while (!q.empty()) {
      q.pop_batch([&n](sim::EventQueue::Handler& h) {
        ++n;
        h();
      });
    }
  }
  benchmark::DoNotOptimize(n);
  state.SetItemsProcessed(state.iterations() * burst * kBursts);
}
BENCHMARK(BM_EventSameTimeBurst)->Arg(50)->Arg(1000);

// Bimodal horizon: the mix a routing node actually produces — microsecond
// PHY/MAC events interleaved with route-cache expiries seconds out. The far
// cohort must sit in the top/rung tiers without taxing near-horizon pops.
void BM_EventBimodalHorizon(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    sim::EventQueue q;
    sim::Time now = 0;
    for (int i = 0; i < batch; ++i) {
      now += static_cast<sim::Time>(rng.uniform_u64(20 * sim::kMicrosecond));
      q.push(now + static_cast<sim::Time>(
                       rng.uniform_u64(2 * sim::kMillisecond)),
             [] {});
      if (i % 8 == 0) {  // route-cache expiry, 5-30 s out
        q.push(now + 5 * sim::kSecond +
                   static_cast<sim::Time>(rng.uniform_u64(25 * sim::kSecond)),
               [] {});
      }
      if (q.size() > 128) now = q.pop();
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventBimodalHorizon)->Arg(16384);

// Cancel storm at compaction scale: arm a large timer population, cancel
// ~94% of it (ACK timeouts that never fire), then drain. Exercises the
// tombstone sweep and the 4:1 storage bound.
void BM_EventCancelStorm(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(batch));
    sim::Time t = 0;
    for (int i = 0; i < batch; ++i) {
      t += static_cast<sim::Time>(rng.uniform_u64(50 * sim::kMicrosecond));
      ids.push_back(q.push(t, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 16 != 0) q.cancel(ids[i]);
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventCancelStorm)->Arg(16384);

// The DSR forward path: clone an incoming DATA packet out of the pool,
// advance its position on the source route, release the clone back (what
// every intermediate hop does). After the first iteration this is
// allocation-free: the route lives inline (SmallVec) and the shared_ptr
// block recycles through the per-simulator pool.
void BM_PacketForward(benchmark::State& state) {
  sim::Simulator sim;
  auto pkt = util::make_pooled<routing::DsrPacket>(sim.pools());
  pkt->type = routing::PacketType::kData;
  pkt->src = 0;
  pkt->dst = 5;
  pkt->route = {0, 1, 2, 3, 4, 5};
  pkt->payload_bits = 64 * 8;
  std::int64_t bits = 0;
  for (auto _ : state) {
    auto fwd = util::make_pooled<routing::DsrPacket>(sim.pools(), *pkt);
    fwd->hop_index = pkt->hop_index + 1;
    bits += fwd->size_bits();
    benchmark::DoNotOptimize(fwd);
  }
  benchmark::DoNotOptimize(bits);
  state.SetItemsProcessed(state.iterations());
  const util::PoolStats ps = sim.pools().total_stats();
  state.counters["pool_miss"] = benchmark::Counter(
      static_cast<double>(ps.misses));
}
BENCHMARK(BM_PacketForward);

// 1000 static radios in the paper's arena, a staggered storm of broadcast
// frames: stresses the channel fan-out (two scheduled arrivals per sensed
// receiver per frame). Reports simulator events/sec.
void BM_TransmitStorm(benchmark::State& state) {
  const std::size_t kNodes = 1000;
  const std::size_t kFrames = 200;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    mobility::MobilityManager mobility(sim, geo::Rect{1500.0, 300.0}, 550.0);
    phy::Channel channel(sim, mobility, phy::ChannelConfig{});
    Rng rng(7);
    std::vector<std::unique_ptr<phy::Phy>> phys;
    phys.reserve(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      mobility.add_node(static_cast<phy::NodeId>(i),
                        std::make_unique<mobility::StaticModel>(geo::Vec2{
                            rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)}));
      phys.push_back(std::make_unique<phy::Phy>(
          sim, channel, static_cast<phy::NodeId>(i), nullptr));
    }
    for (std::size_t i = 0; i < kFrames; ++i) {
      const auto tx = static_cast<phy::NodeId>(rng.uniform_u64(kNodes));
      const sim::Time at =
          static_cast<sim::Time>(i) * 50 * sim::kMicrosecond;
      sim.at(at, [&channel, &sim, tx] {
        auto frame = util::make_pooled<phy::Frame>(sim.pools());
        frame->tx = tx;
        frame->rx = phy::kBroadcastId;
        frame->bits = 512;
        channel.transmit(std::move(frame), channel.duration_of(512));
      });
    }
    sim.run_until(kFrames * 50 * sim::kMicrosecond + sim::kSecond);
    events += sim.executed_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TransmitStorm)->Unit(benchmark::kMillisecond);

// Carrier-busy window churn: one radio under a dense stream of overlapping
// carrier-sense-only arrivals, each extending the busy window a little
// further. Before the lazy idle-check re-arm (Phy::schedule_idle_check)
// every extension cancelled and re-pushed the pending idle check; now a
// check at or before the new deadline is left alone and re-arms itself when
// it fires. idle_pushes_per_arrival isolates that churn: scheduler pushes
// beyond the two driver events this harness schedules per arrival.
void BM_PhyBusyChurn(benchmark::State& state) {
  const std::size_t kArrivals = 4096;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    mobility::MobilityManager mobility(sim, geo::Rect{1500.0, 300.0}, 550.0);
    phy::Channel channel(sim, mobility, phy::ChannelConfig{});
    mobility.add_node(0, std::make_unique<mobility::StaticModel>(
                             geo::Vec2{10.0, 10.0}));
    mobility.add_node(1, std::make_unique<mobility::StaticModel>(
                             geo::Vec2{400.0, 10.0}));
    phy::Phy rx(sim, channel, 0, nullptr);
    auto frame = util::make_pooled<phy::Frame>(sim.pools());
    frame->tx = 1;
    frame->rx = phy::kBroadcastId;
    frame->bits = 512;
    for (std::size_t i = 0; i < kArrivals; ++i) {
      // 20 us spacing, 50 us airtime: every arrival lands while the window
      // from the previous two is still open, the extend-while-busy shape
      // the lazy re-arm optimizes.
      const sim::Time start =
          static_cast<sim::Time>(i) * 20 * sim::kMicrosecond;
      const sim::Time end = start + 50 * sim::kMicrosecond;
      sim.at(start, [&rx, frame, i, end] {
        rx.arrival_start(i + 1, frame, /*in_rx_range=*/false, 400.0, end);
      });
      sim.at(end, [&rx, frame, i] {
        rx.arrival_end(i + 1, frame, /*in_rx_range=*/false);
      });
    }
    sim.run_until(static_cast<sim::Time>(kArrivals + 4) * 20 *
                  sim::kMicrosecond + sim::kSecond);
    scheduled += sim.perf_counters().events_scheduled;
    executed += sim.executed_events();
  }
  const double arrivals =
      static_cast<double>(state.iterations()) * static_cast<double>(kArrivals);
  state.SetItemsProcessed(static_cast<std::int64_t>(arrivals));
  state.counters["idle_pushes_per_arrival"] = benchmark::Counter(
      (static_cast<double>(scheduled) - 2.0 * arrivals) / arrivals);
  state.counters["events_per_arrival"] =
      benchmark::Counter(static_cast<double>(executed) / arrivals);
}
BENCHMARK(BM_PhyBusyChurn);

void BM_GridQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  geo::GridIndex grid(geo::Rect{1500.0, 300.0}, 550.0);
  Rng rng(3);
  for (geo::ItemId i = 0; i < n; ++i) {
    grid.insert(i, {rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)});
  }
  std::vector<geo::ItemId> out;
  for (auto _ : state) {
    out.clear();
    grid.query({rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)}, 550.0,
               geo::GridIndex::npos, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GridQuery)->Arg(100)->Arg(1000);

void BM_RouteCacheAddFind(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    routing::RouteCache cache(0, routing::RouteCacheConfig{});
    for (int i = 0; i < 64; ++i) {
      std::vector<routing::NodeId> path{0};
      const int len = 2 + static_cast<int>(rng.uniform_u64(6));
      for (int h = 0; h < len; ++h) {
        path.push_back(static_cast<routing::NodeId>(1 + rng.uniform_u64(99)));
      }
      cache.add(path, i);
    }
    for (routing::NodeId d = 1; d < 100; ++d) {
      benchmark::DoNotOptimize(cache.find(d, 100));
    }
  }
}
BENCHMARK(BM_RouteCacheAddFind);

void BM_FullScenarioSecond(benchmark::State& state) {
  // End-to-end cost of simulating one second of the paper's scenario.
  sim::PerfCounters last{};
  for (auto _ : state) {
    scenario::ScenarioConfig cfg;
    cfg.num_nodes = 50;
    cfg.num_flows = 10;
    cfg.duration = 1 * sim::kSecond;
    cfg.scheme = scenario::Scheme::kRcast;
    scenario::RunResult r = scenario::run_scenario(cfg);
    last = r.perf;
    benchmark::DoNotOptimize(r);
  }
  // Allocation discipline of the full stack, from the last run: heap
  // fallbacks must be 0, pool misses bounded by warmup, and (when the
  // RCAST_ALLOC_COUNT hook is compiled in) bytes/event near zero.
  state.counters["sim_events_per_sec"] = benchmark::Counter(last.events_per_sec);
  state.counters["heap_fallbacks"] =
      benchmark::Counter(static_cast<double>(last.handler_heap_fallbacks));
  state.counters["pool_misses"] =
      benchmark::Counter(static_cast<double>(last.pool_misses));
  state.counters["bytes_per_event"] = benchmark::Counter(
      last.events_executed > 0
          ? static_cast<double>(last.bytes_allocated) /
                static_cast<double>(last.events_executed)
          : 0.0);
}
BENCHMARK(BM_FullScenarioSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rcast::bench::run_and_tee(argc, argv, "RCAST_BENCH_JSON",
                                   "BENCH_hotpath.json");
}
