// Ablation A4: why the paper builds Rcast on DSR rather than AODV (§1).
//
// "Other MANET routing algorithms usually employ periodic broadcasts of
// routing-related control messages, such as Hello messages in AODV, and
// thus tend to consume more energy with IEEE 802.11 PSM."
//
// This bench runs both protocols under plain 802.11 and under PSM and
// reports energy and delivery. Every AODV hello is a broadcast ATIM that
// keeps the sender's whole neighborhood awake for a beacon interval, so
// AODV under PSM collapses back to near-always-on consumption.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Ablation A4: DSR+Rcast vs AODV under PSM (paper §1)", scale);

  struct Cell {
    scenario::RoutingProtocol proto;
    Scheme scheme;
    const char* label;
  };
  const Cell cells[] = {
      {scenario::RoutingProtocol::kDsr, Scheme::k80211, "DSR / 802.11"},
      {scenario::RoutingProtocol::kAodv, Scheme::k80211, "AODV / 802.11"},
      {scenario::RoutingProtocol::kDsr, Scheme::kRcast, "DSR / Rcast-PSM"},
      {scenario::RoutingProtocol::kAodv, Scheme::kRcast, "AODV / PSM"},
  };

  std::printf("%-16s %12s %8s %10s %10s %10s\n", "stack", "energy(J)",
              "PDR(%)", "delay(s)", "hellos", "ctrl-tx");

  RunResult results[4];
  int i = 0;
  for (const Cell& c : cells) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration / 2;
    cfg.routing = c.proto;
    cfg.scheme = c.scheme;
    const RunResult r = run_cell(cfg, c.scheme, scale);
    std::printf("%-16s %12.1f %8.1f %10.3f %10llu %10llu\n", c.label,
                r.total_energy_j, r.pdr_percent, r.avg_delay_s,
                static_cast<unsigned long long>(r.hello_tx),
                static_cast<unsigned long long>(r.control_tx));
    results[i++] = r;
  }

  const RunResult& dsr_awake = results[0];
  const RunResult& aodv_awake = results[1];
  const RunResult& dsr_psm = results[2];
  const RunResult& aodv_psm = results[3];

  std::printf("\nPSM savings: DSR %.0f%%, AODV %.0f%%\n",
              100.0 * (1.0 - dsr_psm.total_energy_j /
                                 dsr_awake.total_energy_j),
              100.0 * (1.0 - aodv_psm.total_energy_j /
                                 aodv_awake.total_energy_j));

  std::printf("\nSHAPE-CHECK (paper §1 claim)\n");
  shape_check(aodv_psm.total_energy_j > 1.5 * dsr_psm.total_energy_j,
              "AODV under PSM burns far more than DSR+Rcast under PSM");
  shape_check(aodv_psm.total_energy_j > 0.8 * aodv_awake.total_energy_j,
              "hello broadcasts forfeit most of AODV's PSM savings");
  shape_check(dsr_psm.total_energy_j < 0.6 * dsr_awake.total_energy_j,
              "DSR+Rcast keeps large PSM savings");
  shape_check(aodv_psm.pdr_percent > 80.0 && dsr_psm.pdr_percent > 80.0,
              "both stacks still deliver under PSM");
  shape_check(aodv_psm.hello_tx > 0 && dsr_psm.hello_tx == 0,
              "only AODV pays periodic hello traffic");
  return shape_exit();
}
