// Ablation A3: the per-packet-class overhearing map of paper §3.3.
//
// Rcast's choices: RREP randomized, DATA randomized, RERR unconditional.
// This bench perturbs one class at a time and reports the cost of each
// choice, quantifying the paper's design reasoning (e.g. unconditional RREP
// overhearing is wasteful; RERR must propagate to purge stale routes).
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

struct Variant {
  const char* name;
  core::OverhearingMap map;
};

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Ablation A3: per-packet-class overhearing map (paper §3.3)",
               scale);

  using mac::OverhearingMode;
  std::vector<Variant> variants;
  variants.push_back({"rcast (paper)", core::OverhearingMap::rcast()});
  {
    auto m = core::OverhearingMap::rcast();
    m.rrep = OverhearingMode::kUnconditional;
    variants.push_back({"rrep=uncond", m});
  }
  {
    auto m = core::OverhearingMap::rcast();
    m.data = OverhearingMode::kUnconditional;
    variants.push_back({"data=uncond", m});
  }
  {
    auto m = core::OverhearingMap::rcast();
    m.rerr = OverhearingMode::kNone;
    variants.push_back({"rerr=none", m});
  }
  {
    auto m = core::OverhearingMap::rcast();
    m.data = OverhearingMode::kNone;
    m.rrep = OverhearingMode::kNone;
    variants.push_back({"no-overhear", m});
  }
  variants.push_back({"all-uncond", core::OverhearingMap::psm_all()});

  std::printf("%-14s %12s %8s %10s %12s\n", "variant", "energy(J)", "PDR(%)",
              "delay(s)", "norm-ovhd");

  std::vector<RunResult> rs;
  for (const auto& v : variants) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration / 2;  // mobility makes RERRs matter
    cfg.scheme = Scheme::kRcast;
    cfg.override_oh_map = true;
    cfg.dsr.oh_map = v.map;
    const RunResult r =
        scenario::average(scenario::run_repetitions(cfg, scale.repetitions));
    std::printf("%-14s %12.1f %8.1f %10.3f %12.3f\n", v.name,
                r.total_energy_j, r.pdr_percent, r.avg_delay_s,
                r.normalized_overhead);
    rs.push_back(r);
  }

  // rs: [paper, rrep=uncond, data=uncond, rerr=none, no-overhear, all-uncond]
  shape_check(rs[0].total_energy_j < rs[2].total_energy_j,
              "unconditional DATA overhearing costs energy vs paper map");
  shape_check(rs[0].total_energy_j < rs[5].total_energy_j,
              "paper map cheaper than all-unconditional");
  shape_check(rs[5].total_energy_j > rs[4].total_energy_j,
              "all-unconditional is the most expensive end of the spectrum");
  shape_check(rs[0].pdr_percent > 70.0, "paper map keeps PDR healthy");
  return shape_exit();
}
