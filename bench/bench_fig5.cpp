// Fig. 5: per-node energy consumption, sorted ascending, four panels:
//   (a) rate 0.4, pause 600   (b) rate 2.0, pause 600
//   (c) rate 0.4, static      (d) rate 2.0, static
// Paper shape: 802.11 is a flat line at the maximum; ODPM is strongly
// uneven (active nodes near always-on, idle nodes at the PSM floor);
// RCAST is low and nearly flat.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

void panel(const char* name, double rate, sim::Time pause,
           const BenchScale& scale) {
  ScenarioConfig cfg = scaled_config(scale);
  cfg.rate_pps = rate;
  cfg.pause = pause;

  std::printf("--- Fig.5%s: rate=%.1f pkt/s, pause=%.0f s ---\n", name, rate,
              sim::to_seconds(pause));

  std::vector<double> curves[3];
  const Scheme schemes[3] = {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast};
  for (int i = 0; i < 3; ++i) {
    RunResult r = run_cell(cfg, schemes[i], scale);
    std::sort(r.per_node_energy_j.begin(), r.per_node_energy_j.end());
    curves[i] = r.per_node_energy_j;
  }

  // Print deciles of the sorted curve (the figure's x-axis is node rank).
  std::printf("%-8s", "rank%");
  for (int d = 0; d <= 100; d += 10) std::printf(" %8d", d);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-8s", std::string(to_string(schemes[i])).c_str());
    const auto& c = curves[i];
    for (int d = 0; d <= 100; d += 10) {
      const std::size_t idx =
          std::min(c.size() - 1, d * c.size() / 100);
      std::printf(" %8.1f", c[idx]);
    }
    std::printf("\n");
  }

  const auto& awake = curves[0];
  const auto& odpm = curves[1];
  const auto& rcast = curves[2];
  // P90-P10 spread of the sorted curve: robust to single-node outliers.
  auto spread = [](const std::vector<double>& c) {
    return c[c.size() * 9 / 10] - c[c.size() / 10];
  };
  const double flat_80211 = awake.back() - awake.front();
  const double spread_odpm = spread(odpm);
  const double spread_rcast = spread(rcast);
  std::printf("spread (p90-p10): 80211=%.2f  ODPM=%.2f  RCAST=%.2f\n",
              flat_80211, spread_odpm, spread_rcast);

  shape_check(flat_80211 < 1e-6, "802.11 curve is flat at the maximum");
  shape_check(awake.back() >= odpm.back() * 0.999,
              "802.11 max >= ODPM max (nobody exceeds always-on)");
  shape_check(spread_odpm > spread_rcast,
              "ODPM per-node spread exceeds RCAST (energy balance)");
  shape_check(rcast.back() < awake.back(),
              "every RCAST node below the always-on ceiling");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 5: per-node energy consumption (sorted)", scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;
  panel("a", 0.4, mobile_pause, scale);
  panel("b", 2.0, mobile_pause, scale);
  panel("c", 0.4, scale.duration, scale);  // static
  panel("d", 2.0, scale.duration, scale);
  return shape_exit();
}
