// Fig. 7: total energy (a/d), packet delivery ratio (b/e), and energy per
// bit (c/f) vs packet rate, for pause=600 and static scenarios.
//
// Paper shape: 802.11 consumes the most energy; RCAST is 28-75% (mobile) to
// 37-131% (static) below ODPM; all schemes deliver >90% of packets; RCAST
// has the lowest energy-per-bit.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

struct Row {
  RunResult r[3];  // 80211, ODPM, RCAST
};

void panel(const char* tag, sim::Time pause, const BenchScale& scale) {
  ScenarioConfig base = scaled_config(scale);
  base.pause = pause;
  const auto rates = rate_sweep(scale);
  const Scheme schemes[3] = {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast};

  std::vector<Row> rows;
  for (double rate : rates) {
    Row row;
    ScenarioConfig cfg = base;
    cfg.rate_pps = rate;
    for (int i = 0; i < 3; ++i) row.r[i] = run_cell(cfg, schemes[i], scale);
    rows.push_back(row);
  }

  auto table = [&](const char* title, auto metric, const char* unit) {
    std::printf("--- Fig.7%s: %s [%s], pause=%.0f s ---\n", tag, title, unit,
                sim::to_seconds(pause));
    std::printf("%-8s", "rate");
    for (double r : rates) std::printf(" %12.1f", r);
    std::printf("\n");
    for (int i = 0; i < 3; ++i) {
      std::printf("%-8s", std::string(to_string(schemes[i])).c_str());
      for (std::size_t k = 0; k < rates.size(); ++k) {
        std::printf(" %12.4g", metric(rows[k].r[i]));
      }
      std::printf("\n");
    }
    std::printf("\n");
  };

  table("total energy", [](const RunResult& r) { return r.total_energy_j; },
        "J");
  table("packet delivery ratio",
        [](const RunResult& r) { return r.pdr_percent; }, "%");
  table("energy per bit",
        [](const RunResult& r) { return r.energy_per_bit_j; }, "J/bit");

  // Shape checks across the sweep.
  bool energy_order = true, pdr_ok = true, epb_rcast_best = true;
  double odpm_over_rcast_min = 1e9, odpm_over_rcast_max = 0.0;
  for (const Row& row : rows) {
    energy_order &= row.r[0].total_energy_j > row.r[1].total_energy_j &&
                    row.r[1].total_energy_j > row.r[2].total_energy_j;
    for (int i = 0; i < 3; ++i) pdr_ok &= row.r[i].pdr_percent > 85.0;
    epb_rcast_best &=
        row.r[2].energy_per_bit_j <= row.r[0].energy_per_bit_j &&
        row.r[2].energy_per_bit_j <= row.r[1].energy_per_bit_j;
    const double ratio =
        (row.r[1].total_energy_j - row.r[2].total_energy_j) /
        row.r[2].total_energy_j;
    odpm_over_rcast_min = std::min(odpm_over_rcast_min, ratio);
    odpm_over_rcast_max = std::max(odpm_over_rcast_max, ratio);
  }
  std::printf("RCAST energy advantage vs ODPM across sweep: %.0f%%..%.0f%%\n",
              100.0 * odpm_over_rcast_min, 100.0 * odpm_over_rcast_max);
  shape_check(energy_order, "energy: 802.11 > ODPM > RCAST at every rate");
  shape_check(pdr_ok, "all schemes deliver >85% of packets (paper: >90%)");
  shape_check(epb_rcast_best, "RCAST lowest energy-per-bit at every rate");
  shape_check(odpm_over_rcast_max > 0.15,
              "ODPM consumes noticeably more than RCAST (paper: 28-131%)");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 7: total energy, PDR, energy-per-bit vs rate", scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;
  panel("a-c", mobile_pause, scale);
  panel("d-f", scale.duration, scale);
  return shape_exit();
}
