// Fig. 9: scatter of (role number, energy consumed) per node for the three
// schemes at rates 0.4 and 2.0, pause=600 (mobile).
//
// Paper shape: 802.11 points lie on a horizontal line (equal energy);
// RCAST's role numbers are more balanced than ODPM's (max role number in
// the high-rate panel: ~300 for RCAST vs ~500 for ODPM); role number does
// not strongly predict energy in RCAST.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

struct Panel {
  Scheme scheme;
  double rate;
  RunResult r;
};

std::uint64_t max_role(const RunResult& r) {
  std::uint64_t mx = 0;
  for (auto v : r.role_numbers) mx = std::max(mx, v);
  return mx;
}

/// Share of all forwarding work carried by the top 10% of nodes — the
/// concentration (preferential-attachment) measure behind Fig. 9's claim.
/// Normalizing by total work makes schemes with different delivery volumes
/// comparable.
double top_role_share(const RunResult& r) {
  auto v = r.role_numbers;
  std::sort(v.begin(), v.end());
  double total = 0.0;
  for (auto x : v) total += static_cast<double>(x);
  if (total == 0.0) return 0.0;
  const std::size_t k = std::max<std::size_t>(1, v.size() / 10);
  double top = 0.0;
  for (std::size_t i = v.size() - k; i < v.size(); ++i) {
    top += static_cast<double>(v[i]);
  }
  return top / total;
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 9: role number vs per-node energy scatter", scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;

  ScenarioConfig base = scaled_config(scale);
  base.pause = mobile_pause;

  std::vector<Panel> panels;
  const char* tags[6] = {"a", "b", "c", "d", "e", "f"};
  int t = 0;
  for (Scheme s : {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast}) {
    for (double rate : {0.4, 2.0}) {
      ScenarioConfig cfg = base;
      cfg.rate_pps = rate;
      Panel p{s, rate, run_cell(cfg, s, scale)};
      std::printf("--- Fig.9%s: %s, rate=%.1f ---\n", tags[t++],
                  std::string(to_string(s)).c_str(), rate);
      std::printf("node: (role, energy J) — first 20 nodes\n");
      for (std::size_t i = 0; i < std::min<std::size_t>(20, p.r.role_numbers.size());
           ++i) {
        std::printf("  %2zu: (%llu, %.1f)\n", i,
                    static_cast<unsigned long long>(p.r.role_numbers[i]),
                    p.r.per_node_energy_j[i]);
      }
      std::printf("max role=%llu  energy spread=%.2f J\n\n",
                  static_cast<unsigned long long>(max_role(p.r)),
                  p.r.energy_max_j - p.r.energy_min_j);
      panels.push_back(std::move(p));
    }
  }

  // panels: [80211@0.4, 80211@2, ODPM@0.4, ODPM@2, RCAST@0.4, RCAST@2]
  shape_check(panels[0].r.energy_max_j - panels[0].r.energy_min_j < 1e-6 &&
                  panels[1].r.energy_max_j - panels[1].r.energy_min_j < 1e-6,
              "802.11 scatter is a horizontal line (equal energy)");
  std::printf("forwarding concentration (top-decile share), rate=2.0: "
              "ODPM=%.2f RCAST=%.2f\n",
              top_role_share(panels[3].r), top_role_share(panels[5].r));
  // The preferential-attachment gap is a full-scale effect (the reduced
  // network is dense enough that topology forces concentration for every
  // scheme); allow slack when scaled down.
  const double slack = scale.full ? 1.0 : 1.35;
  shape_check(top_role_share(panels[5].r) <=
                  top_role_share(panels[3].r) * slack,
              "high-rate forwarding concentration: RCAST <= ODPM (balance)");
  shape_check(panels[5].r.energy_variance < panels[3].r.energy_variance,
              "high-rate energy spread: RCAST < ODPM");
  // Role numbers exist (routes actually flowed) in every non-trivial panel.
  bool roles_flow = true;
  for (const auto& p : panels) roles_flow &= max_role(p.r) > 0;
  shape_check(roles_flow, "all panels show packet-forwarding activity");
  return shape_exit();
}
