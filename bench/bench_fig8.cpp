// Fig. 8: average end-to-end delay (a/c) and normalized routing overhead
// (b/d) vs packet rate, for mobile (pause 600) and static scenarios.
//
// Paper shape: 802.11 and ODPM have small delay (immediate transmission);
// RCAST pays ~125 ms per hop of beacon buffering. Routing overhead is
// smallest for 802.11; ODPM and RCAST behave similarly ("RCAST performs at
// par with ODPM even with limited overhearing"); mobile scenarios have far
// higher overhead than static ones.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

namespace {

struct Cell {
  RunResult r[3];
};

std::vector<Cell> sweep(ScenarioConfig base, const BenchScale& scale) {
  const Scheme schemes[3] = {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast};
  std::vector<Cell> cells;
  for (double rate : rate_sweep(scale)) {
    Cell c;
    ScenarioConfig cfg = base;
    cfg.rate_pps = rate;
    for (int i = 0; i < 3; ++i) c.r[i] = run_cell(cfg, schemes[i], scale);
    cells.push_back(c);
  }
  return cells;
}

void print_metric(const char* title, const std::vector<Cell>& cells,
                  const BenchScale& scale, auto metric) {
  const Scheme schemes[3] = {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast};
  std::printf("--- %s ---\n%-8s", title, "rate");
  for (double r : rate_sweep(scale)) std::printf(" %10.1f", r);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-8s", std::string(to_string(schemes[i])).c_str());
    for (const Cell& c : cells) std::printf(" %10.3f", metric(c.r[i]));
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Fig. 8: average delay and normalized routing overhead",
               scale);
  const sim::Time mobile_pause =
      scale.full ? 600 * sim::kSecond : scale.duration / 2;

  ScenarioConfig mobile = scaled_config(scale);
  mobile.pause = mobile_pause;
  ScenarioConfig static_cfg = scaled_config(scale);
  static_cfg.pause = scale.duration;

  const auto mob = sweep(mobile, scale);
  const auto sta = sweep(static_cfg, scale);

  print_metric("Fig.8a: delay (s), mobile", mob, scale,
               [](const RunResult& r) { return r.avg_delay_s; });
  print_metric("Fig.8b: normalized routing overhead, mobile", mob, scale,
               [](const RunResult& r) { return r.normalized_overhead; });
  print_metric("Fig.8c: delay (s), static", sta, scale,
               [](const RunResult& r) { return r.avg_delay_s; });
  print_metric("Fig.8d: normalized routing overhead, static", sta, scale,
               [](const RunResult& r) { return r.normalized_overhead; });

  bool delay_order = true;
  for (const auto* cells : {&mob, &sta}) {
    for (const Cell& c : *cells) {
      delay_order &= c.r[0].avg_delay_s < c.r[2].avg_delay_s;  // 80211<RCAST
      delay_order &= c.r[1].avg_delay_s < c.r[2].avg_delay_s;  // ODPM<RCAST
    }
  }
  shape_check(delay_order,
              "delay: 802.11 and ODPM below RCAST at every point");

  // RCAST delay is dominated by ~BI/2 per hop of buffering.
  bool rcast_delay_scale = true;
  for (const Cell& c : sta) {
    rcast_delay_scale &= c.r[2].avg_delay_s > 0.1 && c.r[2].avg_delay_s < 10.0;
  }
  shape_check(rcast_delay_scale,
              "RCAST delay in the beacon-buffering regime (>= ~0.1 s)");

  double oh_mobile = 0.0, oh_static = 0.0;
  for (const Cell& c : mob) {
    for (int i = 0; i < 3; ++i) oh_mobile += c.r[i].normalized_overhead;
  }
  for (const Cell& c : sta) {
    for (int i = 0; i < 3; ++i) oh_static += c.r[i].normalized_overhead;
  }
  shape_check(oh_mobile > oh_static,
              "mobile overhead exceeds static overhead (more rediscovery)");

  // 802.11 has the smallest overhead; RCAST roughly at par with ODPM.
  double oh[3] = {0.0, 0.0, 0.0};
  for (const auto* cells : {&mob, &sta}) {
    for (const Cell& c : *cells) {
      for (int i = 0; i < 3; ++i) oh[i] += c.r[i].normalized_overhead;
    }
  }
  shape_check(oh[0] <= oh[1] * 1.05 && oh[0] <= oh[2] * 1.05,
              "802.11 smallest routing overhead");
  shape_check(oh[2] < 3.0 * std::max(oh[1], 1e-9),
              "RCAST overhead at par with ODPM (within 3x despite limited "
              "overhearing)");
  return shape_exit();
}
