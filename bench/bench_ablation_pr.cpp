// Ablation A1: the four overhearing-decision factors of paper §3.2.
//
// The paper evaluates only P_R = 1/N and leaves sender-ID, mobility, and
// remaining-battery factors as future work (§5). This bench runs all four
// (plus the combination) under mobile and static scenarios and reports the
// energy / PDR / overhead trade-off of each estimator.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Ablation A1: P_R estimator choice (paper §3.2 factors)",
               scale);

  const core::PrEstimator estimators[] = {
      core::PrEstimator::kNeighborCount, core::PrEstimator::kSenderRecency,
      core::PrEstimator::kMobility, core::PrEstimator::kBattery,
      core::PrEstimator::kCombined};

  for (sim::Time pause : {scale.duration / 2, scale.duration}) {
    std::printf("--- pause=%.0f s ---\n", sim::to_seconds(pause));
    std::printf("%-12s %12s %8s %10s %12s\n", "estimator", "energy(J)",
                "PDR(%)", "delay(s)", "norm-ovhd");
    double e_neigh = 0.0;
    bool all_deliver = true;
    for (auto est : estimators) {
      ScenarioConfig cfg = scaled_config(scale);
      cfg.rate_pps = 1.0;
      cfg.pause = pause;
      cfg.rcast.estimator = est;
      // Give the battery estimator a finite (but ample) battery signal.
      if (est == core::PrEstimator::kBattery ||
          est == core::PrEstimator::kCombined) {
        cfg.battery_joules = 1.15 * sim::to_seconds(scale.duration) * 4;
      }
      const RunResult r = run_cell(cfg, Scheme::kRcast, scale);
      std::printf("%-12s %12.1f %8.1f %10.3f %12.3f\n",
                  core::to_string(est), r.total_energy_j, r.pdr_percent,
                  r.avg_delay_s, r.normalized_overhead);
      if (est == core::PrEstimator::kNeighborCount) e_neigh = r.total_energy_j;
      all_deliver &= r.pdr_percent > 70.0;
    }
    std::printf("\n");
    shape_check(all_deliver, "every estimator keeps PDR > 70%");
    shape_check(e_neigh > 0.0, "baseline estimator ran");
  }

  // Passive vs oracle neighbor counting for the paper's 1/N.
  std::printf("--- neighbor-count source (P_R = 1/N denominator) ---\n");
  std::printf("%-12s %12s %8s\n", "source", "energy(J)", "PDR(%)");
  RunResult oracle, passive;
  for (bool use_oracle : {true, false}) {
    ScenarioConfig cfg = scaled_config(scale);
    cfg.rate_pps = 1.0;
    cfg.pause = scale.duration;
    cfg.rcast_oracle_neighbors = use_oracle;
    const RunResult r = run_cell(cfg, Scheme::kRcast, scale);
    std::printf("%-12s %12.1f %8.1f\n", use_oracle ? "oracle" : "passive",
                r.total_energy_j, r.pdr_percent);
    (use_oracle ? oracle : passive) = r;
  }
  shape_check(passive.pdr_percent > 70.0,
              "passive neighbor table is a viable 1/N denominator");
  return shape_exit();
}
