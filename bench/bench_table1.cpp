// Table 1: protocol behaviour of the three schemes.
//
// The paper's Table 1 is qualitative ("always awake", "AM for a
// pre-determined period", "consistently PS / packets deferred"). This bench
// quantifies each claimed behaviour from one simulation per scheme: awake
// fraction, ATIM usage, immediate transmissions, mean delay, and energy.
#include "bench/bench_common.hpp"

using namespace rcast;
using namespace rcast::bench;

int main() {
  const auto scale = BenchScale::from_env();
  print_header("Table 1: protocol behaviour of 802.11 / ODPM / RCAST",
               scale);

  ScenarioConfig cfg = scaled_config(scale);
  cfg.rate_pps = 1.0;
  cfg.pause = 600 * sim::kSecond;

  std::printf("%-8s %14s %10s %12s %12s %10s\n", "scheme", "awake-frac",
              "ATIMs", "sleeps/BI/n", "delay(s)", "energy(J)");

  RunResult r80211, rodpm, rrcast;
  for (Scheme s : {Scheme::k80211, Scheme::kOdpm, Scheme::kRcast}) {
    const RunResult r = run_cell(cfg, s, scale);
    // Awake fraction from mean power: P = f*1.15 + (1-f)*0.045.
    const double mean_w = r.energy_mean_j / r.duration_s;
    const double awake_frac = (mean_w - 0.045) / (1.15 - 0.045);
    const double bis = r.duration_s / 0.25;
    std::printf("%-8s %14.3f %10llu %12.3f %12.3f %10.1f\n",
                std::string(to_string(s)).c_str(), awake_frac,
                static_cast<unsigned long long>(r.atim_tx),
                static_cast<double>(r.mac_sleeps) /
                    (bis * static_cast<double>(scale.num_nodes)),
                r.avg_delay_s, r.total_energy_j);
    if (s == Scheme::k80211) r80211 = r;
    if (s == Scheme::kOdpm) rodpm = r;
    if (s == Scheme::kRcast) rrcast = r;
  }

  std::printf("\nSHAPE-CHECK (paper Table 1 rows)\n");
  shape_check(r80211.mac_sleeps == 0 && r80211.atim_tx == 0,
              "802.11: always awake, no PSM machinery");
  shape_check(r80211.avg_delay_s < rodpm.avg_delay_s &&
                  rodpm.avg_delay_s < rrcast.avg_delay_s,
              "delay: 802.11 < ODPM < RCAST (immediate vs deferred tx)");
  shape_check(r80211.total_energy_j > rodpm.total_energy_j &&
                  rodpm.total_energy_j > rrcast.total_energy_j,
              "energy: 802.11 > ODPM > RCAST");
  shape_check(rrcast.mac_sleeps > rodpm.mac_sleeps,
              "RCAST consistently in PS mode sleeps more than ODPM");
  return shape_exit();
}
