// Randomized property tests for the DSR route cache: after any operation
// sequence, the cache must never return a route that is stale with respect
// to the links removed so far, never exceed capacity, and always return
// usable (owner-anchored, loop-free) routes.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "routing/route_cache.hpp"
#include "util/rng.hpp"

namespace rcast::routing {
namespace {

struct Model {
  // Ground truth: links removed so far (undirected).
  std::set<std::pair<NodeId, NodeId>> removed;

  bool link_removed(NodeId a, NodeId b) const {
    return removed.count({std::min(a, b), std::max(a, b)}) > 0;
  }
};

class RouteCachePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RouteCachePropertyTest, RandomOpSequenceKeepsInvariants) {
  Rng rng(GetParam());
  RouteCacheConfig cfg;
  cfg.capacity = 16;
  RouteCache cache(0, cfg);
  Model model;
  sim::Time now = 0;

  for (int step = 0; step < 600; ++step) {
    now += sim::kMillisecond;
    const double dice = rng.uniform01();

    if (dice < 0.45) {
      // Add a random loop-free path from the owner.
      std::vector<NodeId> path{0};
      std::set<NodeId> used{0};
      const int len = 1 + static_cast<int>(rng.uniform_u64(6));
      for (int h = 0; h < len; ++h) {
        NodeId n;
        do {
          n = static_cast<NodeId>(1 + rng.uniform_u64(20));
        } while (used.count(n));
        used.insert(n);
        path.push_back(n);
      }
      // Only add paths that do not contain already-removed links (mirrors
      // learning from a live packet).
      bool alive = true;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (model.link_removed(path[i], path[i + 1])) alive = false;
      }
      if (alive) cache.add(path, now);
    } else if (dice < 0.7) {
      const NodeId a = static_cast<NodeId>(rng.uniform_u64(21));
      const NodeId b = static_cast<NodeId>(rng.uniform_u64(21));
      if (a != b) {
        cache.remove_link(a, b);
        model.removed.insert({std::min(a, b), std::max(a, b)});
      }
    } else {
      const NodeId dst = static_cast<NodeId>(1 + rng.uniform_u64(20));
      auto route = cache.find(dst, now);
      if (route) {
        // Invariants of every returned route:
        ASSERT_GE(route->size(), 2u);
        EXPECT_EQ(route->front(), 0u);       // anchored at owner
        EXPECT_EQ(route->back(), dst);       // reaches the target
        std::set<NodeId> seen;
        for (NodeId n : *route) {
          EXPECT_TRUE(seen.insert(n).second);  // loop-free
        }
        for (std::size_t i = 0; i + 1 < route->size(); ++i) {
          EXPECT_FALSE(model.link_removed((*route)[i], (*route)[i + 1]))
              << "returned a route crossing a removed link at step " << step;
        }
      }
    }
    ASSERT_LE(cache.size(), cfg.capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteCachePropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

class RouteCacheTtlPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteCacheTtlPropertyTest, TtlNeverServesExpiredRoutes) {
  Rng rng(GetParam());
  RouteCacheConfig cfg;
  cfg.capacity = 16;
  cfg.route_ttl = 100 * sim::kMillisecond;
  RouteCache cache(0, cfg);
  std::vector<std::pair<std::vector<NodeId>, sim::Time>> added;
  sim::Time now = 0;

  for (int step = 0; step < 300; ++step) {
    now += sim::from_millis(rng.uniform(1.0, 30.0));
    if (rng.bernoulli(0.5)) {
      std::vector<NodeId> path{0, static_cast<NodeId>(1 + rng.uniform_u64(9)),
                               static_cast<NodeId>(11 + rng.uniform_u64(9))};
      if (cache.add(path, now)) added.emplace_back(path, now);
    } else {
      const NodeId dst = static_cast<NodeId>(11 + rng.uniform_u64(9));
      auto route = cache.find(dst, now);
      if (route) {
        // Some matching add must be fresh enough. (Refreshes update the
        // stored timestamp, so we check existence of ANY fresh add.)
        bool fresh_exists = false;
        for (const auto& [path, t] : added) {
          if (now - t <= cfg.route_ttl) {
            fresh_exists = true;
            break;
          }
        }
        EXPECT_TRUE(fresh_exists) << "served a route when all adds expired";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteCacheTtlPropertyTest,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace rcast::routing
