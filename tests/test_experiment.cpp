// run_repetitions edge cases and BenchScale env parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace rcast::scenario {
namespace {

ScenarioConfig tiny_cfg(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.num_nodes = 12;
  cfg.num_flows = 3;
  cfg.world = {600.0, 300.0};
  cfg.rate_pps = 1.0;
  cfg.duration = 10 * sim::kSecond;
  cfg.pause = 10 * sim::kSecond;  // static
  cfg.scheme = Scheme::kRcast;
  cfg.seed = seed;
  return cfg;
}

// RAII environment override so a failing test can't leak state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(RunRepetitions, MoreThreadsThanRepetitionsIsFine) {
  const auto runs = run_repetitions(tiny_cfg(), 2, /*threads=*/16);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_GT(runs[0].total_energy_j, 0.0);
  EXPECT_GT(runs[1].total_energy_j, 0.0);
}

TEST(RunRepetitions, ZeroRepetitionsViolatesContract) {
  EXPECT_THROW(run_repetitions(tiny_cfg(), 0), ContractViolation);
}

TEST(RunRepetitions, ResultsAreSeedOrderedRegardlessOfWorkers) {
  const ScenarioConfig cfg = tiny_cfg(7);
  // Reference: each seed run serially and independently.
  std::vector<RunResult> expected;
  for (std::uint64_t k = 0; k < 3; ++k) {
    ScenarioConfig c = cfg;
    c.seed = cfg.seed + k;
    expected.push_back(run_scenario(c));
  }
  // Parallel path must land each seed at its own index, whatever order the
  // workers finished in (the simulator is deterministic per seed).
  const auto runs = run_repetitions(cfg, 3, /*threads=*/3);
  ASSERT_EQ(runs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(runs[i].total_energy_j, expected[i].total_energy_j)
        << "seed slot " << i;
    EXPECT_EQ(runs[i].delivered, expected[i].delivered) << "seed slot " << i;
    EXPECT_EQ(runs[i].events_executed, expected[i].events_executed)
        << "seed slot " << i;
  }
}

TEST(BenchScale, EnvOverridesApply) {
  ScopedEnv d("RCAST_DURATION_S", "42.5");
  ScopedEnv r("RCAST_REPS", "7");
  const BenchScale s = BenchScale::from_env();
  EXPECT_DOUBLE_EQ(sim::to_seconds(s.duration), 42.5);
  EXPECT_EQ(s.repetitions, 7u);
}

TEST(BenchScale, MalformedRepsRejected) {
  for (const char* bad : {"abc", "3x", "-2", "0", "2.5", ""}) {
    ScopedEnv r("RCAST_REPS", bad);
    if (std::string(bad).empty()) {
      EXPECT_NO_THROW(BenchScale::from_env());  // unset/empty = default
    } else {
      EXPECT_THROW(BenchScale::from_env(), std::runtime_error)
          << "RCAST_REPS='" << bad << "' should be rejected";
    }
  }
}

TEST(BenchScale, MalformedDurationRejected) {
  for (const char* bad : {"fast", "10s", "-5", "0", "nan", "inf"}) {
    ScopedEnv d("RCAST_DURATION_S", bad);
    EXPECT_THROW(BenchScale::from_env(), std::runtime_error)
        << "RCAST_DURATION_S='" << bad << "' should be rejected";
  }
}

}  // namespace
}  // namespace rcast::scenario
