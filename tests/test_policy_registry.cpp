// Policy-registry contract (DESIGN.md §16): unknown names fail with the
// full registered-name list, duplicate registration is a startup contract
// violation, every built-in round-trips name -> entry -> ordinal, and a run
// configured through the registry string surface is bit-identical to one
// configured through the legacy enum fields.
#include <gtest/gtest.h>

#include <string>

#include "scenario/params.hpp"
#include "scenario/policy_registry.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace rcast::scenario {
namespace {

TEST(PolicyRegistry, UnknownNameListsRegisteredNames) {
  try {
    power_policies().resolve("leachx");
    FAIL() << "resolve should have thrown";
  } catch (const RegistryError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown power scheme 'leachx'"), std::string::npos)
        << msg;
    for (const char* name :
         {"80211", "PSM-NONE", "PSM-ALL", "ODPM", "RCAST", "RCAST-BC",
          "LEACH"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
  try {
    mobility_models().index_of("bogus");
    FAIL() << "index_of should have thrown";
  } catch (const RegistryError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown mobility model 'bogus'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("rwp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rpgm"), std::string::npos) << msg;
  }
  EXPECT_EQ(traffic_patterns().find("nope"), nullptr);
}

TEST(PolicyRegistry, DuplicateRegistrationIsContractViolation) {
  // A scratch registry, so the shared global ones stay untouched.
  PolicyRegistry<MobilityEntry> reg("mobility model");
  reg.add(MobilityEntry{"rwp", nullptr});
  EXPECT_THROW(reg.add(MobilityEntry{"rwp", nullptr}), ContractViolation);
  // Names are matched case-insensitively, so a re-spelling is still a dup.
  EXPECT_THROW(reg.add(MobilityEntry{"RWP", nullptr}), ContractViolation);
  EXPECT_THROW(reg.add(MobilityEntry{"", nullptr}), ContractViolation);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PolicyRegistry, BuiltInsRoundTrip) {
  ASSERT_EQ(power_policies().size(), 7u);
  for (std::size_t i = 0; i < power_policies().size(); ++i) {
    const PowerPolicyEntry& e = power_policies().at(i);
    // Registration order matches the Scheme enum, so ordinal casts and
    // string lookups agree (the serving index depends on this).
    EXPECT_EQ(e.scheme, static_cast<Scheme>(i));
    EXPECT_EQ(e.name, to_string(e.scheme));
    EXPECT_EQ(power_policies().index_of(e.name), i);
    EXPECT_EQ(power_policies().find(e.name), &e);
  }
  ASSERT_EQ(routing_protocols().size(), 2u);
  for (std::size_t i = 0; i < routing_protocols().size(); ++i) {
    const RoutingEntry& e = routing_protocols().at(i);
    EXPECT_EQ(e.protocol, static_cast<RoutingProtocol>(i));
    EXPECT_EQ(e.name, to_string(e.protocol));
    EXPECT_EQ(routing_protocols().index_of(e.name), i);
  }
  ASSERT_EQ(mobility_models().size(), 2u);
  EXPECT_EQ(mobility_models().at(0).name, "rwp");
  EXPECT_EQ(mobility_models().at(1).name, "rpgm");
  ASSERT_EQ(traffic_patterns().size(), 2u);
  EXPECT_EQ(traffic_patterns().at(0).name, "cbr");
  EXPECT_EQ(traffic_patterns().at(1).name, "sensing");
  // Lookups are case-insensitive (CLI/manifest surfaces are forgiving).
  EXPECT_EQ(power_policies().index_of("rcast"),
            static_cast<std::size_t>(Scheme::kRcast));
  EXPECT_EQ(routing_protocols().index_of("dsr"), 0u);
}

TEST(PolicyRegistry, ScenarioRejectsUnknownMobilityModel) {
  ScenarioConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_flows = 1;
  cfg.duration = sim::kSecond;
  cfg.mobility_model = "bogus";  // bypasses the param layer's token table
  EXPECT_THROW(run_scenario(cfg), RegistryError);
}

// A config driven through the string parameter surface must produce the
// exact run the legacy enum fields produce: the registry resolves to the
// same factories, fork salts and all.
TEST(PolicyRegistry, EnumAliasAndRegistryStringBitIdentical) {
  ScenarioConfig via_enum;
  via_enum.num_nodes = 20;
  via_enum.num_flows = 4;
  via_enum.world = {500.0, 300.0};
  via_enum.rate_pps = 2.0;
  via_enum.duration = 10 * sim::kSecond;
  via_enum.pause = 0;
  via_enum.seed = 11;
  via_enum.scheme = Scheme::kRcast;
  via_enum.routing = RoutingProtocol::kDsr;

  ScenarioConfig via_string = via_enum;
  via_string.scheme = Scheme::k80211;        // overwritten below
  via_string.routing = RoutingProtocol::kAodv;
  set_param(via_string, "power.scheme", "rcast");
  set_param(via_string, "routing.protocol", "dsr");
  // The pre-v3 spellings stay live as aliases.
  set_param(via_string, "scheme", "RCAST");
  set_param(via_string, "routing", "DSR");

  const RunResult a = run_scenario(via_enum);
  const RunResult b = run_scenario(via_string);
  ASSERT_GT(a.originated, 0u);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.per_node_energy_j, b.per_node_energy_j);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.pdr_percent, b.pdr_percent);
  EXPECT_EQ(a.avg_delay_s, b.avg_delay_s);
  EXPECT_EQ(a.control_tx, b.control_tx);
  EXPECT_EQ(a.mac_sleeps, b.mac_sleeps);
}

}  // namespace
}  // namespace rcast::scenario
