// Randomized differential test: the ladder-queue EventQueue against the
// retained binary-heap reference (reference_event_queue.hpp) over millions
// of mixed push/cancel/pop operations. The two must produce *identical* pop
// sequences — same timestamps, same FIFO order within ties, same cancel
// outcomes — because golden traces and run-for-run `events` counters were
// recorded under the heap and must not move.
//
// Also covers the structural edges the unit tests cannot reach from the
// outside: rung spawning under bimodal horizons, top-tier reseeds, bucket
// overflow on same-timestamp floods, and the cancel-storm compaction bound.
#include <gtest/gtest.h>

#include <vector>

#include "reference_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace rcast::sim {
namespace {

// One tagged event tracked in both queues.
struct TrackedHandle {
  int tag;
  Time time;
  EventId id;
  testing::ReferenceEventId ref_id;
};

class DiffHarness {
 public:
  explicit DiffHarness(std::uint64_t seed) : rng_(seed) {}

  void push(Time t, EventQueue::ScheduleHint* hint) {
    const int tag = next_tag_++;
    auto record_q = [this, tag] { fired_q_.push_back(tag); };
    auto record_ref = [this, tag] { fired_ref_.push_back(tag); };
    const EventId id = hint != nullptr
                           ? q_.push(t, record_q, *hint)
                           : q_.push(t, record_q);
    handles_.push_back(TrackedHandle{tag, t, id, ref_.push(t, record_ref)});
  }

  void cancel_random() {
    if (handles_.empty()) return;
    const std::size_t pick = rng_.uniform_u64(handles_.size());
    const TrackedHandle h = handles_[pick];
    const bool a = q_.cancel(h.id);
    const bool b = ref_.cancel(h.ref_id);
    ASSERT_EQ(a, b) << "cancel disagreement on tag " << h.tag;
    handles_.erase(handles_.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  void pop_one() {
    ASSERT_EQ(q_.empty(), ref_.empty());
    if (q_.empty()) return;
    ASSERT_EQ(q_.next_time(), ref_.next_time());
    const Time tq = q_.pop();  // fires the handler in place
    auto [tr, hr] = ref_.pop();
    ASSERT_EQ(tq, tr);
    hr();
    ASSERT_EQ(fired_q_.back(), fired_ref_.back());
    now_ = tq;
  }

  void pop_batch() {
    ASSERT_EQ(q_.empty(), ref_.empty());
    if (q_.empty()) return;
    const Time t =
        q_.pop_batch([](EventQueue::Handler& h) { h(); });
    while (!ref_.empty() && ref_.next_time() == t) ref_.pop().second();
    now_ = t;
  }

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  EventQueue& queue() { return q_; }
  testing::ReferenceEventQueue& reference() { return ref_; }

  void check_invariants() const {
    ASSERT_EQ(q_.size(), ref_.size());
    ASSERT_EQ(q_.scheduled_count(), ref_.scheduled_count());
    ASSERT_EQ(fired_q_, fired_ref_);
  }

 private:
  Rng rng_;
  EventQueue q_;
  testing::ReferenceEventQueue ref_;
  std::vector<TrackedHandle> handles_;
  std::vector<int> fired_q_;
  std::vector<int> fired_ref_;
  Time now_ = 0;
  int next_tag_ = 0;
};

// The headline: ~1M mixed operations across seeds, a horizon mix shaped
// like a real run (MAC-timer near horizon, CBR mid horizon, route-cache
// expiry far horizon, same-timestamp beacon bursts), hinted and unhinted
// pushes, single pops and batched pops — identical behavior throughout.
TEST(EventQueueDifferential, MillionOpMixedChurn) {
  constexpr int kSeeds = 4;
  constexpr int kOpsPerSeed = 250'000;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    DiffHarness h(seed);
    EventQueue::ScheduleHint near_hint;
    EventQueue::ScheduleHint far_hint;
    Time burst_time = 0;
    for (int step = 0; step < kOpsPerSeed; ++step) {
      const std::uint64_t op = h.rng().uniform_u64(16);
      if (op < 4) {  // near horizon, hinted (channel-arrival shape)
        h.push(h.now() + static_cast<Time>(h.rng().uniform_u64(2'000)),
               &near_hint);
      } else if (op < 7) {  // mid horizon, unhinted (CBR / backoff shape)
        h.push(h.now() + static_cast<Time>(h.rng().uniform_u64(1'000'000)),
               nullptr);
      } else if (op < 9) {  // far horizon, hinted (route-cache expiry shape)
        h.push(h.now() + kSecond +
                   static_cast<Time>(h.rng().uniform_u64(30 * kSecond)),
               &far_hint);
      } else if (op < 10) {  // same-timestamp burst (synced-beacon shape)
        if (burst_time <= h.now()) {
          burst_time = h.now() + 100 * kMicrosecond +
                       static_cast<Time>(h.rng().uniform_u64(kMillisecond));
        }
        for (int i = 0; i < 4; ++i) h.push(burst_time, nullptr);
      } else if (op < 13) {  // timer churn
        h.cancel_random();
      } else if (op < 15) {
        h.pop_one();
      } else {
        h.pop_batch();
      }
      if ((step & 1023) == 0) h.check_invariants();
    }
    h.check_invariants();
    while (!h.queue().empty()) h.pop_one();
    h.check_invariants();
    ASSERT_TRUE(h.reference().empty());
  }
}

// Rung overflow / resize edge: a wide spray across a 60 s horizon forces a
// coarse reseed whose every drained bucket exceeds the spawn threshold, so
// rungs subdivide down to fine widths repeatedly while pops interleave.
TEST(EventQueueDifferential, DeepSpawnChainWideHorizon) {
  DiffHarness h(99);
  for (int i = 0; i < 50'000; ++i) {
    h.push(h.now() + static_cast<Time>(h.rng().uniform_u64(60 * kSecond)),
           nullptr);
    if (i % 3 == 0) h.pop_one();
  }
  h.check_invariants();
  while (!h.queue().empty()) h.pop_batch();
  h.check_invariants();
  EXPECT_GT(h.queue().rung_spawns(), 0u);
}

// Bucket overflow on a same-timestamp flood: width-1 buckets cannot
// subdivide, so the flood must sort into the bottom once and drain as a
// single batch in scheduling order.
TEST(EventQueueDifferential, SameTimestampFloodOverflowsBucket) {
  EventQueue q;
  constexpr int kFlood = 20'000;
  std::vector<int> order;
  order.reserve(kFlood);
  const Time t = 5 * kMillisecond;
  for (int i = 0; i < kFlood; ++i) {
    q.push(t, [&order, i] { order.push_back(i); });
  }
  // A later event proves the flood does not leak past its timestamp.
  bool later_fired = false;
  q.push(t + 1, [&later_fired] { later_fired = true; });
  const Time batch_time = q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(batch_time, t);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFlood));
  for (int i = 0; i < kFlood; ++i) EXPECT_EQ(order[i], i);
  EXPECT_FALSE(later_fired);
  EXPECT_EQ(q.size(), 1u);
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_TRUE(later_fired);
}

// Cancel-storm compaction: after cancelling ~99.8% of a large pending set,
// the next push must trigger the 4:1 sweep and shrink physical storage to
// the live set, and the survivors must still fire in exact order.
TEST(EventQueueDifferential, CancelStormCompactionBound) {
  DiffHarness h(7);
  EventQueue& q = h.queue();
  std::vector<EventId> ids;
  std::vector<Time> survivor_times;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    // Spread across tiers: near, mid, and far entries all get cancelled.
    const Time t = 1 + static_cast<Time>(h.rng().uniform_u64(10 * kSecond));
    bool keep = (i % 500) == 0;
    if (keep) {
      h.push(t, nullptr);
      survivor_times.push_back(t);
    } else {
      ids.push_back(q.push(t, [] {}));
    }
  }
  for (const EventId id : ids) ASSERT_TRUE(q.cancel(id));
  ASSERT_EQ(q.size(), survivor_times.size());
  // Storage still holds the tombstones...
  EXPECT_GT(q.stored_entries(), q.size());
  // ...until the next push crosses the 4:1 threshold and compacts.
  h.push(10 * kSecond + 1, nullptr);
  EXPECT_LE(q.stored_entries(), 4 * q.size() + 1);
  // scheduled_count diverges from the reference by design here (the
  // tombstones were pushed into the ladder queue only), so compare the
  // queues by drain order alone.
  ASSERT_EQ(q.size(), h.reference().size());
  while (!q.empty()) h.pop_one();
  ASSERT_TRUE(h.reference().empty());
}

// The slot map recycles through the storm without invalidating the
// contract: a second cancel of every spent handle reports false on both
// implementations (spent-handle inertness at scale).
TEST(EventQueueDifferential, SpentHandlesStayInertAtScale) {
  EventQueue q;
  testing::ReferenceEventQueue ref;
  std::vector<EventId> ids;
  std::vector<testing::ReferenceEventId> ref_ids;
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    ids.clear();
    ref_ids.clear();
    for (int i = 0; i < 1'000; ++i) {
      const Time t = static_cast<Time>(round) * kMillisecond +
                     static_cast<Time>(rng.uniform_u64(kMillisecond));
      ids.push_back(q.push(t, [] {}));
      ref_ids.push_back(ref.push(t, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      ASSERT_EQ(q.cancel(ids[i]), ref.cancel(ref_ids[i]));
    }
    while (!q.empty()) {
      ASSERT_EQ(q.pop(), ref.pop().first);
    }
    ASSERT_TRUE(ref.empty());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_FALSE(q.cancel(ids[i]));
      ASSERT_FALSE(ref.cancel(ref_ids[i]));
    }
  }
}

}  // namespace
}  // namespace rcast::sim
