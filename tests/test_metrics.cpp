#include <gtest/gtest.h>

#include "stats/metrics.hpp"

namespace rcast::stats {
namespace {

using routing::DropReason;
using routing::DsrPacket;
using routing::PacketType;
using sim::from_seconds;

DsrPacket data_pkt(std::uint32_t flow, std::uint32_t seq,
                   sim::Time origin = 0, std::int64_t bits = 512) {
  DsrPacket p;
  p.type = PacketType::kData;
  p.flow_id = flow;
  p.app_seq = seq;
  p.origin_time = origin;
  p.payload_bits = bits;
  return p;
}

TEST(Metrics, PdrCountsUniqueDeliveries) {
  MetricsCollector m(10);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    m.on_data_originated(data_pkt(0, i), 0);
  }
  m.on_data_delivered(data_pkt(0, 1), from_seconds(1));
  m.on_data_delivered(data_pkt(0, 2), from_seconds(1));
  m.on_data_delivered(data_pkt(0, 2), from_seconds(2));  // duplicate path
  EXPECT_EQ(m.originated(), 4u);
  EXPECT_EQ(m.delivered(), 2u);
  EXPECT_DOUBLE_EQ(m.pdr_percent(), 50.0);
}

TEST(Metrics, SameSeqDifferentFlowsAreDistinct) {
  MetricsCollector m(10);
  m.on_data_delivered(data_pkt(0, 1), 0);
  m.on_data_delivered(data_pkt(1, 1), 0);
  EXPECT_EQ(m.delivered(), 2u);
}

TEST(Metrics, DelayAveragesFromOriginTime) {
  MetricsCollector m(10);
  m.on_data_delivered(data_pkt(0, 1, from_seconds(10)), from_seconds(11));
  m.on_data_delivered(data_pkt(0, 2, from_seconds(10)), from_seconds(13));
  EXPECT_DOUBLE_EQ(m.avg_delay_s(), 2.0);
  EXPECT_EQ(m.delay_stats().count(), 2u);
}

TEST(Metrics, EmptyCollectorSafe) {
  MetricsCollector m(5);
  EXPECT_DOUBLE_EQ(m.pdr_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.normalized_overhead(), 0.0);
  EXPECT_EQ(m.control_transmissions(), 0u);
}

TEST(Metrics, ControlTransmissionsByType) {
  MetricsCollector m(5);
  m.on_control_transmit(PacketType::kRreq, 0);
  m.on_control_transmit(PacketType::kRreq, 0);
  m.on_control_transmit(PacketType::kRrep, 0);
  m.on_control_transmit(PacketType::kRerr, 0);
  EXPECT_EQ(m.control_transmissions(), 4u);
  EXPECT_EQ(m.control_transmissions(PacketType::kRreq), 2u);
  EXPECT_EQ(m.control_transmissions(PacketType::kRrep), 1u);
  EXPECT_EQ(m.control_transmissions(PacketType::kRerr), 1u);
}

TEST(Metrics, NormalizedOverheadPerDelivered) {
  MetricsCollector m(5);
  for (int i = 0; i < 6; ++i) m.on_control_transmit(PacketType::kRreq, 0);
  m.on_data_originated(data_pkt(0, 1), 0);
  m.on_data_originated(data_pkt(0, 2), 0);
  m.on_data_delivered(data_pkt(0, 1), 0);
  m.on_data_delivered(data_pkt(0, 2), 0);
  EXPECT_DOUBLE_EQ(m.normalized_overhead(), 3.0);
}

TEST(Metrics, RoleNumbersCountIntermediatesOnly) {
  MetricsCollector m(6);
  m.on_route_used({0, 1, 2, 3}, 0);
  m.on_route_used({0, 1, 5}, 0);
  const auto& roles = m.role_numbers();
  EXPECT_EQ(roles[0], 0u);  // endpoints never counted
  EXPECT_EQ(roles[1], 2u);
  EXPECT_EQ(roles[2], 1u);
  EXPECT_EQ(roles[3], 0u);
  EXPECT_EQ(roles[5], 0u);
}

TEST(Metrics, RoleNumbersIgnoreOutOfRangeIds) {
  MetricsCollector m(2);
  m.on_route_used({0, 7, 1}, 0);  // id 7 outside the 2-node network
  EXPECT_EQ(m.role_numbers().size(), 2u);
}

TEST(Metrics, DeliveredPayloadBitsAccumulate) {
  MetricsCollector m(5);
  m.on_data_delivered(data_pkt(0, 1, 0, 512), 0);
  m.on_data_delivered(data_pkt(0, 2, 0, 256), 0);
  m.on_data_delivered(data_pkt(0, 2, 0, 256), 0);  // dup ignored
  EXPECT_EQ(m.delivered_payload_bits(), 768u);
}

TEST(Metrics, DropsByReason) {
  MetricsCollector m(5);
  m.on_data_dropped(data_pkt(0, 1), DropReason::kNoRoute, 0);
  m.on_data_dropped(data_pkt(0, 2), DropReason::kNoRoute, 0);
  m.on_data_dropped(data_pkt(0, 3), DropReason::kLinkFailure, 0);
  EXPECT_EQ(m.drops(DropReason::kNoRoute), 2u);
  EXPECT_EQ(m.drops(DropReason::kLinkFailure), 1u);
  EXPECT_EQ(m.total_drops(), 3u);
}

}  // namespace
}  // namespace rcast::stats
