#include <gtest/gtest.h>

#include "mobility/mobility_manager.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/rng.hpp"

namespace rcast::mobility {
namespace {

RandomWaypointConfig base_cfg() {
  RandomWaypointConfig c;
  c.world = {1500.0, 300.0};
  c.min_speed_mps = 1.0;
  c.max_speed_mps = 20.0;
  c.pause = 0;
  return c;
}

TEST(StaticModel, NeverMoves) {
  StaticModel m({10.0, 20.0});
  EXPECT_EQ(m.position_at(0), (geo::Vec2{10.0, 20.0}));
  EXPECT_EQ(m.position_at(sim::from_seconds(1000)), (geo::Vec2{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(m.max_speed(), 0.0);
}

TEST(RandomWaypoint, StartsInsideWorld) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomWaypointModel m(base_cfg(), Rng(seed));
    EXPECT_TRUE(base_cfg().world.contains(m.position_at(0)));
  }
}

TEST(RandomWaypoint, StaysInsideWorldOverTime) {
  RandomWaypointModel m(base_cfg(), Rng(3));
  for (int s = 0; s <= 2000; s += 7) {
    const auto p = m.position_at(sim::from_seconds(s));
    EXPECT_TRUE(base_cfg().world.contains(p)) << "t=" << s;
  }
}

TEST(RandomWaypoint, SpeedNeverExceedsMax) {
  auto cfg = base_cfg();
  RandomWaypointModel m(cfg, Rng(4));
  geo::Vec2 prev = m.position_at(0);
  for (int ms = 100; ms <= 500000; ms += 100) {
    const auto p = m.position_at(sim::from_millis(ms));
    const double v = geo::distance(prev, p) / 0.1;
    EXPECT_LE(v, cfg.max_speed_mps * 1.01) << "t=" << ms << "ms";
    prev = p;
  }
}

TEST(RandomWaypoint, MovesWhenPauseZero) {
  RandomWaypointModel m(base_cfg(), Rng(5));
  const auto p0 = m.position_at(0);
  const auto p1 = m.position_at(sim::from_seconds(30));
  EXPECT_GT(geo::distance(p0, p1), 0.0);
}

TEST(RandomWaypoint, LargePauseMeansStatic) {
  auto cfg = base_cfg();
  cfg.pause = sim::from_seconds(10000);
  RandomWaypointModel m(cfg, Rng(6));
  const auto p0 = m.position_at(0);
  const auto p1 = m.position_at(sim::from_seconds(9999));
  EXPECT_EQ(p0, p1);  // the paper's T_pause = sim-length static scenario
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  auto cfg = base_cfg();
  cfg.pause = sim::from_seconds(5);
  RandomWaypointModel m(cfg, Rng(7));
  // Initially paused (ns-2 semantics).
  EXPECT_TRUE(m.paused_at(0));
  EXPECT_TRUE(m.paused_at(sim::from_seconds(4.9)));
  EXPECT_FALSE(m.paused_at(sim::from_seconds(5.5)));
}

TEST(RandomWaypoint, MonotonicQueriesRequired) {
  RandomWaypointModel m(base_cfg(), Rng(8));
  m.position_at(sim::from_seconds(100));
  EXPECT_THROW(m.position_at(sim::from_seconds(50)), ContractViolation);
}

TEST(RandomWaypoint, DeterministicGivenSeed) {
  RandomWaypointModel a(base_cfg(), Rng(9));
  RandomWaypointModel b(base_cfg(), Rng(9));
  for (int s = 0; s < 500; s += 13) {
    EXPECT_EQ(a.position_at(sim::from_seconds(s)),
              b.position_at(sim::from_seconds(s)));
  }
}

TEST(RandomWaypoint, RejectsBadConfig) {
  auto c = base_cfg();
  c.min_speed_mps = 0.0;
  EXPECT_THROW(RandomWaypointModel(c, Rng(1)), ContractViolation);
  c = base_cfg();
  c.max_speed_mps = 0.5;  // < min
  EXPECT_THROW(RandomWaypointModel(c, Rng(1)), ContractViolation);
  c = base_cfg();
  c.pause = -1;
  EXPECT_THROW(RandomWaypointModel(c, Rng(1)), ContractViolation);
}

// --- Motion segments -------------------------------------------------------

TEST(MotionSegments, StaticSegmentNeverExpires) {
  StaticModel m({10.0, 20.0});
  const MotionSegment s = m.segment_at(sim::from_seconds(3));
  EXPECT_EQ(s.expires, kSegmentNeverExpires);
  EXPECT_EQ(s.eval(sim::from_seconds(3)), (geo::Vec2{10.0, 20.0}));
  EXPECT_EQ(s.eval(sim::from_seconds(1e6)), (geo::Vec2{10.0, 20.0}));
}

TEST(MotionSegments, EvalIsBitIdenticalToPositionAt) {
  // Two models, same seed: one queried directly, one through the cached
  // segment (refreshed exactly when it expires — the manager's policy). The
  // positions must match to the last bit, including at leg boundaries, or
  // the golden runs would drift.
  for (sim::Time pause : {sim::Time{0}, sim::from_seconds(2)}) {
    auto cfg = base_cfg();
    cfg.pause = pause;
    RandomWaypointModel direct(cfg, Rng(42));
    RandomWaypointModel cached(cfg, Rng(42));
    MotionSegment seg = cached.segment_at(0);
    for (int ms = 0; ms <= 300000; ms += 73) {
      const sim::Time t = sim::from_millis(ms);
      if (t >= seg.expires) seg = cached.segment_at(t);
      const geo::Vec2 want = direct.position_at(t);
      const geo::Vec2 got = seg.eval(t);
      ASSERT_EQ(got.x, want.x) << "t=" << ms << "ms pause=" << pause;
      ASSERT_EQ(got.y, want.y) << "t=" << ms << "ms pause=" << pause;
    }
  }
}

TEST(MotionSegments, SegmentRefreshPreservesRngStream) {
  // Querying segments must consume the same waypoint draws as position_at:
  // after a long excursion through either interface the models still agree.
  RandomWaypointModel a(base_cfg(), Rng(43));
  RandomWaypointModel b(base_cfg(), Rng(43));
  MotionSegment seg = a.segment_at(0);
  for (int s = 0; s <= 1000; s += 11) {
    const sim::Time t = sim::from_seconds(s);
    if (t >= seg.expires) seg = a.segment_at(t);
    (void)b.position_at(t);
  }
  const sim::Time end = sim::from_seconds(1001);
  EXPECT_EQ(a.position_at(end), b.position_at(end));
}

// --- MobilityManager -------------------------------------------------------

class ManagerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  mobility::MobilityManager mgr_{sim_, geo::Rect{1500.0, 300.0}, 550.0};
};

TEST_F(ManagerTest, StaticNeighborsExact) {
  mgr_.add_node(0, std::make_unique<StaticModel>(geo::Vec2{0.0, 0.0}));
  mgr_.add_node(1, std::make_unique<StaticModel>(geo::Vec2{200.0, 0.0}));
  mgr_.add_node(2, std::make_unique<StaticModel>(geo::Vec2{600.0, 0.0}));
  auto n = mgr_.neighbors_within(0, 250.0);
  EXPECT_EQ(n, std::vector<NodeId>{1});
  EXPECT_TRUE(mgr_.in_range(0, 1, 250.0));
  EXPECT_FALSE(mgr_.in_range(0, 2, 250.0));
}

TEST_F(ManagerTest, NodeIdsMustBeDense) {
  mgr_.add_node(0, std::make_unique<StaticModel>(geo::Vec2{0.0, 0.0}));
  EXPECT_THROW(
      mgr_.add_node(5, std::make_unique<StaticModel>(geo::Vec2{0.0, 0.0})),
      ContractViolation);
}

TEST_F(ManagerTest, QueriesExactBetweenRefreshes) {
  // A mover whose grid entry is stale must still be found via the slack.
  RandomWaypointConfig c;
  c.world = {1500.0, 300.0};
  c.min_speed_mps = 19.9;
  c.max_speed_mps = 20.0;
  c.pause = 0;
  mgr_.add_node(0, std::make_unique<StaticModel>(geo::Vec2{750.0, 150.0}));
  mgr_.add_node(1, std::make_unique<RandomWaypointModel>(c, Rng(10)));
  for (int ms = 0; ms < 5000; ms += 37) {  // between 100ms grid refreshes
    sim_.run_until(sim::from_millis(ms));
    const auto got = mgr_.neighbors_within(0, 250.0);
    const bool in = geo::distance(mgr_.position(0), mgr_.position(1)) <= 250.0;
    EXPECT_EQ(got.size(), in ? 1u : 0u) << "t=" << ms;
  }
}

TEST_F(ManagerTest, ManagerPositionsMatchDirectModel) {
  // The manager's segment cache must reproduce the model bit-for-bit even
  // though it queries segments lazily and the grid refresh timer interleaves
  // its own position lookups.
  mgr_.add_node(0, std::make_unique<RandomWaypointModel>(base_cfg(), Rng(44)));
  RandomWaypointModel direct(base_cfg(), Rng(44));
  for (int ms = 0; ms <= 60000; ms += 241) {
    sim_.run_until(sim::from_millis(ms));
    const geo::Vec2 got = mgr_.position(0);
    const geo::Vec2 want = direct.position_at(sim::from_millis(ms));
    ASSERT_EQ(got.x, want.x) << "t=" << ms << "ms";
    ASSERT_EQ(got.y, want.y) << "t=" << ms << "ms";
  }
  EXPECT_GT(mgr_.perf().segment_refreshes, 0u);
}

TEST_F(ManagerTest, CountNeighborsMatchesNeighborsWithin) {
  Rng rng(45);
  for (NodeId i = 0; i < 30; ++i) {
    mgr_.add_node(i, std::make_unique<RandomWaypointModel>(base_cfg(),
                                                           rng.fork(i)));
  }
  for (int ms = 0; ms <= 3000; ms += 501) {
    sim_.run_until(sim::from_millis(ms));
    for (NodeId i = 0; i < 30; ++i) {
      EXPECT_EQ(mgr_.count_neighbors(i, 250.0),
                mgr_.neighbors_within(i, 250.0).size())
          << "node " << i << " t=" << ms;
    }
  }
}

TEST_F(ManagerTest, ScratchQueryMatchesAllocatingQuery) {
  Rng rng(46);
  for (NodeId i = 0; i < 20; ++i) {
    mgr_.add_node(i, std::make_unique<StaticModel>(geo::Vec2{
                         rng.uniform(0.0, 1500.0), rng.uniform(0.0, 300.0)}));
  }
  std::vector<NodeId> scratch;
  for (NodeId i = 0; i < 20; ++i) {
    scratch.clear();
    mgr_.nodes_within(mgr_.position(i), 300.0, i, scratch);
    EXPECT_EQ(scratch, mgr_.neighbors_within(i, 300.0)) << "node " << i;
  }
}

TEST_F(ManagerTest, NodesWithinPoint) {
  mgr_.add_node(0, std::make_unique<StaticModel>(geo::Vec2{100.0, 100.0}));
  mgr_.add_node(1, std::make_unique<StaticModel>(geo::Vec2{120.0, 100.0}));
  auto all = mgr_.nodes_within({110.0, 100.0}, 50.0, geo::GridIndex::npos);
  EXPECT_EQ(all.size(), 2u);
  auto excl = mgr_.nodes_within({110.0, 100.0}, 50.0, 0);
  EXPECT_EQ(excl, std::vector<NodeId>{1});
}

}  // namespace
}  // namespace rcast::mobility
