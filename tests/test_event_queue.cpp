#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "util/rng.hpp"

namespace rcast::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(77, [] {});
  EXPECT_EQ(q.pop(), 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NullEventIdIsInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(1, [&] { order.push_back(1); });
  const EventId mid = q.push(2, [&] { order.push_back(2); });
  q.push(3, [&] { order.push_back(3); });
  q.cancel(mid);
  while (!q.empty()) q.pop();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId e1 = q.push(5, [] {});
  q.push(9, [] {});
  q.cancel(e1);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.push(100, [] {});
  q.pop();
  EXPECT_THROW(q.push(50, [] {}), ContractViolation);
  EXPECT_NO_THROW(q.push(100, [] {}));  // same time is fine
}

TEST(EventQueue, SizeTracksCancellations) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<Time> times;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 7919) % 1000;
    q.push(t, [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.pop();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 1000u);
}

// MAC-style churn: schedule N timers, cancel every other one as scheduling
// proceeds, then drain. Survivors must fire in time order, every cancelled
// event must stay silent, and the queue must account for all of it (no
// leaked live entries, monotone scheduled_count).
TEST(EventQueue, ChurnCancelHalfInterleaved) {
  constexpr int kN = 4096;
  EventQueue q;
  std::vector<Time> fired;
  std::vector<EventId> ids;
  std::vector<bool> cancelled(kN, false);
  ids.reserve(kN);
  Rng rng(11);
  Time t = 0;
  for (int i = 0; i < kN; ++i) {
    t += static_cast<Time>(rng.uniform_u64(50));
    const Time when = t;
    ids.push_back(q.push(when, [&fired, when] { fired.push_back(when); }));
    if (i % 2 == 1) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i) - 1]));
      cancelled[static_cast<std::size_t>(i) - 1] = true;
    }
  }
  EXPECT_EQ(q.size(), kN / 2u);
  EXPECT_EQ(q.scheduled_count(), static_cast<std::uint64_t>(kN));
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fired.size(), kN / 2u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  // Cancelled handles are spent: a second cancel must report false.
  for (int i = 0; i < kN; ++i) EXPECT_FALSE(q.cancel(ids[i]));
}

// Randomized property test: on an arbitrary schedule/cancel/pop interleaving
// the queue must match a reference model — pending events sorted by
// (time, scheduling order), cancellation by erasure. This pins the exact
// semantics the old std::function/tombstone implementation had.
TEST(EventQueue, RandomizedMatchesReferenceModel) {
  struct ModelEvent {
    Time time;
    std::uint64_t seq;
    int tag;
  };
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EventQueue q;
    Rng rng(seed);
    std::vector<ModelEvent> model;          // pending, unsorted
    std::vector<std::pair<int, EventId>> handles;  // tag -> live handle
    std::vector<int> popped_real;
    std::vector<int> popped_model;
    std::uint64_t next_seq = 0;
    Time now = 0;
    int next_tag = 0;
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t op = rng.uniform_u64(10);
      if (op < 6) {  // push
        const Time at = now + static_cast<Time>(rng.uniform_u64(1000));
        const int tag = next_tag++;
        handles.emplace_back(
            tag, q.push(at, [tag, &popped_real] { popped_real.push_back(tag); }));
        model.push_back(ModelEvent{at, next_seq++, tag});
      } else if (op < 8) {  // cancel a random outstanding handle
        if (handles.empty()) continue;
        const std::size_t pick = rng.uniform_u64(handles.size());
        const auto [tag, id] = handles[pick];
        const auto it =
            std::find_if(model.begin(), model.end(),
                         [tag](const ModelEvent& e) { return e.tag == tag; });
        const bool model_cancelled = it != model.end();
        EXPECT_EQ(q.cancel(id), model_cancelled);
        if (model_cancelled) model.erase(it);
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {  // pop
        if (model.empty()) {
          EXPECT_TRUE(q.empty());
          continue;
        }
        const auto it = std::min_element(
            model.begin(), model.end(),
            [](const ModelEvent& a, const ModelEvent& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });
        EXPECT_EQ(q.pop(), it->time);  // fires the handler in place
        popped_model.push_back(it->tag);
        now = it->time;
        model.erase(it);
      }
      EXPECT_EQ(q.size(), model.size());
    }
    EXPECT_EQ(popped_real, popped_model) << "seed " << seed;
  }
}

// Captures that fit in kEventInlineCapacity must not allocate; oversized
// ones fall back to the heap and are counted.
TEST(EventQueue, HeapFallbackOnlyForOversizedCaptures) {
  EventQueue q;
  int x = 0;
  auto small = [&x] { ++x; };
  static_assert(EventQueue::Handler::fits_inline<decltype(small)>());
  q.push(1, small);
  EXPECT_EQ(q.handler_heap_fallbacks(), 0u);

  std::array<std::uint64_t, 16> big{};  // 128 bytes > kEventInlineCapacity
  auto large = [big, &x] { x += static_cast<int>(big[0]); };
  static_assert(!EventQueue::Handler::fits_inline<decltype(large)>());
  q.push(2, large);
  EXPECT_EQ(q.handler_heap_fallbacks(), 1u);
  while (!q.empty()) q.pop();
  EXPECT_EQ(x, 1);
}

// A stale handle whose slot was recycled by a newer event must stay inert:
// cancelling it is a no-op and must not kill the new occupant.
TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.push(1, [] {});
  q.pop();  // slot released, generation bumped
  bool fired = false;
  q.push(2, [&fired] { fired = true; });  // recycles the slot
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.pop();
  EXPECT_EQ(q.scheduled_count(), 2u);
}

// Inspection is const: next_time()/empty()/size() must be callable through a
// const reference (the simulator exposes them on its const surface).
TEST(EventQueue, InspectionIsConst) {
  EventQueue q;
  q.push(42, [] {});
  const EventQueue& cq = q;
  EXPECT_FALSE(cq.empty());
  EXPECT_EQ(cq.size(), 1u);
  EXPECT_EQ(cq.next_time(), 42);
}

// pop_batch drains exactly one timestamp, in scheduling order, and leaves
// later events pending.
TEST(EventQueue, PopBatchDrainsOneTimestampInOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(0); });
  q.push(10, [&] { order.push_back(1); });
  q.push(10, [&] { order.push_back(2); });
  q.push(11, [&] { order.push_back(99); });
  const Time t = q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(t, 10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 11);
}

// A handler that pushes an event at the batch's own timestamp joins the
// tail of the running batch (FIFO by scheduling order holds across the
// insertion), while later-time pushes stay pending.
TEST(EventQueue, PopBatchHandlerPushSameTimeJoinsBatch) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] {
    order.push_back(0);
    q.push(10, [&] { order.push_back(2); });
    q.push(20, [&] { order.push_back(3); });
  });
  q.push(10, [&] { order.push_back(1); });
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
}

// A handler that cancels a later same-timestamp member skips it mid-batch.
TEST(EventQueue, PopBatchHandlerCancelSkipsUnfiredMember) {
  EventQueue q;
  std::vector<int> order;
  EventId victim;
  q.push(10, [&] {
    order.push_back(0);
    EXPECT_TRUE(q.cancel(victim));
  });
  victim = q.push(10, [&] { order.push_back(1); });
  q.push(10, [&] { order.push_back(2); });
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_TRUE(q.empty());
}

// Batch instrumentation: dispatch_batches counts pop_batch calls and the
// log2 histogram buckets fired-per-batch sizes.
TEST(EventQueue, BatchCountersTrackDispatch) {
  EventQueue q;
  for (int i = 0; i < 3; ++i) q.push(10, [] {});
  q.push(20, [] {});
  q.pop_batch([](EventQueue::Handler& h) { h(); });  // batch of 3 -> bucket 1
  q.pop_batch([](EventQueue::Handler& h) { h(); });  // batch of 1 -> bucket 0
  EXPECT_EQ(q.dispatch_batches(), 2u);
  const auto hist = q.batch_size_hist();
  EXPECT_EQ(hist[0], 1u);  // size 1
  EXPECT_EQ(hist[1], 1u);  // sizes 2-3
}

// Queue-depth high-water marks the maximum simultaneous pending count.
TEST(EventQueue, DepthHighWaterTracksPeak) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  q.push(3, [] {});
  q.cancel(a);
  q.pop();
  q.push(4, [] {});
  EXPECT_EQ(q.depth_high_water(), 3u);
}

// A memoized ScheduleHint must never change observable behavior — pops come
// out identically whether the hint is fresh, reused across a window change,
// or shared between wildly different horizons.
TEST(EventQueue, ScheduleHintIsBehaviorNeutral) {
  EventQueue q;
  EventQueue::ScheduleHint hint;
  std::vector<Time> fired;
  Rng rng(17);
  Time now = 0;
  for (int i = 0; i < 20'000; ++i) {
    const Time t = now + static_cast<Time>(rng.uniform_u64(2 * kMillisecond));
    q.push(t, [&fired, t] { fired.push_back(t); }, hint);
    if (i % 2 == 0) now = q.pop_batch([](EventQueue::Handler& h) { h(); });
  }
  while (!q.empty()) q.pop();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 20'000u);
}

// --- in-place dispatch reentrancy (DESIGN.md §17) ---------------------------

// A handler cancelling *itself* via its own (now stale) EventId mid-fire is
// inert: the generation is bumped before dispatch, so the id is spent by the
// time the handler runs — same semantics the move-out dispatch had.
TEST(EventQueue, HandlerSelfCancelViaStaleIdIsInert) {
  EventQueue q;
  EventId self;
  int fires = 0;
  self = q.push(10, [&] {
    ++fires;
    EXPECT_FALSE(q.cancel(self));
  });
  q.pop();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(q.cancel(self));
}

// Same through the batched path, combined with a mid-fire push. Reclamation
// of the firing slot is deferred until after the fire, so the push from
// inside the handler cannot land in (and the self-cancel cannot corrupt)
// the buffer the closure is executing from.
TEST(EventQueue, PopBatchSelfCancelWithMidFirePush) {
  EventQueue q;
  EventId self;
  bool pushed_fired = false;
  self = q.push(10, [&] {
    q.push(20, [&] { pushed_fired = true; });
    EXPECT_FALSE(q.cancel(self));
  });
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(q.size(), 1u);
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_TRUE(pushed_fired);
}

// Slot-map growth mid-fire: the executing handler lives in slot storage, so
// pushing enough events from inside it to force new slot chunks must leave
// the running closure's captures intact (chunks never relocate). The capture
// is read after the growth to catch any use-after-move/realloc.
TEST(EventQueue, SlotMapGrowthMidFireKeepsExecutingHandlerValid) {
  EventQueue q;
  constexpr int kSpawn = 2048;  // several 512-slot chunks
  std::uint64_t canary = 0x5ca1ab1e;
  std::uint64_t seen = 0;
  int spawned_fired = 0;
  q.push(10, [&q, &spawned_fired, &seen, canary] {
    for (int i = 0; i < kSpawn; ++i) {
      q.push(20, [&spawned_fired] { ++spawned_fired; });
    }
    seen = canary;  // read the capture *after* the slot map grew
  });
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(seen, 0x5ca1ab1eu);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kSpawn));
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  EXPECT_EQ(spawned_fired, kSpawn);
}

// Mid-fire growth through pop() as well (shares fire_slot with pop_batch).
TEST(EventQueue, SlotMapGrowthMidSinglePop) {
  EventQueue q;
  int fired = 0;
  q.push(10, [&] {
    for (int i = 0; i < 1024; ++i) q.push(11, [&fired] { ++fired; });
  });
  q.pop();
  while (!q.empty()) q.pop();
  EXPECT_EQ(fired, 1024);
}

// Dispatch accounting: every fire is in-place, and raw-callable pushes take
// the emplace path (zero handler moves); only pre-built Handler pushes move.
TEST(EventQueue, InplaceFireAndMoveCounters) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.handler_moves(), 0u);  // emplace path
  EventQueue::Handler prebuilt([] {});
  q.push(3, std::move(prebuilt));
  EXPECT_EQ(q.handler_moves(), 1u);  // Handler&& path
  q.pop();
  q.pop_batch([](EventQueue::Handler& h) { h(); });
  q.pop();
  EXPECT_EQ(q.inplace_fires(), 3u);
}

}  // namespace
}  // namespace rcast::sim
