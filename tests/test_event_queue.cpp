#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rcast::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(77, [] {});
  auto [t, h] = q.pop();
  EXPECT_EQ(t, 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NullEventIdIsInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(1, [&] { order.push_back(1); });
  const EventId mid = q.push(2, [&] { order.push_back(2); });
  q.push(3, [&] { order.push_back(3); });
  q.cancel(mid);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId e1 = q.push(5, [] {});
  q.push(9, [] {});
  q.cancel(e1);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.push(100, [] {});
  q.pop().second();
  EXPECT_THROW(q.push(50, [] {}), ContractViolation);
  EXPECT_NO_THROW(q.push(100, [] {}));  // same time is fine
}

TEST(EventQueue, SizeTracksCancellations) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<Time> times;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 7919) % 1000;
    q.push(t, [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 1000u);
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.pop().second();
  EXPECT_EQ(q.scheduled_count(), 2u);
}

}  // namespace
}  // namespace rcast::sim
