#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rcast::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  Time seen = -1;
  s.at(100, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  std::vector<Time> fired;
  s.at(50, [&] {
    s.after(25, [&] { fired.push_back(s.now()); });
  });
  s.run_all();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 75);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.at(10, [&] { ++count; });
  s.at(20, [&] { ++count; });
  s.at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);  // event exactly at boundary runs
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  std::vector<int> order;
  s.at(1, [&] {
    order.push_back(1);
    s.at(2, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, SameTimeChainingRunsInOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(5, [&] {
    order.push_back(1);
    s.at(5, [&] { order.push_back(2); });  // same timestamp, runs after
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int count = 0;
  s.at(1, [&] { ++count; });
  s.at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator s;
  bool fired = false;
  const EventId id = s.at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ExecutedEventsCount) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.at(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.at(50, [] {}), ContractViolation);
  EXPECT_THROW(s.after(-1, [] {}), ContractViolation);
}

// The const inspection surface: a const Simulator& can ask for the next
// pending event time without perturbing the schedule.
TEST(Simulator, NextEventTimeIsConstAndNonDestructive) {
  Simulator s;
  s.at(25, [] {});
  s.at(40, [] {});
  const Simulator& cs = s;
  EXPECT_EQ(cs.next_event_time(), 25);
  EXPECT_EQ(cs.pending_events(), 2u);
  s.run_all();
  EXPECT_EQ(s.now(), 40);
}

// Handlers in a same-timestamp batch observe now() == their own timestamp,
// and a handler scheduling at now() runs within the same instant.
TEST(Simulator, BatchedDispatchKeepsNowConsistent) {
  Simulator s;
  std::vector<Time> seen;
  for (int i = 0; i < 4; ++i) {
    s.at(50, [&] { seen.push_back(s.now()); });
  }
  s.at(50, [&] {
    s.at(50, [&] { seen.push_back(s.now() + 1000); });
  });
  s.run_until(100);
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], 50);
  EXPECT_EQ(seen[4], 1050);  // ran at now()==50, inside the same instant
}

TEST(PeriodicTimer, FiresOnPeriod) {
  Simulator s;
  std::vector<Time> fires;
  PeriodicTimer t(s, [&] { fires.push_back(s.now()); });
  t.start(10, 5);
  s.run_until(27);
  EXPECT_EQ(fires, (std::vector<Time>{10, 15, 20, 25}));
}

TEST(PeriodicTimer, StopHalts) {
  Simulator s;
  int count = 0;
  PeriodicTimer t(s, [&] { ++count; });
  t.start(1, 1);
  s.at(5, [&] { t.stop(); });
  s.run_until(100);
  // Fires at t=1..4; the stop event at t=5 was scheduled before the timer's
  // t=5 firing, so same-time FIFO ordering cancels that firing.
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, CallbackMayStopTimer) {
  Simulator s;
  int count = 0;
  PeriodicTimer t(s, [&] {
    if (++count == 3) t.stop();
  });
  t.start(1, 1);
  s.run_until(100);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, RestartRearms) {
  Simulator s;
  int count = 0;
  PeriodicTimer t(s, [&] { ++count; });
  t.start(1, 100);
  s.run_until(1);
  EXPECT_EQ(count, 1);
  t.start(s.now() + 1, 100);
  s.run_until(2);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator s;
  int count = 0;
  {
    PeriodicTimer t(s, [&] { ++count; });
    t.start(10, 10);
  }
  s.run_until(100);
  EXPECT_EQ(count, 0);
}

TEST(OneShotTimer, FiresOnce) {
  Simulator s;
  int count = 0;
  OneShotTimer t(s, [&] { ++count; });
  t.arm(10);
  EXPECT_TRUE(t.armed());
  s.run_until(100);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(t.armed());
}

TEST(OneShotTimer, RearmResetsDeadline) {
  Simulator s;
  std::vector<Time> fires;
  OneShotTimer t(s, [&] { fires.push_back(s.now()); });
  t.arm(10);
  s.at(5, [&] { t.arm(10); });  // push deadline to 15
  s.run_until(100);
  EXPECT_EQ(fires, std::vector<Time>{15});
}

TEST(OneShotTimer, CancelPreventsFire) {
  Simulator s;
  int count = 0;
  OneShotTimer t(s, [&] { ++count; });
  t.arm(10);
  s.at(5, [&] { t.cancel(); });
  s.run_until(100);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace rcast::sim
