#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace rcast::scenario {
namespace {

ScenarioConfig small_cfg(Scheme s, std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.num_nodes = 20;
  cfg.num_flows = 5;
  cfg.world = {800.0, 300.0};
  cfg.rate_pps = 1.0;
  cfg.duration = 30 * sim::kSecond;
  cfg.pause = 30 * sim::kSecond;  // static
  cfg.scheme = s;
  cfg.seed = seed;
  return cfg;
}

TEST(Scenario, SchemeToOverhearingMap) {
  EXPECT_EQ(oh_map_for(Scheme::kRcast).data, mac::OverhearingMode::kRandomized);
  EXPECT_EQ(oh_map_for(Scheme::kRcast).rerr,
            mac::OverhearingMode::kUnconditional);
  EXPECT_EQ(oh_map_for(Scheme::kPsmAll).data,
            mac::OverhearingMode::kUnconditional);
  EXPECT_EQ(oh_map_for(Scheme::kPsmNone).data, mac::OverhearingMode::kNone);
  EXPECT_EQ(oh_map_for(Scheme::kOdpm).data, mac::OverhearingMode::kNone);
  EXPECT_EQ(oh_map_for(Scheme::kRcastBcast).rreq_bcast,
            mac::OverhearingMode::kRandomized);
}

TEST(Scenario, SchemeUsesPsm) {
  EXPECT_FALSE(scheme_uses_psm(Scheme::k80211));
  EXPECT_TRUE(scheme_uses_psm(Scheme::kPsmNone));
  EXPECT_TRUE(scheme_uses_psm(Scheme::kOdpm));
  EXPECT_TRUE(scheme_uses_psm(Scheme::kRcast));
}

TEST(Scenario, SchemeNames) {
  EXPECT_EQ(to_string(Scheme::k80211), "80211");
  EXPECT_EQ(to_string(Scheme::kOdpm), "ODPM");
  EXPECT_EQ(to_string(Scheme::kRcast), "RCAST");
}

TEST(Scenario, RunProducesPopulatedResult) {
  const RunResult r = run_scenario(small_cfg(Scheme::kRcast));
  EXPECT_EQ(r.scheme, Scheme::kRcast);
  EXPECT_DOUBLE_EQ(r.duration_s, 30.0);
  EXPECT_EQ(r.per_node_energy_j.size(), 20u);
  EXPECT_EQ(r.role_numbers.size(), 20u);
  EXPECT_GT(r.total_energy_j, 0.0);
  EXPECT_GT(r.originated, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.events_executed, 0u);
  EXPECT_GT(r.pdr_percent, 0.0);
  EXPECT_LE(r.pdr_percent, 100.0);
}

TEST(Scenario, DeterministicForSameSeed) {
  const RunResult a = run_scenario(small_cfg(Scheme::kRcast, 7));
  const RunResult b = run_scenario(small_cfg(Scheme::kRcast, 7));
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.originated, b.originated);
  EXPECT_EQ(a.control_tx, b.control_tx);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.per_node_energy_j, b.per_node_energy_j);
  EXPECT_EQ(a.role_numbers, b.role_numbers);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const RunResult a = run_scenario(small_cfg(Scheme::kRcast, 1));
  const RunResult b = run_scenario(small_cfg(Scheme::kRcast, 2));
  EXPECT_NE(a.total_energy_j, b.total_energy_j);
}

TEST(Scenario, EightyTwoElevenEnergyIsExactlyAwakePower) {
  const RunResult r = run_scenario(small_cfg(Scheme::k80211));
  // Every node awake the whole run: 1.15 W x 30 s x 20 nodes.
  EXPECT_NEAR(r.total_energy_j, 1.15 * 30.0 * 20.0, 1e-6);
  EXPECT_NEAR(r.energy_variance, 0.0, 1e-9);
}

TEST(Scenario, PsmSchemesUseLessEnergyThan80211) {
  const double e_awake = run_scenario(small_cfg(Scheme::k80211)).total_energy_j;
  for (Scheme s : {Scheme::kPsmNone, Scheme::kOdpm, Scheme::kRcast}) {
    const double e = run_scenario(small_cfg(s)).total_energy_j;
    EXPECT_LT(e, e_awake) << to_string(s);
  }
}

TEST(Scenario, RejectsDegenerateNetworks) {
  auto cfg = small_cfg(Scheme::kRcast);
  cfg.num_nodes = 1;
  EXPECT_THROW(Network net(cfg), ContractViolation);
}

TEST(Scenario, NodeAccessors) {
  Network net(small_cfg(Scheme::kRcast));
  EXPECT_EQ(net.node_count(), 20u);
  EXPECT_EQ(net.node(3).id(), 3u);
  EXPECT_EQ(net.node(3).mac().id(), 3u);
  EXPECT_EQ(net.node(3).dsr().id(), 3u);
}

TEST(Scenario, OverrideOhMapHonored) {
  auto cfg = small_cfg(Scheme::kRcast);
  cfg.override_oh_map = true;
  cfg.dsr.oh_map = core::OverhearingMap::psm_none();
  const RunResult r = run_scenario(cfg);
  // With the map forced to none, nobody commits to overhear.
  EXPECT_EQ(r.overhear_commits, 0u);
}

TEST(Scenario, RcastSchemeActuallyRandomizes) {
  const RunResult r = run_scenario(small_cfg(Scheme::kRcast));
  EXPECT_GT(r.overhear_commits + r.overhear_declines, 0u);
}

// --- experiment helpers ------------------------------------------------------

TEST(Experiment, RunRepetitionsVariesSeeds) {
  auto cfg = small_cfg(Scheme::kRcast);
  cfg.num_nodes = 10;
  cfg.num_flows = 3;
  cfg.duration = 10 * sim::kSecond;
  const auto runs = run_repetitions(cfg, 3, 3);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].total_energy_j, runs[1].total_energy_j);
  EXPECT_NE(runs[1].total_energy_j, runs[2].total_energy_j);
}

TEST(Experiment, RunRepetitionsMatchesSerialRuns) {
  auto cfg = small_cfg(Scheme::kOdpm);
  cfg.num_nodes = 10;
  cfg.num_flows = 3;
  cfg.duration = 10 * sim::kSecond;
  const auto parallel_runs = run_repetitions(cfg, 2, 2);
  auto c0 = cfg;
  c0.seed = cfg.seed;
  auto c1 = cfg;
  c1.seed = cfg.seed + 1;
  EXPECT_DOUBLE_EQ(parallel_runs[0].total_energy_j,
                   run_scenario(c0).total_energy_j);
  EXPECT_DOUBLE_EQ(parallel_runs[1].total_energy_j,
                   run_scenario(c1).total_energy_j);
}

TEST(Experiment, AverageOfIdenticalRunsIsIdentity) {
  auto cfg = small_cfg(Scheme::kRcast);
  cfg.num_nodes = 10;
  cfg.num_flows = 3;
  cfg.duration = 10 * sim::kSecond;
  const RunResult r = run_scenario(cfg);
  const RunResult avg = average({r, r});
  EXPECT_DOUBLE_EQ(avg.total_energy_j, r.total_energy_j);
  EXPECT_DOUBLE_EQ(avg.pdr_percent, r.pdr_percent);
  EXPECT_EQ(avg.per_node_energy_j, r.per_node_energy_j);
}

TEST(Experiment, AverageBlendsScalars) {
  RunResult a, b;
  a.total_energy_j = 10.0;
  b.total_energy_j = 20.0;
  a.pdr_percent = 90.0;
  b.pdr_percent = 100.0;
  const RunResult avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.total_energy_j, 15.0);
  EXPECT_DOUBLE_EQ(avg.pdr_percent, 95.0);
}

TEST(Experiment, AverageRequiresRuns) {
  EXPECT_THROW(average({}), ContractViolation);
}

TEST(Experiment, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 8, 2), "    3.14");
  EXPECT_EQ(fmt(std::uint64_t{42}, 5), "   42");
  EXPECT_EQ(fmt(std::string("x"), 3), "  x");
}

TEST(Experiment, BenchScaleDefaults) {
  ::unsetenv("RCAST_FULL");
  ::unsetenv("RCAST_DURATION_S");
  ::unsetenv("RCAST_REPS");
  const auto s = BenchScale::from_env();
  EXPECT_FALSE(s.full);
  EXPECT_EQ(s.duration, 150 * sim::kSecond);
  EXPECT_EQ(s.num_nodes, 60u);
  ::setenv("RCAST_FULL", "1", 1);
  const auto f = BenchScale::from_env();
  EXPECT_TRUE(f.full);
  EXPECT_EQ(f.duration, 1125 * sim::kSecond);
  EXPECT_EQ(f.num_nodes, 100u);
  EXPECT_EQ(f.repetitions, 10u);
  ::unsetenv("RCAST_FULL");
}

TEST(Experiment, BenchScaleEnvOverrides) {
  ::setenv("RCAST_DURATION_S", "60", 1);
  ::setenv("RCAST_REPS", "2", 1);
  const auto s = BenchScale::from_env();
  EXPECT_EQ(s.duration, 60 * sim::kSecond);
  EXPECT_EQ(s.repetitions, 2u);
  ::unsetenv("RCAST_DURATION_S");
  ::unsetenv("RCAST_REPS");
}

}  // namespace
}  // namespace rcast::scenario

namespace rcast::scenario {
namespace {

TEST(Scenario, DelayDecompositionPopulated) {
  const RunResult r = run_scenario(small_cfg(Scheme::kRcast));
  EXPECT_GT(r.delay_p50_s, 0.0);
  EXPECT_GE(r.delay_p90_s, r.delay_p50_s);
  EXPECT_GE(r.avg_route_wait_s, 0.0);
  EXPECT_GT(r.avg_transit_s, 0.0);
  // Decomposition roughly adds up to the mean.
  EXPECT_NEAR(r.avg_route_wait_s + r.avg_transit_s, r.avg_delay_s,
              0.25 * r.avg_delay_s + 0.05);
}

TEST(Scenario, DropAccountingSumsConsistently) {
  auto cfg = small_cfg(Scheme::kRcast);
  cfg.pause = 2 * sim::kSecond;  // mobility forces some drops
  const RunResult r = run_scenario(cfg);
  std::uint64_t drops = 0;
  for (auto d : r.drops) drops += d;
  // delivered + dropped <= originated (remainder is in-flight at the end).
  EXPECT_LE(r.delivered + drops, r.originated);
}

TEST(Scenario, AodvProtocolSelectable) {
  auto cfg = small_cfg(Scheme::k80211);
  cfg.routing = RoutingProtocol::kAodv;
  const RunResult r = run_scenario(cfg);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_EQ(to_string(cfg.routing), "AODV");
  EXPECT_EQ(to_string(RoutingProtocol::kDsr), "DSR");
}

}  // namespace
}  // namespace rcast::scenario
