// Telemetry spine tests: subscriber bookkeeping on the bus itself,
// re-entrancy during dispatch, a golden-file EventTracer trace for a tiny
// fixed-seed scenario, and the bus-vs-struct RunResult regression check.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "stats/telemetry.hpp"
#include "stats/trace.hpp"

namespace rcast::stats {
namespace {

// --- Subscriber bookkeeping -------------------------------------------------

/// Appends its tag to a shared log on every MAC sleep event; an optional
/// hook runs inside the callback to exercise re-entrancy.
class TagRecorder final : public MacEvents {
 public:
  TagRecorder(char tag, std::string& log) : tag_(tag), log_(log) {}
  void on_mac_sleep(NodeId, sim::Time) override {
    log_.push_back(tag_);
    if (hook) hook();
  }
  std::function<void()> hook;

 private:
  char tag_;
  std::string& log_;
};

TEST(TelemetryBusSubscribers, DispatchFollowsSubscriptionOrder) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  EXPECT_EQ(bus.mac_subscribers(), 3u);

  bus.on_mac_sleep(0, 0);
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abcabc");
}

TEST(TelemetryBusSubscribers, DuplicateSubscribeKeepsFirstPosition) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&a);  // no-op: already subscribed
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");
}

TEST(TelemetryBusSubscribers, UnsubscribeUnknownIsNoOp) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), stranger('x', log);
  bus.subscribe_mac(&a);
  bus.unsubscribe_mac(&stranger);
  EXPECT_EQ(bus.mac_subscribers(), 1u);
  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "a");
}

TEST(TelemetryBusSubscribers, LayersAreIndependent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log);
  bus.subscribe_mac(&a);
  EXPECT_EQ(bus.phy_subscribers(), 0u);
  EXPECT_EQ(bus.power_subscribers(), 0u);
  EXPECT_EQ(bus.routing_subscribers(), 0u);
  // Emissions on other layers with zero subscribers are harmless.
  bus.on_phy_tx(0, 512, 0);
  bus.on_am_window(0, 1, 0);
  bus.on_data_forwarded(0, 0);
  EXPECT_EQ(log, "");
}

TEST(TelemetryBusReentrancy, SelfUnsubscribeDuringDispatch) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  b.hook = [&] { bus.unsubscribe_mac(&b); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "abc");  // b still saw the event it was removed during
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abcac");
}

TEST(TelemetryBusReentrancy, RemovingLaterSubscriberSkipsItThisEvent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  a.hook = [&] { bus.unsubscribe_mac(&c); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");  // c was nulled before its slot was reached
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  a.hook = nullptr;
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abab");
}

TEST(TelemetryBusReentrancy, SubscribeDuringDispatchSeesNextEvent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), late('L', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  a.hook = [&] { bus.subscribe_mac(&late); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");  // size captured up front: late misses this event

  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "ababL");
}

TEST(TelemetryBusReentrancy, RemoveEveryoneDuringDispatch) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  a.hook = [&] {
    bus.unsubscribe_mac(&a);
    bus.unsubscribe_mac(&b);
    bus.unsubscribe_mac(&c);
  };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "a");
  EXPECT_EQ(bus.mac_subscribers(), 0u);
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "a");
}

// --- Golden-file trace ------------------------------------------------------

/// Six static nodes, two short CBR flows, Rcast/DSR, fixed seed: small
/// enough that the full routing+MAC event trace is reviewable by hand.
scenario::ScenarioConfig tiny_cfg() {
  scenario::ScenarioConfig cfg;
  cfg.num_nodes = 6;
  cfg.world = {600.0, 300.0};
  cfg.num_flows = 2;
  cfg.rate_pps = 4.0;
  cfg.duration = 2 * sim::kSecond;
  cfg.pause = cfg.duration;  // static topology
  cfg.max_speed_mps = 1.0;
  cfg.seed = 1;
  cfg.scheme = scenario::Scheme::kRcast;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  return cfg;
}

TEST(TelemetryGoldenTrace, TinyScenarioMatchesCommittedCsv) {
  std::ostringstream trace;
  {
    EventTracer tracer(trace);
    scenario::Network net(tiny_cfg());
    net.telemetry().subscribe_routing(&tracer);
    net.telemetry().subscribe_mac(&tracer);
    net.run();
    ASSERT_GT(tracer.lines_written(), 0u);
  }

  const std::string path =
      std::string(RCAST_TEST_DATA_DIR) + "/telemetry_trace_golden.csv";
  if (std::getenv("RCAST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << trace.str();
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " — regenerate with RCAST_REGEN_GOLDEN=1 ./test_telemetry";
  std::stringstream golden;
  golden << in.rdbuf();

  // Compare line-by-line so a mismatch reports the first divergent event
  // instead of dumping two multi-hundred-line blobs.
  std::istringstream got(trace.str());
  std::istringstream want(golden.str());
  std::string got_line, want_line;
  std::size_t lineno = 0;
  for (;;) {
    const bool g = static_cast<bool>(std::getline(got, got_line));
    const bool w = static_cast<bool>(std::getline(want, want_line));
    ++lineno;
    if (!g && !w) break;
    ASSERT_TRUE(g && w) << "trace length differs at line " << lineno
                        << " (got " << (g ? "extra" : "missing")
                        << " lines vs golden)";
    ASSERT_EQ(got_line, want_line) << "first divergence at line " << lineno;
  }
}

TEST(TelemetryGoldenTrace, TracingDoesNotPerturbTheRun) {
  const auto cfg = tiny_cfg();
  std::ostringstream trace;
  EventTracer tracer(trace);
  scenario::Network traced(cfg);
  traced.telemetry().subscribe_routing(&tracer);
  traced.telemetry().subscribe_mac(&tracer);
  const auto with = traced.run();
  const auto without = scenario::run_scenario(cfg);
  EXPECT_EQ(with.events_executed, without.events_executed);
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(with.total_energy_j, without.total_energy_j);
}

// --- Bus-derived vs struct-derived summaries --------------------------------

/// Every non-perf field must match exactly: doubles are compared with ==
/// because both paths read the same inputs through base_summary(), and the
/// per-layer aggregates must be identical counts, not approximations.
void expect_identical(const scenario::RunResult& bus,
                      const scenario::RunResult& st) {
  EXPECT_EQ(bus.scheme, st.scheme);
  EXPECT_EQ(bus.duration_s, st.duration_s);
  EXPECT_EQ(bus.total_energy_j, st.total_energy_j);
  EXPECT_EQ(bus.energy_variance, st.energy_variance);
  EXPECT_EQ(bus.energy_mean_j, st.energy_mean_j);
  EXPECT_EQ(bus.energy_min_j, st.energy_min_j);
  EXPECT_EQ(bus.energy_max_j, st.energy_max_j);
  EXPECT_EQ(bus.per_node_energy_j, st.per_node_energy_j);
  EXPECT_EQ(bus.originated, st.originated);
  EXPECT_EQ(bus.delivered, st.delivered);
  EXPECT_EQ(bus.pdr_percent, st.pdr_percent);
  EXPECT_EQ(bus.avg_delay_s, st.avg_delay_s);
  EXPECT_EQ(bus.delay_p50_s, st.delay_p50_s);
  EXPECT_EQ(bus.delay_p90_s, st.delay_p90_s);
  EXPECT_EQ(bus.avg_route_wait_s, st.avg_route_wait_s);
  EXPECT_EQ(bus.avg_transit_s, st.avg_transit_s);
  EXPECT_EQ(bus.energy_per_bit_j, st.energy_per_bit_j);
  EXPECT_EQ(bus.control_tx, st.control_tx);
  EXPECT_EQ(bus.normalized_overhead, st.normalized_overhead);
  EXPECT_EQ(bus.role_numbers, st.role_numbers);
  EXPECT_EQ(bus.atim_tx, st.atim_tx);
  EXPECT_EQ(bus.data_tx_attempts, st.data_tx_attempts);
  EXPECT_EQ(bus.overhear_commits, st.overhear_commits);
  EXPECT_EQ(bus.overhear_declines, st.overhear_declines);
  EXPECT_EQ(bus.mac_sleeps, st.mac_sleeps);
  EXPECT_EQ(bus.rreq_tx, st.rreq_tx);
  EXPECT_EQ(bus.rrep_tx, st.rrep_tx);
  EXPECT_EQ(bus.rerr_tx, st.rerr_tx);
  EXPECT_EQ(bus.hello_tx, st.hello_tx);
  for (std::size_t d = 0; d < bus.drops.size(); ++d) {
    EXPECT_EQ(bus.drops[d], st.drops[d]) << "drop reason " << d;
  }
  EXPECT_EQ(bus.data_tx_failed, st.data_tx_failed);
  EXPECT_EQ(bus.data_salvaged, st.data_salvaged);
  EXPECT_EQ(bus.dead_nodes, st.dead_nodes);
  EXPECT_EQ(bus.first_death_s, st.first_death_s);
}

scenario::ScenarioConfig regression_cfg() {
  scenario::ScenarioConfig cfg;
  cfg.num_nodes = 25;
  cfg.world = {900.0, 300.0};
  cfg.num_flows = 6;
  cfg.rate_pps = 2.0;
  cfg.duration = 20 * sim::kSecond;
  cfg.pause = 0;  // keep nodes moving: exercises RERR/salvage paths
  cfg.seed = 7;
  return cfg;
}

TEST(BusVsStructSummary, RcastDsr) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kRcast;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  scenario::Network net(cfg);
  const auto bus_r = net.run();
  const auto struct_r = net.summarize_from_structs();
  EXPECT_GT(bus_r.atim_tx, 0u);
  expect_identical(bus_r, struct_r);
}

TEST(BusVsStructSummary, OdpmAodv) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kOdpm;
  cfg.routing = scenario::RoutingProtocol::kAodv;
  scenario::Network net(cfg);
  const auto bus_r = net.run();
  const auto struct_r = net.summarize_from_structs();
  EXPECT_GT(bus_r.hello_tx, 0u);
  expect_identical(bus_r, struct_r);
}

TEST(BusVsStructSummary, Plain80211Dsr) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::k80211;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  scenario::Network net(cfg);
  const auto bus_r = net.run();
  expect_identical(bus_r, net.summarize_from_structs());
}

// --- PHY and power layers flow through the bus ------------------------------

class PhyCounter final : public PhyEvents {
 public:
  void on_phy_tx(NodeId, std::int64_t, sim::Time) override { ++tx; }
  void on_phy_rx_ok(NodeId, NodeId, sim::Time) override { ++rx_ok; }
  void on_phy_rx_lost(NodeId, PhyLoss, sim::Time) override { ++rx_lost; }
  void on_radio_state(NodeId, energy::RadioState, sim::Time) override {
    ++transitions;
  }
  std::uint64_t tx = 0, rx_ok = 0, rx_lost = 0, transitions = 0;
};

class PowerCounter final : public PowerEvents {
 public:
  void on_am_window(NodeId, sim::Time, sim::Time) override { ++am_windows; }
  void on_battery_depleted(NodeId, sim::Time) override { ++deaths; }
  std::uint64_t am_windows = 0, deaths = 0;
};

TEST(TelemetryLayers, PhyEventsFlowForPsmScheme) {
  auto cfg = tiny_cfg();
  PhyCounter phy;
  scenario::Network net(cfg);
  net.telemetry().subscribe_phy(&phy);
  const auto r = net.run();
  EXPECT_GT(phy.tx, 0u);
  EXPECT_GT(phy.rx_ok, 0u);
  // PSM schemes toggle idle<->sleep constantly, so transitions must dwarf
  // the node count.
  EXPECT_GT(phy.transitions, static_cast<std::uint64_t>(cfg.num_nodes));
  EXPECT_GT(r.mac_sleeps, 0u);
}

TEST(TelemetryLayers, OdpmEmitsAmWindowsAndBatteryDeaths) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kOdpm;
  cfg.battery_joules = 8.0;  // tiny: some nodes must die within 20 s
  PowerCounter power;
  scenario::Network net(cfg);
  net.telemetry().subscribe_power(&power);
  const auto r = net.run();
  EXPECT_GT(power.am_windows, 0u);
  EXPECT_GT(r.dead_nodes, 0u);
  EXPECT_EQ(power.deaths, static_cast<std::uint64_t>(r.dead_nodes));
}

}  // namespace
}  // namespace rcast::stats
