// Telemetry spine tests: subscriber bookkeeping on the bus itself,
// re-entrancy during dispatch, a golden-file EventTracer trace for a tiny
// fixed-seed scenario, and golden RunResult checkpoints per scheme panel.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "stats/telemetry.hpp"
#include "stats/trace.hpp"

namespace rcast::stats {
namespace {

// --- Subscriber bookkeeping -------------------------------------------------

/// Appends its tag to a shared log on every MAC sleep event; an optional
/// hook runs inside the callback to exercise re-entrancy.
class TagRecorder final : public MacEvents {
 public:
  TagRecorder(char tag, std::string& log) : tag_(tag), log_(log) {}
  void on_mac_sleep(NodeId, sim::Time) override {
    log_.push_back(tag_);
    if (hook) hook();
  }
  std::function<void()> hook;

 private:
  char tag_;
  std::string& log_;
};

TEST(TelemetryBusSubscribers, DispatchFollowsSubscriptionOrder) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  EXPECT_EQ(bus.mac_subscribers(), 3u);

  bus.on_mac_sleep(0, 0);
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abcabc");
}

TEST(TelemetryBusSubscribers, DuplicateSubscribeKeepsFirstPosition) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&a);  // no-op: already subscribed
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");
}

TEST(TelemetryBusSubscribers, UnsubscribeUnknownIsNoOp) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), stranger('x', log);
  bus.subscribe_mac(&a);
  bus.unsubscribe_mac(&stranger);
  EXPECT_EQ(bus.mac_subscribers(), 1u);
  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "a");
}

TEST(TelemetryBusSubscribers, LayersAreIndependent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log);
  bus.subscribe_mac(&a);
  EXPECT_EQ(bus.phy_subscribers(), 0u);
  EXPECT_EQ(bus.power_subscribers(), 0u);
  EXPECT_EQ(bus.routing_subscribers(), 0u);
  // Emissions on other layers with zero subscribers are harmless.
  bus.on_phy_tx(0, 512, 0);
  bus.on_am_window(0, 1, 0);
  bus.on_data_forwarded(0, 0);
  EXPECT_EQ(log, "");
}

TEST(TelemetryBusReentrancy, SelfUnsubscribeDuringDispatch) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  b.hook = [&] { bus.unsubscribe_mac(&b); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "abc");  // b still saw the event it was removed during
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abcac");
}

TEST(TelemetryBusReentrancy, RemovingLaterSubscriberSkipsItThisEvent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  a.hook = [&] { bus.unsubscribe_mac(&c); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");  // c was nulled before its slot was reached
  EXPECT_EQ(bus.mac_subscribers(), 2u);

  a.hook = nullptr;
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "abab");
}

TEST(TelemetryBusReentrancy, SubscribeDuringDispatchSeesNextEvent) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), late('L', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  a.hook = [&] { bus.subscribe_mac(&late); };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "ab");  // size captured up front: late misses this event

  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "ababL");
}

TEST(TelemetryBusReentrancy, RemoveEveryoneDuringDispatch) {
  TelemetryBus bus;
  std::string log;
  TagRecorder a('a', log), b('b', log), c('c', log);
  bus.subscribe_mac(&a);
  bus.subscribe_mac(&b);
  bus.subscribe_mac(&c);
  a.hook = [&] {
    bus.unsubscribe_mac(&a);
    bus.unsubscribe_mac(&b);
    bus.unsubscribe_mac(&c);
  };

  bus.on_mac_sleep(0, 0);
  EXPECT_EQ(log, "a");
  EXPECT_EQ(bus.mac_subscribers(), 0u);
  bus.on_mac_sleep(0, 1);
  EXPECT_EQ(log, "a");
}

// --- Golden-file trace ------------------------------------------------------

/// Six static nodes, two short CBR flows, Rcast/DSR, fixed seed: small
/// enough that the full routing+MAC event trace is reviewable by hand.
scenario::ScenarioConfig tiny_cfg() {
  scenario::ScenarioConfig cfg;
  cfg.num_nodes = 6;
  cfg.world = {600.0, 300.0};
  cfg.num_flows = 2;
  cfg.rate_pps = 4.0;
  cfg.duration = 2 * sim::kSecond;
  cfg.pause = cfg.duration;  // static topology
  cfg.max_speed_mps = 1.0;
  cfg.seed = 1;
  cfg.scheme = scenario::Scheme::kRcast;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  return cfg;
}

TEST(TelemetryGoldenTrace, TinyScenarioMatchesCommittedCsv) {
  std::ostringstream trace;
  {
    EventTracer tracer(trace);
    scenario::Network net(tiny_cfg());
    net.telemetry().subscribe_routing(&tracer);
    net.telemetry().subscribe_mac(&tracer);
    net.run();
    ASSERT_GT(tracer.lines_written(), 0u);
  }

  const std::string path =
      std::string(RCAST_TEST_DATA_DIR) + "/telemetry_trace_golden.csv";
  if (std::getenv("RCAST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << trace.str();
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " — regenerate with RCAST_REGEN_GOLDEN=1 ./test_telemetry";
  std::stringstream golden;
  golden << in.rdbuf();

  // Compare line-by-line so a mismatch reports the first divergent event
  // instead of dumping two multi-hundred-line blobs.
  std::istringstream got(trace.str());
  std::istringstream want(golden.str());
  std::string got_line, want_line;
  std::size_t lineno = 0;
  for (;;) {
    const bool g = static_cast<bool>(std::getline(got, got_line));
    const bool w = static_cast<bool>(std::getline(want, want_line));
    ++lineno;
    if (!g && !w) break;
    ASSERT_TRUE(g && w) << "trace length differs at line " << lineno
                        << " (got " << (g ? "extra" : "missing")
                        << " lines vs golden)";
    ASSERT_EQ(got_line, want_line) << "first divergence at line " << lineno;
  }
}

TEST(TelemetryGoldenTrace, TracingDoesNotPerturbTheRun) {
  const auto cfg = tiny_cfg();
  std::ostringstream trace;
  EventTracer tracer(trace);
  scenario::Network traced(cfg);
  traced.telemetry().subscribe_routing(&tracer);
  traced.telemetry().subscribe_mac(&tracer);
  const auto with = traced.run();
  const auto without = scenario::run_scenario(cfg);
  EXPECT_EQ(with.events_executed, without.events_executed);
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(with.total_energy_j, without.total_energy_j);
}

// --- Golden RunResult checkpoints -------------------------------------------
//
// The bus is the only summary path now (the transitional struct-scraping
// summarize_from_structs() is gone), so the regression anchor is a committed
// golden RunResult per scheme/routing panel: every field of the bus-derived
// summary, rendered exactly (%.17g doubles), captured from the build that
// had both paths and verified identical. Any behavior drift in the summary
// pipeline shows up as a field-level diff against these files.

/// Renders every RunResult field in a fixed order with exact formatting, so
/// equality of the text implies bit-identical doubles and counters.
std::string golden_text(const scenario::RunResult& r) {
  char buf[64];
  std::string out;
  auto add_d = [&](const char* k, double v) {
    std::snprintf(buf, sizeof(buf), "%s %.17g\n", k, v);
    out += buf;
  };
  auto add_u = [&](const char* k, std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", k,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  out += "scheme ";
  out += scenario::to_string(r.scheme);
  out += "\n";
  add_d("duration_s", r.duration_s);
  add_d("total_energy_j", r.total_energy_j);
  add_d("energy_variance", r.energy_variance);
  add_d("energy_mean_j", r.energy_mean_j);
  add_d("energy_min_j", r.energy_min_j);
  add_d("energy_max_j", r.energy_max_j);
  add_u("originated", r.originated);
  add_u("delivered", r.delivered);
  add_d("pdr_percent", r.pdr_percent);
  add_d("avg_delay_s", r.avg_delay_s);
  add_d("delay_p50_s", r.delay_p50_s);
  add_d("delay_p90_s", r.delay_p90_s);
  add_d("avg_route_wait_s", r.avg_route_wait_s);
  add_d("avg_transit_s", r.avg_transit_s);
  add_d("energy_per_bit_j", r.energy_per_bit_j);
  add_u("control_tx", r.control_tx);
  add_d("normalized_overhead", r.normalized_overhead);
  add_u("atim_tx", r.atim_tx);
  add_u("data_tx_attempts", r.data_tx_attempts);
  add_u("overhear_commits", r.overhear_commits);
  add_u("overhear_declines", r.overhear_declines);
  add_u("mac_sleeps", r.mac_sleeps);
  add_u("rreq_tx", r.rreq_tx);
  add_u("rrep_tx", r.rrep_tx);
  add_u("rerr_tx", r.rerr_tx);
  add_u("hello_tx", r.hello_tx);
  add_u("data_tx_failed", r.data_tx_failed);
  add_u("data_salvaged", r.data_salvaged);
  add_u("dead_nodes", r.dead_nodes);
  add_d("first_death_s", r.first_death_s);
  add_u("events_executed", r.events_executed);
  out += "per_node_energy_j";
  for (const double e : r.per_node_energy_j) {
    std::snprintf(buf, sizeof(buf), " %.17g", e);
    out += buf;
  }
  out += "\nrole_numbers";
  for (const auto n : r.role_numbers) {
    std::snprintf(buf, sizeof(buf), " %llu", static_cast<unsigned long long>(n));
    out += buf;
  }
  out += "\ndrops";
  for (const auto d : r.drops) {
    std::snprintf(buf, sizeof(buf), " %llu", static_cast<unsigned long long>(d));
    out += buf;
  }
  out += "\n";
  return out;
}

scenario::ScenarioConfig regression_cfg() {
  scenario::ScenarioConfig cfg;
  cfg.num_nodes = 25;
  cfg.world = {900.0, 300.0};
  cfg.num_flows = 6;
  cfg.rate_pps = 2.0;
  cfg.duration = 20 * sim::kSecond;
  cfg.pause = 0;  // keep nodes moving: exercises RERR/salvage paths
  cfg.seed = 7;
  return cfg;
}

/// Runs the panel and compares the rendered summary against the committed
/// golden file, line by line. RCAST_REGEN_GOLDEN=1 rewrites the golden
/// instead (for intentional behavior changes — review the diff).
void check_against_golden(const scenario::ScenarioConfig& cfg,
                          const char* file) {
  const std::string got = golden_text(scenario::run_scenario(cfg));
  const std::string path = std::string(RCAST_TEST_DATA_DIR) + "/" + file;

  if (std::getenv("RCAST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " — regenerate with RCAST_REGEN_GOLDEN=1 ./test_telemetry";
  std::stringstream golden;
  golden << in.rdbuf();

  std::istringstream got_s(got);
  std::istringstream want_s(golden.str());
  std::string got_line, want_line;
  std::size_t lineno = 0;
  for (;;) {
    const bool g = static_cast<bool>(std::getline(got_s, got_line));
    const bool w = static_cast<bool>(std::getline(want_s, want_line));
    ++lineno;
    if (!g && !w) break;
    ASSERT_TRUE(g && w) << "summary length differs at line " << lineno;
    ASSERT_EQ(got_line, want_line) << "first divergence at line " << lineno;
  }
}

TEST(GoldenRunSummary, RcastDsr) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kRcast;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  check_against_golden(cfg, "golden_run_rcast_dsr.txt");
}

TEST(GoldenRunSummary, OdpmAodv) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kOdpm;
  cfg.routing = scenario::RoutingProtocol::kAodv;
  check_against_golden(cfg, "golden_run_odpm_aodv.txt");
}

TEST(GoldenRunSummary, Plain80211Dsr) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::k80211;
  cfg.routing = scenario::RoutingProtocol::kDsr;
  check_against_golden(cfg, "golden_run_80211_dsr.txt");
}

// --- PHY and power layers flow through the bus ------------------------------

class PhyCounter final : public PhyEvents {
 public:
  void on_phy_tx(NodeId, std::int64_t, sim::Time) override { ++tx; }
  void on_phy_rx_ok(NodeId, NodeId, sim::Time) override { ++rx_ok; }
  void on_phy_rx_lost(NodeId, PhyLoss, sim::Time) override { ++rx_lost; }
  void on_radio_state(NodeId, energy::RadioState, sim::Time) override {
    ++transitions;
  }
  std::uint64_t tx = 0, rx_ok = 0, rx_lost = 0, transitions = 0;
};

class PowerCounter final : public PowerEvents {
 public:
  void on_am_window(NodeId, sim::Time, sim::Time) override { ++am_windows; }
  void on_battery_depleted(NodeId, sim::Time) override { ++deaths; }
  std::uint64_t am_windows = 0, deaths = 0;
};

TEST(TelemetryLayers, PhyEventsFlowForPsmScheme) {
  auto cfg = tiny_cfg();
  PhyCounter phy;
  scenario::Network net(cfg);
  net.telemetry().subscribe_phy(&phy);
  const auto r = net.run();
  EXPECT_GT(phy.tx, 0u);
  EXPECT_GT(phy.rx_ok, 0u);
  // PSM schemes toggle idle<->sleep constantly, so transitions must dwarf
  // the node count.
  EXPECT_GT(phy.transitions, static_cast<std::uint64_t>(cfg.num_nodes));
  EXPECT_GT(r.mac_sleeps, 0u);
}

TEST(TelemetryLayers, OdpmEmitsAmWindowsAndBatteryDeaths) {
  auto cfg = regression_cfg();
  cfg.scheme = scenario::Scheme::kOdpm;
  cfg.battery_joules = 8.0;  // tiny: some nodes must die within 20 s
  PowerCounter power;
  scenario::Network net(cfg);
  net.telemetry().subscribe_power(&power);
  const auto r = net.run();
  EXPECT_GT(power.am_windows, 0u);
  EXPECT_GT(r.dead_nodes, 0u);
  EXPECT_EQ(power.deaths, static_cast<std::uint64_t>(r.dead_nodes));
}

}  // namespace
}  // namespace rcast::stats
