// End-to-end tests of the rcast_campaignd binary: sharded runs whose merged
// export is byte-identical to a single-process rcast_campaign run, resume
// after interruption and after kill -9, and the reindex subcommand's
// byte-identical sidecar rebuild. These drive the real executables (paths
// injected by CMake) over a tiny manifest.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("rcast_campaignd_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs a shell command, returning its exit code (-1 on system() failure).
int run(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128;
}

std::string write_manifest(const TempDir& dir) {
  const std::string path = dir.file("m.txt");
  std::ofstream out(path);
  out << "name = e2e\n"
         "schemes = rcast, odpm\n"
         "routings = dsr\n"
         "rates_pps = 1.0\n"
         "pauses_s = 0\n"
         "nodes = 12\n"
         "flows = 3\n"
         "duration_s = 6\n"
         "seeds = 3\n"
         "world_m = 600x300\n";
  return path;
}

const std::string kDaemon = RCAST_CAMPAIGND_PATH;
const std::string kSingle = RCAST_CAMPAIGN_PATH;

/// The single-process reference export for `manifest`.
std::string reference_csv(const TempDir& dir, const std::string& manifest) {
  const std::string out_dir = dir.file("single");
  EXPECT_EQ(run(kSingle + " run " + manifest + " --out=" + out_dir +
                " --quiet 2>/dev/null"),
            0);
  const std::string csv = dir.file("single.csv");
  EXPECT_EQ(run(kSingle + " export " + manifest + " --out=" + out_dir +
                " --csv=" + csv + " 2>/dev/null"),
            0);
  return read_file(csv);
}

TEST(Campaignd, ShardedExportByteIdenticalToSingleProcess) {
  TempDir dir;
  const std::string manifest = write_manifest(dir);
  const std::string reference = reference_csv(dir, manifest);
  ASSERT_FALSE(reference.empty());

  const std::string out_dir = dir.file("sharded");
  ASSERT_EQ(run(kDaemon + " run " + manifest + " --out=" + out_dir +
                " --shards=3 --threads=1 --quiet 2>/dev/null"),
            0);
  const std::string csv = dir.file("sharded.csv");
  ASSERT_EQ(run(kDaemon + " export " + manifest + " --out=" + out_dir +
                " --csv=" + csv + " 2>/dev/null"),
            0);
  EXPECT_EQ(read_file(csv), reference);

  // Every shard built its index sidecar incrementally during the run.
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(fs::exists(out_dir + "/results.shard" + std::to_string(k) +
                           ".jsonl.idx"));
  }
}

TEST(Campaignd, InterruptedRunResumesByteIdentical) {
  TempDir dir;
  const std::string manifest = write_manifest(dir);
  const std::string reference = reference_csv(dir, manifest);

  const std::string out_dir = dir.file("interrupted");
  // --max-jobs=1: each worker stops after one new job — a deterministic
  // mid-campaign interruption.
  ASSERT_EQ(run(kDaemon + " run " + manifest + " --out=" + out_dir +
                " --shards=2 --threads=1 --max-jobs=1 --quiet 2>/dev/null"),
            0);
  ASSERT_EQ(run(kDaemon + " resume " + manifest + " --out=" + out_dir +
                " --shards=2 --threads=1 --quiet 2>/dev/null"),
            0);
  const std::string csv = dir.file("resumed.csv");
  ASSERT_EQ(run(kDaemon + " export " + manifest + " --out=" + out_dir +
                " --csv=" + csv + " 2>/dev/null"),
            0);
  EXPECT_EQ(read_file(csv), reference);
}

TEST(Campaignd, KilledWorkerResumesByteIdentical) {
  TempDir dir;
  const std::string manifest = write_manifest(dir);
  const std::string reference = reference_csv(dir, manifest);

  // Start one worker shard directly in the background, kill -9 it as soon
  // as its journal shows progress, then resume the whole fleet.
  const std::string out_dir = dir.file("killed");
  fs::create_directories(out_dir);
  const std::string pid_file = dir.file("worker.pid");
  ASSERT_EQ(run(kDaemon + " worker " + manifest + " --out=" + out_dir +
                " --shards=1 --shard=0 --threads=1 --quiet 2>/dev/null & "
                "echo $! > " + pid_file),
            0);

  const std::string journal = out_dir + "/journal.shard0.log";
  for (int i = 0; i < 200; ++i) {  // wait for >=1 committed job (<=10 s)
    std::ifstream in(journal);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) ++lines;
    if (lines >= 2) break;  // header + at least one commit
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  run("kill -9 $(cat " + pid_file + ") 2>/dev/null; wait 2>/dev/null");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ASSERT_EQ(run(kDaemon + " resume " + manifest + " --out=" + out_dir +
                " --shards=1 --threads=1 --quiet 2>/dev/null"),
            0);
  const std::string csv = dir.file("killed.csv");
  ASSERT_EQ(run(kDaemon + " export " + manifest + " --out=" + out_dir +
                " --csv=" + csv + " 2>/dev/null"),
            0);
  EXPECT_EQ(read_file(csv), reference);
}

TEST(Campaignd, ReindexRebuildsByteIdenticalSidecar) {
  TempDir dir;
  const std::string manifest = write_manifest(dir);
  const std::string out_dir = dir.file("reindex");
  ASSERT_EQ(run(kDaemon + " run " + manifest + " --out=" + out_dir +
                " --shards=2 --threads=1 --quiet 2>/dev/null"),
            0);

  const std::string idx0 = out_dir + "/results.shard0.jsonl.idx";
  ASSERT_TRUE(fs::exists(idx0));
  const std::string original = read_file(idx0);
  ASSERT_FALSE(original.empty());

  // Deleted sidecar.
  fs::remove(idx0);
  ASSERT_EQ(run(kDaemon + " reindex " + manifest + " --out=" + out_dir +
                " >/dev/null 2>&1"),
            0);
  EXPECT_EQ(read_file(idx0), original);

  // Corrupted sidecar.
  {
    std::ofstream out(idx0, std::ios::binary | std::ios::trunc);
    out << "garbage that is definitely not an index";
  }
  ASSERT_EQ(run(kDaemon + " reindex " + manifest + " --out=" + out_dir +
                " >/dev/null 2>&1"),
            0);
  EXPECT_EQ(read_file(idx0), original);
}

TEST(Campaignd, StatusReportsShardProgress) {
  TempDir dir;
  const std::string manifest = write_manifest(dir);
  const std::string out_dir = dir.file("status");
  ASSERT_EQ(run(kDaemon + " run " + manifest + " --out=" + out_dir +
                " --shards=2 --threads=1 --quiet 2>/dev/null"),
            0);
  const std::string out_file = dir.file("status.txt");
  ASSERT_EQ(run(kDaemon + " status " + manifest + " --out=" + out_dir +
                " > " + out_file + " 2>/dev/null"),
            0);
  const std::string status = read_file(out_file);
  EXPECT_NE(status.find("campaign 'e2e': 6 jobs, 2 shard journal(s)"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("total: 6/6 done (6 ok, 0 failed)"),
            std::string::npos)
      << status;
}

}  // namespace
