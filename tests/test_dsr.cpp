#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/energy_model.hpp"
#include "mac/mac.hpp"
#include "mobility/mobility_manager.hpp"
#include "phy/channel.hpp"
#include "phy/phy.hpp"
#include "power/always_on.hpp"
#include "routing/dsr.hpp"

namespace rcast::routing {
namespace {

class Recorder : public Observer {
 public:
  struct Delivery {
    NodeId src, dst;
    std::uint32_t seq;
    sim::Time at;
    sim::Time originated;
  };
  void on_data_originated(const DsrPacket&, sim::Time) override {
    ++originated;
  }
  void on_data_delivered(const DsrPacket& p, sim::Time now) override {
    deliveries.push_back({p.src, p.dst, p.app_seq, now, p.origin_time});
  }
  void on_data_dropped(const DsrPacket&, DropReason r, sim::Time) override {
    drops.push_back(r);
  }
  void on_control_transmit(PacketType t, sim::Time) override {
    ++control[static_cast<int>(t)];
  }
  void on_route_used(const Route& route, sim::Time) override {
    routes_used.push_back(route);
  }

  int originated = 0;
  std::vector<Delivery> deliveries;
  std::vector<DropReason> drops;
  int control[4] = {0, 0, 0, 0};
  std::vector<Route> routes_used;
};

// A line of nodes, 200 m apart, plain-802.11 MAC (fast, no PSM) unless
// psm=true. Node i can only decode nodes i-1 and i+1 (200 m < 250 < 400 m).
class DsrTest : public ::testing::Test {
 protected:
  void build(std::size_t n, bool psm = false,
             DsrConfig dsr_cfg = DsrConfig{}) {
    mobility_ = std::make_unique<mobility::MobilityManager>(
        sim_, geo::Rect{10000.0, 100.0}, 550.0);
    channel_ = std::make_unique<phy::Channel>(sim_, *mobility_,
                                              phy::ChannelConfig{});
    mac::MacConfig mc;
    mc.psm_enabled = psm;
    for (std::size_t i = 0; i < n; ++i) {
      mobility_->add_node(
          static_cast<NodeId>(i),
          std::make_unique<mobility::StaticModel>(
              geo::Vec2{static_cast<double>(i) * 200.0, 50.0}));
      meters_.push_back(std::make_unique<energy::EnergyMeter>(
          energy::PowerTable::wavelan2(), sim_.now()));
      phys_.push_back(std::make_unique<phy::Phy>(
          sim_, *channel_, static_cast<NodeId>(i), meters_.back().get()));
      macs_.push_back(
          std::make_unique<mac::Mac>(sim_, *phys_.back(), mc, Rng(500 + i)));
      policies_.push_back(std::make_unique<power::AlwaysOnPolicy>());
      macs_.back()->set_power_policy(policies_.back().get());
      dsrs_.push_back(std::make_unique<Dsr>(sim_, *macs_.back(), dsr_cfg,
                                            Rng(900 + i),
                                            policies_.back().get()));
      dsrs_.back()->set_observer(&recorder_);
      macs_.back()->start();
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<mobility::MobilityManager> mobility_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<phy::Phy>> phys_;
  std::vector<std::unique_ptr<mac::Mac>> macs_;
  std::vector<std::unique_ptr<power::AlwaysOnPolicy>> policies_;
  std::vector<std::unique_ptr<Dsr>> dsrs_;
  Recorder recorder_;
};

TEST_F(DsrTest, SingleHopDiscoveryAndDelivery) {
  build(2);
  dsrs_[0]->send_data(1, 512, 0, 1);
  sim_.run_until(sim::from_seconds(2));
  ASSERT_EQ(recorder_.deliveries.size(), 1u);
  EXPECT_EQ(recorder_.deliveries[0].src, 0u);
  EXPECT_EQ(recorder_.deliveries[0].dst, 1u);
  EXPECT_GE(recorder_.control[static_cast<int>(PacketType::kRreq)], 1);
  EXPECT_GE(recorder_.control[static_cast<int>(PacketType::kRrep)], 1);
}

TEST_F(DsrTest, MultiHopDiscoveryAndDelivery) {
  build(5);
  dsrs_[0]->send_data(4, 512, 0, 1);
  sim_.run_until(sim::from_seconds(5));
  ASSERT_EQ(recorder_.deliveries.size(), 1u);
  // The discovered route must be the 5-node line.
  ASSERT_EQ(recorder_.routes_used.size(), 1u);
  EXPECT_EQ(recorder_.routes_used[0],
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dsrs_[0]->stats().data_originated, 1u);
  EXPECT_EQ(dsrs_[4]->stats().data_delivered, 1u);
}

TEST_F(DsrTest, ExpandingRingFirstRreqHasTtlOne) {
  build(4);
  dsrs_[0]->send_data(3, 512, 0, 1);
  // Run only a moment: the TTL-1 RREQ reaches node 1 but cannot propagate.
  sim_.run_until(sim::from_millis(50));
  EXPECT_EQ(dsrs_[0]->stats().rreq_originated, 1u);
  EXPECT_EQ(dsrs_[1]->stats().rreq_forwarded, 0u);
  EXPECT_TRUE(recorder_.deliveries.empty());
  // After the retry with network TTL the packet arrives.
  sim_.run_until(sim::from_seconds(5));
  EXPECT_EQ(recorder_.deliveries.size(), 1u);
  EXPECT_GE(dsrs_[0]->stats().rreq_originated, 2u);
}

TEST_F(DsrTest, SecondPacketUsesCachedRouteNoNewRreq) {
  build(3);
  dsrs_[0]->send_data(2, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  const auto rreqs_after_first = dsrs_[0]->stats().rreq_originated;
  dsrs_[0]->send_data(2, 512, 0, 2);
  sim_.run_until(sim::from_seconds(4));
  EXPECT_EQ(recorder_.deliveries.size(), 2u);
  EXPECT_EQ(dsrs_[0]->stats().rreq_originated, rreqs_after_first);
}

TEST_F(DsrTest, RouteCachePopulatedAtSourceAfterDiscovery) {
  build(4);
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  EXPECT_TRUE(dsrs_[0]->cache().has_route(3, sim_.now()));
  // Intermediates learned routes both ways from the RREP they forwarded.
  EXPECT_TRUE(dsrs_[1]->cache().has_route(3, sim_.now()));
  EXPECT_TRUE(dsrs_[1]->cache().has_route(0, sim_.now()));
}

TEST_F(DsrTest, TargetLearnsReverseRouteFromRreq) {
  build(3);
  dsrs_[0]->send_data(2, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  EXPECT_TRUE(dsrs_[2]->cache().has_route(0, sim_.now()));
  // So the reverse flow needs no discovery.
  const auto rreqs = dsrs_[2]->stats().rreq_originated;
  dsrs_[2]->send_data(0, 512, 1, 1);
  sim_.run_until(sim::from_seconds(4));
  EXPECT_EQ(dsrs_[2]->stats().rreq_originated, rreqs);
  EXPECT_EQ(recorder_.deliveries.size(), 2u);
}

TEST_F(DsrTest, ReplyFromCacheShortensDiscovery) {
  build(5);
  // Prime node 1's cache directly (running traffic would also fill node 0's
  // cache via overhearing and skip discovery altogether).
  ASSERT_TRUE(dsrs_[1]->cache().add({1, 2, 3, 4}, sim_.now()));
  // Node 0 discovers 4: the nonpropagating TTL-1 RREQ reaches node 1, which
  // answers from its cache — no network-wide flood is needed.
  dsrs_[0]->send_data(4, 512, 1, 1);
  sim_.run_until(sim::from_seconds(10));
  EXPECT_EQ(recorder_.deliveries.size(), 1u);
  EXPECT_GE(dsrs_[1]->stats().rrep_from_cache, 1u);
  EXPECT_EQ(dsrs_[0]->stats().rreq_originated, 1u);  // TTL-1 probe sufficed
  EXPECT_EQ(dsrs_[1]->stats().rreq_forwarded, 0u);
}

TEST_F(DsrTest, OverhearingFillsBystanderCache) {
  // Line 0-1-2; node 0 talks to 1... we need a bystander in range of a
  // transmitter but not on the route: use 4 nodes, route 0->1, bystander 2
  // hears node 1's... node 1 only ACKs. Use route 0->...->3 and check 2's
  // neighbors. Simplest: route 1->2 in a 4-node line; node 0 hears node 1's
  // data transmissions (dst 2) and node 3 hears node 2's forwards... route
  // is single-hop 1->2, so node 0 overhears data from 1, node 3 overhears
  // the... nothing (2 only ACKs). Check node 0.
  build(4);
  dsrs_[1]->send_data(2, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  ASSERT_EQ(recorder_.deliveries.size(), 1u);
  // Node 0 overheard 1's unicast data to 2 and cached [0, 1, 2].
  EXPECT_TRUE(dsrs_[0]->cache().has_route(2, sim_.now()));
  EXPECT_GE(dsrs_[0]->stats().cache_adds_overhear, 1u);
}

TEST_F(DsrTest, OverhearingCachesReverseDirectionToo) {
  build(5);
  dsrs_[1]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  // Node 2 forwards 1->3 traffic; node 1's neighbor 0 overhears data from 1
  // with route [1,2,3]: toward-dst gives 0->1->2->3, reverse gives 0->1.
  EXPECT_TRUE(dsrs_[0]->cache().has_route(3, sim_.now()));
  EXPECT_TRUE(dsrs_[0]->cache().has_route(1, sim_.now()));
}

TEST_F(DsrTest, NoRouteAfterRetriesDropsPackets) {
  DsrConfig cfg;
  cfg.max_rreq_attempts = 2;
  cfg.rreq_backoff_base = 100 * sim::kMillisecond;
  build(1, false, cfg);  // completely isolated node
  dsrs_[0]->send_data(99, 512, 0, 1);
  sim_.run_until(sim::from_seconds(10));
  ASSERT_EQ(recorder_.drops.size(), 1u);
  EXPECT_EQ(recorder_.drops[0], DropReason::kNoRoute);
  EXPECT_EQ(dsrs_[0]->stats().rreq_originated, 2u);
}

TEST_F(DsrTest, SendBufferHoldsPacketsDuringDiscovery) {
  build(3);
  dsrs_[0]->send_data(2, 512, 0, 1);
  dsrs_[0]->send_data(2, 512, 0, 2);
  dsrs_[0]->send_data(2, 512, 0, 3);
  EXPECT_GE(dsrs_[0]->send_buffer_depth(), 2u);  // one may be in flight
  sim_.run_until(sim::from_seconds(5));
  EXPECT_EQ(recorder_.deliveries.size(), 3u);
  EXPECT_EQ(dsrs_[0]->send_buffer_depth(), 0u);
}

TEST_F(DsrTest, DuplicateRreqsSuppressed) {
  build(4);
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(5));
  // Node 2 hears the flood from both 1 and 3 eventually; duplicates must
  // not multiply RREP traffic.
  std::uint64_t dups = 0;
  for (const auto& d : dsrs_) dups += d->stats().rreq_duplicates;
  EXPECT_GE(dups, 1u);
  EXPECT_EQ(recorder_.deliveries.size(), 1u);
}

TEST_F(DsrTest, SendToSelfRejected) {
  build(2);
  EXPECT_THROW(dsrs_[0]->send_data(0, 512, 0, 1), ContractViolation);
}

TEST_F(DsrTest, ControlTransmitCountsPerHop) {
  build(4);
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(5));
  // RREP travels 3 hops: originated at 3, forwarded by 2 and 1.
  EXPECT_GE(recorder_.control[static_cast<int>(PacketType::kRrep)], 3);
}

// --- Link failure / RERR ----------------------------------------------------

class DsrMobileTest : public ::testing::Test {
 protected:
  // Nodes 0,1,2 in a line; node 2 can be teleported away via a settable
  // model to break link 1-2 mid-run.
  class Teleport : public mobility::MobilityModel {
   public:
    explicit Teleport(geo::Vec2 p) : pos_(p) {}
    geo::Vec2 position_at(sim::Time) override { return pos_; }
    double max_speed() const override { return 10000.0; }
    void set(geo::Vec2 p) { pos_ = p; }

   private:
    geo::Vec2 pos_;
  };

  void build(std::size_t n, DsrConfig cfg = DsrConfig{}) {
    mobility_ = std::make_unique<mobility::MobilityManager>(
        sim_, geo::Rect{20000.0, 100.0}, 550.0, 10 * sim::kMillisecond);
    channel_ = std::make_unique<phy::Channel>(sim_, *mobility_,
                                              phy::ChannelConfig{});
    mac::MacConfig mc;
    mc.psm_enabled = false;
    for (std::size_t i = 0; i < n; ++i) {
      auto model = std::make_unique<Teleport>(
          geo::Vec2{static_cast<double>(i) * 200.0, 50.0});
      models_.push_back(model.get());
      mobility_->add_node(static_cast<NodeId>(i), std::move(model));
      meters_.push_back(std::make_unique<energy::EnergyMeter>(
          energy::PowerTable::wavelan2(), sim_.now()));
      phys_.push_back(std::make_unique<phy::Phy>(
          sim_, *channel_, static_cast<NodeId>(i), meters_.back().get()));
      macs_.push_back(
          std::make_unique<mac::Mac>(sim_, *phys_.back(), mc, Rng(50 + i)));
      policies_.push_back(std::make_unique<power::AlwaysOnPolicy>());
      macs_.back()->set_power_policy(policies_.back().get());
      dsrs_.push_back(std::make_unique<Dsr>(sim_, *macs_.back(), cfg,
                                            Rng(90 + i),
                                            policies_.back().get()));
      dsrs_.back()->set_observer(&recorder_);
      macs_.back()->start();
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<mobility::MobilityManager> mobility_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<Teleport*> models_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<phy::Phy>> phys_;
  std::vector<std::unique_ptr<mac::Mac>> macs_;
  std::vector<std::unique_ptr<power::AlwaysOnPolicy>> policies_;
  std::vector<std::unique_ptr<Dsr>> dsrs_;
  Recorder recorder_;
};

TEST_F(DsrMobileTest, LinkBreakGeneratesRerrAndPurgesCaches) {
  build(4);
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  ASSERT_EQ(recorder_.deliveries.size(), 1u);
  ASSERT_TRUE(dsrs_[0]->cache().has_route(3, sim_.now()));

  // Teleport node 3 out of range and send again: node 2 detects the broken
  // link, RERRs back, and source cache loses the route.
  models_[3]->set({15000.0, 50.0});
  sim_.run_until(sim::from_seconds(3.1));  // let the grid refresh
  dsrs_[0]->send_data(3, 512, 0, 2);
  sim_.run_until(sim::from_seconds(20));
  EXPECT_GE(dsrs_[2]->stats().rerr_originated, 1u);
  EXPECT_FALSE(dsrs_[0]->cache().has_route(3, sim_.now()));
  // The packet was eventually dropped (no route anywhere).
  EXPECT_FALSE(recorder_.drops.empty());
}

TEST_F(DsrMobileTest, SalvageUsesAlternativeRoute) {
  // Diamond: 0 - {1 above, 2 below} - 3. Break 1-3; node 1 salvages via...
  // node 1's cache needs an alternative; instead test source-side recovery:
  // source 0 has both routes cached, route via 1 fails, retry succeeds.
  build(4);
  // Rearrange into a diamond.
  models_[0]->set({0.0, 50.0});
  models_[1]->set({180.0, 20.0});
  models_[2]->set({180.0, 80.0});
  models_[3]->set({360.0, 50.0});
  sim_.run_until(sim::from_millis(50));
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  ASSERT_GE(recorder_.deliveries.size(), 1u);
  // Break whichever first hop the source used by moving node 1 away.
  models_[1]->set({15000.0, 50.0});
  sim_.run_until(sim::from_seconds(3.2));
  dsrs_[0]->send_data(3, 512, 0, 2);
  dsrs_[0]->send_data(3, 512, 0, 3);
  sim_.run_until(sim::from_seconds(25));
  // All packets delivered (possibly after rediscovery via node 2).
  EXPECT_EQ(recorder_.deliveries.size(), 3u);
}

TEST_F(DsrMobileTest, RerrOverhearingPurgesBystanderCache) {
  // Line 0-1-2-3 plus bystander 4 near node 1 (off the route).
  build(5);
  models_[4]->set({200.0, 90.0});  // close to node 1
  sim_.run_until(sim::from_millis(50));
  dsrs_[0]->send_data(3, 512, 0, 1);
  sim_.run_until(sim::from_seconds(3));
  // Bystander 4 overheard the data (802.11 overhears everything) and cached
  // a route containing link 2-3.
  ASSERT_TRUE(dsrs_[4]->cache().has_route(3, sim_.now()));
  // Break 2-3 and trigger a RERR; node 4 overhears node 1's RERR forward.
  models_[3]->set({15000.0, 50.0});
  sim_.run_until(sim::from_seconds(3.2));
  dsrs_[0]->send_data(3, 512, 0, 2);
  sim_.run_until(sim::from_seconds(20));
  EXPECT_FALSE(dsrs_[4]->cache().has_route(3, sim_.now()));
}

}  // namespace
}  // namespace rcast::routing
