#include <gtest/gtest.h>

#include "routing/send_buffer.hpp"

namespace rcast::routing {
namespace {

using sim::from_seconds;

DsrPacketPtr pkt(NodeId dst, std::uint32_t seq = 0) {
  auto p = std::make_shared<DsrPacket>();
  p->type = PacketType::kData;
  p->dst = dst;
  p->app_seq = seq;
  return p;
}

TEST(SendBuffer, PushAndTake) {
  SendBuffer b;
  b.push(pkt(5, 1), 0);
  b.push(pkt(6, 2), 0);
  b.push(pkt(5, 3), 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.any_for(5));
  auto got = b.take_for(5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0]->app_seq, 1u);
  EXPECT_EQ(got[1]->app_seq, 3u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_FALSE(b.any_for(5));
  EXPECT_TRUE(b.any_for(6));
}

TEST(SendBuffer, TakeForMissingDstEmpty) {
  SendBuffer b;
  b.push(pkt(5), 0);
  EXPECT_TRUE(b.take_for(9).empty());
  EXPECT_EQ(b.size(), 1u);
}

TEST(SendBuffer, OverflowDropsOldest) {
  SendBuffer b(2);
  auto d1 = b.push(pkt(1, 1), 0);
  EXPECT_TRUE(d1.empty());
  b.push(pkt(2, 2), 0);
  auto dropped = b.push(pkt(3, 3), 0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->app_seq, 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(SendBuffer, ExpireRemovesOld) {
  SendBuffer b;
  b.push(pkt(1, 1), from_seconds(0));
  b.push(pkt(2, 2), from_seconds(20));
  auto expired = b.expire(from_seconds(31), from_seconds(30));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->app_seq, 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(SendBuffer, ExpireKeepsFresh) {
  SendBuffer b;
  b.push(pkt(1), from_seconds(10));
  EXPECT_TRUE(b.expire(from_seconds(15), from_seconds(30)).empty());
  EXPECT_EQ(b.size(), 1u);
}

TEST(SendBuffer, EmptyBufferSafeOperations) {
  SendBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.any_for(1));
  EXPECT_TRUE(b.take_for(1).empty());
  EXPECT_TRUE(b.expire(from_seconds(100), from_seconds(1)).empty());
}

}  // namespace
}  // namespace rcast::routing
