// The pre-ladder binary-heap event queue, kept verbatim (renamed) as the
// reference implementation for the randomized differential test in
// test_event_queue_differential.cpp. Its pop order — (time, seq) with FIFO
// ties, O(1) generation-checked cancellation — *defines* the contract the
// ladder queue must reproduce exactly; golden traces were recorded under
// this implementation.
//
// Test-only: nothing under src/ may include this header.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"  // kEventInlineCapacity, Handler alias basis
#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/inline_function.hpp"

namespace rcast::sim::testing {

/// Handle into ReferenceEventQueue; mirrors sim::EventId.
class ReferenceEventId {
 public:
  ReferenceEventId() = default;
  bool valid() const { return raw_ != 0; }
  bool operator==(const ReferenceEventId&) const = default;

 private:
  friend class ReferenceEventQueue;
  ReferenceEventId(std::uint32_t slot, std::uint32_t gen)
      : raw_((static_cast<std::uint64_t>(gen) << 32) |
             (static_cast<std::uint64_t>(slot) + 1)) {}
  std::uint32_t slot() const {
    return static_cast<std::uint32_t>(raw_ & 0xFFFFFFFFu) - 1;
  }
  std::uint32_t gen() const { return static_cast<std::uint32_t>(raw_ >> 32); }
  std::uint64_t raw_ = 0;
};

class ReferenceEventQueue {
 public:
  using Handler = util::InlineFunction<kEventInlineCapacity>;

  ReferenceEventId push(Time t, Handler h) {
    RCAST_REQUIRE_MSG(t >= last_popped_, "scheduling into the past");
    if (h.heap_allocated()) ++heap_fallbacks_;
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.handler = std::move(h);
    s.live = true;
    heap_.push_back(Entry{t, ++next_seq_, slot, s.gen});
    sift_up(heap_.size() - 1);
    ++live_;
    maybe_compact();
    return ReferenceEventId(slot, s.gen);
  }

  bool cancel(ReferenceEventId id) {
    if (!id.valid()) return false;
    const std::uint32_t slot = id.slot();
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != id.gen()) return false;
    release_slot(slot);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  Time next_time() {
    skip_dead();
    RCAST_REQUIRE(!heap_.empty());
    return heap_.front().time;
  }

  std::pair<Time, Handler> pop() {
    skip_dead();
    RCAST_REQUIRE(!heap_.empty());
    const Entry e = heap_.front();
    remove_top();
    Slot& s = slots_[e.slot];
    RCAST_DCHECK(s.live && s.gen == e.gen);
    Handler h = std::move(s.handler);
    release_slot(e.slot);
    --live_;
    last_popped_ = e.time;
    return {e.time, std::move(h)};
  }

  std::uint64_t scheduled_count() const { return next_seq_; }
  std::uint64_t handler_heap_fallbacks() const { return heap_fallbacks_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break within equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct Slot {
    Handler handler;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  bool dead(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return !s.live || s.gen != e.gen;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.handler = Handler();
    s.live = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  void skip_dead() {
    while (!heap_.empty() && dead(heap_.front())) remove_top();
  }

  void remove_top() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Entry e = heap_[i];
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], e)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
  }

  void maybe_compact() {
    if (heap_.size() < 256 || heap_.size() < 4 * live_) return;
    std::size_t kept = 0;
    for (const Entry& e : heap_) {
      if (!dead(e)) heap_[kept++] = e;
    }
    heap_.resize(kept);
    if (kept > 1) {
      for (std::size_t i = kept / 2; i-- > 0;) sift_down(i);
    }
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  Time last_popped_ = 0;
};

}  // namespace rcast::sim::testing
