#include "util/pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace rcast::util {
namespace {

struct Tracked {
  explicit Tracked(int v = 0) : value(v) { ++alive; }
  Tracked(const Tracked& o) : value(o.value) { ++alive; }
  ~Tracked() { --alive; }
  int value;
  static int alive;
};
int Tracked::alive = 0;

TEST(Pool, RecyclesBlocks) {
  Pool<std::uint64_t> pool;
  void* a = pool.allocate();
  pool.deallocate(a);
  void* b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO free list reuses the hot block
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(Pool, GrowsBeyondFirstChunk) {
  Pool<std::uint64_t> pool;
  std::vector<void*> blocks;
  for (int i = 0; i < 200; ++i) blocks.push_back(pool.allocate());
  // All distinct.
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(std::adjacent_find(blocks.begin(), blocks.end()), blocks.end());
  EXPECT_EQ(pool.stats().misses, 200u);
  for (void* b : blocks) pool.deallocate(b);
  for (int i = 0; i < 200; ++i) pool.allocate();
  EXPECT_EQ(pool.stats().hits, 200u);
  EXPECT_EQ(pool.stats().misses, 200u);
}

TEST(PoolArena, MakePooledConstructsAndDestroys) {
  PoolArena arena;
  {
    auto p = make_pooled<Tracked>(arena, 42);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(Tracked::alive, 1);
    auto q = p;  // shared ownership through the pooled control block
    p.reset();
    EXPECT_EQ(Tracked::alive, 1);
  }
  EXPECT_EQ(Tracked::alive, 0);
}

TEST(PoolArena, SteadyStateHitsFreeList) {
  PoolArena arena;
  for (int i = 0; i < 100; ++i) {
    auto p = make_pooled<Tracked>(arena, i);  // released each iteration
  }
  const PoolStats s = arena.total_stats();
  EXPECT_EQ(s.misses, 1u);  // only the first carve
  EXPECT_EQ(s.hits, 99u);
}

TEST(PoolArena, DistinctTypesGetDistinctPools) {
  PoolArena arena;
  auto a = make_pooled<Tracked>(arena, 1);
  auto b = make_pooled<std::uint64_t>(arena, 7u);
  EXPECT_EQ(*b, 7u);
  const PoolStats s = arena.total_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(PoolArena, WeakPtrKeepsBlockUntilExpired) {
  // allocate_shared keeps control block + payload in one pooled block; a
  // surviving weak_ptr must keep that block out of the free list.
  PoolArena arena;
  std::weak_ptr<Tracked> w;
  {
    auto p = make_pooled<Tracked>(arena, 5);
    w = p;
  }
  EXPECT_TRUE(w.expired());
  EXPECT_EQ(Tracked::alive, 0);
  // Block returns to the pool only once the weak count drops; resetting the
  // weak_ptr and allocating again must recycle rather than carve.
  w.reset();
  auto p2 = make_pooled<Tracked>(arena, 6);
  EXPECT_EQ(arena.total_stats().hits, 1u);
}

}  // namespace
}  // namespace rcast::util
