#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/energy_model.hpp"
#include "mac/mac.hpp"
#include "mobility/mobility_manager.hpp"
#include "phy/channel.hpp"
#include "phy/phy.hpp"
#include "power/always_on.hpp"
#include "power/psm_policy.hpp"

namespace rcast::mac {
namespace {

struct TestDatagram final : NetDatagram {
  std::int64_t bits;
  int tag;
  TestDatagram(std::int64_t b, int t) : bits(b), tag(t) {}
  std::int64_t size_bits() const override { return bits; }
};

NetDatagramPtr dgram(std::int64_t bits = 512, int tag = 0) {
  return std::make_shared<TestDatagram>(bits, tag);
}

int tag_of(const NetDatagramPtr& d) {
  return static_cast<const TestDatagram*>(d.get())->tag;
}

class Callbacks : public MacCallbacks {
 public:
  struct Rx {
    NetDatagramPtr pkt;
    NodeId from;
  };
  struct Oh {
    NetDatagramPtr pkt;
    NodeId from, to;
  };
  void mac_deliver(const NetDatagramPtr& pkt, NodeId from) override {
    delivered.push_back({pkt, from});
  }
  void mac_overhear(const NetDatagramPtr& pkt, NodeId from,
                    NodeId to) override {
    overheard.push_back({pkt, from, to});
  }
  void mac_tx_ok(const NetDatagramPtr& pkt, NodeId next) override {
    ok.push_back({pkt, next});
  }
  void mac_tx_failed(const NetDatagramPtr& pkt, NodeId next) override {
    failed.push_back({pkt, next});
  }
  std::vector<Rx> delivered;
  std::vector<Oh> overheard;
  std::vector<Rx> ok;
  std::vector<Rx> failed;
};

/// A scriptable policy for testing MAC <-> policy interplay.
class ScriptPolicy : public PowerPolicy {
 public:
  bool always_awake_v = false;
  bool ps_mode_v = true;
  bool overhear_v = false;
  bool bcast_v = true;
  std::vector<NodeId> believed_awake;
  int overhear_calls = 0;
  int immediate_failures = 0;
  bool drop_belief_on_failure = true;

  bool always_awake() const override { return always_awake_v; }
  bool ps_mode_now(sim::Time) override { return ps_mode_v; }
  bool should_overhear(NodeId, OverhearingMode, sim::Time) override {
    ++overhear_calls;
    return overhear_v;
  }
  bool should_receive_broadcast(NodeId, sim::Time) override { return bcast_v; }
  bool believes_awake(NodeId n, sim::Time) override {
    return std::find(believed_awake.begin(), believed_awake.end(), n) !=
           believed_awake.end();
  }
  void on_immediate_send_failed(NodeId n) override {
    ++immediate_failures;
    if (drop_belief_on_failure) {
      std::erase(believed_awake, n);
    }
  }
};

// Fixture: nodes on a line, 200 m apart, all mutually in RX range pairwise
// with their neighbors (200 m), and CS covers two hops.
class MacTest : public ::testing::Test {
 protected:
  void build(std::size_t n, bool psm, double spacing = 200.0) {
    mobility_ = std::make_unique<mobility::MobilityManager>(
        sim_, geo::Rect{10000.0, 100.0}, 550.0);
    channel_ = std::make_unique<phy::Channel>(sim_, *mobility_,
                                              phy::ChannelConfig{});
    cfg_.psm_enabled = psm;
    for (std::size_t i = 0; i < n; ++i) {
      mobility_->add_node(
          static_cast<NodeId>(i),
          std::make_unique<mobility::StaticModel>(
              geo::Vec2{static_cast<double>(i) * spacing, 50.0}));
      meters_.push_back(std::make_unique<energy::EnergyMeter>(
          energy::PowerTable::wavelan2(), sim_.now()));
      phys_.push_back(std::make_unique<phy::Phy>(
          sim_, *channel_, static_cast<NodeId>(i), meters_.back().get()));
      macs_.push_back(std::make_unique<Mac>(sim_, *phys_.back(), cfg_,
                                            Rng(1000 + i)));
      callbacks_.push_back(std::make_unique<Callbacks>());
      policies_.push_back(std::make_unique<ScriptPolicy>());
      macs_.back()->set_callbacks(callbacks_.back().get());
      macs_.back()->set_power_policy(policies_.back().get());
    }
    for (auto& m : macs_) m->start();
  }

  sim::Time bi() const { return cfg_.beacon_interval; }

  sim::Simulator sim_;
  MacConfig cfg_;
  std::unique_ptr<mobility::MobilityManager> mobility_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<phy::Phy>> phys_;
  std::vector<std::unique_ptr<Mac>> macs_;
  std::vector<std::unique_ptr<Callbacks>> callbacks_;
  std::vector<std::unique_ptr<ScriptPolicy>> policies_;
};

// --- Non-PSM (plain 802.11) ------------------------------------------------

TEST_F(MacTest, NonPsmUnicastDelivers) {
  build(2, /*psm=*/false);
  macs_[0]->send(1, dgram(512, 42), OverhearingMode::kNone);
  sim_.run_until(sim::from_millis(50));
  ASSERT_EQ(callbacks_[1]->delivered.size(), 1u);
  EXPECT_EQ(tag_of(callbacks_[1]->delivered[0].pkt), 42);
  EXPECT_EQ(callbacks_[1]->delivered[0].from, 0u);
  ASSERT_EQ(callbacks_[0]->ok.size(), 1u);
  EXPECT_EQ(macs_[0]->stats().data_tx_ok, 1u);
}

TEST_F(MacTest, NonPsmDeliveryIsFast) {
  build(2, false);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(sim::from_millis(5));
  EXPECT_EQ(callbacks_[1]->delivered.size(), 1u);  // well under a beacon
}

TEST_F(MacTest, NonPsmBroadcastReachesAllInRange) {
  build(3, false);
  macs_[1]->send(kBroadcastId, dgram(512, 9), OverhearingMode::kNone);
  sim_.run_until(sim::from_millis(50));
  EXPECT_EQ(callbacks_[0]->delivered.size(), 1u);
  EXPECT_EQ(callbacks_[2]->delivered.size(), 1u);
}

TEST_F(MacTest, NonPsmOverhearingTapFires) {
  build(3, false);  // node 1 between 0 and 2; 0->... 0-1 in range
  macs_[0]->send(1, dgram(512, 5), OverhearingMode::kNone);
  sim_.run_until(sim::from_millis(50));
  // Node 2 is 400 m from 0: senses but cannot decode. Use 1->2 instead.
  callbacks_[1]->delivered.clear();
  macs_[1]->send(2, dgram(512, 6), OverhearingMode::kNone);
  sim_.run_until(sim::from_millis(100));
  ASSERT_EQ(callbacks_[2]->delivered.size(), 1u);
  // Node 0 is 200 m from 1: decodes 1's transmission addressed to 2.
  ASSERT_EQ(callbacks_[0]->overheard.size(), 1u);
  EXPECT_EQ(callbacks_[0]->overheard[0].from, 1u);
  EXPECT_EQ(callbacks_[0]->overheard[0].to, 2u);
}

TEST_F(MacTest, NonPsmRetriesExhaustToFailure) {
  build(2, false, /*spacing=*/800.0);  // out of range: no ACK ever
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(sim::from_seconds(2));
  ASSERT_EQ(callbacks_[0]->failed.size(), 1u);
  EXPECT_EQ(macs_[0]->stats().data_tx_failed, 1u);
  EXPECT_EQ(macs_[0]->stats().data_tx_attempts,
            static_cast<std::uint64_t>(cfg_.retry_limit + 1));
}

TEST_F(MacTest, NonPsmQueueOverflowDrops) {
  build(2, false);
  bool all_accepted = true;
  // One packet is immediately dequeued into the in-flight DCF operation, so
  // capacity is queue_limit + 1 before drops start.
  for (std::size_t i = 0; i < cfg_.queue_limit + 20; ++i) {
    all_accepted &= macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  }
  EXPECT_FALSE(all_accepted);
  EXPECT_GE(macs_[0]->stats().queue_drops, 19u);
}

TEST_F(MacTest, NonPsmManyPacketsAllDelivered) {
  build(2, false);
  for (int i = 0; i < 20; ++i) {
    macs_[0]->send(1, dgram(512, i), OverhearingMode::kNone);
  }
  sim_.run_until(sim::from_seconds(1));
  EXPECT_EQ(callbacks_[1]->delivered.size(), 20u);
  // In order.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tag_of(callbacks_[1]->delivered[i].pkt), i);
  }
}

TEST_F(MacTest, NonPsmNodesNeverSleep) {
  build(2, false);
  policies_[0]->always_awake_v = true;
  sim_.run_until(sim::from_seconds(2));
  EXPECT_TRUE(macs_[0]->awake());
  EXPECT_EQ(macs_[0]->stats().sleeps, 0u);
}

// --- PSM -------------------------------------------------------------------

TEST_F(MacTest, PsmIdleNodesSleepOutsideAtimWindow) {
  build(2, true);
  sim_.run_until(cfg_.atim_window + sim::kMillisecond);
  EXPECT_FALSE(macs_[0]->awake());
  EXPECT_FALSE(macs_[1]->awake());
  sim_.run_until(bi() + sim::kMillisecond);  // next beacon: awake again
  EXPECT_TRUE(macs_[0]->awake());
}

TEST_F(MacTest, PsmIdleEnergyMatchesDutyCycle) {
  build(1, true);
  sim_.run_until(sim::from_seconds(100));
  // 1/5 awake at 1.15 W + 4/5 asleep at 0.045 W = 0.266 W average.
  EXPECT_NEAR(meters_[0]->consumed_joules(sim_.now()), 26.6, 0.2);
}

TEST_F(MacTest, PsmUnicastDeliversViaAtim) {
  build(2, true);
  macs_[0]->send(1, dgram(512, 3), OverhearingMode::kNone);
  sim_.run_until(bi());
  ASSERT_EQ(callbacks_[1]->delivered.size(), 1u);
  EXPECT_GE(macs_[0]->stats().atim_tx, 1u);
  EXPECT_GE(macs_[0]->stats().atim_acked, 1u);
}

TEST_F(MacTest, PsmReceiverStaysAwakeAfterAtim) {
  build(3, true);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 5 * sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->awake());   // sender
  EXPECT_TRUE(macs_[1]->awake());   // addressed receiver
  EXPECT_FALSE(macs_[2]->awake());  // bystander sleeps (kNone)
}

TEST_F(MacTest, PsmNoneModeBystanderSleeps) {
  build(3, true);
  macs_[1]->send(2, dgram(), OverhearingMode::kNone);
  sim_.run_until(bi());
  EXPECT_TRUE(callbacks_[0]->overheard.empty());
  EXPECT_EQ(policies_[0]->overhear_calls, 0);  // kNone never consults
}

TEST_F(MacTest, PsmUnconditionalModeBystanderOverhears) {
  build(3, true);
  macs_[1]->send(2, dgram(512, 8), OverhearingMode::kUnconditional);
  sim_.run_until(bi());
  ASSERT_EQ(callbacks_[2]->delivered.size(), 1u);
  ASSERT_EQ(callbacks_[0]->overheard.size(), 1u);
  EXPECT_EQ(tag_of(callbacks_[0]->overheard[0].pkt), 8);
  EXPECT_GE(macs_[0]->stats().overhear_commits, 1u);
}

TEST_F(MacTest, PsmRandomizedModeConsultsPolicyCommit) {
  build(3, true);
  policies_[0]->overhear_v = true;
  macs_[1]->send(2, dgram(512, 4), OverhearingMode::kRandomized);
  sim_.run_until(bi());
  EXPECT_GE(policies_[0]->overhear_calls, 1);
  ASSERT_EQ(callbacks_[0]->overheard.size(), 1u);
}

TEST_F(MacTest, PsmRandomizedModeConsultsPolicyDecline) {
  build(3, true);
  policies_[0]->overhear_v = false;
  macs_[1]->send(2, dgram(), OverhearingMode::kRandomized);
  sim_.run_until(bi());
  EXPECT_GE(policies_[0]->overhear_calls, 1);
  EXPECT_TRUE(callbacks_[0]->overheard.empty());
  EXPECT_GE(macs_[0]->stats().overhear_declines, 1u);
}

TEST_F(MacTest, PsmOneOverhearDecisionPerSenderPerBeacon) {
  build(3, true);
  policies_[0]->overhear_v = false;
  // Two packets to the same destination in the same BI: one ATIM, and even
  // with multiple ATIMs from node 1, node 0 must decide only once per BI.
  macs_[1]->send(2, dgram(), OverhearingMode::kRandomized);
  macs_[1]->send(2, dgram(), OverhearingMode::kRandomized);
  sim_.run_until(bi());
  EXPECT_LE(policies_[0]->overhear_calls, 1);
}

TEST_F(MacTest, PsmBroadcastKeepsEveryoneAwake) {
  build(3, true);
  macs_[1]->send(kBroadcastId, dgram(512, 2), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 5 * sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->awake());
  EXPECT_TRUE(macs_[2]->awake());
  sim_.run_until(bi());
  EXPECT_EQ(callbacks_[0]->delivered.size(), 1u);
  EXPECT_EQ(callbacks_[2]->delivered.size(), 1u);
}

TEST_F(MacTest, PsmDataDeferredToNextBeaconWhenLate) {
  build(2, true);
  // Enqueue after the ATIM window has closed: no announcement possible
  // this interval, so delivery waits for the next one.
  sim_.run_until(cfg_.atim_window + 10 * sim::kMillisecond);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(bi() - sim::kMillisecond);
  EXPECT_TRUE(callbacks_[1]->delivered.empty());
  sim_.run_until(2 * bi());
  EXPECT_EQ(callbacks_[1]->delivered.size(), 1u);
}

TEST_F(MacTest, PsmMultiplePacketsSameBeaconIntervalOneAtim) {
  build(2, true);
  for (int i = 0; i < 5; ++i) {
    macs_[0]->send(1, dgram(512, i), OverhearingMode::kNone);
  }
  sim_.run_until(bi());
  EXPECT_EQ(callbacks_[1]->delivered.size(), 5u);
  EXPECT_EQ(macs_[0]->stats().atim_acked, 1u);  // one announcement suffices
}

TEST_F(MacTest, PsmAtimToUnreachableFailsAndRetriesNextBi) {
  build(2, true, /*spacing=*/800.0);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(2 * bi());
  EXPECT_GE(macs_[0]->stats().atim_failed, 2u);  // one per interval so far
  EXPECT_TRUE(callbacks_[1]->delivered.empty());
  EXPECT_TRUE(callbacks_[0]->failed.empty());  // ATIM failure != link failure
}

TEST_F(MacTest, PsmSenderWithTrafficStaysAwake) {
  build(2, true);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 5 * sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->awake());
}

TEST_F(MacTest, PsmAmPolicyKeepsNodeAwake) {
  build(2, true);
  policies_[0]->ps_mode_v = false;  // e.g. ODPM AM timeout running
  sim_.run_until(cfg_.atim_window + 10 * sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->awake());
  EXPECT_FALSE(macs_[1]->awake());
}

TEST_F(MacTest, PsmImmediateSendToBelievedAwakeNeighbor) {
  build(2, true);
  policies_[0]->believed_awake = {1};
  policies_[1]->ps_mode_v = false;  // actually awake
  sim_.run_until(cfg_.atim_window + 10 * sim::kMillisecond);
  macs_[0]->send(1, dgram(512, 11), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 60 * sim::kMillisecond);
  // Delivered mid-interval without waiting for the next ATIM window.
  ASSERT_EQ(callbacks_[1]->delivered.size(), 1u);
  EXPECT_EQ(macs_[0]->stats().atim_tx, 0u);
}

TEST_F(MacTest, PsmStaleBeliefFallsBackToAtim) {
  build(2, true);
  policies_[0]->believed_awake = {1};  // wrong: node 1 is in PS and asleep
  sim_.run_until(cfg_.atim_window + 10 * sim::kMillisecond);
  macs_[0]->send(1, dgram(512, 12), OverhearingMode::kNone);
  sim_.run_until(3 * bi());
  // The immediate attempt failed, the policy was told, and the packet was
  // re-sent via the announcement path in a later beacon interval.
  EXPECT_GE(policies_[0]->immediate_failures, 1);
  EXPECT_GE(macs_[0]->stats().immediate_fallbacks, 1u);
  ASSERT_EQ(callbacks_[1]->delivered.size(), 1u);
  EXPECT_TRUE(callbacks_[0]->failed.empty());
}

TEST_F(MacTest, PsmOverhearerStaysAwakeWholeInterval) {
  build(3, true);
  policies_[0]->overhear_v = true;
  macs_[1]->send(2, dgram(), OverhearingMode::kRandomized);
  sim_.run_until(cfg_.atim_window + 20 * sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->awake());
  // And asleep again after the next interval starts with no traffic.
  sim_.run_until(bi() + cfg_.atim_window + 5 * sim::kMillisecond);
  EXPECT_FALSE(macs_[0]->awake());
}

TEST_F(MacTest, PsmStatsCountSleeps) {
  build(1, true);
  // Windows end at 50 ms + k*250 ms; ten of them complete before 2.499 s.
  sim_.run_until(10 * bi() - sim::kMillisecond);
  EXPECT_EQ(macs_[0]->stats().sleeps, 10u);
}

TEST_F(MacTest, InAtimWindowReflectsPhase) {
  build(1, true);
  sim_.run_until(sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->in_atim_window());
  sim_.run_until(cfg_.atim_window + sim::kMillisecond);
  EXPECT_FALSE(macs_[0]->in_atim_window());
  sim_.run_until(bi() + sim::kMillisecond);
  EXPECT_TRUE(macs_[0]->in_atim_window());
}

TEST_F(MacTest, DuplicateFilterSuppressesRetransmission) {
  // Force an ACK loss scenario: receiver gets the frame but the ACK
  // collides... hard to stage deterministically; instead verify the filter
  // directly through stats after a clean exchange (no duplicates).
  build(2, true);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(bi());
  EXPECT_EQ(macs_[1]->stats().data_duplicates, 0u);
  EXPECT_EQ(callbacks_[1]->delivered.size(), 1u);
}

TEST_F(MacTest, QueueDepthVisible) {
  build(2, true);
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  EXPECT_EQ(macs_[0]->queue_depth(), 1u);
  sim_.run_until(bi());
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
}

TEST_F(MacTest, StartTwiceThrows) {
  build(1, true);
  EXPECT_THROW(macs_[0]->start(), ContractViolation);
}

class RecordingPolicy : public ScriptPolicy {
 public:
  std::vector<bool> heard_am_bits;
  void on_frame_decoded(const MacFrame& f, sim::Time) override {
    heard_am_bits.push_back(f.pwr_mgt_am);
  }
};

TEST_F(MacTest, PwrMgtBitReflectsPolicyMode) {
  build(2, true);
  policies_[0]->ps_mode_v = false;  // node 0 advertises AM
  auto recorder = std::make_unique<RecordingPolicy>();
  macs_[1]->set_power_policy(recorder.get());
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(bi());
  ASSERT_FALSE(recorder->heard_am_bits.empty());
  for (bool am : recorder->heard_am_bits) EXPECT_TRUE(am);
}

TEST_F(MacTest, PwrMgtBitPsMode) {
  build(2, true);  // node 0 stays in PS mode
  auto recorder = std::make_unique<RecordingPolicy>();
  macs_[1]->set_power_policy(recorder.get());
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(bi());
  ASSERT_FALSE(recorder->heard_am_bits.empty());
  for (bool am : recorder->heard_am_bits) EXPECT_FALSE(am);
}

}  // namespace
}  // namespace rcast::mac

namespace rcast::mac {
namespace {

// --- Dead-neighbor detection via ATIM failure streaks ------------------------

class AtimFailureTest : public MacTest {};

TEST_F(AtimFailureTest, VanishedNeighborTriggersLinkFailure) {
  build(2, /*psm=*/true, /*spacing=*/800.0);  // never in range
  macs_[0]->send(1, dgram(512, 1), OverhearingMode::kNone);
  // After atim_fail_limit beacon intervals of failed announcements the
  // queued packet must surface as a link failure.
  sim_.run_until((cfg_.atim_fail_limit + 2) * bi());
  ASSERT_EQ(callbacks_[0]->failed.size(), 1u);
  EXPECT_EQ(callbacks_[0]->failed[0].from, 1u);  // next hop
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
}

TEST_F(AtimFailureTest, AllQueuedPacketsToDeadNeighborPurged) {
  build(2, true, 800.0);
  for (int i = 0; i < 5; ++i) {
    macs_[0]->send(1, dgram(512, i), OverhearingMode::kNone);
  }
  sim_.run_until((cfg_.atim_fail_limit + 2) * bi());
  EXPECT_EQ(callbacks_[0]->failed.size(), 5u);
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
}

TEST_F(AtimFailureTest, SuccessfulAtimResetsStreak) {
  build(2, true);  // in range: ATIMs succeed
  for (int round = 0; round < 6; ++round) {
    macs_[0]->send(1, dgram(512, round), OverhearingMode::kNone);
    sim_.run_until((round + 1) * bi());
  }
  EXPECT_TRUE(callbacks_[0]->failed.empty());
  EXPECT_EQ(callbacks_[1]->delivered.size(), 6u);
}

TEST_F(AtimFailureTest, PacketsToOtherDestinationsSurvivePurge) {
  build(3, true);
  // Node 1 (200 m) reachable; "node 9" does not exist -> its ATIMs fail.
  macs_[0]->send(9, dgram(512, 1), OverhearingMode::kNone);
  macs_[0]->send(1, dgram(512, 2), OverhearingMode::kNone);
  sim_.run_until((cfg_.atim_fail_limit + 2) * bi());
  ASSERT_EQ(callbacks_[0]->failed.size(), 1u);
  EXPECT_EQ(callbacks_[0]->failed[0].from, 9u);
  EXPECT_EQ(callbacks_[1]->delivered.size(), 1u);  // the good one arrived
}

TEST_F(AtimFailureTest, MaxQueueResidencyBounded) {
  build(2, true, 800.0);
  macs_[0]->send(1, dgram(), OverhearingMode::kNone);
  sim_.run_until(10 * bi());
  // The stuck packet was purged within ~atim_fail_limit+1 intervals, never
  // the hundreds of seconds of the pre-fix starvation bug.
  EXPECT_LE(macs_[0]->stats().max_queue_residency,
            (cfg_.atim_fail_limit + 2) * bi());
}

// --- Queue diagnostics -----------------------------------------------------

TEST_F(MacTest, OldestQueuedReportsAgeAndDstInOneScan) {
  build(2, true);
  const auto empty = macs_[0]->oldest_queued();
  EXPECT_EQ(empty.age, 0);
  EXPECT_EQ(empty.dst, kBroadcastId);

  // Past the ATIM window the idle node dozes; packets to destinations it
  // does not believe awake just sit in the queue until the next beacon.
  sim_.run_until(cfg_.atim_window + sim::kMillisecond);
  macs_[0]->send(7, dgram(), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 3 * sim::kMillisecond);
  macs_[0]->send(9, dgram(), OverhearingMode::kNone);
  sim_.run_until(cfg_.atim_window + 5 * sim::kMillisecond);

  ASSERT_EQ(macs_[0]->queue_depth(), 2u);
  const auto oldest = macs_[0]->oldest_queued();
  EXPECT_EQ(oldest.age, 4 * sim::kMillisecond);
  EXPECT_EQ(oldest.dst, 7u);
  EXPECT_EQ(macs_[0]->oldest_queued_age(), oldest.age);
  EXPECT_EQ(macs_[0]->oldest_queued_dst(), oldest.dst);
}

}  // namespace
}  // namespace rcast::mac
