#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace rcast {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, KnownFirstOutputsAreStable) {
  // Pin the sequence: any change to seeding or the generator breaks replay
  // of every recorded experiment.
  Rng r(12345);
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 4; ++i) got.push_back(r.next_u64());
  Rng r2(12345);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], r2.next_u64());
  // Cross-instance stability of splitmix64 seeding.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng r(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformDegenerateInterval) {
  Rng r(10);
  EXPECT_DOUBLE_EQ(r.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformU64IsUnbiased) {
  Rng r(12);
  std::map<std::uint64_t, int> counts;
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_u64(7)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, n / 7, n / 70) << "residue " << v;
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = r.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(14);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdges) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialAlwaysNonNegative) {
  Rng r(18);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
  Rng r(19);
  EXPECT_THROW(r.exponential(0.0), ContractViolation);
  EXPECT_THROW(r.exponential(-1.0), ContractViolation);
}

TEST(Rng, UniformU64RequiresPositiveBound) {
  Rng r(20);
  EXPECT_THROW(r.uniform_u64(0), ContractViolation);
}

TEST(Rng, UniformRequiresOrderedBounds) {
  Rng r(21);
  EXPECT_THROW(r.uniform(3.0, 1.0), ContractViolation);
  EXPECT_THROW(r.uniform_int(3, 1), ContractViolation);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(22);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng r(24);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, Mix64IsStableAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Adjacent inputs should differ in many bits.
  const auto d = mix64(100) ^ mix64(101);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (d >> i) & 1;
  EXPECT_GT(bits, 10);
}

}  // namespace
}  // namespace rcast
