// Parameter-registry tests: completeness self-check, digest coverage of
// every registered field, per-param round-trips through the JSONL result
// store, and rejection of out-of-range / malformed / unknown inputs.
//
// Suites are named ParamRegistry* so CI's TSan leg can include them in its
// filter alongside the campaign runner suites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/result_store.hpp"
#include "scenario/params.hpp"
#include "scenario/scenario.hpp"

namespace rcast::scenario {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("rcast_params_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

/// A legal value for `p` that differs from its default (after canonical
/// text round-trip, so "differs" means the digest and the store see the
/// difference too).
ParamValue nondefault_value(const Param& p) {
  const ParamValue def = p.default_value();
  switch (p.type) {
    case ParamType::kBool:
      return ParamValue::of(!def.b);
    case ParamType::kEnum:
      for (const auto t : p.tokens) {
        if (t != def.token) return ParamValue::of(t);
      }
      ADD_FAILURE() << p.name << ": single-token enum";
      return def;
    case ParamType::kUInt: {
      const std::uint64_t lo = static_cast<std::uint64_t>(p.min_value);
      if (static_cast<double>(def.u) + 1.0 <= p.max_value) {
        return ParamValue::of(def.u + 1);
      }
      if (def.u > lo) return ParamValue::of(def.u - 1);
      ADD_FAILURE() << p.name << ": degenerate uint range";
      return def;
    }
    case ParamType::kDouble: {
      const double candidates[] = {
          def.d + 1.0,
          def.d - 1.0,
          def.d / 2.0,
          std::isfinite(p.max_value) ? (def.d + p.max_value) / 2.0 : def.d,
          (def.d + p.min_value) / 2.0,
          p.min_value,
          p.max_value,
      };
      for (const double c : candidates) {
        if (!std::isfinite(c) || c < p.min_value || c > p.max_value) continue;
        const ParamValue v = ParamValue::of(c);
        if (!(v == def)) return v;
      }
      ADD_FAILURE() << p.name << ": no legal non-default value found";
      return def;
    }
  }
  return def;
}

TEST(ParamRegistry, SelfCheckIsClean) {
  const auto problems = registry_self_check();
  for (const auto& p : problems) ADD_FAILURE() << p;
  EXPECT_TRUE(problems.empty());
}

TEST(ParamRegistry, NamesAreUniqueAndLookupable) {
  std::set<std::string_view> seen;
  for (const Param& p : param_registry()) {
    EXPECT_TRUE(seen.insert(p.name).second) << "duplicate name " << p.name;
    const Param* found = find_param(p.name);
    ASSERT_NE(found, nullptr) << p.name;
    EXPECT_EQ(found->name, p.name);
  }
  EXPECT_EQ(find_param("no.such.param"), nullptr);
}

TEST(ParamRegistry, UnknownNameThrows) {
  ScenarioConfig cfg;
  EXPECT_THROW(set_param(cfg, "no.such.param", "1"), ParamError);
  EXPECT_THROW(param_text(cfg, "no.such.param"), ParamError);
}

TEST(ParamRegistry, EverySetterIsReadBackByItsGetter) {
  for (const Param& p : param_registry()) {
    ScenarioConfig cfg;
    const ParamValue want = nondefault_value(p);
    p.set(cfg, want);
    const ParamValue got = p.get(cfg);
    EXPECT_TRUE(got == want)
        << p.name << ": set " << want.text() << ", got back " << got.text();
    // And the canonical text parses back to the same value.
    EXPECT_TRUE(p.parse(got.text()) == got) << p.name;
  }
}

TEST(ParamRegistry, BoundsAndGarbageAreRejected) {
  ScenarioConfig cfg;
  // Below / above numeric bounds.
  EXPECT_THROW(set_param(cfg, "rate_pps", "-1"), ParamError);
  EXPECT_THROW(set_param(cfg, "flows", "0"), ParamError);
  EXPECT_THROW(set_param(cfg, "rcast.min_pr", "1.5"), ParamError);
  // Malformed numbers / trailing junk.
  EXPECT_THROW(set_param(cfg, "rate_pps", "fast"), ParamError);
  EXPECT_THROW(set_param(cfg, "rate_pps", "1.0x"), ParamError);
  EXPECT_THROW(set_param(cfg, "nodes", "-3"), ParamError);
  EXPECT_THROW(set_param(cfg, "nodes", "3.5"), ParamError);
  EXPECT_THROW(set_param(cfg, "mac.psm_enabled", "maybe"), ParamError);
  EXPECT_THROW(set_param(cfg, "routing", "olsr"), ParamError);
  // The failed sets must not have modified the config.
  EXPECT_EQ(campaign::config_digest(cfg),
            campaign::config_digest(ScenarioConfig{}));
}

TEST(ParamRegistry, EnumAliasesCanonicalize) {
  ScenarioConfig cfg;
  set_param(cfg, "scheme", "802.11");
  EXPECT_EQ(param_text(cfg, "scheme"), "80211");
  set_param(cfg, "scheme", "rcast-bcast");
  EXPECT_EQ(param_text(cfg, "scheme"), "RCAST-BC");
  set_param(cfg, "routing", "Aodv");
  EXPECT_EQ(param_text(cfg, "routing"), "AODV");
}

// --- Digest coverage --------------------------------------------------------

TEST(ParamRegistry, DigestCoversEveryInDigestParam) {
  const ScenarioConfig base;
  const std::string base_digest = campaign::config_digest(base);
  const std::string base_cell = campaign::config_cell_digest(base);
  for (const Param& p : param_registry()) {
    ScenarioConfig cfg;
    p.set(cfg, nondefault_value(p));
    const std::string digest = campaign::config_digest(cfg);
    if (p.in_digest) {
      EXPECT_NE(digest, base_digest)
          << p.name << " changed but the config digest did not";
    } else {
      EXPECT_EQ(digest, base_digest)
          << p.name << " is declared digest-exempt but changed the digest";
    }
    // The cell digest ignores exactly one extra param: the seed.
    const std::string cell = campaign::config_cell_digest(cfg);
    if (p.in_digest && p.name != "seed") {
      EXPECT_NE(cell, base_cell) << p.name;
    } else {
      EXPECT_EQ(cell, base_cell) << p.name;
    }
  }
}

TEST(ParamRegistry, DigestIsOrderIndependentOfHowValuesWereSet) {
  ScenarioConfig a, b;
  set_param(a, "mac.atim_window_ms", "25");
  set_param(a, "dsr.salvage", "false");
  set_param(b, "dsr.salvage", "false");
  set_param(b, "mac.atim_window_ms", "25");
  EXPECT_EQ(campaign::config_digest(a), campaign::config_digest(b));
}

// --- Result-store round-trips ----------------------------------------------

/// Serializes a job for `cfg` to a JSONL line, reads it back through
/// load_results, and returns the reconstructed record.
campaign::JobRecord store_round_trip(const ScenarioConfig& cfg) {
  campaign::Job job;
  job.index = 0;
  job.id = "round-trip";
  job.digest = campaign::config_digest(cfg);
  job.cfg = cfg;
  const RunResult r{};
  TempDir dir;
  const std::string path = dir.file("results.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << campaign::record_to_json(job, r, 1.0) << "\n";
  }
  const auto records = campaign::load_results(path);
  EXPECT_EQ(records.size(), 1u);
  if (records.empty()) return {};
  return records.front();
}

TEST(ParamRegistryStore, EveryParamRoundTripsThroughTheStore) {
  for (const Param& p : param_registry()) {
    ScenarioConfig cfg;
    const ParamValue want = nondefault_value(p);
    p.set(cfg, want);
    const campaign::JobRecord rec = store_round_trip(cfg);
    const ParamValue got = p.get(rec.cfg);
    EXPECT_TRUE(got == want)
        << p.name << ": wrote " << want.text() << ", loaded " << got.text();
    // Digest equality proves the WHOLE config survived, not just p.
    EXPECT_EQ(campaign::config_digest(rec.cfg), campaign::config_digest(cfg))
        << p.name;
    EXPECT_EQ(rec.cell, campaign::config_cell_digest(cfg)) << p.name;
  }
}

TEST(ParamRegistryStore, DerivedGridCoordinatesComeFromConfig) {
  ScenarioConfig cfg;
  set_param(cfg, "scheme", "odpm");
  set_param(cfg, "routing", "aodv");
  set_param(cfg, "nodes", "30");
  set_param(cfg, "flows", "5");
  set_param(cfg, "rate_pps", "4");
  set_param(cfg, "pause_s", "12.5");
  set_param(cfg, "duration_s", "90");
  set_param(cfg, "seed", "41");
  const campaign::JobRecord rec = store_round_trip(cfg);
  EXPECT_EQ(rec.scheme, Scheme::kOdpm);
  EXPECT_EQ(rec.routing, RoutingProtocol::kAodv);
  EXPECT_EQ(rec.nodes, 30u);
  EXPECT_EQ(rec.flows, 5u);
  EXPECT_EQ(rec.rate_pps, 4.0);
  EXPECT_EQ(rec.pause_s, 12.5);
  EXPECT_EQ(rec.duration_s, 90.0);
  EXPECT_EQ(rec.seed, 41u);
}

TEST(ParamRegistryStore, CorruptConfigValueIsRejected) {
  ScenarioConfig cfg;
  campaign::Job job;
  job.index = 0;
  job.id = "bad";
  job.digest = campaign::config_digest(cfg);
  job.cfg = cfg;
  std::string line = campaign::record_to_json(job, RunResult{}, 1.0);
  // Sabotage the routing token; the loader validates enums via the registry.
  const auto pos = line.find("\"routing.protocol\":\"DSR\"");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"routing.protocol\":\"DSR\"").size(),
               "\"routing.protocol\":\"RIP\"");
  TempDir dir;
  const std::string path = dir.file("results.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << line << "\n";
  }
  EXPECT_THROW(campaign::load_results(path), campaign::ResultStoreError);
}

}  // namespace
}  // namespace rcast::scenario
